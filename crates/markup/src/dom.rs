//! A minimal DOM tree shared by the HTML builder and parser.

use crate::escape::{escape_attr_into, escape_text_into};
use std::fmt;

/// Elements that never have children or a closing tag.
pub const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "source", "track",
    "wbr",
];

/// Whether `tag` is an HTML void element.
pub fn is_void(tag: &str) -> bool {
    VOID_ELEMENTS.contains(&tag)
}

/// A DOM node: an element or a text run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Node {
    Element(Element),
    Text(String),
}

impl Node {
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) => Some(t),
            Node::Element(_) => None,
        }
    }
}

/// An element with a tag name, attributes (in insertion order) and
/// children.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Element {
    pub tag: String,
    pub attrs: Vec<(String, String)>,
    pub children: Vec<Node>,
}

impl Element {
    pub fn new(tag: impl Into<String>) -> Self {
        Element { tag: tag.into(), attrs: Vec::new(), children: Vec::new() }
    }

    /// Builder-style: set an attribute (replacing an existing one).
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// Builder-style: add the `class` attribute.
    pub fn class(self, value: impl Into<String>) -> Self {
        self.attr("class", value)
    }

    /// Builder-style: add the `id` attribute.
    pub fn id(self, value: impl Into<String>) -> Self {
        self.attr("id", value)
    }

    /// Builder-style: append a child element.
    pub fn child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder-style: append several child elements.
    pub fn children(mut self, kids: impl IntoIterator<Item = Element>) -> Self {
        self.children.extend(kids.into_iter().map(Node::Element));
        self
    }

    /// Builder-style: append a text child.
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Set an attribute in place, replacing any existing value.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.attrs.push((name, value));
        }
    }

    /// Look up an attribute value.
    pub fn get_attr(&self, name: &str) -> Option<&str> {
        self.attrs.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the space-separated `class` attribute contains `class_name`.
    pub fn has_class(&self, class_name: &str) -> bool {
        self.get_attr("class")
            .map(|c| c.split_ascii_whitespace().any(|p| p == class_name))
            .unwrap_or(false)
    }

    /// Concatenated text of all descendant text nodes.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        for child in &self.children {
            match child {
                Node::Text(t) => out.push_str(t),
                Node::Element(e) => e.collect_text(out),
            }
        }
    }

    /// Depth-first iterator over all descendant elements (excluding self).
    pub fn descendants(&self) -> Descendants<'_> {
        Descendants { stack: self.children.iter().rev().collect() }
    }

    /// All descendant elements matching a predicate.
    pub fn find_all<'a>(&'a self, mut pred: impl FnMut(&Element) -> bool + 'a) -> Vec<&'a Element> {
        self.descendants().filter(move |e| pred(e)).collect()
    }

    /// First descendant element matching a predicate.
    pub fn find(&self, mut pred: impl FnMut(&Element) -> bool) -> Option<&Element> {
        self.descendants().find(|e| pred(e))
    }

    /// Render to an HTML string (escaped, no pretty-printing).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(self.rendered_len_hint());
        self.render_into(&mut out);
        out
    }

    /// Lower-bound estimate of the rendered length (exact when no
    /// character needs escaping). Lets callers pre-size output buffers
    /// and avoid the doubling reallocations of a cold `String`.
    pub fn rendered_len_hint(&self) -> usize {
        // `<tag>` ... `</tag>` plus ` name="value"` per attribute.
        let mut n = 2 + self.tag.len();
        for (name, value) in &self.attrs {
            n += name.len() + value.len() + 4;
        }
        if is_void(&self.tag) {
            return n;
        }
        n += 3 + self.tag.len();
        for child in &self.children {
            n += match child {
                Node::Text(t) => t.len(),
                Node::Element(e) => e.rendered_len_hint(),
            };
        }
        n
    }

    /// Render into an existing buffer (the allocation-free core of
    /// [`Element::render`]).
    pub fn render_into(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.tag);
        for (name, value) in &self.attrs {
            out.push(' ');
            out.push_str(name);
            out.push_str("=\"");
            escape_attr_into(value, out);
            out.push('"');
        }
        out.push('>');
        if is_void(&self.tag) {
            return;
        }
        for child in &self.children {
            match child {
                Node::Text(t) => escape_text_into(t, out),
                Node::Element(e) => e.render_into(out),
            }
        }
        out.push_str("</");
        out.push_str(&self.tag);
        out.push('>');
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Depth-first descendant-element iterator.
pub struct Descendants<'a> {
    stack: Vec<&'a Node>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = &'a Element;

    fn next(&mut self) -> Option<&'a Element> {
        while let Some(node) = self.stack.pop() {
            if let Node::Element(e) = node {
                for child in e.children.iter().rev() {
                    self.stack.push(child);
                }
                return Some(e);
            }
        }
        None
    }
}

/// Shorthand constructor: `el("div")`.
pub fn el(tag: &str) -> Element {
    Element::new(tag)
}

/// Shorthand: a text-only element, e.g. `text_el("span", "hello")`.
pub fn text_el(tag: &str, text: impl Into<String>) -> Element {
    Element::new(tag).text(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_renders_escaped_html() {
        let doc = el("div")
            .class("profile")
            .child(text_el("span", "Tom & Jerry"))
            .child(el("a").attr("href", "/u?x=\"1\"").text("link"));
        let html = doc.render();
        assert_eq!(
            html,
            r#"<div class="profile"><span>Tom &amp; Jerry</span><a href="/u?x=&quot;1&quot;">link</a></div>"#
        );
    }

    #[test]
    fn void_elements_have_no_closing_tag() {
        let doc = el("div").child(el("br")).child(el("img").attr("src", "p.jpg"));
        assert_eq!(doc.render(), r#"<div><br><img src="p.jpg"></div>"#);
    }

    #[test]
    fn attr_replacement() {
        let mut e = el("a").attr("href", "/x");
        e.set_attr("href", "/y");
        assert_eq!(e.get_attr("href"), Some("/y"));
        assert_eq!(e.attrs.len(), 1);
    }

    #[test]
    fn class_membership() {
        let e = el("li").class("friend entry  hidden");
        assert!(e.has_class("friend"));
        assert!(e.has_class("hidden"));
        assert!(!e.has_class("fri"));
        assert!(!el("li").has_class("friend"));
    }

    #[test]
    fn text_content_concatenates_descendants() {
        let doc = el("p").text("Hello ").child(text_el("b", "bold")).text(" world");
        assert_eq!(doc.text_content(), "Hello bold world");
    }

    #[test]
    fn descendants_are_depth_first_in_document_order() {
        let doc = el("div")
            .child(el("ul").child(text_el("li", "1")).child(text_el("li", "2")))
            .child(el("p"));
        let tags: Vec<&str> = doc.descendants().map(|e| e.tag.as_str()).collect();
        assert_eq!(tags, vec!["ul", "li", "li", "p"]);
    }

    #[test]
    fn find_locates_nested_elements() {
        let doc = el("div").child(el("span").id("target").text("x"));
        let found = doc.find(|e| e.get_attr("id") == Some("target")).unwrap();
        assert_eq!(found.text_content(), "x");
        assert!(doc.find(|e| e.tag == "nope").is_none());
    }
}
