//! A small, tolerant HTML parser.
//!
//! Handles the subset the simulated OSN emits — nested elements, quoted
//! and unquoted attributes, void elements, comments, doctype — and is
//! defensive about the rest: mismatched or stray close tags are recovered
//! from rather than rejected, and no input can make it panic (verified by
//! a property test over arbitrary bytes).

use crate::dom::{is_void, Element, Node};
use crate::escape::unescape;

/// Parse an HTML document (or fragment) into a synthetic root element
/// whose children are the top-level nodes.
pub fn parse(input: &str) -> Element {
    Parser { input, pos: 0 }.parse_document()
}

/// Parse and return the first top-level element, if any. Convenient for
/// scraping a full page: `parse_first(html)` yields the `<html>` element.
pub fn parse_first(input: &str) -> Option<Element> {
    parse(input).children.into_iter().find_map(|n| match n {
        Node::Element(e) => Some(e),
        Node::Text(_) => None,
    })
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(mut self) -> Element {
        let mut root = Element::new("#root");
        self.parse_children(&mut root, None);
        root
    }

    /// Parse nodes into `parent` until EOF or a close tag for
    /// `until_tag` (which is consumed).
    fn parse_children(&mut self, parent: &mut Element, until_tag: Option<&str>) {
        loop {
            if self.at_end() {
                return;
            }
            if self.rest().starts_with("</") {
                if let Some(expected) = until_tag {
                    let save = self.pos;
                    if let Some(name) = self.parse_close_tag() {
                        if name.eq_ignore_ascii_case(expected) {
                            return; // consumed our close tag
                        }
                        // A close tag for some other element: treat it as
                        // implicitly closing this one too if it matches an
                        // ancestor; simplest recovery is to rewind and
                        // return, letting the ancestor consume it.
                        self.pos = save;
                        return;
                    }
                    // Malformed close tag; skip the "</" and continue.
                    self.pos = save + 2;
                    continue;
                }
                // Stray close tag at top level: skip it.
                if self.parse_close_tag().is_none() {
                    self.pos += 2;
                }
                continue;
            }
            if self.rest().starts_with("<!--") {
                self.skip_comment();
                continue;
            }
            if self.rest().starts_with("<!") {
                self.skip_until('>');
                continue;
            }
            if self.rest().starts_with('<')
                && self.rest().chars().nth(1).is_some_and(|c| c.is_ascii_alphabetic())
            {
                if let Some(node) = self.parse_element() {
                    parent.children.push(Node::Element(node));
                    continue;
                }
            }
            // Text run (possibly starting with a lone '<').
            let text = self.take_text();
            if !text.is_empty() {
                let decoded = unescape(&text);
                if !decoded.trim().is_empty() {
                    parent.children.push(Node::Text(decoded));
                }
            }
        }
    }

    fn parse_element(&mut self) -> Option<Element> {
        debug_assert!(self.rest().starts_with('<'));
        self.pos += 1;
        let tag = self.take_name();
        if tag.is_empty() {
            return None;
        }
        let mut element = Element::new(tag.to_ascii_lowercase());
        // Attributes.
        loop {
            self.skip_whitespace();
            if self.at_end() {
                return Some(element);
            }
            if self.rest().starts_with("/>") {
                self.pos += 2;
                return Some(element);
            }
            if self.rest().starts_with('>') {
                self.pos += 1;
                break;
            }
            let name = self.take_attr_name();
            if name.is_empty() {
                // Garbage in the tag; skip one char to guarantee progress.
                self.pos += self.rest().chars().next().map_or(1, char::len_utf8);
                continue;
            }
            self.skip_whitespace();
            let value = if self.rest().starts_with('=') {
                self.pos += 1;
                self.skip_whitespace();
                self.take_attr_value()
            } else {
                String::new()
            };
            element.set_attr(name.to_ascii_lowercase(), unescape(&value));
        }
        if !is_void(&element.tag) {
            let tag = element.tag.clone();
            self.parse_children(&mut element, Some(&tag));
        }
        Some(element)
    }

    /// Parse `</name ... >`; returns the tag name, or `None` if malformed.
    /// Consumes through the closing `>` on success.
    fn parse_close_tag(&mut self) -> Option<String> {
        debug_assert!(self.rest().starts_with("</"));
        let save = self.pos;
        self.pos += 2;
        let name = self.take_name();
        if name.is_empty() {
            self.pos = save;
            return None;
        }
        self.skip_until('>');
        Some(name)
    }

    fn take_text(&mut self) -> String {
        let start = self.pos;
        // A '<' only terminates text if it begins a tag, comment or
        // declaration; otherwise it is literal text.
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len() {
            if bytes[self.pos] == b'<' && self.pos > start {
                let rest = &self.input[self.pos..];
                let next = rest.chars().nth(1);
                if matches!(next, Some(c) if c.is_ascii_alphabetic() || c == '/' || c == '!') {
                    break;
                }
            } else if bytes[self.pos] == b'<' && self.pos == start {
                // Leading '<' that did not parse as a tag: consume it as text.
                self.pos += 1;
                continue;
            }
            self.pos += utf8_len(bytes[self.pos]);
        }
        self.input[start..self.pos].to_string()
    }

    fn take_name(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.rest().chars().next() {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == ':' {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        self.input[start..self.pos].to_string()
    }

    fn take_attr_name(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.rest().chars().next() {
            if c.is_ascii_whitespace() || c == '=' || c == '>' || c == '/' {
                break;
            }
            self.pos += c.len_utf8();
        }
        self.input[start..self.pos].to_string()
    }

    fn take_attr_value(&mut self) -> String {
        match self.rest().chars().next() {
            Some(q @ ('"' | '\'')) => {
                self.pos += 1;
                let start = self.pos;
                while let Some(c) = self.rest().chars().next() {
                    if c == q {
                        break;
                    }
                    self.pos += c.len_utf8();
                }
                let value = self.input[start..self.pos].to_string();
                if !self.at_end() {
                    self.pos += 1; // closing quote
                }
                value
            }
            _ => {
                let start = self.pos;
                while let Some(c) = self.rest().chars().next() {
                    if c.is_ascii_whitespace() || c == '>' {
                        break;
                    }
                    self.pos += c.len_utf8();
                }
                self.input[start..self.pos].to_string()
            }
        }
    }

    fn skip_comment(&mut self) {
        debug_assert!(self.rest().starts_with("<!--"));
        self.pos += 4;
        if let Some(end) = self.rest().find("-->") {
            self.pos += end + 3;
        } else {
            self.pos = self.input.len();
        }
    }

    fn skip_until(&mut self, stop: char) {
        while let Some(c) = self.rest().chars().next() {
            self.pos += c.len_utf8();
            if c == stop {
                return;
            }
        }
    }

    fn skip_whitespace(&mut self) {
        while let Some(c) = self.rest().chars().next() {
            if c.is_ascii_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b < 0xe0 => 2,
        b if b < 0xf0 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::{el, text_el};

    #[test]
    fn parses_nested_structure() {
        let root = parse(r#"<div class="a"><span id="x">hi</span><p>bye</p></div>"#);
        let div = root.children[0].as_element().unwrap();
        assert_eq!(div.tag, "div");
        assert_eq!(div.get_attr("class"), Some("a"));
        assert_eq!(div.children.len(), 2);
        let span = div.children[0].as_element().unwrap();
        assert_eq!(span.get_attr("id"), Some("x"));
        assert_eq!(span.text_content(), "hi");
    }

    #[test]
    fn round_trips_builder_output() {
        let doc = el("html").child(
            el("body")
                .child(text_el("h1", "Profile: Ann <Lee>"))
                .child(el("a").attr("href", "/friends?id=u1&page=2").text("friends"))
                .child(el("img").attr("src", "x.jpg")),
        );
        let parsed = parse_first(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn entities_are_decoded() {
        let root = parse("<p>a &amp; b &lt;c&gt;</p>");
        assert_eq!(root.children[0].as_element().unwrap().text_content(), "a & b <c>");
    }

    #[test]
    fn comments_and_doctype_skipped() {
        let root = parse("<!DOCTYPE html><!-- note --><p>x</p>");
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].as_element().unwrap().tag, "p");
    }

    #[test]
    fn void_elements_do_not_swallow_siblings() {
        let root = parse("<div><br><span>after</span></div>");
        let div = root.children[0].as_element().unwrap();
        assert_eq!(div.children.len(), 2);
        assert_eq!(div.children[1].as_element().unwrap().text_content(), "after");
    }

    #[test]
    fn unquoted_and_single_quoted_attrs() {
        let root = parse("<a href=/x class='big link'>y</a>");
        let a = root.children[0].as_element().unwrap();
        assert_eq!(a.get_attr("href"), Some("/x"));
        assert!(a.has_class("big"));
    }

    #[test]
    fn self_closing_syntax_accepted() {
        let root = parse("<div><custom-thing a=1 /><p>x</p></div>");
        let div = root.children[0].as_element().unwrap();
        assert_eq!(div.children.len(), 2);
    }

    #[test]
    fn recovers_from_mismatched_close_tags() {
        // </div> implicitly closes the open <span>.
        let root = parse("<div><span>text</div><p>after</p>");
        assert_eq!(root.children.len(), 2);
        let div = root.children[0].as_element().unwrap();
        assert_eq!(div.tag, "div");
        assert_eq!(div.text_content(), "text");
    }

    #[test]
    fn stray_close_tag_is_skipped() {
        let root = parse("</div><p>x</p>");
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn lone_angle_bracket_is_text() {
        let root = parse("<p>3 < 5 and 7 > 2</p>");
        let p = root.children[0].as_element().unwrap();
        assert_eq!(p.text_content(), "3 < 5 and 7 > 2");
    }

    #[test]
    fn truncated_input_does_not_panic() {
        for s in ["<div", "<div class=", "<div class=\"x", "<a href='", "<!--", "</", "<"] {
            let _ = parse(s);
        }
    }
}
