//! # hsp-markup — tiny HTML generator and parser
//!
//! The simulated OSN (`hsp-platform`) renders profile, search and
//! friend-list pages as HTML; the attacker (`hsp-crawler`) scrapes them
//! back, exactly as the paper's crawlers "download the HTML source code
//! of each Web page \[and\] extract relevant data" (§3.2). This crate
//! provides both halves:
//!
//! - [`dom`]: an element tree with a builder API and escaped rendering;
//! - [`parser`]: a tolerant HTML parser that never panics on bad input;
//! - [`mod@select`]: a tiny CSS-selector subset for scraping;
//! - [`escape`]: entity escaping/decoding.

pub mod dom;
pub mod escape;
pub mod parser;
pub mod select;

pub use dom::{el, text_el, Element, Node};
pub use escape::{escape_attr, escape_text, unescape};
pub use parser::{parse, parse_first};
pub use select::{select, select_first, Selector};
