//! A tiny CSS-selector subset for scraping.
//!
//! Supported grammar (enough for the crawler's needs):
//!
//! ```text
//! selector   := compound ( WS compound )*        // descendant combinator
//! compound   := [tag] ( '.' class | '#' id | '[' attr '=' value ']' )*
//! ```
//!
//! Examples: `div.friend-entry`, `#profile a`, `li[data-kind=friend] a`.

use crate::dom::Element;

/// One simple (compound) selector step.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Compound {
    tag: Option<String>,
    classes: Vec<String>,
    id: Option<String>,
    attrs: Vec<(String, String)>,
}

impl Compound {
    fn matches(&self, e: &Element) -> bool {
        if let Some(tag) = &self.tag {
            if e.tag != *tag {
                return false;
            }
        }
        if let Some(id) = &self.id {
            if e.get_attr("id") != Some(id.as_str()) {
                return false;
            }
        }
        if !self.classes.iter().all(|c| e.has_class(c)) {
            return false;
        }
        self.attrs.iter().all(|(n, v)| e.get_attr(n) == Some(v.as_str()))
    }
}

/// A parsed selector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Selector {
    steps: Vec<Compound>,
}

/// Error for malformed selector strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectorError(pub String);

impl std::fmt::Display for SelectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid selector: {}", self.0)
    }
}

impl std::error::Error for SelectorError {}

impl Selector {
    /// Parse a selector string.
    pub fn parse(s: &str) -> Result<Selector, SelectorError> {
        let steps: Vec<Compound> =
            s.split_ascii_whitespace().map(parse_compound).collect::<Result<_, _>>()?;
        if steps.is_empty() {
            return Err(SelectorError("empty selector".into()));
        }
        Ok(Selector { steps })
    }

    /// All descendant elements of `root` matching this selector
    /// (document order). `root` itself is not a candidate for the final
    /// step but may anchor earlier steps' ancestors.
    pub fn select<'a>(&self, root: &'a Element) -> Vec<&'a Element> {
        let mut out = Vec::new();
        // Walk descendants; for each, test the full chain against its
        // ancestor path. Track paths via explicit DFS with ancestor stack.
        fn dfs<'a>(
            e: &'a Element,
            ancestors: &mut Vec<&'a Element>,
            sel: &Selector,
            out: &mut Vec<&'a Element>,
        ) {
            for child in &e.children {
                if let crate::dom::Node::Element(c) = child {
                    if sel.matches_with_ancestors(c, ancestors) {
                        out.push(c);
                    }
                    ancestors.push(c);
                    dfs(c, ancestors, sel, out);
                    ancestors.pop();
                }
            }
        }
        let mut ancestors = Vec::new();
        dfs(root, &mut ancestors, self, &mut out);
        out
    }

    /// First match, if any.
    pub fn select_first<'a>(&self, root: &'a Element) -> Option<&'a Element> {
        // Cheap enough at scraper page sizes; keeps one code path.
        self.select(root).into_iter().next()
    }

    fn matches_with_ancestors(&self, e: &Element, ancestors: &[&Element]) -> bool {
        let last = self.steps.last().expect("non-empty selector");
        if !last.matches(e) {
            return false;
        }
        // Remaining steps must match some strictly-ascending subsequence
        // of ancestors (nearest-first greedy works for descendant-only
        // combinators scanned outward).
        let mut step_idx = self.steps.len().wrapping_sub(2);
        if self.steps.len() < 2 {
            return true;
        }
        let mut anc_iter = ancestors.iter().rev();
        loop {
            let step = &self.steps[step_idx];
            let mut found = false;
            for anc in anc_iter.by_ref() {
                if step.matches(anc) {
                    found = true;
                    break;
                }
            }
            if !found {
                return false;
            }
            if step_idx == 0 {
                return true;
            }
            step_idx -= 1;
        }
    }
}

fn parse_compound(s: &str) -> Result<Compound, SelectorError> {
    let mut compound = Compound { tag: None, classes: Vec::new(), id: None, attrs: Vec::new() };
    let mut rest = s;
    // Optional leading tag name.
    let tag_end = rest.find(['.', '#', '[']).unwrap_or(rest.len());
    if tag_end > 0 {
        compound.tag = Some(rest[..tag_end].to_ascii_lowercase());
    }
    rest = &rest[tag_end..];
    while !rest.is_empty() {
        if let Some(r) = rest.strip_prefix('.') {
            let end = r.find(['.', '#', '[']).unwrap_or(r.len());
            if end == 0 {
                return Err(SelectorError(s.into()));
            }
            compound.classes.push(r[..end].to_string());
            rest = &r[end..];
        } else if let Some(r) = rest.strip_prefix('#') {
            let end = r.find(['.', '#', '[']).unwrap_or(r.len());
            if end == 0 {
                return Err(SelectorError(s.into()));
            }
            compound.id = Some(r[..end].to_string());
            rest = &r[end..];
        } else if let Some(r) = rest.strip_prefix('[') {
            let end = r.find(']').ok_or_else(|| SelectorError(s.into()))?;
            let body = &r[..end];
            let (name, value) = body.split_once('=').ok_or_else(|| SelectorError(s.into()))?;
            compound.attrs.push((name.to_ascii_lowercase(), value.trim_matches('"').to_string()));
            rest = &r[end + 1..];
        } else {
            return Err(SelectorError(s.into()));
        }
    }
    Ok(compound)
}

/// Convenience: parse + select in one call. Panics on malformed selector
/// (use [`Selector::parse`] when the selector is not a literal).
pub fn select<'a>(root: &'a Element, selector: &str) -> Vec<&'a Element> {
    Selector::parse(selector).expect("literal selector must be valid").select(root)
}

/// Convenience: first match or `None`.
pub fn select_first<'a>(root: &'a Element, selector: &str) -> Option<&'a Element> {
    Selector::parse(selector).expect("literal selector must be valid").select_first(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn doc() -> Element {
        parse(
            r#"<div id="page">
                 <ul class="friends">
                   <li class="friend entry" data-kind="friend"><a href="/u1">A</a></li>
                   <li class="friend entry"><a href="/u2">B</a></li>
                 </ul>
                 <ul class="other"><li class="friend"><a href="/u3">C</a></li></ul>
               </div>"#,
        )
    }

    #[test]
    fn tag_selector() {
        assert_eq!(select(&doc(), "li").len(), 3);
        assert_eq!(select(&doc(), "a").len(), 3);
    }

    #[test]
    fn class_selector() {
        assert_eq!(select(&doc(), ".friend").len(), 3);
        assert_eq!(select(&doc(), "li.entry").len(), 2);
        assert_eq!(select(&doc(), ".friend.entry").len(), 2);
    }

    #[test]
    fn id_selector() {
        assert!(select_first(&doc(), "#page").is_some());
        assert!(select_first(&doc(), "#nope").is_none());
    }

    #[test]
    fn attr_selector() {
        let d = doc();
        let hits = select(&d, "li[data-kind=friend]");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].text_content(), "A");
    }

    #[test]
    fn descendant_combinator() {
        let d = doc();
        let hits = select(&d, "ul.friends a");
        assert_eq!(hits.len(), 2);
        let hrefs: Vec<_> = hits.iter().map(|a| a.get_attr("href").unwrap()).collect();
        assert_eq!(hrefs, vec!["/u1", "/u2"]);
        assert_eq!(select(&doc(), "ul.other a").len(), 1);
        assert_eq!(select(&doc(), "#page ul.friends li a").len(), 2);
    }

    #[test]
    fn malformed_selectors_error() {
        assert!(Selector::parse("").is_err());
        assert!(Selector::parse(".").is_err());
        assert!(Selector::parse("a[b").is_err());
        assert!(Selector::parse("a[b]").is_err()); // presence-only not supported
    }

    #[test]
    fn results_are_document_order() {
        let order: Vec<String> = select(&doc(), "a").iter().map(|a| a.text_content()).collect();
        assert_eq!(order, vec!["A", "B", "C"]);
    }
}
