//! HTML text/attribute escaping and entity decoding.

/// Escape a string for use as HTML text content (`&`, `<`, `>`).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_text_into(s, &mut out);
    out
}

/// Streaming form of [`escape_text`]: append into an existing buffer,
/// copying the whole string at once when nothing needs escaping (the
/// overwhelmingly common case for rendered pages).
pub fn escape_text_into(s: &str, out: &mut String) {
    if !s.bytes().any(|b| matches!(b, b'&' | b'<' | b'>')) {
        out.push_str(s);
        return;
    }
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

/// Escape a string for use inside a double-quoted attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_attr_into(s, &mut out);
    out
}

/// Streaming form of [`escape_attr`] (see [`escape_text_into`]).
pub fn escape_attr_into(s: &str, out: &mut String) {
    if !s.bytes().any(|b| matches!(b, b'&' | b'<' | b'>' | b'"' | b'\'')) {
        out.push_str(s);
        return;
    }
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
}

/// Decode the named and numeric entities the escaper can produce (plus a
/// few common extras). Unknown entities are passed through verbatim,
/// which is what tolerant scrapers do.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            if let Some(semi) = s[i..].find(';').map(|p| i + p) {
                let entity = &s[i + 1..semi];
                if let Some(decoded) = decode_entity(entity) {
                    out.push(decoded);
                    i = semi + 1;
                    continue;
                }
            }
        }
        let c = s[i..].chars().next().expect("in-bounds char");
        out.push(c);
        i += c.len_utf8();
    }
    out
}

fn decode_entity(entity: &str) -> Option<char> {
    match entity {
        "amp" => Some('&'),
        "lt" => Some('<'),
        "gt" => Some('>'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        "nbsp" => Some('\u{a0}'),
        _ => {
            let num = entity.strip_prefix('#')?;
            let code = if let Some(hex) = num.strip_prefix(['x', 'X']) {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                num.parse().ok()?
            };
            char::from_u32(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping() {
        assert_eq!(escape_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
        assert_eq!(escape_text("plain"), "plain");
    }

    #[test]
    fn attr_escaping_covers_quotes() {
        assert_eq!(escape_attr(r#"say "hi" & 'bye'"#), "say &quot;hi&quot; &amp; &#39;bye&#39;");
    }

    #[test]
    fn unescape_inverts_escape() {
        for s in ["a < b & c > d", r#""quoted" & 'single'"#, "no entities", "tail &"] {
            assert_eq!(unescape(&escape_attr(s)), s);
            assert_eq!(unescape(&escape_text(s)), s);
        }
    }

    #[test]
    fn numeric_entities() {
        assert_eq!(unescape("&#65;&#x42;&#x63;"), "ABc");
        assert_eq!(unescape("&nbsp;"), "\u{a0}");
    }

    #[test]
    fn unknown_entities_pass_through() {
        assert_eq!(unescape("&bogus; &"), "&bogus; &");
        assert_eq!(unescape("&#xZZ;"), "&#xZZ;");
    }
}
