//! Property tests for the HTML layer: the parser must never panic on
//! arbitrary input, escaping must round-trip, and parsing must invert
//! rendering for trees the builder can produce.

use hsp_markup::dom::{Element, Node};
use hsp_markup::{escape_attr, escape_text, parse, parse_first, unescape};
use proptest::prelude::*;

proptest! {
    #[test]
    fn parser_never_panics_on_arbitrary_strings(input in ".*") {
        let _ = parse(&input);
    }

    #[test]
    fn parser_never_panics_on_taggy_soup(
        parts in prop::collection::vec(
            prop_oneof![
                Just("<".to_string()),
                Just(">".to_string()),
                Just("</".to_string()),
                Just("<div".to_string()),
                Just("<!--".to_string()),
                Just("-->".to_string()),
                Just("=\"".to_string()),
                Just("'".to_string()),
                "[a-z<>&\"=/ ]{0,8}",
            ],
            0..40,
        )
    ) {
        let soup: String = parts.concat();
        let _ = parse(&soup);
    }

    #[test]
    fn escape_text_round_trips(s in ".*") {
        prop_assert_eq!(unescape(&escape_text(&s)), s);
    }

    #[test]
    fn escape_attr_round_trips(s in ".*") {
        prop_assert_eq!(unescape(&escape_attr(&s)), s);
    }

    #[test]
    fn render_parse_round_trip(tree in arb_element(3)) {
        let html = tree.render();
        let reparsed = parse_first(&html).expect("one root element");
        prop_assert_eq!(reparsed, tree);
    }
}

/// Generate element trees restricted to what the builder legitimately
/// produces: lowercase tags, non-void containers, attribute names that
/// are valid identifiers, and text without entity-sensitive edge cases
/// being lost (the escaper handles those; whitespace-only text nodes are
/// excluded because the parser intentionally drops them).
fn arb_element(depth: u32) -> impl Strategy<Value = Element> {
    let tag = prop_oneof![
        Just("div"),
        Just("span"),
        Just("p"),
        Just("a"),
        Just("ul"),
        Just("li"),
        Just("h1"),
        Just("section"),
        Just("table"),
        Just("td")
    ];
    let attr_name =
        prop_oneof![Just("class"), Just("id"), Just("href"), Just("data-kind"), Just("title")];
    // Attribute values and text: printable, and text must contain a
    // non-whitespace char (parser drops whitespace-only runs).
    let attr_value = "[ -~]{0,12}";
    let text = "[ -~]{0,12}[!-~]";

    let leaf = (tag.clone(), prop::collection::vec((attr_name, attr_value), 0..3), text).prop_map(
        |(tag, attrs, text)| {
            let mut e = Element::new(tag);
            for (n, v) in attrs {
                e.set_attr(n, v);
            }
            e.children.push(Node::Text(text));
            e
        },
    );

    leaf.prop_recursive(depth, 24, 4, move |inner| {
        (
            prop_oneof![Just("div"), Just("span"), Just("ul"), Just("section"), Just("table")],
            prop::collection::vec(("(class|id|href|title)", "[ -~]{0,12}"), 0..3),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(tag, attrs, kids)| {
                let mut e = Element::new(tag);
                for (n, v) in attrs {
                    e.set_attr(n, v);
                }
                for kid in kids {
                    e.children.push(Node::Element(kid));
                }
                e
            })
    })
}
