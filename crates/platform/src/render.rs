//! HTML rendering of platform pages.
//!
//! Class/id names and `data-` attributes are the stable scraping
//! contract with `hsp-crawler` (which, like the paper's parser, extracts
//! fields from the HTML source).

use hsp_graph::{EducationKind, Network, UserId};
use hsp_markup::{el, text_el, Element};
use hsp_policy::PublicView;

/// Wrap body content in a page skeleton.
pub fn page(title: &str, body_children: Vec<Element>) -> String {
    let mut body = el("body");
    body.children.extend(body_children.into_iter().map(hsp_markup::Node::Element));
    let doc = el("html").child(el("head").child(text_el("title", title))).child(body);
    // One exact-size allocation for the whole page instead of the
    // doubling growth of `format!` + a cold render buffer.
    let mut out = String::with_capacity("<!DOCTYPE html>".len() + doc.rendered_len_hint());
    out.push_str("<!DOCTYPE html>");
    doc.render_into(&mut out);
    out
}

/// Render a stranger's view of a profile page.
pub fn profile_page(net: &Network, view: &PublicView) -> String {
    profile_page_inner(net, view, None)
}

/// Live-world variant: identical page plus a `data-gen` staleness stamp
/// (the user's mutation-touch count) on the `#profile` root. The crawler
/// cross-checks it against the friend-list stamp to detect pages that
/// changed between the two fetches.
pub fn profile_page_stamped(net: &Network, view: &PublicView, gen: u64) -> String {
    profile_page_inner(net, view, Some(gen))
}

fn profile_page_inner(net: &Network, view: &PublicView, gen: Option<u64>) -> String {
    let mut root = el("div").id("profile").attr("data-uid", view.user.to_string());
    if let Some(g) = gen {
        root = root.attr("data-gen", g.to_string());
    }
    root = root.child(text_el("h1", view.name.clone()).class("name"));
    if view.has_profile_photo {
        root = root
            .child(el("img").class("profile-photo").attr("src", format!("/photo/{}", view.user)));
    }
    if let Some(g) = view.gender {
        root = root.child(text_el("span", g.to_string()).class("gender"));
    }
    if !view.networks.is_empty() {
        let mut ul = el("ul").class("networks");
        for n in &view.networks {
            ul = ul.child(
                text_el("li", net.school(*n).name)
                    .class("network")
                    .attr("data-school", n.to_string()),
            );
        }
        root = root.child(ul);
    }
    if !view.education.is_empty() {
        let mut ul = el("ul").class("education");
        for e in &view.education {
            let kind = match e.kind {
                EducationKind::HighSchool => "highschool",
                EducationKind::College => "college",
                EducationKind::GraduateSchool => "gradschool",
            };
            let label = match e.grad_year {
                Some(y) => format!("{}, Class of {}", net.school(e.school).name, y),
                None => net.school(e.school).name.to_string(),
            };
            let mut li = text_el("li", label)
                .class("edu")
                .attr("data-kind", kind)
                .attr("data-school", e.school.to_string());
            if let Some(y) = e.grad_year {
                li = li.attr("data-year", y.to_string());
            }
            ul = ul.child(li);
        }
        root = root.child(ul);
    }
    if let Some(c) = view.current_city {
        let city = net.city(c);
        root = root.child(
            text_el("span", format!("{}, {}", city.name, city.state))
                .class("current-city")
                .attr("data-city", c.to_string()),
        );
    }
    if let Some(c) = view.hometown {
        let city = net.city(c);
        root = root.child(
            text_el("span", format!("{}, {}", city.name, city.state))
                .class("hometown")
                .attr("data-city", c.to_string()),
        );
    }
    if let Some(r) = view.relationship {
        root = root.child(text_el("span", format!("{r:?}")).class("relationship"));
    }
    if let Some(i) = view.interested_in {
        root = root.child(text_el("span", format!("{i:?}")).class("interested-in"));
    }
    if let Some(b) = view.birthday {
        root = root.child(
            text_el("span", b.to_string()).class("birthday").attr("data-date", b.to_string()),
        );
    }
    if let Some(n) = view.photos_shared {
        root = root.child(
            text_el("span", format!("{n} photos"))
                .class("photos-count")
                .attr("data-count", n.to_string()),
        );
    }
    if let Some(n) = view.wall_posts {
        root = root.child(
            text_el("span", format!("{n} wall posts"))
                .class("wall-count")
                .attr("data-count", n.to_string()),
        );
    }
    if !view.wall_posters.is_empty() {
        let mut ul = el("ul").class("wall");
        for &author in &view.wall_posters {
            ul = ul.child(
                text_el("li", net.user(author).profile.full_name())
                    .class("wall-post")
                    .attr("data-author", author.to_string()),
            );
        }
        root = root.child(ul);
    }
    if let Some(contact) = &view.contact {
        let mut div = el("div").class("contact");
        if let Some(e) = &contact.email {
            div = div.child(text_el("span", e.clone()).class("email"));
        }
        if let Some(p) = &contact.phone {
            div = div.child(text_el("span", p.clone()).class("phone"));
        }
        if let Some(a) = &contact.address {
            div = div.child(text_el("span", a.clone()).class("address"));
        }
        root = root.child(div);
    }
    if view.friend_list_visible {
        root = root.child(
            text_el("a", "Friends")
                .class("friends-link")
                .attr("href", format!("/friends/{}", view.user)),
        );
    }
    if view.message_button {
        root = root.child(
            text_el("a", "Message")
                .class("message-button")
                .attr("href", format!("/message/{}", view.user)),
        );
    }
    page(&view.name, vec![root])
}

/// One page of search results (or friends): a list of profile links
/// plus an optional next-page link.
pub fn listing_page(
    list_id: &str,
    entries: &[(UserId, String)],
    next_url: Option<String>,
) -> String {
    listing_page_inner(list_id, entries, next_url, None)
}

/// Live-world variant of [`listing_page`] with a `data-gen` stamp on
/// the list root (the listing owner's mutation-touch count for friend
/// lists, the world generation for search results).
pub fn listing_page_stamped(
    list_id: &str,
    entries: &[(UserId, String)],
    next_url: Option<String>,
    gen: u64,
) -> String {
    listing_page_inner(list_id, entries, next_url, Some(gen))
}

fn listing_page_inner(
    list_id: &str,
    entries: &[(UserId, String)],
    next_url: Option<String>,
    gen: Option<u64>,
) -> String {
    let mut ul = el("ul").id(list_id);
    if let Some(g) = gen {
        ul = ul.attr("data-gen", g.to_string());
    }
    ul.children.reserve(entries.len());
    for (uid, name) in entries {
        ul = ul.child(
            el("li").class("entry").child(
                text_el("a", name.clone())
                    .class("profile-link")
                    .attr("href", format!("/profile/{uid}")),
            ),
        );
    }
    let mut children = vec![ul];
    if let Some(next) = next_url {
        children.push(text_el("a", "More").id("next-page").attr("href", next));
    }
    page(list_id, children)
}

/// A deactivated or graduated-away account's profile page: the name
/// slot still renders (so parsers don't crash) but the body carries a
/// `data-tombstone` marker and nothing else. Served with 200 OK — a
/// tombstone is an answer, not an error.
pub fn tombstone_page(uid: UserId, gen: u64) -> String {
    let root = el("div")
        .id("profile")
        .attr("data-uid", uid.to_string())
        .attr("data-gen", gen.to_string())
        .attr("data-tombstone", "1")
        .child(text_el("h1", "Account unavailable").class("name"));
    page("Account unavailable", vec![root])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_markup::{parse, select, select_first};

    #[test]
    fn listing_page_structure() {
        let html = listing_page(
            "results",
            &[(UserId(1), "A B".into()), (UserId(2), "C D".into())],
            Some("/find-friends?school=s0&page=1".into()),
        );
        let dom = parse(&html);
        assert_eq!(select(&dom, "#results a.profile-link").len(), 2);
        let next = select_first(&dom, "#next-page").unwrap();
        assert_eq!(next.get_attr("href"), Some("/find-friends?school=s0&page=1"));
    }

    #[test]
    fn listing_page_without_next() {
        let html = listing_page("results", &[], None);
        let dom = parse(&html);
        assert!(select_first(&dom, "#next-page").is_none());
    }

    #[test]
    fn stamped_listing_carries_generation() {
        let entries = [(UserId(1), "A B".to_string())];
        let html = listing_page_stamped("friends", &entries, None, 7);
        let dom = parse(&html);
        let ul = select_first(&dom, "#friends").unwrap();
        assert_eq!(ul.get_attr("data-gen"), Some("7"));
        // The unstamped renderer must not leak the attribute.
        let plain = listing_page("friends", &entries, None);
        assert!(!plain.contains("data-gen"));
    }

    #[test]
    fn tombstone_page_structure() {
        let html = tombstone_page(UserId(5), 3);
        let dom = parse(&html);
        let root = select_first(&dom, "#profile").unwrap();
        assert_eq!(root.get_attr("data-tombstone"), Some("1"));
        assert_eq!(root.get_attr("data-uid"), Some("u5"));
        assert_eq!(root.get_attr("data-gen"), Some("3"));
        assert!(select_first(&dom, "h1.name").is_some());
        assert!(select(&dom, ".edu").is_empty());
        assert!(select(&dom, ".friends-link").is_empty());
    }
}
