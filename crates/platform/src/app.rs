//! The assembled OSN application: routes + handlers.

use crate::accounts::{AccountError, Accounts};
use crate::config::PlatformConfig;
use crate::faults::FaultEngine;
use crate::mutations::{MutationEngine, WorldGen};
use crate::render;
use crate::search::SearchIndex;
use hsp_defense::{session_account_index, SybilDetector, Verdict};
use hsp_graph::{CityId, Network, SchoolId, UserId};
use hsp_http::resilient::{
    captcha_delay_ms, refusal_provenance, H_ACCOUNT_SUSPENDED, H_ATTEMPT_SEQ, H_CAPTCHA,
    H_RETRY_AFTER, H_SESSION_EXPIRED, H_SUSPENDED, H_THROTTLED, H_TRACE_ID, H_VIRTUAL_NOW,
};
use hsp_http::{request_cookie, Handler, PathParams, Request, Response, Router, Status};
use hsp_obs::trace::{SpanRecord, SLOT_SERVER};
use hsp_obs::{Counter, Registry, RouteMetrics, TraceCtx, VirtualClock};
use hsp_policy::Policy;
use serde_json::json;
use std::sync::Arc;
use std::time::Instant;

/// Application route patterns, in mount order. The `/__metrics` and
/// `/__status` admin routes are deliberately absent: they belong to the
/// operator, not the simulated OSN, and are not instrumented (nor do
/// they touch session state, so they never count toward attacker
/// effort or suspension accounting).
pub const ROUTES: &[&str] = &[
    "/signup",
    "/login",
    "/find-friends",
    "/graph-search",
    "/profile/:uid",
    "/friends/:uid",
    "/message/:uid",
    "/circles/:uid",
];

/// The five-way refusal-provenance taxonomy, in precedence order. The
/// platform itself only ever produces `fault`, `throttle` and
/// `suspension`; `edge` and `shed` belong to the HTTP edge but are
/// registered here too so `/__status` reports all five at a stable
/// shape (zeros included).
pub const REFUSAL_SOURCES: [&str; 5] = ["edge", "fault", "throttle", "shed", "suspension"];

/// The simulated OSN service. Immutable network + policy, mutable
/// account/session state, all behind `Arc` so the same platform can be
/// mounted on the HTTP server and called in-process.
pub struct Platform {
    pub network: Arc<Network>,
    pub policy: Arc<dyn Policy>,
    pub config: PlatformConfig,
    pub accounts: Accounts,
    /// Metrics registry shared by every route handler; servers and
    /// crawlers pointed at this platform may share it too.
    pub obs: Arc<Registry>,
    /// Virtual timeline for the windowed suspension rule. The platform
    /// only *reads* it; the attacker side advances it (politeness
    /// sleeps, backoff waits), so time is a pure function of the
    /// request sequence.
    pub clock: Arc<VirtualClock>,
    /// Fault-injection engine (a no-op under the default plan).
    pub faults: Arc<FaultEngine>,
    /// Behavioral sybil detector (a strict no-op when `Off`).
    pub defense: Arc<SybilDetector>,
    /// Live-world mutation engine (not live under the default plan, in
    /// which case every handler bypasses it entirely).
    pub mutations: Arc<MutationEngine>,
    search: SearchIndex,
}

impl Platform {
    pub fn new(
        network: Arc<Network>,
        policy: Arc<dyn Policy>,
        config: PlatformConfig,
    ) -> Arc<Self> {
        Self::with_registry(network, policy, config, Registry::shared())
    }

    /// Build against an externally owned registry (so one registry can
    /// span platform, server and crawler in an experiment).
    pub fn with_registry(
        network: Arc<Network>,
        policy: Arc<dyn Policy>,
        config: PlatformConfig,
        obs: Arc<Registry>,
    ) -> Arc<Self> {
        Self::with_registry_and_clock(network, policy, config, obs, VirtualClock::shared())
    }

    /// Build against an external registry *and* virtual clock — the
    /// chaos setup, where the crawler's politeness/backoff waits drive
    /// the same timeline the platform's windowed suspension rule reads.
    pub fn with_registry_and_clock(
        network: Arc<Network>,
        policy: Arc<dyn Policy>,
        config: PlatformConfig,
        obs: Arc<Registry>,
        clock: Arc<VirtualClock>,
    ) -> Arc<Self> {
        let faults = FaultEngine::new(config.faults.clone(), Arc::clone(&obs));
        let defense = Arc::new(SybilDetector::new(config.defense.clone(), &obs));
        let mutations =
            MutationEngine::new(config.mutations.clone(), Arc::clone(&network), Arc::clone(&obs));
        Arc::new(Platform {
            network,
            policy,
            config,
            accounts: Accounts::new(),
            obs,
            clock,
            faults,
            defense,
            mutations,
            search: SearchIndex::new(),
        })
    }

    /// Wrap a route handler with per-route accounting. Metric handles
    /// are resolved once here, at router build time; the per-request
    /// cost is a clock read and a handful of atomic adds.
    fn instrument(
        self: &Arc<Self>,
        route: &'static str,
        f: impl Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    ) -> impl Fn(&Request, &PathParams) -> Response + Send + Sync + 'static {
        let m = RouteMetrics::register(&self.obs, route);
        let faults = Arc::clone(&self.faults);
        let platform = Arc::clone(self);
        let span_name = format!("serve:{route}");
        // Refusal-provenance counters, resolved once at router build
        // time so every source shows up in /__status even at zero.
        let refusals: Vec<(&'static str, Arc<Counter>)> = REFUSAL_SOURCES
            .iter()
            .map(|&s| (s, self.obs.counter_with("platform_refusals_total", &[("source", s)])))
            .collect();
        move |req, params| {
            let started = Instant::now();
            let trace_header = req.headers.get(H_TRACE_ID).map(str::to_string);
            // Defense layer wraps everything: the sybil detector sees
            // the request first and may refuse it (throttle window,
            // suspension) before faults or the handler run. A CAPTCHA
            // verdict lets the request through but stamps the solve
            // cost on whatever comes back — including fault-injected
            // responses, since a challenged session pays on every page.
            let verdict = platform.defense.observe(route, req, platform.clock.now_ms());
            let outcome = match verdict {
                Verdict::Suspend => "suspend",
                Verdict::Throttle { .. } => "throttle",
                Verdict::Challenge { .. } => "challenge",
                Verdict::Allow => "allow",
            };
            let resp = match verdict {
                Verdict::Suspend => {
                    if let Some(idx) = session_account_index(req) {
                        platform.accounts.force_suspend(idx);
                    }
                    Response::error(
                        Status::TOO_MANY_REQUESTS,
                        "account suspended for suspicious activity",
                    )
                    .header(H_ACCOUNT_SUSPENDED, "1")
                    .header(H_SUSPENDED, "1")
                }
                Verdict::Throttle { retry_after_secs } => {
                    Response::error(Status::TOO_MANY_REQUESTS, "temporarily throttled")
                        .header(H_RETRY_AFTER, retry_after_secs.to_string())
                        .header(H_THROTTLED, "1")
                }
                Verdict::Allow | Verdict::Challenge { .. } => {
                    // Fault layer wraps the application: pre-faults
                    // answer the request without running the handler
                    // (the account did nothing, so its budget is
                    // untouched); post-faults mangle the handler's
                    // response on the way out.
                    let resp = match faults.pre(req) {
                        Some(injected) => injected,
                        None => {
                            let resp = faults.post(req, f(req, params));
                            if route == "/message/:uid" {
                                platform
                                    .defense
                                    .observe_message_outcome(req, resp.status == Status::FORBIDDEN);
                            }
                            resp
                        }
                    };
                    match verdict {
                        Verdict::Challenge { delay_ms } => {
                            resp.header(H_CAPTCHA, delay_ms.to_string())
                        }
                        _ => resp,
                    }
                }
            };
            // Refusal provenance: classify the outgoing response by the
            // same taxonomy the crawler ledgers, so server-side counts
            // can be reconciled against client-side ones in forensics.
            let provenance = refusal_provenance(&resp);
            if let Some(src) = provenance {
                if let Some((_, c)) = refusals.iter().find(|(s, _)| *s == src) {
                    c.inc();
                }
            }
            // Serving span + trace-id echo, only for traced requests.
            let resp = match trace_header.as_deref().and_then(TraceCtx::parse) {
                Some(tc) => {
                    let tracer = platform.obs.tracer();
                    if tracer.is_enabled() {
                        // The platform never advances the virtual clock,
                        // so begin==end; both are deterministic reads.
                        let now = platform.clock.now_ms();
                        tracer.record(SpanRecord {
                            trace_id: tc.trace_id,
                            span_id: tc.span(SLOT_SERVER),
                            parent_id: tc.root_span(),
                            lane: tc.lane,
                            ordinal: tc.ordinal,
                            name: span_name.clone(),
                            begin_ms: now,
                            end_ms: now,
                            status: resp.status.code(),
                            outcome: outcome.to_string(),
                            provenance: provenance.unwrap_or("").to_string(),
                            captcha_ms: captcha_delay_ms(&resp).unwrap_or(0),
                        });
                    }
                    resp.header(H_TRACE_ID, trace_header.as_deref().unwrap_or(""))
                }
                None => resp,
            };
            m.observe(
                resp.status.code(),
                started.elapsed().as_micros() as u64,
                (req.target.len() + req.body.len()) as u64,
                resp.body.len() as u64,
            );
            resp
        }
    }

    /// Build the HTTP router over this platform.
    pub fn into_handler(self: &Arc<Self>) -> Arc<dyn Handler> {
        let mut router = Router::new();

        let p = Arc::clone(self);
        router.post("/signup", self.instrument("/signup", move |req, _| p.handle_signup(req)));
        let p = Arc::clone(self);
        router.post("/login", self.instrument("/login", move |req, _| p.handle_login(req)));
        let p = Arc::clone(self);
        router.get(
            "/find-friends",
            self.instrument("/find-friends", move |req, _| p.handle_find_friends(req)),
        );
        let p = Arc::clone(self);
        router.get(
            "/graph-search",
            self.instrument("/graph-search", move |req, _| p.handle_graph_search(req)),
        );
        let p = Arc::clone(self);
        router.get(
            "/profile/:uid",
            self.instrument("/profile/:uid", move |req, params| {
                p.handle_profile(req, params.get("uid"))
            }),
        );
        let p = Arc::clone(self);
        router.get(
            "/friends/:uid",
            self.instrument("/friends/:uid", move |req, params| {
                p.handle_friends(req, params.get("uid"))
            }),
        );
        let p = Arc::clone(self);
        router.post(
            "/message/:uid",
            self.instrument("/message/:uid", move |req, params| {
                p.handle_message(req, params.get("uid"))
            }),
        );
        let p = Arc::clone(self);
        router.get(
            "/circles/:uid",
            self.instrument("/circles/:uid", move |req, params| {
                p.handle_circles(req, params.get("uid"))
            }),
        );

        // Operator-facing admin routes: uninstrumented, session-free.
        let p = Arc::clone(self);
        router.get("/__metrics", move |_, _| p.handle_metrics());
        let p = Arc::clone(self);
        router.get("/__status", move |_, _| p.handle_status());
        let p = Arc::clone(self);
        router.get("/__trace", move |req, _| p.handle_trace(req));

        Arc::new(router)
    }

    // ---- admin (operator) endpoints ---------------------------------------

    /// `GET /__metrics`: the whole registry in Prometheus text format.
    fn handle_metrics(&self) -> Response {
        Response::text(self.obs.render_prometheus())
            .header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
    }

    /// `GET /__status`: operator dashboard JSON — uptime, per-route
    /// request/status/latency table, account and session tallies.
    fn handle_status(&self) -> Response {
        let routes: Vec<serde_json::Value> = ROUTES
            .iter()
            .map(|&route| {
                // register() re-resolves the shared handles; cheap, and
                // only paid on this cold admin path.
                let m = RouteMetrics::register(&self.obs, route);
                let [c2, c3, c4, c5] = m.class_counts();
                json!({
                    "route": route,
                    "requests": m.requests.get(),
                    "status": json!({ "2xx": c2, "3xx": c3, "4xx": c4, "5xx": c5 }),
                    "latency_us": json!({
                        "p50": m.latency_us.quantile(0.50),
                        "p95": m.latency_us.quantile(0.95),
                        "p99": m.latency_us.quantile(0.99),
                    }),
                    "request_bytes": m.request_bytes.get(),
                    "response_bytes": m.response_bytes.get(),
                })
            })
            .collect();
        // Detector tier + escalation-ladder occupancy, and the five-way
        // refusal-provenance counters (platform-side sources plus the
        // HTTP edge's limiter/shed tallies from the shared registry).
        let [t_none, t_captcha, t_throttle, t_suspend] = self.defense.ladder_occupancy();
        let ladder = json!({
            "none": t_none,
            "captcha": t_captcha,
            "throttle": t_throttle,
            "suspend": t_suspend,
        });
        let defense = json!({
            "strength": self.config.defense.strength.label(),
            "enabled": self.defense.enabled(),
            "sessions_observed": self.defense.sessions_observed(0),
            "sessions_flagged": self.defense.sessions_flagged(),
            "ladder": ladder,
        });
        let snap = self.obs.snapshot();
        let platform_refusal =
            |src: &str| snap.counter(&format!("platform_refusals_total{{source=\"{src}\"}}"));
        let refusals = json!({
            "edge": snap.counter("http_server_rate_limited_total"),
            "fault": platform_refusal("fault"),
            "throttle": platform_refusal("throttle"),
            "shed": snap.counter("http_server_shed_total{reason=\"queue_full\"}")
                + snap.counter("http_server_shed_total{reason=\"max_connections\"}"),
            "suspension": platform_refusal("suspension"),
        });
        let mutations = json!({
            "live": self.mutations.is_live(),
            "scheduled": self.mutations.event_count() as u64,
            "applied": self.mutations.applied_count() as u64,
            "state_digest": format!("{:016x}", self.mutations.state_digest()),
        });
        let body = json!({
            "uptime_ms": self.obs.uptime_ms(),
            "virtual_ms": self.clock.now_ms(),
            "routes": routes,
            "accounts": json!({
                "registered": self.accounts.account_count(),
                "sessions": self.accounts.session_count(),
                "suspended": self.accounts.suspended_count(),
            }),
            "defense": defense,
            "mutations": mutations,
            "refusals": refusals,
        });
        Response::text(serde_json::to_string_pretty(&body).unwrap_or_default())
            .header("Content-Type", "application/json")
    }

    /// `GET /__trace`: the flight recorder's view of recent activity —
    /// recorder state, canonical digest, per-route and per-provenance
    /// breakdowns, and a JSON tail of the most recent spans
    /// (`?n=<count>`, default 32). Uninstrumented and session-free,
    /// like the other operator endpoints.
    fn handle_trace(&self, req: &Request) -> Response {
        let tracer = self.obs.tracer();
        let tail: usize = req.query_param("n").and_then(|n| n.parse().ok()).unwrap_or(32);
        let spans = tracer.spans();
        let mut by_route: std::collections::BTreeMap<&str, u64> = Default::default();
        for s in &spans {
            if let Some(route) = s.name.strip_prefix("serve:") {
                *by_route.entry(route).or_default() += 1;
            }
        }
        let routes: Vec<serde_json::Value> = by_route
            .iter()
            .map(|(route, count)| json!({ "route": *route, "spans": *count }))
            .collect();
        let provenance: Vec<serde_json::Value> = tracer
            .provenance_counts()
            .iter()
            .map(|(src, count)| json!({ "source": src.as_str(), "refusals": *count }))
            .collect();
        let recent: Vec<serde_json::Value> = spans
            .iter()
            .rev()
            .take(tail)
            .rev()
            .filter_map(|s| serde_json::to_value(s).ok())
            .collect();
        let body = json!({
            "enabled": tracer.is_enabled(),
            "spans": spans.len() as u64,
            "dropped": tracer.dropped(),
            "digest": format!("{:016x}", tracer.digest()),
            "routes": routes,
            "provenance": provenance,
            "recent": recent,
        });
        Response::text(serde_json::to_string_pretty(&body).unwrap_or_default())
            .header("Content-Type", "application/json")
    }

    // ---- session plumbing -------------------------------------------------

    fn session_account(&self, req: &Request) -> Result<usize, Response> {
        let sid = request_cookie(req, "sid")
            .ok_or_else(|| Response::error(Status::UNAUTHORIZED, "login required"))?;
        let seq = req.headers.get(H_ATTEMPT_SEQ).and_then(|v| v.trim().parse::<u64>().ok());
        if self.faults.expire_session_now(req) {
            // In sequence mode the session is *not* evicted: a crash-
            // resumed crawler replaying an earlier seq with the same
            // sid must still authorize. The 401 itself replays
            // deterministically (the expiry draw is keyed by seq), so
            // the client re-logins at the same point either way.
            if seq.is_none() {
                self.accounts.expire_session(sid);
            }
            return Err(Response::error(Status::UNAUTHORIZED, "session expired")
                .header(H_SESSION_EXPIRED, "1"));
        }
        let suspended = || {
            Response::error(Status::TOO_MANY_REQUESTS, "account suspended for suspicious activity")
                .header(H_ACCOUNT_SUSPENDED, "1")
        };
        let (index, replayed) = self
            .accounts
            .authorize_replay_aware(
                sid,
                self.config.suspension_threshold,
                self.config.rate_max_in_window,
                self.config.rate_window_ms,
                self.clock.now_ms(),
                seq,
            )
            .map_err(|e| match e {
                AccountError::Suspended => suspended(),
                _ => Response::error(Status::UNAUTHORIZED, "login required"),
            })?;
        // Scripted escalation only fires on fresh requests; a replayed
        // seq reproduces its original verdict via `suspended_at_seq`.
        if !replayed && self.faults.should_force_suspend(index, self.accounts.request_count(index))
        {
            self.accounts.force_suspend_at(index, seq);
            return Err(suspended());
        }
        Ok(index)
    }

    fn parse_user(&self, raw: Option<&str>, net: &Network) -> Result<UserId, Response> {
        raw.and_then(UserId::parse)
            .filter(|u| u.index() < net.user_count())
            .ok_or_else(|| Response::error(Status::NOT_FOUND, "no such user"))
    }

    /// The world snapshot this request must be served from, or `None`
    /// when the world is frozen (the default) and handlers take their
    /// original byte-identical paths. Live requests are resolved at the
    /// seat clock they carry in `x-virtual-now-ms` — the parallel
    /// crawler's per-account timelines — falling back to the shared
    /// platform clock for sequential or header-less clients.
    fn live_world(&self, req: &Request) -> Option<Arc<WorldGen>> {
        if !self.mutations.is_live() {
            return None;
        }
        let now = req
            .headers
            .get(H_VIRTUAL_NOW)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| self.clock.now_ms());
        Some(self.mutations.world_at(now))
    }

    // ---- handlers -----------------------------------------------------------

    fn handle_signup(&self, req: &Request) -> Response {
        let user = req.form_param("user").unwrap_or_default();
        let pass = req.form_param("pass").unwrap_or_default();
        if user.is_empty() || pass.is_empty() {
            return Response::error(Status::BAD_REQUEST, "user and pass required");
        }
        match self.accounts.signup(&user, &pass) {
            Ok(_) => Response::text("account created"),
            Err(AccountError::UsernameTaken) => {
                Response::error(Status::BAD_REQUEST, "username taken")
            }
            Err(_) => Response::error(Status::INTERNAL_SERVER_ERROR, "signup failed"),
        }
    }

    fn handle_login(&self, req: &Request) -> Response {
        let user = req.form_param("user").unwrap_or_default();
        let pass = req.form_param("pass").unwrap_or_default();
        match self.accounts.login(&user, &pass) {
            Ok(sid) => Response::text("welcome").set_cookie("sid", &sid),
            Err(_) => Response::error(Status::UNAUTHORIZED, "bad credentials"),
        }
    }

    fn handle_find_friends(&self, req: &Request) -> Response {
        let account = match self.session_account(req) {
            Ok(a) => a,
            Err(resp) => return resp,
        };
        let Some(school) = req.query_param("school").as_deref().and_then(SchoolId::parse) else {
            return Response::error(Status::BAD_REQUEST, "school parameter required");
        };
        if school.index() >= self.network.schools().len() {
            return Response::error(Status::NOT_FOUND, "no such school");
        }
        let page: usize = req.query_param("page").and_then(|p| p.parse().ok()).unwrap_or(0);
        let live = self.live_world(req);
        let (net, search): (&Network, &SearchIndex) = match &live {
            Some(w) => (w.network.as_ref(), &w.search),
            None => (&self.network, &self.search),
        };
        let (ids, has_more) =
            search.page(net, self.policy.as_ref(), &self.config, school, account, page);
        let entries: Vec<(UserId, String)> =
            ids.into_iter().map(|u| (u, net.user(u).profile.full_name())).collect();
        let next = has_more.then(|| format!("/find-friends?school={school}&page={}", page + 1));
        match &live {
            Some(w) => Response::html(render::listing_page_stamped(
                "results",
                &entries,
                next,
                w.generation as u64,
            )),
            None => Response::html(render::listing_page("results", &entries, next)),
        }
    }

    fn handle_graph_search(&self, req: &Request) -> Response {
        let account = match self.session_account(req) {
            Ok(a) => a,
            Err(resp) => return resp,
        };
        let Some(school) = req.query_param("school").as_deref().and_then(SchoolId::parse) else {
            return Response::error(Status::BAD_REQUEST, "school parameter required");
        };
        if school.index() >= self.network.schools().len() {
            return Response::error(Status::NOT_FOUND, "no such school");
        }
        let current_only = req.query_param("current").as_deref() == Some("1");
        let city = req.query_param("city").as_deref().and_then(CityId::parse);
        let live = self.live_world(req);
        let (net, search): (&Network, &SearchIndex) = match &live {
            Some(w) => (w.network.as_ref(), &w.search),
            None => (&self.network, &self.search),
        };
        let ids = search.graph_search(
            net,
            self.policy.as_ref(),
            &self.config,
            school,
            account,
            current_only,
            city,
        );
        let entries: Vec<(UserId, String)> =
            ids.into_iter().map(|u| (u, net.user(u).profile.full_name())).collect();
        match &live {
            Some(w) => Response::html(render::listing_page_stamped(
                "results",
                &entries,
                None,
                w.generation as u64,
            )),
            None => Response::html(render::listing_page("results", &entries, None)),
        }
    }

    fn handle_profile(&self, req: &Request, uid: Option<&str>) -> Response {
        if let Err(resp) = self.session_account(req) {
            return resp;
        }
        let live = self.live_world(req);
        let net = live.as_ref().map(|w| w.network.as_ref()).unwrap_or(&self.network);
        let uid = match self.parse_user(uid, net) {
            Ok(u) => u,
            Err(resp) => return resp,
        };
        if let Some(w) = &live {
            // A tombstone is an answer, not an error: deactivated and
            // graduated-away users get a minimal marker page so the
            // crawler can degrade to a Completeness disclosure.
            if w.tombstoned(uid) {
                return Response::html(render::tombstone_page(uid, w.user_generation(uid)));
            }
            let view = self.policy.stranger_view(net, uid);
            return Response::html(render::profile_page_stamped(
                net,
                &view,
                w.user_generation(uid),
            ));
        }
        let view = self.policy.stranger_view(&self.network, uid);
        Response::html(render::profile_page(&self.network, &view))
    }

    fn handle_friends(&self, req: &Request, uid: Option<&str>) -> Response {
        if let Err(resp) = self.session_account(req) {
            return resp;
        }
        let live = self.live_world(req);
        let net = live.as_ref().map(|w| w.network.as_ref()).unwrap_or(&self.network);
        let uid = match self.parse_user(uid, net) {
            Ok(u) => u,
            Err(resp) => return resp,
        };
        if live.as_ref().is_some_and(|w| w.tombstoned(uid)) {
            // Same refusal as a hidden list: the tombstone's *profile*
            // page tells the crawler why.
            return Response::error(Status::FORBIDDEN, "friend list not visible");
        }
        let Some(friends) = self.policy.visible_friend_list(net, uid) else {
            return Response::error(Status::FORBIDDEN, "friend list not visible");
        };
        let page: usize = req.query_param("page").and_then(|p| p.parse().ok()).unwrap_or(0);
        let per = self.config.friends_page_size;
        let start = page.saturating_mul(per).min(friends.len());
        let end = (start + per).min(friends.len());
        let has_more = end < friends.len();
        let entries: Vec<(UserId, String)> =
            friends[start..end].iter().map(|&u| (u, net.user(u).profile.full_name())).collect();
        let next = has_more.then(|| format!("/friends/{uid}?page={}", page + 1));
        match &live {
            Some(w) => Response::html(render::listing_page_stamped(
                "friends",
                &entries,
                next,
                w.user_generation(uid),
            )),
            None => Response::html(render::listing_page("friends", &entries, next)),
        }
    }

    /// Google+ circles pages: `?dir=in` ("in your circles", outgoing) or
    /// `?dir=has` ("have you in circles", incoming). 404 on platforms
    /// without circles (the Facebook policy).
    fn handle_circles(&self, req: &Request, uid: Option<&str>) -> Response {
        if let Err(resp) = self.session_account(req) {
            return resp;
        }
        let uid = match self.parse_user(uid, &self.network) {
            Ok(u) => u,
            Err(resp) => return resp,
        };
        let incoming = match req.query_param("dir").as_deref() {
            Some("has") => true,
            Some("in") | None => false,
            Some(_) => return Response::error(Status::BAD_REQUEST, "dir must be in|has"),
        };
        let Some(list) = self.policy.visible_circles(&self.network, uid, incoming) else {
            return Response::error(Status::FORBIDDEN, "circles not visible");
        };
        let page: usize = req.query_param("page").and_then(|p| p.parse().ok()).unwrap_or(0);
        let per = self.config.friends_page_size;
        let start = page.saturating_mul(per).min(list.len());
        let end = (start + per).min(list.len());
        let has_more = end < list.len();
        let entries: Vec<(UserId, String)> = list[start..end]
            .iter()
            .map(|&u| (u, self.network.user(u).profile.full_name()))
            .collect();
        let dir = if incoming { "has" } else { "in" };
        let next = has_more.then(|| format!("/circles/{uid}?dir={dir}&page={}", page + 1));
        Response::html(render::listing_page("circles", &entries, next))
    }

    fn handle_message(&self, req: &Request, uid: Option<&str>) -> Response {
        if let Err(resp) = self.session_account(req) {
            return resp;
        }
        let live = self.live_world(req);
        let net = live.as_ref().map(|w| w.network.as_ref()).unwrap_or(&self.network);
        let uid = match self.parse_user(uid, net) {
            Ok(u) => u,
            Err(resp) => return resp,
        };
        if live.as_ref().is_some_and(|w| w.tombstoned(uid)) {
            return Response::error(Status::FORBIDDEN, "cannot message this user");
        }
        let view = self.policy.stranger_view(net, uid);
        if !view.message_button {
            return Response::error(Status::FORBIDDEN, "cannot message this user");
        }
        Response::text("message delivered")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_graph::Audience;
    use hsp_markup::{parse, select};
    use hsp_policy::FacebookPolicy;
    use hsp_synth::{generate, ScenarioConfig};

    fn tiny_platform() -> (Arc<Platform>, Arc<dyn Handler>, hsp_synth::Scenario) {
        let scenario = generate(&ScenarioConfig::tiny());
        let net = Arc::new(scenario.network.clone());
        let platform =
            Platform::new(net, Arc::new(FacebookPolicy::new()), PlatformConfig::default());
        let handler = platform.into_handler();
        (platform, handler, scenario)
    }

    fn login(handler: &Arc<dyn Handler>, name: &str) -> String {
        let r = handler.handle(&Request::post_form("/signup", &[("user", name), ("pass", "x")]));
        assert_eq!(r.status, Status::OK);
        let r = handler.handle(&Request::post_form("/login", &[("user", name), ("pass", "x")]));
        assert_eq!(r.status, Status::OK);
        let cookie = r.headers.get("set-cookie").unwrap();
        cookie.split(';').next().unwrap().to_string()
    }

    #[test]
    fn endpoints_require_login() {
        let (_p, handler, s) = tiny_platform();
        for path in [
            format!("/find-friends?school={}", s.school),
            "/profile/u0".to_string(),
            "/friends/u0".to_string(),
        ] {
            let r = handler.handle(&Request::get(path));
            assert_eq!(r.status, Status::UNAUTHORIZED);
        }
    }

    #[test]
    fn search_returns_profile_links_and_never_minors() {
        let (_p, handler, s) = tiny_platform();
        let cookie = login(&handler, "spy");
        let mut page = 0;
        let mut found = 0;
        loop {
            let r = handler.handle(
                &Request::get(format!("/find-friends?school={}&page={page}", s.school))
                    .header("Cookie", &cookie),
            );
            assert_eq!(r.status, Status::OK);
            let dom = parse(&r.body_string());
            for a in select(&dom, "#results a.profile-link") {
                let uid =
                    UserId::parse(a.get_attr("href").unwrap().strip_prefix("/profile/").unwrap())
                        .unwrap();
                assert!(
                    !s.network.user(uid).is_registered_minor(s.network.today),
                    "search returned a registered minor"
                );
                found += 1;
            }
            if hsp_markup::select_first(&dom, "#next-page").is_none() {
                break;
            }
            page += 1;
        }
        assert!(found > 0, "search returned nothing");
    }

    #[test]
    fn profile_page_is_minimal_for_registered_minors() {
        let (_p, handler, s) = tiny_platform();
        let cookie = login(&handler, "spy");
        let minor = s.registered_minor_students()[0];
        let r =
            handler.handle(&Request::get(format!("/profile/{minor}")).header("Cookie", &cookie));
        let dom = parse(&r.body_string());
        assert!(select(&dom, ".edu").is_empty());
        assert!(select(&dom, ".friends-link").is_empty());
        assert!(select(&dom, ".message-button").is_empty());
        assert!(!select(&dom, "h1.name").is_empty());
    }

    #[test]
    fn friends_pages_paginate_and_respect_privacy() {
        let (_p, handler, s) = tiny_platform();
        let cookie = login(&handler, "spy");
        // Find a user with a public friend list and lots of friends.
        let open = s
            .network
            .user_ids()
            .filter(|&u| {
                !s.network.user(u).is_registered_minor(s.network.today)
                    && s.network.user(u).privacy.friend_list == Audience::Public
            })
            .max_by_key(|&u| s.network.friends(u).len())
            .unwrap();
        let total = s.network.friends(open).len();
        assert!(total > 20, "need a paginating example");
        let mut seen = Vec::new();
        let mut page = 0;
        loop {
            let r = handler.handle(
                &Request::get(format!("/friends/{open}?page={page}")).header("Cookie", &cookie),
            );
            assert_eq!(r.status, Status::OK);
            let dom = parse(&r.body_string());
            let links = select(&dom, "#friends a.profile-link");
            assert!(links.len() <= 20);
            seen.extend(links.iter().map(|a| {
                UserId::parse(a.get_attr("href").unwrap().strip_prefix("/profile/").unwrap())
                    .unwrap()
            }));
            if hsp_markup::select_first(&dom, "#next-page").is_none() {
                break;
            }
            page += 1;
        }
        assert_eq!(seen.len(), total);
        // A hidden-list user is forbidden.
        let hidden = s
            .network
            .user_ids()
            .find(|&u| s.network.user(u).privacy.friend_list != Audience::Public)
            .unwrap();
        let r =
            handler.handle(&Request::get(format!("/friends/{hidden}")).header("Cookie", &cookie));
        assert_eq!(r.status, Status::FORBIDDEN);
    }

    #[test]
    fn different_accounts_see_different_search_samples() {
        // Use HS-sized pool so caps bite: tiny() pool may be below cap.
        let (platform, handler, s) = tiny_platform();
        let c1 = login(&handler, "spy1");
        let c2 = login(&handler, "spy2");
        let get_first_page = |cookie: &str| {
            let r = handler.handle(
                &Request::get(format!("/find-friends?school={}", s.school))
                    .header("Cookie", cookie),
            );
            let dom = parse(&r.body_string());
            select(&dom, "#results a.profile-link")
                .iter()
                .map(|a| a.get_attr("href").unwrap().to_string())
                .collect::<Vec<_>>()
        };
        let p1 = get_first_page(&c1);
        let p2 = get_first_page(&c2);
        assert_ne!(p1, p2, "accounts should see different orderings");
        let _ = platform;
    }

    #[test]
    fn suspension_kicks_in() {
        let scenario = generate(&ScenarioConfig::tiny());
        let net = Arc::new(scenario.network.clone());
        let platform = Platform::new(
            net,
            Arc::new(FacebookPolicy::new()),
            PlatformConfig { suspension_threshold: 3, ..PlatformConfig::default() },
        );
        let handler = platform.into_handler();
        let cookie = login(&handler, "greedy");
        for _ in 0..3 {
            let r = handler.handle(&Request::get("/profile/u0").header("Cookie", &cookie));
            assert_eq!(r.status, Status::OK);
        }
        let r = handler.handle(&Request::get("/profile/u0").header("Cookie", &cookie));
        assert_eq!(r.status, Status::TOO_MANY_REQUESTS);
    }

    #[test]
    fn virtual_time_rate_limit_spares_polite_crawlers() {
        let make = || {
            let scenario = generate(&ScenarioConfig::tiny());
            let net = Arc::new(scenario.network.clone());
            let platform = Platform::new(
                net,
                Arc::new(FacebookPolicy::new()),
                PlatformConfig {
                    rate_max_in_window: 5,
                    rate_window_ms: 60_000,
                    ..PlatformConfig::default()
                },
            );
            let handler = platform.into_handler();
            (platform, handler)
        };

        // Impolite: hammers without ever advancing virtual time.
        let (_p, handler) = make();
        let cookie = login(&handler, "rude");
        let mut served = 0;
        for _ in 0..20 {
            let r = handler.handle(&Request::get("/profile/u0").header("Cookie", &cookie));
            if r.status == Status::TOO_MANY_REQUESTS {
                assert_eq!(r.headers.get("x-account-suspended"), Some("1"));
                break;
            }
            served += 1;
        }
        assert_eq!(served, 5, "6th same-instant request must suspend");

        // Polite: same budget, but sleeps 30 virtual seconds between
        // requests — never comes close to 5-per-minute.
        let (platform, handler) = make();
        let cookie = login(&handler, "sleepy");
        for _ in 0..20 {
            let r = handler.handle(&Request::get("/profile/u0").header("Cookie", &cookie));
            assert_eq!(r.status, Status::OK);
            platform.clock.advance_ms(30_000);
        }
        assert_eq!(platform.accounts.suspended_count(), 0);
    }

    #[test]
    fn admin_endpoints_report_without_touching_effort() {
        let (platform, handler, _s) = tiny_platform();
        let cookie = login(&handler, "spy");
        let r = handler.handle(&Request::get("/profile/u0").header("Cookie", &cookie));
        assert_eq!(r.status, Status::OK);
        let served = platform.accounts.request_count(0);

        let m = handler.handle(&Request::get("/__metrics"));
        assert_eq!(m.status, Status::OK);
        let text = m.body_string();
        assert!(
            text.contains("http_route_requests_total{route=\"/profile/:uid\"} 1"),
            "missing profile counter in:\n{text}"
        );

        let st = handler.handle(&Request::get("/__status"));
        assert_eq!(st.status, Status::OK);
        let v: serde_json::Value = serde_json::from_str(&st.body_string()).unwrap();
        assert!(v.get("uptime_ms").is_some());
        let routes = v.get("routes").and_then(|r| r.as_array()).unwrap();
        assert_eq!(routes.len(), ROUTES.len());
        assert_eq!(
            v.get("accounts").and_then(|a| a.get("registered")).and_then(|n| n.as_u64()),
            Some(1)
        );

        // Admin traffic is free: no request-counter (suspension/effort)
        // movement, and no per-route metric for the admin paths.
        assert_eq!(platform.accounts.request_count(0), served);
        let text = handler.handle(&Request::get("/__metrics")).body_string();
        assert!(!text.contains("route=\"/__metrics\""), "admin route was instrumented");
    }

    #[test]
    fn traced_requests_produce_serving_spans_and_trace_endpoint_reports() {
        let (platform, handler, _s) = tiny_platform();
        platform.obs.enable_tracing(64);
        let cookie = login(&handler, "spy");

        let ctx = hsp_obs::TraceCtx::derive(hsp_obs::TRACE_SEED, 4, 7);
        let r = handler.handle(
            &Request::get("/profile/u0")
                .header("Cookie", &cookie)
                .header(H_TRACE_ID, ctx.header_value()),
        );
        assert_eq!(r.status, Status::OK);
        // The trace id is echoed so clients can stitch both sides.
        assert_eq!(r.headers.get(H_TRACE_ID), Some(ctx.header_value().as_str()));

        // Untraced requests record nothing.
        let r = handler.handle(&Request::get("/profile/u0").header("Cookie", &cookie));
        assert_eq!(r.status, Status::OK);

        let spans = platform.obs.tracer().spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "serve:/profile/:uid");
        assert_eq!(spans[0].lane, 4);
        assert_eq!(spans[0].ordinal, 7);
        assert_eq!(spans[0].span_id, ctx.span(hsp_obs::trace::SLOT_SERVER));
        assert_eq!(spans[0].parent_id, ctx.root_span());
        assert_eq!(spans[0].outcome, "allow");
        assert_eq!(spans[0].provenance, "");

        let t = handler.handle(&Request::get("/__trace?n=8"));
        assert_eq!(t.status, Status::OK);
        let v: serde_json::Value = serde_json::from_str(&t.body_string()).unwrap();
        assert_eq!(v.get("enabled").and_then(|b| b.as_bool()), Some(true));
        assert_eq!(v.get("spans").and_then(|n| n.as_u64()), Some(1));
        assert_eq!(v.get("dropped").and_then(|n| n.as_u64()), Some(0));
        let recent = v.get("recent").and_then(|r| r.as_array()).unwrap();
        assert_eq!(recent.len(), 1);
        let routes = v.get("routes").and_then(|r| r.as_array()).unwrap();
        assert_eq!(routes[0].get("route").and_then(|s| s.as_str()), Some("/profile/:uid"));

        // /__status carries the detector tier, ladder occupancy and the
        // five refusal-provenance counters (all zero in this quiet run).
        let st = handler.handle(&Request::get("/__status"));
        let v: serde_json::Value = serde_json::from_str(&st.body_string()).unwrap();
        let defense = v.get("defense").unwrap();
        assert_eq!(defense.get("strength").and_then(|s| s.as_str()), Some("off"));
        assert_eq!(defense.get("enabled").and_then(|b| b.as_bool()), Some(false));
        let ladder = defense.get("ladder").unwrap();
        for rung in ["none", "captcha", "throttle", "suspend"] {
            assert!(ladder.get(rung).and_then(|n| n.as_u64()).is_some(), "missing rung {rung}");
        }
        let refusals = v.get("refusals").unwrap();
        for src in REFUSAL_SOURCES {
            assert_eq!(refusals.get(src).and_then(|n| n.as_u64()), Some(0), "source {src}");
        }
    }

    #[test]
    fn suspension_refusals_are_counted_by_provenance() {
        let scenario = generate(&ScenarioConfig::tiny());
        let net = Arc::new(scenario.network.clone());
        let platform = Platform::new(
            net,
            Arc::new(FacebookPolicy::new()),
            PlatformConfig { suspension_threshold: 2, ..PlatformConfig::default() },
        );
        let handler = platform.into_handler();
        let cookie = login(&handler, "greedy");
        for _ in 0..2 {
            assert_eq!(
                handler.handle(&Request::get("/profile/u0").header("Cookie", &cookie)).status,
                Status::OK
            );
        }
        let r = handler.handle(&Request::get("/profile/u0").header("Cookie", &cookie));
        assert_eq!(r.status, Status::TOO_MANY_REQUESTS);
        let snap = platform.obs.snapshot();
        assert_eq!(snap.counter("platform_refusals_total{source=\"suspension\"}"), 1);
        assert_eq!(snap.counter("platform_refusals_total{source=\"fault\"}"), 0);
    }

    #[test]
    fn live_world_serves_as_of_time_and_zero_rate_is_byte_identical() {
        use crate::mutations::MutationPlan;
        let scenario = generate(&ScenarioConfig::tiny());
        let net = Arc::new(scenario.network.clone());
        let make = |mutations: MutationPlan| {
            let platform = Platform::new(
                Arc::clone(&net),
                Arc::new(FacebookPolicy::new()),
                PlatformConfig { mutations, ..PlatformConfig::default() },
            );
            let handler = platform.into_handler();
            (platform, handler)
        };

        // Zero-rate: pages are byte-identical to the frozen platform's.
        let (_fp, frozen) = make(MutationPlan::none());
        let (_zp, zeroed) = make(MutationPlan::lively().scaled(0.0));
        let cf = login(&frozen, "spy");
        let cz = login(&zeroed, "spy");
        for path in ["/profile/u0", &format!("/find-friends?school={}", scenario.school)] {
            let a = frozen.handle(&Request::get(path).header("Cookie", &cf));
            let b = zeroed.handle(&Request::get(path).header("Cookie", &cz));
            assert_eq!(a.body, b.body, "zero-rate page differs for {path}");
            assert!(!a.body_string().contains("data-gen"), "frozen page is stamped");
        }

        // Live: rollover at t=1000 tombstones the seniors; requests are
        // served as-of the time they carry.
        let senior_year = scenario.network.senior_class_year();
        let senior = scenario.network.roster_for_class(scenario.school, senior_year)[0];
        let plan =
            MutationPlan { enabled: true, rollover_at_ms: vec![1_000], ..MutationPlan::none() };
        let (_lp, live) = make(plan);
        let cl = login(&live, "spy");
        let before = live.handle(
            &Request::get(format!("/profile/{senior}"))
                .header("Cookie", &cl)
                .header(H_VIRTUAL_NOW, "999"),
        );
        assert_eq!(before.status, Status::OK);
        let dom = parse(&before.body_string());
        let root = hsp_markup::select_first(&dom, "#profile").unwrap();
        assert_eq!(root.get_attr("data-gen"), Some("0"));
        assert_eq!(root.get_attr("data-tombstone"), None);
        let after = live.handle(
            &Request::get(format!("/profile/{senior}"))
                .header("Cookie", &cl)
                .header(H_VIRTUAL_NOW, "1000"),
        );
        assert_eq!(after.status, Status::OK, "tombstone is an answer, not an error");
        let dom = parse(&after.body_string());
        let root = hsp_markup::select_first(&dom, "#profile").unwrap();
        assert_eq!(root.get_attr("data-tombstone"), Some("1"));
        let friends = live.handle(
            &Request::get(format!("/friends/{senior}"))
                .header("Cookie", &cl)
                .header(H_VIRTUAL_NOW, "1000"),
        );
        assert_eq!(friends.status, Status::FORBIDDEN);
    }

    #[test]
    fn message_endpoint_respects_policy() {
        let (_p, handler, s) = tiny_platform();
        let cookie = login(&handler, "spy");
        let today = s.network.today;
        let open_adult = s
            .network
            .user_ids()
            .find(|&u| {
                !s.network.user(u).is_registered_minor(today)
                    && s.network.user(u).privacy.message_button == Audience::Public
            })
            .unwrap();
        let minor = s.registered_minor_students()[0];
        let r = handler.handle(
            &Request::post_form(format!("/message/{open_adult}"), &[("body", "hi")])
                .header("Cookie", &cookie),
        );
        assert_eq!(r.status, Status::OK);
        let r = handler.handle(
            &Request::post_form(format!("/message/{minor}"), &[("body", "hi")])
                .header("Cookie", &cookie),
        );
        assert_eq!(r.status, Status::FORBIDDEN);
    }

    #[test]
    fn graph_search_current_filter() {
        let (_p, handler, s) = tiny_platform();
        let cookie = login(&handler, "spy");
        let r = handler.handle(
            &Request::get(format!("/graph-search?school={}&current=1", s.school))
                .header("Cookie", &cookie),
        );
        assert_eq!(r.status, Status::OK);
        let dom = parse(&r.body_string());
        let senior = s.network.senior_class_year();
        for a in select(&dom, "#results a.profile-link") {
            let uid = UserId::parse(a.get_attr("href").unwrap().strip_prefix("/profile/").unwrap())
                .unwrap();
            // Every hit publicly claims current attendance.
            let view = hsp_policy::FacebookPolicy::new().stranger_view(&s.network, uid);
            assert!(view
                .education
                .iter()
                .any(|e| e.school == s.school && e.grad_year.is_some_and(|g| g >= senior)));
        }
    }
}
