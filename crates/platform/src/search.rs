//! The Find-Friends portal and graph-search endpoints.
//!
//! Search is the attacker's entry point. Faithful to §3.1:
//!
//! - results never include registered minors (the policy decides);
//! - one account only ever sees a capped, account-specific sample of the
//!   associated users ("The stranger can also attempt to obtain
//!   additional users by creating additional fake accounts");
//! - results arrive in AJAX pages.

use crate::config::PlatformConfig;
use hsp_graph::{Network, SchoolId, UserId};
use hsp_policy::Policy;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Caches the searchable pool per school and serves per-account pages.
pub struct SearchIndex {
    pools: Mutex<HashMap<SchoolId, Vec<UserId>>>,
}

impl SearchIndex {
    pub fn new() -> Self {
        SearchIndex { pools: Mutex::new(HashMap::new()) }
    }

    /// All users the policy lets a stranger find for `school`, in id
    /// order (cached).
    ///
    /// On a sealed network the candidate set shrinks from the whole
    /// population to the per-school lister index (every policy's search
    /// rule requires a stranger-visible profile tie to the school), with
    /// the seal-time public-search bit as a first cheap cut — the
    /// difference between a metro-scale city (dozens of schools over a
    /// million users) and a single-school world is a few thousand
    /// candidates per school either way.
    fn pool(&self, net: &Network, policy: &dyn Policy, school: SchoolId) -> Vec<UserId> {
        let mut pools = self.pools.lock();
        pools
            .entry(school)
            .or_insert_with(|| match (net.school_listers(school), net.sealed_columns()) {
                (Some(listers), cols) => listers
                    .iter()
                    .copied()
                    .filter(|&u| cols.is_none_or(|c| c.public_search(u)))
                    .filter(|&u| policy.searchable_by_school(net, u, school))
                    .collect(),
                (None, _) => net
                    .user_ids()
                    .filter(|&u| policy.searchable_by_school(net, u, school))
                    .collect(),
            })
            .clone()
    }

    /// The account-specific result list.
    ///
    /// Modelled on what the paper's attacker observed: each fake account
    /// sees a *different, capped, largely non-overlapping* slice of the
    /// users associated with the school (their HS2 crawl collected 1,559
    /// distinct seeds from 4×400-capped result sets — nearly disjoint).
    /// We model the portal as serving shards of a globally (per-school)
    /// shuffled result space: account `i` receives shard `i mod G`,
    /// where `G = max(1, pool/cap)`, ordered by an account-keyed
    /// shuffle. Small pools (G = 1) are served whole to every account,
    /// which is what the paper saw at the small HS1.
    pub fn results_for_account(
        &self,
        net: &Network,
        policy: &dyn Policy,
        config: &PlatformConfig,
        school: SchoolId,
        account_index: usize,
    ) -> Vec<UserId> {
        let mut pool = self.pool(net, policy, school);
        // Global, account-independent shard layout.
        deterministic_shuffle(&mut pool, hash2(0x61_0b_a1, school.0 as u64));
        let cap = config.search_cap_per_account;
        let shards = (pool.len() / cap).max(1);
        let shard = account_index % shards;
        let start = shard * cap;
        let end = (start + cap).min(pool.len());
        let mut slice = pool[start.min(pool.len())..end].to_vec();
        // Present each account its shard in its own order.
        deterministic_shuffle(&mut slice, hash2(account_index as u64, school.0 as u64));
        slice
    }

    /// One page of results. Returns the entries and whether more pages
    /// remain.
    pub fn page(
        &self,
        net: &Network,
        policy: &dyn Policy,
        config: &PlatformConfig,
        school: SchoolId,
        account_index: usize,
        page: usize,
    ) -> (Vec<UserId>, bool) {
        let results = self.results_for_account(net, policy, config, school, account_index);
        let start = page.saturating_mul(config.search_page_size).min(results.len());
        let end = (start + config.search_page_size).min(results.len());
        let has_more = end < results.len();
        (results[start..end].to_vec(), has_more)
    }

    /// Graph-search refinement ("current students at HS1 who live in
    /// city1", §3.1): the same pool filtered by extra predicates, still
    /// excluding registered minors by construction.
    #[allow(clippy::too_many_arguments)]
    pub fn graph_search(
        &self,
        net: &Network,
        policy: &dyn Policy,
        config: &PlatformConfig,
        school: SchoolId,
        account_index: usize,
        current_only: bool,
        city: Option<hsp_graph::CityId>,
    ) -> Vec<UserId> {
        let senior = net.senior_class_year();
        self.results_for_account(net, policy, config, school, account_index)
            .into_iter()
            .filter(|&u| {
                let view = policy.stranger_view(net, u);
                if current_only
                    && !view
                        .education
                        .iter()
                        .any(|e| e.school == school && e.grad_year.is_some_and(|g| g >= senior))
                {
                    return false;
                }
                if let Some(city) = city {
                    if view.current_city != Some(city) {
                        return false;
                    }
                }
                true
            })
            .collect()
    }
}

impl Default for SearchIndex {
    fn default() -> Self {
        Self::new()
    }
}

/// SplitMix64 step.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hash2(a: u64, b: u64) -> u64 {
    let mut s = a.wrapping_mul(0x517c_c1b7_2722_0a95) ^ b;
    splitmix(&mut s)
}

/// Fisher–Yates with a splitmix stream — deterministic, independent of
/// the `rand` crate's version-specific streams.
fn deterministic_shuffle(items: &mut [UserId], seed: u64) {
    let mut state = seed;
    for i in (1..items.len()).rev() {
        let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_deterministic_and_a_permutation() {
        let base: Vec<UserId> = (0..50).map(UserId).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        deterministic_shuffle(&mut a, 42);
        deterministic_shuffle(&mut b, 42);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted, base);
        let mut c = base.clone();
        deterministic_shuffle(&mut c, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn hash2_varies_in_both_arguments() {
        assert_ne!(hash2(1, 2), hash2(2, 1));
        assert_ne!(hash2(1, 2), hash2(1, 3));
    }
}
