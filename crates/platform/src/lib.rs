//! # hsp-platform — the simulated OSN service
//!
//! A Facebook-like service over the synthetic social graph, faithful to
//! the stranger-facing surfaces the paper's attack uses (§3–§4):
//!
//! - **Find-Friends portal** and **graph search** that never return
//!   registered minors, serve AJAX-style pages, and cap/diversify
//!   results per account (hence the attacker's multiple fake accounts);
//! - **profile pages** rendered as HTML through the policy engine
//!   (registered minors are hard-capped to minimal information);
//! - **friend-list pages** at 20 friends per request (Facebook's
//!   p = 20, §4.5), honouring the reverse-lookup countermeasure switch;
//! - **signup/login** with session cookies (ages are self-asserted and
//!   unverified — the enabling condition of the whole study);
//! - an **anti-crawling suspension rule** (§4.5's motivation for
//!   measuring the attack's request budget).
//!
//! The same `Platform` value can be mounted on the real HTTP server
//! (`hsp_http::Server`) or called in-process via `DirectExchange`.

pub mod accounts;
pub mod app;
pub mod config;
pub mod faults;
pub mod mutations;
pub mod render;
pub mod search;

pub use accounts::{AccountError, Accounts};
pub use app::{Platform, ROUTES};
pub use config::PlatformConfig;
pub use faults::{FaultEngine, FaultPlan};
pub use hsp_defense::{DefenseConfig, DetectorStrength, SybilDetector};
pub use mutations::{MutationEngine, MutationEvent, MutationPlan, WorldGen};
