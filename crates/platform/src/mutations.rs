//! Deterministic virtual-time mutation engine — the "live world".
//!
//! Every experiment before this module crawled a frozen graph. The
//! paper's real threat is continuous monitoring of a population that
//! keeps moving (§2, §8): users sign up, friend and defriend, flip
//! privacy settings, deactivate, and graduate out of the school at the
//! year boundary. A [`MutationPlan`] declares per-mille probabilities
//! per virtual-time tick for each mutation class; a [`MutationEngine`]
//! expands the plan into an immutable event schedule at construction
//! using the same SplitMix64 keying discipline as `FaultEngine`
//! (`splitmix64(seed ⊕ key-mix ⊕ tick-mix)`), so the schedule is a pure
//! function of `(seed, plan, base network)` — never of request arrival
//! order or thread interleaving.
//!
//! Serving is *as-of-time*: a request carries its seat clock in
//! `x-virtual-now-ms` (falling back to the platform clock), the engine
//! resolves it to a **generation** (the number of scheduled events at or
//! before that instant) and serves a memoized snapshot of the world at
//! that generation. Because each crawler account's request stream and
//! per-seat clock are deterministic, the page any request sees — and the
//! engine's [`state digest`](MutationEngine::state_digest) — replay
//! bit-identically at any worker count.
//!
//! A plan with no enabled rates (or `enabled: false`) produces an empty
//! schedule: [`MutationEngine::is_live`] is `false`, the platform
//! handlers bypass the engine entirely, and a mutation-rate-zero run is
//! byte-identical to the frozen-world baseline.

use crate::search::SearchIndex;
use hsp_graph::{
    Date, Gender, Network, PrivacySettings, ProfileContent, Registration, Role, User, UserId,
};
use hsp_obs::trace::{SpanRecord, SLOT_MUTATION};
use hsp_obs::{Registry, TraceCtx, TRACE_SEED};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Trace lane reserved for world mutations (no account ever hashes to
/// it: account lanes are FNV-1a of a username). `TraceCtx::derive`
/// mixes lanes with wrapping arithmetic, so the all-ones lane is safe.
pub const WORLD_LANE: u64 = u64::MAX;

/// Maximum memoized world snapshots (generation 0 is always retained).
/// Eviction only trades CPU for memory: a world is a pure function of
/// its generation, so rebuilding an evicted one changes nothing.
const MAX_CACHED_WORLDS: usize = 16;

/// Declarative churn schedule. Probabilities are per-mille (0–1000) per
/// `tick_ms` of virtual time; `0` disables that mutation class. The
/// all-zero [`Default`] plan schedules nothing, so ordinary experiments
/// are untouched.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MutationPlan {
    /// Master switch; `false` short-circuits schedule expansion.
    pub enabled: bool,
    /// Seed of the mutation RNG streams.
    pub seed: u64,
    /// Width of one scheduling tick, in virtual milliseconds.
    pub tick_ms: u64,
    /// How far into virtual time the schedule extends. Requests beyond
    /// the horizon see the final generation.
    pub horizon_ms: u64,
    /// A new (adult, unaffiliated) account signs up.
    pub signup_per_mille: u32,
    /// Two existing users friend each other.
    pub friend_per_mille: u32,
    /// An existing user drops one friend.
    pub defriend_per_mille: u32,
    /// A user flips their privacy settings (locked ↔ wide open).
    pub privacy_flip_per_mille: u32,
    /// A user deactivates: profile tombstoned, settings locked,
    /// withdrawn from search.
    pub deactivate_per_mille: u32,
    /// School-year boundaries, in virtual ms: at each instant every
    /// current senior graduates to `Alumnus` and their profile is
    /// tombstoned ("moved away" from the attacker's viewpoint).
    pub rollover_at_ms: Vec<u64>,
}

impl Default for MutationPlan {
    fn default() -> MutationPlan {
        MutationPlan {
            enabled: false,
            seed: 0x11FE_2013,
            tick_ms: 2_000,
            horizon_ms: 0,
            signup_per_mille: 0,
            friend_per_mille: 0,
            defriend_per_mille: 0,
            privacy_flip_per_mille: 0,
            deactivate_per_mille: 0,
            rollover_at_ms: Vec::new(),
        }
    }
}

impl MutationPlan {
    /// The explicit frozen-world plan (same as [`Default`]).
    pub fn none() -> MutationPlan {
        MutationPlan::default()
    }

    /// The canonical live profile used by the freshness experiment and
    /// soak scripts: steady friending/defriending churn, occasional
    /// privacy flips and deactivations, a trickle of signups, and one
    /// graduation rollover an hour in.
    pub fn lively() -> MutationPlan {
        MutationPlan {
            enabled: true,
            horizon_ms: 7_200_000,
            signup_per_mille: 5,
            friend_per_mille: 40,
            defriend_per_mille: 20,
            privacy_flip_per_mille: 25,
            deactivate_per_mille: 8,
            rollover_at_ms: vec![3_600_000],
            ..MutationPlan::default()
        }
    }

    /// Scale every probabilistic mutation class by `factor` (1.0 =
    /// as-is), clamped to valid per-mille. `0.0` yields a plan whose
    /// engine is not live (empty schedule) when no rollovers are set.
    pub fn scaled(&self, factor: f64) -> MutationPlan {
        let scale = |pm: u32| ((pm as f64 * factor).round() as u32).min(1_000);
        MutationPlan {
            signup_per_mille: scale(self.signup_per_mille),
            friend_per_mille: scale(self.friend_per_mille),
            defriend_per_mille: scale(self.defriend_per_mille),
            privacy_flip_per_mille: scale(self.privacy_flip_per_mille),
            deactivate_per_mille: scale(self.deactivate_per_mille),
            rollover_at_ms: if factor == 0.0 { Vec::new() } else { self.rollover_at_ms.clone() },
            ..self.clone()
        }
    }
}

/// One scheduled world change. User-valued payloads are raw draws,
/// resolved against the world *at application time* (`draw % user_count`
/// etc.) — application order is fixed, so resolution is deterministic
/// even though signups grow the id space mid-schedule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum MutationEvent {
    /// A brand-new adult resident account (the `n`-th signup).
    Signup { n: u64 },
    /// Friend `a % count` with `b % count` (no-op on self/duplicate).
    Friend { a: u64, b: u64 },
    /// Remove friend `k % degree` of user `u % count` (no-op if lonely).
    Defriend { u: u64, k: u64 },
    /// Re-set user `u % count`'s privacy: locked down or wide open.
    PrivacyFlip { u: u64, lock: bool },
    /// Tombstone user `u % count` and withdraw them from search.
    Deactivate { u: u64 },
    /// Graduate every current senior to `Alumnus` + tombstone.
    Rollover,
}

impl MutationEvent {
    /// Metric/span label for this event class.
    pub fn kind(&self) -> &'static str {
        match self {
            MutationEvent::Signup { .. } => "signup",
            MutationEvent::Friend { .. } => "friend",
            MutationEvent::Defriend { .. } => "defriend",
            MutationEvent::PrivacyFlip { .. } => "privacy_flip",
            MutationEvent::Deactivate { .. } => "deactivate",
            MutationEvent::Rollover => "rollover",
        }
    }
}

/// An immutable snapshot of the world after the first `generation`
/// scheduled events. Each snapshot owns its own [`SearchIndex`], so
/// search pools always reflect this generation's graph and privacy.
pub struct WorldGen {
    pub generation: usize,
    pub network: Arc<Network>,
    pub search: SearchIndex,
    tombstones: BTreeSet<UserId>,
    /// Per-user mutation-touch counts — the `data-gen` staleness stamp
    /// the platform renders and the crawler cross-checks.
    user_gen: HashMap<UserId, u64>,
}

impl WorldGen {
    /// Whether `u` is deactivated or graduated away in this world.
    pub fn tombstoned(&self, u: UserId) -> bool {
        self.tombstones.contains(&u)
    }

    /// The staleness stamp for `u`: how many events have touched them.
    pub fn user_generation(&self, u: UserId) -> u64 {
        self.user_gen.get(&u).copied().unwrap_or(0)
    }

    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }
}

/// Mutable engine bookkeeping, all behind one lock: memoized worlds,
/// the first-application watermark (events below it have been counted,
/// digested and span-recorded exactly once), and per-generation serve
/// tallies.
struct EngineState {
    worlds: BTreeMap<usize, Arc<WorldGen>>,
    applied_watermark: usize,
    events_digest: u64,
    serves: BTreeMap<usize, u64>,
}

/// Expands a [`MutationPlan`] into a fixed schedule and serves memoized
/// per-generation world snapshots. See the module docs for the
/// determinism argument.
pub struct MutationEngine {
    plan: MutationPlan,
    schedule: Vec<(u64, MutationEvent)>,
    state: Mutex<EngineState>,
    obs: Arc<Registry>,
}

/// SplitMix64 finalizer (same mixing function as `FaultEngine`).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The `n`-th draw of the `key`-keyed stream — identical shape to
/// `FaultEngine::draw`, but counter-free: the tick index *is* the
/// counter, which is what makes the whole schedule precomputable.
fn stream_draw(seed: u64, key: u64, n: u64) -> u64 {
    splitmix64(seed ^ splitmix64(key) ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Fold `bytes` into an FNV-1a accumulator.
fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const KEY_SIGNUP: u64 = 1;
const KEY_FRIEND: u64 = 2;
const KEY_DEFRIEND: u64 = 3;
const KEY_PRIVACY: u64 = 4;
const KEY_DEACTIVATE: u64 = 5;

/// Expand the plan into a time-sorted event list. Events within one
/// tick land in fixed class order (signup, friend, defriend, flip,
/// deactivate); rollovers merge in by time, after same-instant ticks.
fn build_schedule(plan: &MutationPlan) -> Vec<(u64, MutationEvent)> {
    let mut events: Vec<(u64, MutationEvent)> = Vec::new();
    if !plan.enabled {
        return events;
    }
    if let Some(ticks) = plan.horizon_ms.checked_div(plan.tick_ms) {
        let mut signups = 0u64;
        for n in 0..ticks {
            let t = (n + 1) * plan.tick_ms;
            let roll =
                |key: u64, pm: u32| pm > 0 && (stream_draw(plan.seed, key, n) % 1_000) < pm as u64;
            if roll(KEY_SIGNUP, plan.signup_per_mille) {
                events.push((t, MutationEvent::Signup { n: signups }));
                signups += 1;
            }
            if roll(KEY_FRIEND, plan.friend_per_mille) {
                let h = stream_draw(plan.seed, KEY_FRIEND, n);
                events.push((
                    t,
                    MutationEvent::Friend { a: splitmix64(h ^ 1), b: splitmix64(h ^ 2) },
                ));
            }
            if roll(KEY_DEFRIEND, plan.defriend_per_mille) {
                let h = stream_draw(plan.seed, KEY_DEFRIEND, n);
                events.push((
                    t,
                    MutationEvent::Defriend { u: splitmix64(h ^ 1), k: splitmix64(h ^ 2) },
                ));
            }
            if roll(KEY_PRIVACY, plan.privacy_flip_per_mille) {
                let h = stream_draw(plan.seed, KEY_PRIVACY, n);
                events.push((
                    t,
                    MutationEvent::PrivacyFlip {
                        u: splitmix64(h ^ 1),
                        lock: splitmix64(h ^ 2) & 1 == 0,
                    },
                ));
            }
            if roll(KEY_DEACTIVATE, plan.deactivate_per_mille) {
                let h = stream_draw(plan.seed, KEY_DEACTIVATE, n);
                events.push((t, MutationEvent::Deactivate { u: splitmix64(h ^ 1) }));
            }
        }
    }
    for &at in &plan.rollover_at_ms {
        events.push((at, MutationEvent::Rollover));
    }
    // Stable by time: same-tick class order and rollover placement are
    // preserved, so the schedule is canonical.
    events.sort_by_key(|&(t, _)| t);
    events
}

/// Apply one event to a working world. Returns a canonical resolution
/// line (folded into the state digest) and the users it touched (whose
/// `data-gen` stamps bump).
fn apply_event(
    net: &mut Network,
    tombstones: &mut BTreeSet<UserId>,
    ev: &MutationEvent,
) -> (String, Vec<UserId>) {
    let count = net.user_count() as u64;
    match ev {
        MutationEvent::Signup { n } => {
            let bd = Date::ymd(1988, (1 + n % 12) as u8, (1 + n % 28) as u8);
            let today = net.today;
            let id = net.add_user(User {
                id: UserId(0),
                true_birth_date: bd,
                registration: Registration { registered_birth_date: bd, registration_date: today },
                profile: ProfileContent::bare("Riley", format!("Arrival{n}"), Gender::Unspecified),
                privacy: PrivacySettings::facebook_adult_default(),
                role: Role::OtherResident,
            });
            (format!("signup:{id}"), vec![id])
        }
        MutationEvent::Friend { a, b } => {
            let a = UserId::from_index((a % count) as usize);
            let b = UserId::from_index((b % count) as usize);
            if a != b && net.add_friendship(a, b) {
                (format!("friend:{a}:{b}"), vec![a, b])
            } else {
                (format!("friend:{a}:{b}:noop"), Vec::new())
            }
        }
        MutationEvent::Defriend { u, k } => {
            let u = UserId::from_index((u % count) as usize);
            let friends = net.friends(u);
            if friends.is_empty() {
                (format!("defriend:{u}:noop"), Vec::new())
            } else {
                let b = friends[(k % friends.len() as u64) as usize];
                net.remove_friendship(u, b);
                (format!("defriend:{u}:{b}"), vec![u, b])
            }
        }
        MutationEvent::PrivacyFlip { u, lock } => {
            let u = UserId::from_index((u % count) as usize);
            net.user_mut(u).privacy = if *lock {
                PrivacySettings::locked_down()
            } else {
                PrivacySettings::maximum_sharing()
            };
            (format!("privacy_flip:{u}:{}", if *lock { "lock" } else { "open" }), vec![u])
        }
        MutationEvent::Deactivate { u } => {
            let u = UserId::from_index((u % count) as usize);
            if tombstones.insert(u) {
                net.user_mut(u).privacy = PrivacySettings::locked_down();
                (format!("deactivate:{u}"), vec![u])
            } else {
                (format!("deactivate:{u}:noop"), Vec::new())
            }
        }
        MutationEvent::Rollover => {
            let senior = net.senior_class_year();
            let grads: Vec<UserId> = net
                .users()
                .filter_map(|u| match u.role {
                    Role::CurrentStudent { grad_year, .. } if grad_year == senior => Some(u.id),
                    _ => None,
                })
                .collect();
            for &g in &grads {
                if let Role::CurrentStudent { school, grad_year } = net.user(g).role {
                    net.user_mut(g).role = Role::Alumnus { school, grad_year };
                }
                tombstones.insert(g);
            }
            (format!("rollover:{senior}:{}", grads.len()), grads)
        }
    }
}

impl MutationEngine {
    pub fn new(plan: MutationPlan, base: Arc<Network>, obs: Arc<Registry>) -> Arc<MutationEngine> {
        let schedule = build_schedule(&plan);
        let mut worlds = BTreeMap::new();
        worlds.insert(
            0,
            Arc::new(WorldGen {
                generation: 0,
                network: base,
                search: SearchIndex::new(),
                tombstones: BTreeSet::new(),
                user_gen: HashMap::new(),
            }),
        );
        Arc::new(MutationEngine {
            plan,
            schedule,
            state: Mutex::new(EngineState {
                worlds,
                applied_watermark: 0,
                events_digest: 0xcbf2_9ce4_8422_2325,
                serves: BTreeMap::new(),
            }),
            obs,
        })
    }

    pub fn plan(&self) -> &MutationPlan {
        &self.plan
    }

    /// Whether the world actually moves. `false` means handlers bypass
    /// the engine entirely — the strict-no-op guarantee.
    pub fn is_live(&self) -> bool {
        self.plan.enabled && !self.schedule.is_empty()
    }

    /// Total scheduled events over the plan's horizon.
    pub fn event_count(&self) -> usize {
        self.schedule.len()
    }

    /// Events applied so far (the first-application watermark).
    pub fn applied_count(&self) -> usize {
        self.state.lock().applied_watermark
    }

    /// The generation in force at `now_ms`: how many scheduled events
    /// happen at or before that instant.
    pub fn generation_at(&self, now_ms: u64) -> usize {
        self.schedule.partition_point(|&(t, _)| t <= now_ms)
    }

    /// The world snapshot a request timestamped `now_ms` must be served
    /// from. Also tallies the serve for the state digest.
    pub fn world_at(&self, now_ms: u64) -> Arc<WorldGen> {
        let generation = self.generation_at(now_ms);
        let mut st = self.state.lock();
        *st.serves.entry(generation).or_insert(0) += 1;
        if let Some(w) = st.worlds.get(&generation) {
            return Arc::clone(w);
        }
        let world = self.build_world(&mut st, generation);
        st.worlds.insert(generation, Arc::clone(&world));
        // Bounded memoization: drop the oldest non-base snapshots. A
        // world is a pure function of its generation, so eviction can
        // never change what any request observes.
        while st.worlds.len() > MAX_CACHED_WORLDS {
            let Some((&oldest, _)) = st.worlds.range(1..).next() else { break };
            if oldest == generation {
                break;
            }
            st.worlds.remove(&oldest);
        }
        world
    }

    /// Build generation `generation` from the nearest cached ancestor,
    /// applying (and, first time only, accounting) the missing events.
    fn build_world(&self, st: &mut EngineState, generation: usize) -> Arc<WorldGen> {
        let (&from, ancestor) =
            st.worlds.range(..=generation).next_back().expect("generation 0 always cached");
        let ancestor = Arc::clone(ancestor);
        let mut net = (*ancestor.network).clone();
        let mut tombstones = ancestor.tombstones.clone();
        let mut user_gen = ancestor.user_gen.clone();
        for idx in from..generation {
            let (at_ms, ev) = &self.schedule[idx];
            let (line, touched) = apply_event(&mut net, &mut tombstones, ev);
            for &u in &touched {
                *user_gen.entry(u).or_insert(0) += 1;
            }
            if idx >= st.applied_watermark {
                // First application ever: count, digest and trace it.
                self.obs.counter_with("platform_mutations_total", &[("kind", ev.kind())]).inc();
                st.events_digest =
                    fnv_fold(st.events_digest, format!("{idx}|{at_ms}|{line}\n").as_bytes());
                let tracer = self.obs.tracer();
                if tracer.is_enabled() {
                    let tc = TraceCtx::derive(TRACE_SEED, WORLD_LANE, idx as u64);
                    tracer.record(SpanRecord {
                        trace_id: tc.trace_id,
                        span_id: tc.span(SLOT_MUTATION),
                        parent_id: 0,
                        lane: WORLD_LANE,
                        ordinal: idx as u64,
                        name: format!("mutation:{}", ev.kind()),
                        begin_ms: *at_ms,
                        end_ms: *at_ms,
                        status: 0,
                        outcome: "apply".to_string(),
                        provenance: String::new(),
                        captcha_ms: 0,
                    });
                }
            }
        }
        st.applied_watermark = st.applied_watermark.max(generation);
        Arc::new(WorldGen {
            generation,
            network: Arc::new(net),
            search: SearchIndex::new(),
            tombstones,
            user_gen,
        })
    }

    /// Canonical digest of everything the engine has done: the resolved
    /// form of every applied event (in schedule order) plus the
    /// per-generation serve tallies. Worker-count invariant because both
    /// ingredients are pure functions of the per-account request
    /// streams.
    pub fn state_digest(&self) -> u64 {
        let st = self.state.lock();
        let mut h = st.events_digest;
        for (g, c) in &st.serves {
            h = fnv_fold(h, format!("serve|{g}|{c}\n").as_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_synth::{generate, ScenarioConfig};

    fn base() -> Arc<Network> {
        Arc::new(generate(&ScenarioConfig::tiny()).network.clone())
    }

    fn live_plan() -> MutationPlan {
        MutationPlan {
            enabled: true,
            horizon_ms: 120_000,
            tick_ms: 1_000,
            signup_per_mille: 80,
            friend_per_mille: 300,
            defriend_per_mille: 200,
            privacy_flip_per_mille: 150,
            deactivate_per_mille: 60,
            rollover_at_ms: vec![60_000],
            ..MutationPlan::default()
        }
    }

    #[test]
    fn zero_rate_plan_is_not_live() {
        let eng = MutationEngine::new(MutationPlan::none(), base(), Registry::shared());
        assert!(!eng.is_live());
        assert_eq!(eng.event_count(), 0);
        // Even explicit enablement without rates schedules nothing.
        let eng = MutationEngine::new(
            MutationPlan { enabled: true, horizon_ms: 600_000, ..MutationPlan::none() },
            base(),
            Registry::shared(),
        );
        assert!(!eng.is_live());
        // And scaling the lively plan to zero kills the schedule too.
        let eng =
            MutationEngine::new(MutationPlan::lively().scaled(0.0), base(), Registry::shared());
        assert!(!eng.is_live());
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let a = build_schedule(&live_plan());
        let b = build_schedule(&live_plan());
        assert_eq!(a, b);
        assert!(!a.is_empty(), "live plan scheduled nothing");
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0), "schedule out of order");
        let c = build_schedule(&MutationPlan { seed: 7, ..live_plan() });
        assert_ne!(a, c, "different seeds should differ");
        let kinds: BTreeSet<&str> = a.iter().map(|(_, e)| e.kind()).collect();
        for kind in ["signup", "friend", "defriend", "privacy_flip", "deactivate", "rollover"] {
            assert!(kinds.contains(kind), "no {kind} in schedule");
        }
    }

    #[test]
    fn worlds_are_pure_functions_of_generation() {
        let net = base();
        let in_order = MutationEngine::new(live_plan(), Arc::clone(&net), Registry::shared());
        let out_of_order = MutationEngine::new(live_plan(), net, Registry::shared());
        // One engine walks forward; the other jumps to the end first,
        // then revisits earlier instants (as racing seats would).
        let far = in_order.world_at(120_000);
        let mid = in_order.world_at(45_000);
        let b_far = out_of_order.world_at(120_000);
        let b_mid = out_of_order.world_at(45_000);
        assert_eq!(far.generation, b_far.generation);
        assert_eq!(far.network.fingerprint(), b_far.network.fingerprint());
        assert_eq!(mid.network.fingerprint(), b_mid.network.fingerprint());
        assert!(far.generation > mid.generation);
        // Same serve pattern → same digest.
        assert_eq!(in_order.state_digest(), out_of_order.state_digest());
    }

    #[test]
    fn eviction_preserves_world_identity() {
        let net = base();
        let eng = MutationEngine::new(live_plan(), Arc::clone(&net), Registry::shared());
        // Touch many distinct generations to force eviction...
        for t in (0..=120).map(|s| s * 1_000) {
            eng.world_at(t);
        }
        // ...then revisit an early instant and compare against a fresh
        // engine that never evicted.
        let revisited = eng.world_at(10_000);
        let fresh = MutationEngine::new(live_plan(), net, Registry::shared());
        let reference = fresh.world_at(10_000);
        assert_eq!(revisited.generation, reference.generation);
        assert_eq!(revisited.network.fingerprint(), reference.network.fingerprint());
    }

    #[test]
    fn deactivation_tombstones_and_locks() {
        let net = base();
        let eng = MutationEngine::new(live_plan(), net, Registry::shared());
        let last = eng.world_at(u64::MAX);
        assert!(last.tombstone_count() > 0, "no tombstones after full schedule");
        for &u in &last.tombstones {
            // Deactivated users are withdrawn from search; graduated
            // seniors become alumni (whose policy exposure shrinks).
            let user = last.network.user(u);
            let deactivated = !user.privacy.public_search;
            let graduated = matches!(user.role, Role::Alumnus { .. });
            assert!(deactivated || graduated, "tombstoned {u} neither deactivated nor graduated");
            assert!(last.user_generation(u) > 0, "tombstoned {u} has no gen stamp");
        }
    }

    #[test]
    fn rollover_graduates_the_senior_class() {
        let net = base();
        let school = net.schools()[0].id;
        let senior = net.senior_class_year();
        let seniors = net.roster_for_class(school, senior);
        assert!(!seniors.is_empty(), "tiny scenario has no seniors");
        let plan =
            MutationPlan { enabled: true, rollover_at_ms: vec![1_000], ..MutationPlan::none() };
        let eng = MutationEngine::new(plan, Arc::clone(&net), Registry::shared());
        assert!(eng.is_live());
        let before = eng.world_at(999);
        assert_eq!(before.generation, 0);
        assert!(!before.tombstoned(seniors[0]));
        let after = eng.world_at(1_000);
        assert_eq!(after.generation, 1);
        for &s in &seniors {
            assert!(after.tombstoned(s), "senior {s} not tombstoned");
            assert!(matches!(after.network.user(s).role, Role::Alumnus { .. }));
        }
        // Juniors are untouched.
        assert_eq!(
            after.network.roster_for_class(school, senior + 1).len(),
            net.roster_for_class(school, senior + 1).len()
        );
    }

    #[test]
    fn signups_grow_the_user_table() {
        let net = base();
        let count = net.user_count();
        let plan = MutationPlan {
            enabled: true,
            tick_ms: 1_000,
            horizon_ms: 30_000,
            signup_per_mille: 1_000,
            ..MutationPlan::none()
        };
        let eng = MutationEngine::new(plan, net, Registry::shared());
        let world = eng.world_at(30_000);
        assert_eq!(world.network.user_count(), count + 30);
        let newcomer = UserId::from_index(count);
        assert!(!world.network.user(newcomer).is_registered_minor(world.network.today));
        assert_eq!(world.user_generation(newcomer), 1);
    }

    #[test]
    fn events_are_counted_once() {
        let net = base();
        let obs = Registry::shared();
        let eng = MutationEngine::new(live_plan(), net, Arc::clone(&obs));
        eng.world_at(120_000);
        eng.world_at(120_000);
        eng.world_at(30_000);
        let snap = obs.snapshot();
        let total: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("platform_mutations_total"))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(total, eng.event_count() as u64);
        assert_eq!(eng.applied_count(), eng.event_count());
    }
}
