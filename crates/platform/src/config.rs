//! Platform service configuration.

use serde::{Deserialize, Serialize};

/// Tunables of the simulated OSN service.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Results per search-page AJAX request. Calibrated so the paper's
    /// Table 3 seed-request counts come out right (~16/page).
    pub search_page_size: usize,
    /// Maximum search results served to one account for one school —
    /// the reason the paper's attacker registered multiple fake
    /// accounts.
    pub search_cap_per_account: usize,
    /// Friends per friend-list AJAX request (the paper reports
    /// Facebook's p = 20).
    pub friends_page_size: usize,
    /// Anti-crawling: total requests an account may make before being
    /// suspended ("if a member tries to access many user profiles in a
    /// short time, the member's account will be ... disabled", §4.5).
    pub suspension_threshold: u64,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            search_page_size: 16,
            search_cap_per_account: 400,
            friends_page_size: 20,
            suspension_threshold: 50_000,
        }
    }
}
