//! Platform service configuration.

use crate::faults::FaultPlan;
use crate::mutations::MutationPlan;
use hsp_defense::DefenseConfig;
use serde::{Deserialize, Serialize};

/// Tunables of the simulated OSN service.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Results per search-page AJAX request. Calibrated so the paper's
    /// Table 3 seed-request counts come out right (~16/page).
    pub search_page_size: usize,
    /// Maximum search results served to one account for one school —
    /// the reason the paper's attacker registered multiple fake
    /// accounts.
    pub search_cap_per_account: usize,
    /// Friends per friend-list AJAX request (the paper reports
    /// Facebook's p = 20).
    pub friends_page_size: usize,
    /// Anti-crawling: total requests an account may make before being
    /// suspended ("if a member tries to access many user profiles in a
    /// short time, the member's account will be ... disabled", §4.5).
    pub suspension_threshold: u64,
    /// Anti-crawling in *virtual time*: more than this many requests
    /// inside one `rate_window_ms` window suspends the account. This is
    /// the "many ... in a short time" half of §4.5 — a polite crawler
    /// that sleeps (advancing the virtual clock) stays under it, an
    /// impolite one trips it long before `suspension_threshold`.
    /// 0 disables the windowed rule.
    pub rate_max_in_window: u64,
    /// Width of the sliding suspension window, in virtual milliseconds.
    pub rate_window_ms: u64,
    /// Fault-injection schedule (disabled by default).
    pub faults: FaultPlan,
    /// Live-world mutation schedule (disabled by default, in which case
    /// the platform serves the frozen base network byte-identically).
    pub mutations: MutationPlan,
    /// Behavioral sybil detection (off by default; see `hsp-defense`).
    pub defense: DefenseConfig,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            search_page_size: 16,
            search_cap_per_account: 400,
            friends_page_size: 20,
            suspension_threshold: 50_000,
            rate_max_in_window: 0,
            rate_window_ms: 60_000,
            faults: FaultPlan::default(),
            mutations: MutationPlan::default(),
            defense: DefenseConfig::default(),
        }
    }
}
