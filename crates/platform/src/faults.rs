//! Seeded, deterministic fault injection for the simulated OSN.
//!
//! The paper's crawl ran against a *hostile* Facebook: accounts were
//! rate-limited and suspended, pages arrived slowly or truncated,
//! connections dropped mid-body (§3.2, §4.5). This module recreates
//! that hostility on demand. A [`FaultPlan`] declares per-mille
//! probabilities for each fault class; a [`FaultEngine`] rolls them
//! from one seeded `StdRng` in strict request order, so an experiment's
//! entire fault schedule is a pure function of (seed, request
//! sequence) — bit-identical across runs and across the TCP and
//! in-process transports.
//!
//! Faults are signalled in-band through response status codes and the
//! shared header constants in `hsp_http::resilient`, never through
//! transport-specific behaviour, which is what keeps the two transports
//! equivalent. Mid-body resets, for instance, are a truncated body plus
//! `x-simulated-fault: reset` + `Connection: close`, which the client
//! layer converts back into a retryable transport-style failure.
//!
//! Every injection lands in the shared registry as
//! `platform_fault_injected_total{kind="..."}`.

use hsp_http::resilient::{H_RETRY_AFTER, H_SIMULATED_FAULT, H_VIRTUAL_LATENCY_MS};
use hsp_http::{Request, Response, Status};
use hsp_obs::Registry;
use parking_lot::Mutex;
use rand::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Declarative chaos schedule. Probabilities are per-mille (0–1000)
/// per eligible request; `0` disables that fault class. The all-zero
/// [`Default`] plan injects nothing, so ordinary experiments are
/// untouched; [`FaultPlan::chaos`] is the canonical hostile profile
/// used by the chaos tests and sweeps.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Master switch; `false` short-circuits every roll.
    pub enabled: bool,
    /// Seed of the fault RNG stream.
    pub seed: u64,
    /// 429 + `Retry-After` before the handler runs.
    pub rate_limit_per_mille: u32,
    /// `Retry-After` value handed out with injected 429s, in seconds.
    pub retry_after_secs: u64,
    /// Transient 500/503 before the handler runs.
    pub server_error_per_mille: u32,
    /// Virtual-latency tag on a response (client advances its clock).
    pub latency_per_mille: u32,
    pub latency_min_ms: u64,
    pub latency_max_ms: u64,
    /// Mid-body connection reset: truncated body + reset marker +
    /// `Connection: close`.
    pub reset_per_mille: u32,
    /// Silently truncated HTML (no marker — the crawler must notice the
    /// missing `</html>` itself).
    pub truncate_per_mille: u32,
    /// Session evicted server-side; request answered 401 + expiry marker.
    pub session_expiry_per_mille: u32,
    /// Scripted escalation: account `i` is force-suspended once it has
    /// served `suspend_account_after[i]` requests (0 = never). This is
    /// the "one mid-crawl suspension" that exercises the paper's
    /// 2→4→8 account failover.
    pub suspend_account_after: Vec<u64>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            enabled: false,
            seed: 0xFA_2013,
            rate_limit_per_mille: 0,
            retry_after_secs: 15,
            server_error_per_mille: 0,
            latency_per_mille: 0,
            latency_min_ms: 50,
            latency_max_ms: 500,
            reset_per_mille: 0,
            truncate_per_mille: 0,
            session_expiry_per_mille: 0,
            suspend_account_after: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// The canonical hostile profile: sporadic 429s and 5xxs, simulated
    /// latency, occasional resets/truncations/session expiries, and one
    /// scripted mid-crawl suspension of the first account.
    pub fn chaos() -> FaultPlan {
        FaultPlan {
            enabled: true,
            rate_limit_per_mille: 30,
            server_error_per_mille: 20,
            latency_per_mille: 100,
            reset_per_mille: 10,
            truncate_per_mille: 15,
            session_expiry_per_mille: 5,
            // Fires well after the seed phase (~20 requests) but in the
            // middle of an HS1-scale profile/friends crawl (~750 served
            // requests per account), forcing a real mid-crawl failover.
            suspend_account_after: vec![500],
            ..FaultPlan::default()
        }
    }

    /// Scale every probabilistic fault class by `factor` (1.0 = as-is),
    /// clamped to valid per-mille. Used by the chaos intensity sweep.
    pub fn scaled(&self, factor: f64) -> FaultPlan {
        let scale = |pm: u32| ((pm as f64 * factor).round() as u32).min(1_000);
        FaultPlan {
            rate_limit_per_mille: scale(self.rate_limit_per_mille),
            server_error_per_mille: scale(self.server_error_per_mille),
            latency_per_mille: scale(self.latency_per_mille),
            reset_per_mille: scale(self.reset_per_mille),
            truncate_per_mille: scale(self.truncate_per_mille),
            session_expiry_per_mille: scale(self.session_expiry_per_mille),
            ..self.clone()
        }
    }
}

/// Rolls a [`FaultPlan`] against live traffic. One seeded RNG stream,
/// locked per decision; the crawler is sequential, so the stream order
/// is the request order on both transports.
pub struct FaultEngine {
    plan: FaultPlan,
    rng: Mutex<StdRng>,
    obs: Arc<Registry>,
}

impl FaultEngine {
    pub fn new(plan: FaultPlan, obs: Arc<Registry>) -> Arc<FaultEngine> {
        let rng = Mutex::new(StdRng::seed_from_u64(plan.seed));
        Arc::new(FaultEngine { plan, rng, obs })
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn record(&self, kind: &str) {
        self.obs.counter_with("platform_fault_injected_total", &[("kind", kind)]).inc();
    }

    fn roll(&self, per_mille: u32) -> bool {
        per_mille > 0 && self.rng.lock().gen_range(0..1_000u32) < per_mille
    }

    /// Pre-handler faults: the request is answered by the fault layer
    /// and never reaches the application (so it does not count against
    /// the account's request budget — the "server" failed, the account
    /// did nothing suspicious).
    pub fn pre(&self, _req: &Request) -> Option<Response> {
        if !self.plan.enabled {
            return None;
        }
        if self.roll(self.plan.rate_limit_per_mille) {
            self.record("rate_limit");
            return Some(
                Response::error(Status::TOO_MANY_REQUESTS, "rate limit exceeded")
                    .header(H_RETRY_AFTER, self.plan.retry_after_secs.to_string()),
            );
        }
        if self.roll(self.plan.server_error_per_mille) {
            self.record("server_error");
            let status = if self.rng.lock().gen_bool(0.5) {
                Status::INTERNAL_SERVER_ERROR
            } else {
                Status::SERVICE_UNAVAILABLE
            };
            return Some(Response::error(status, "internal error"));
        }
        None
    }

    /// Whether to expire the session carried by the current request.
    /// Called once per authenticated request, in request order.
    pub fn expire_session_now(&self) -> bool {
        if !self.plan.enabled || !self.roll(self.plan.session_expiry_per_mille) {
            return false;
        }
        self.record("session_expiry");
        true
    }

    /// Scripted escalation check, given the account's served-request
    /// count. The caller force-suspends on `true`.
    pub fn should_force_suspend(&self, account_index: usize, requests_served: u64) -> bool {
        if !self.plan.enabled {
            return false;
        }
        let hit = self
            .plan
            .suspend_account_after
            .get(account_index)
            .is_some_and(|&after| after > 0 && requests_served >= after);
        if hit {
            self.record("forced_suspension");
        }
        hit
    }

    /// Post-handler faults: mutate a successful response on its way out
    /// (latency tag, silent truncation, mid-body reset).
    pub fn post(&self, resp: Response) -> Response {
        if !self.plan.enabled {
            return resp;
        }
        let mut resp = resp;
        if self.roll(self.plan.latency_per_mille) {
            self.record("latency");
            let ms = self.rng.lock().gen_range(self.plan.latency_min_ms..=self.plan.latency_max_ms);
            resp = resp.header(H_VIRTUAL_LATENCY_MS, ms.to_string());
        }
        let is_html = resp.status == Status::OK
            && resp.headers.get("content-type").is_some_and(|ct| ct.contains("text/html"));
        if is_html && resp.body.len() > 64 {
            if self.roll(self.plan.reset_per_mille) {
                self.record("reset");
                return self
                    .truncated(resp)
                    .header(H_SIMULATED_FAULT, "reset")
                    .header("Connection", "close");
            }
            if self.roll(self.plan.truncate_per_mille) {
                self.record("truncate");
                return self.truncated(resp);
            }
        }
        resp
    }

    /// Cut the body at a random interior point (always before the
    /// closing `</html>`, so truncation is detectable).
    fn truncated(&self, mut resp: Response) -> Response {
        let len = resp.body.len();
        let cut = self.rng.lock().gen_range(len / 10..len * 9 / 10);
        resp.body = bytes::Bytes::copy_from_slice(&resp.body[..cut]);
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_http::resilient::{classify, ErrorClass};

    fn engine(plan: FaultPlan) -> Arc<FaultEngine> {
        FaultEngine::new(plan, Registry::shared())
    }

    fn page() -> Response {
        Response::html(format!("<!DOCTYPE html><html><body>{}</body></html>", "x".repeat(400)))
    }

    #[test]
    fn disabled_plan_is_a_no_op() {
        let eng = engine(FaultPlan::default());
        assert!(eng.pre(&Request::get("/profile/u1")).is_none());
        assert!(!eng.expire_session_now());
        assert!(!eng.should_force_suspend(0, u64::MAX));
        let body = page().body;
        assert_eq!(eng.post(page()).body, body);
    }

    #[test]
    fn chaos_plan_injects_each_class_deterministically() {
        let run = |seed: u64| {
            let obs = Registry::shared();
            let eng = FaultEngine::new(FaultPlan { seed, ..FaultPlan::chaos() }, Arc::clone(&obs));
            let mut outcomes = Vec::new();
            for i in 0..2_000 {
                match eng.pre(&Request::get(format!("/profile/u{i}"))) {
                    Some(resp) => outcomes.push(resp.status.code()),
                    None => {
                        let resp = eng.post(page());
                        outcomes.push(resp.status.code());
                        outcomes.push(resp.body.len() as u16);
                    }
                }
            }
            let snap = obs.snapshot();
            (outcomes, snap.counters)
        };
        let (a_out, a_counts) = run(1);
        let (b_out, b_counts) = run(1);
        assert_eq!(a_out, b_out, "same seed must replay the same fault schedule");
        assert_eq!(a_counts, b_counts);
        for kind in ["rate_limit", "server_error", "latency", "truncate"] {
            let key = format!("platform_fault_injected_total{{kind=\"{kind}\"}}");
            assert!(a_counts.get(&key).copied().unwrap_or(0) > 0, "no {kind} in 2000 requests");
        }
        let (c_out, _) = run(2);
        assert_ne!(a_out, c_out, "different seeds should differ");
    }

    #[test]
    fn injected_rate_limit_is_retryable_with_floor() {
        let plan = FaultPlan { rate_limit_per_mille: 1_000, ..FaultPlan::chaos() };
        let eng = engine(plan);
        let resp = eng.pre(&Request::get("/x")).expect("certain fault");
        assert_eq!(resp.status, Status::TOO_MANY_REQUESTS);
        match classify(&resp) {
            ErrorClass::Retryable { retry_after_ms } => {
                assert_eq!(retry_after_ms, Some(15_000));
            }
            other => panic!("expected retryable, got {other:?}"),
        }
    }

    #[test]
    fn truncation_cuts_before_closing_tag() {
        let plan = FaultPlan {
            truncate_per_mille: 1_000,
            reset_per_mille: 0,
            latency_per_mille: 0,
            ..FaultPlan::chaos()
        };
        let eng = engine(plan);
        for _ in 0..50 {
            let resp = eng.post(page());
            assert_eq!(resp.status, Status::OK);
            assert!(
                !resp.body_string().trim_end().ends_with("</html>"),
                "truncated body still looks complete"
            );
        }
    }

    #[test]
    fn reset_marker_is_classified_retryable() {
        let plan = FaultPlan { reset_per_mille: 1_000, latency_per_mille: 0, ..FaultPlan::chaos() };
        let eng = engine(plan);
        let resp = eng.post(page());
        assert_eq!(resp.headers.get(H_SIMULATED_FAULT), Some("reset"));
        assert!(resp.headers.connection_close());
        assert!(matches!(classify(&resp), ErrorClass::Retryable { .. }));
    }

    #[test]
    fn scripted_suspension_fires_at_threshold() {
        let plan = FaultPlan { suspend_account_after: vec![100, 0], ..FaultPlan::chaos() };
        let eng = engine(plan);
        assert!(!eng.should_force_suspend(0, 99));
        assert!(eng.should_force_suspend(0, 100));
        assert!(!eng.should_force_suspend(1, u64::MAX), "0 means never");
        assert!(!eng.should_force_suspend(7, u64::MAX), "unlisted accounts never");
    }

    #[test]
    fn scaled_plan_clamps_and_scales() {
        let base = FaultPlan::chaos();
        let double = base.scaled(2.0);
        assert_eq!(double.rate_limit_per_mille, 60);
        let extreme = base.scaled(1_000.0);
        assert_eq!(extreme.rate_limit_per_mille, 1_000);
        let off = base.scaled(0.0);
        assert_eq!(off.rate_limit_per_mille, 0);
        assert_eq!(off.suspend_account_after, base.suspend_account_after);
    }
}
