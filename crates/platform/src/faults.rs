//! Seeded, deterministic fault injection for the simulated OSN.
//!
//! The paper's crawl ran against a *hostile* Facebook: accounts were
//! rate-limited and suspended, pages arrived slowly or truncated,
//! connections dropped mid-body (§3.2, §4.5). This module recreates
//! that hostility on demand. A [`FaultPlan`] declares per-mille
//! probabilities for each fault class; a [`FaultEngine`] rolls them
//! from *per-principal* SplitMix64 streams: each attacker account (as
//! identified by its `sid` cookie) draws from its own seeded stream, in
//! its own request order. An experiment's fault schedule is therefore a
//! pure function of (seed, per-account request sequences) — bit-identical
//! across runs, across the TCP and in-process transports, and across
//! any interleaving of concurrent accounts. A parallel crawler that
//! preserves each account's request order sees exactly the faults the
//! sequential crawler saw, no matter how the threads raced.
//!
//! Faults are signalled in-band through response status codes and the
//! shared header constants in `hsp_http::resilient`, never through
//! transport-specific behaviour, which is what keeps the two transports
//! equivalent. Mid-body resets, for instance, are a truncated body plus
//! `x-simulated-fault: reset` + `Connection: close`, which the client
//! layer converts back into a retryable transport-style failure.
//!
//! Every injection lands in the shared registry as
//! `platform_fault_injected_total{kind="..."}`.

use hsp_http::resilient::{
    H_ATTEMPT_SEQ, H_FAULT_INJECTED, H_RETRY_AFTER, H_SIMULATED_FAULT, H_VIRTUAL_LATENCY_MS,
};
use hsp_http::{request_cookie, Request, Response, Status};
use hsp_obs::Registry;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Declarative chaos schedule. Probabilities are per-mille (0–1000)
/// per eligible request; `0` disables that fault class. The all-zero
/// [`Default`] plan injects nothing, so ordinary experiments are
/// untouched; [`FaultPlan::chaos`] is the canonical hostile profile
/// used by the chaos tests and sweeps.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Master switch; `false` short-circuits every roll.
    pub enabled: bool,
    /// Seed of the fault RNG stream.
    pub seed: u64,
    /// 429 + `Retry-After` before the handler runs.
    pub rate_limit_per_mille: u32,
    /// `Retry-After` value handed out with injected 429s, in seconds.
    pub retry_after_secs: u64,
    /// Transient 500/503 before the handler runs.
    pub server_error_per_mille: u32,
    /// Virtual-latency tag on a response (client advances its clock).
    pub latency_per_mille: u32,
    pub latency_min_ms: u64,
    pub latency_max_ms: u64,
    /// Mid-body connection reset: truncated body + reset marker +
    /// `Connection: close`.
    pub reset_per_mille: u32,
    /// Silently truncated HTML (no marker — the crawler must notice the
    /// missing `</html>` itself).
    pub truncate_per_mille: u32,
    /// Session evicted server-side; request answered 401 + expiry marker.
    pub session_expiry_per_mille: u32,
    /// Scripted escalation: account `i` is force-suspended once it has
    /// served `suspend_account_after[i]` requests (0 = never). This is
    /// the "one mid-crawl suspension" that exercises the paper's
    /// 2→4→8 account failover.
    pub suspend_account_after: Vec<u64>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            enabled: false,
            seed: 0xFA_2013,
            rate_limit_per_mille: 0,
            retry_after_secs: 15,
            server_error_per_mille: 0,
            latency_per_mille: 0,
            latency_min_ms: 50,
            latency_max_ms: 500,
            reset_per_mille: 0,
            truncate_per_mille: 0,
            session_expiry_per_mille: 0,
            suspend_account_after: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// The canonical hostile profile: sporadic 429s and 5xxs, simulated
    /// latency, occasional resets/truncations/session expiries, and one
    /// scripted mid-crawl suspension of the first account.
    pub fn chaos() -> FaultPlan {
        FaultPlan {
            enabled: true,
            rate_limit_per_mille: 30,
            server_error_per_mille: 20,
            latency_per_mille: 100,
            reset_per_mille: 10,
            truncate_per_mille: 15,
            session_expiry_per_mille: 5,
            // Fires well after the seed phase (~20 requests) but in the
            // middle of an HS1-scale profile/friends crawl (~750 served
            // requests per account), forcing a real mid-crawl failover.
            suspend_account_after: vec![500],
            ..FaultPlan::default()
        }
    }

    /// Scale every probabilistic fault class by `factor` (1.0 = as-is),
    /// clamped to valid per-mille. Used by the chaos intensity sweep.
    pub fn scaled(&self, factor: f64) -> FaultPlan {
        let scale = |pm: u32| ((pm as f64 * factor).round() as u32).min(1_000);
        FaultPlan {
            rate_limit_per_mille: scale(self.rate_limit_per_mille),
            server_error_per_mille: scale(self.server_error_per_mille),
            latency_per_mille: scale(self.latency_per_mille),
            reset_per_mille: scale(self.reset_per_mille),
            truncate_per_mille: scale(self.truncate_per_mille),
            session_expiry_per_mille: scale(self.session_expiry_per_mille),
            ..self.clone()
        }
    }
}

/// SplitMix64 finalizer — the mixing function behind every fault roll.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a, used to key pre-session (signup/login) traffic by username.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The fault stream a request draws from. Authenticated traffic is
/// keyed by the account index baked into the `sid` cookie
/// (`sid-{index}-…`), so every account has its own deterministic fault
/// schedule regardless of how concurrent requests interleave.
/// Signup/login traffic (no session yet) is keyed by the claimed
/// username; anonymous traffic shares stream 0.
/// Attempt sequence number carried by the request, if the client opted
/// into replay-tolerant sequence mode (`x-attempt-seq`).
fn attempt_seq(req: &Request) -> Option<u64> {
    req.headers.get(H_ATTEMPT_SEQ).and_then(|v| v.trim().parse::<u64>().ok())
}

// Distinct draw-site tags for sequence mode: each decision a request
// can trigger draws from its own `(principal, seq, site)` stream, so
// the schedule is a pure function of the request itself — independent
// of arrival order, and therefore identical between an uninterrupted
// run and a killed-and-resumed one replaying the same requests.
const SITE_RATE: u64 = 1;
const SITE_SERVER: u64 = 2;
const SITE_SERVER_KIND: u64 = 3;
const SITE_EXPIRY: u64 = 4;
const SITE_LATENCY: u64 = 5;
const SITE_LATENCY_MS: u64 = 6;
const SITE_RESET: u64 = 7;
const SITE_TRUNCATE: u64 = 8;
const SITE_TRUNCATE_CUT: u64 = 9;

fn principal_key(req: &Request) -> u64 {
    if let Some(sid) = request_cookie(req, "sid") {
        if let Some(idx) = sid
            .strip_prefix("sid-")
            .and_then(|rest| rest.split('-').next())
            .and_then(|i| i.parse::<u64>().ok())
        {
            return 1 + idx;
        }
    }
    if let Some(user) = req.form_param("user") {
        return 0x8000_0000_0000_0000 | fnv1a(user.as_bytes());
    }
    0
}

/// Rolls a [`FaultPlan`] against live traffic. One counter-based
/// SplitMix64 stream per principal (see [`principal_key`]); each
/// decision consumes the next value of the requester's stream, so the
/// schedule an account experiences depends only on that account's own
/// request order — never on how other accounts' requests interleave.
pub struct FaultEngine {
    plan: FaultPlan,
    /// Per-principal draw counters; the stream itself is stateless
    /// (`splitmix64(seed ⊕ key-mix ⊕ counter-mix)`).
    draws: Mutex<HashMap<u64, u64>>,
    obs: Arc<Registry>,
}

impl FaultEngine {
    pub fn new(plan: FaultPlan, obs: Arc<Registry>) -> Arc<FaultEngine> {
        Arc::new(FaultEngine { plan, draws: Mutex::new(HashMap::new()), obs })
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn record(&self, kind: &str) {
        self.obs.counter_with("platform_fault_injected_total", &[("kind", kind)]).inc();
    }

    /// Next value of `key`'s stream.
    fn draw(&self, key: u64) -> u64 {
        let mut draws = self.draws.lock();
        let counter = draws.entry(key).or_insert(0);
        let n = *counter;
        *counter += 1;
        splitmix64(self.plan.seed ^ splitmix64(key) ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// A draw for one decision: in sequence mode (`seq` present) the
    /// value is a pure function of `(principal, seq, site)` — stateless
    /// and replay-stable; otherwise it consumes the principal's
    /// arrival-order counter stream exactly as before.
    fn draw_at(&self, key: u64, seq: Option<u64>, site: u64) -> u64 {
        match seq {
            Some(s) => splitmix64(
                self.plan.seed
                    ^ splitmix64(key)
                    ^ splitmix64(s.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                    ^ site.wrapping_mul(0xbf58_476d_1ce4_e5b9),
            ),
            None => self.draw(key),
        }
    }

    fn roll(&self, key: u64, seq: Option<u64>, site: u64, per_mille: u32) -> bool {
        per_mille > 0 && ((self.draw_at(key, seq, site) % 1_000) as u32) < per_mille
    }

    /// Uniform draw in `lo..=hi`.
    fn range(&self, key: u64, seq: Option<u64>, site: u64, lo: u64, hi: u64) -> u64 {
        lo + self.draw_at(key, seq, site) % (hi - lo + 1)
    }

    /// Pre-handler faults: the request is answered by the fault layer
    /// and never reaches the application (so it does not count against
    /// the account's request budget — the "server" failed, the account
    /// did nothing suspicious).
    pub fn pre(&self, req: &Request) -> Option<Response> {
        if !self.plan.enabled {
            return None;
        }
        let key = principal_key(req);
        let seq = attempt_seq(req);
        if self.roll(key, seq, SITE_RATE, self.plan.rate_limit_per_mille) {
            self.record("rate_limit");
            return Some(
                Response::error(Status::TOO_MANY_REQUESTS, "rate limit exceeded")
                    .header(H_RETRY_AFTER, self.plan.retry_after_secs.to_string())
                    .header(H_FAULT_INJECTED, "1"),
            );
        }
        if self.roll(key, seq, SITE_SERVER, self.plan.server_error_per_mille) {
            self.record("server_error");
            let status = if self.draw_at(key, seq, SITE_SERVER_KIND) & 1 == 0 {
                Status::INTERNAL_SERVER_ERROR
            } else {
                Status::SERVICE_UNAVAILABLE
            };
            return Some(Response::error(status, "internal error"));
        }
        None
    }

    /// Whether to expire the session carried by the current request.
    /// Called once per authenticated request, in that account's own
    /// request order.
    pub fn expire_session_now(&self, req: &Request) -> bool {
        if !self.plan.enabled
            || !self.roll(
                principal_key(req),
                attempt_seq(req),
                SITE_EXPIRY,
                self.plan.session_expiry_per_mille,
            )
        {
            return false;
        }
        self.record("session_expiry");
        true
    }

    /// Scripted escalation check, given the account's served-request
    /// count. The caller force-suspends on `true`.
    pub fn should_force_suspend(&self, account_index: usize, requests_served: u64) -> bool {
        if !self.plan.enabled {
            return false;
        }
        let hit = self
            .plan
            .suspend_account_after
            .get(account_index)
            .is_some_and(|&after| after > 0 && requests_served >= after);
        if hit {
            self.record("forced_suspension");
        }
        hit
    }

    /// Post-handler faults: mutate a successful response on its way out
    /// (latency tag, silent truncation, mid-body reset). Draws from the
    /// *requester's* stream, so concurrent accounts cannot perturb each
    /// other's schedules.
    pub fn post(&self, req: &Request, resp: Response) -> Response {
        if !self.plan.enabled {
            return resp;
        }
        let key = principal_key(req);
        let seq = attempt_seq(req);
        let mut resp = resp;
        if self.roll(key, seq, SITE_LATENCY, self.plan.latency_per_mille) {
            self.record("latency");
            let ms = self.range(
                key,
                seq,
                SITE_LATENCY_MS,
                self.plan.latency_min_ms,
                self.plan.latency_max_ms,
            );
            resp = resp.header(H_VIRTUAL_LATENCY_MS, ms.to_string());
        }
        let is_html = resp.status == Status::OK
            && resp.headers.get("content-type").is_some_and(|ct| ct.contains("text/html"));
        if is_html && resp.body.len() > 64 {
            if self.roll(key, seq, SITE_RESET, self.plan.reset_per_mille) {
                self.record("reset");
                return self
                    .truncated(key, seq, resp)
                    .header(H_SIMULATED_FAULT, "reset")
                    .header("Connection", "close");
            }
            if self.roll(key, seq, SITE_TRUNCATE, self.plan.truncate_per_mille) {
                self.record("truncate");
                return self.truncated(key, seq, resp);
            }
        }
        resp
    }

    /// Cut the body at a random interior point (always before the
    /// closing `</html>`, so truncation is detectable).
    fn truncated(&self, key: u64, seq: Option<u64>, mut resp: Response) -> Response {
        let len = resp.body.len();
        let cut =
            (self.range(key, seq, SITE_TRUNCATE_CUT, len as u64 / 10, len as u64 * 9 / 10 - 1))
                as usize;
        resp.body = bytes::Bytes::copy_from_slice(&resp.body[..cut]);
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_http::resilient::{classify, ErrorClass};

    fn engine(plan: FaultPlan) -> Arc<FaultEngine> {
        FaultEngine::new(plan, Registry::shared())
    }

    fn page() -> Response {
        Response::html(format!("<!DOCTYPE html><html><body>{}</body></html>", "x".repeat(400)))
    }

    #[test]
    fn disabled_plan_is_a_no_op() {
        let eng = engine(FaultPlan::default());
        let req = Request::get("/profile/u1");
        assert!(eng.pre(&req).is_none());
        assert!(!eng.expire_session_now(&req));
        assert!(!eng.should_force_suspend(0, u64::MAX));
        let body = page().body;
        assert_eq!(eng.post(&req, page()).body, body);
    }

    #[test]
    fn chaos_plan_injects_each_class_deterministically() {
        let run = |seed: u64| {
            let obs = Registry::shared();
            let eng = FaultEngine::new(FaultPlan { seed, ..FaultPlan::chaos() }, Arc::clone(&obs));
            let mut outcomes = Vec::new();
            for i in 0..2_000 {
                let req = Request::get(format!("/profile/u{i}"));
                match eng.pre(&req) {
                    Some(resp) => outcomes.push(resp.status.code()),
                    None => {
                        let resp = eng.post(&req, page());
                        outcomes.push(resp.status.code());
                        outcomes.push(resp.body.len() as u16);
                    }
                }
            }
            let snap = obs.snapshot();
            (outcomes, snap.counters)
        };
        let (a_out, a_counts) = run(1);
        let (b_out, b_counts) = run(1);
        assert_eq!(a_out, b_out, "same seed must replay the same fault schedule");
        assert_eq!(a_counts, b_counts);
        for kind in ["rate_limit", "server_error", "latency", "truncate"] {
            let key = format!("platform_fault_injected_total{{kind=\"{kind}\"}}");
            assert!(a_counts.get(&key).copied().unwrap_or(0) > 0, "no {kind} in 2000 requests");
        }
        let (c_out, _) = run(2);
        assert_ne!(a_out, c_out, "different seeds should differ");
    }

    #[test]
    fn fault_streams_are_independent_per_account() {
        // Each account's fault schedule must depend only on its own
        // request order, never on how other accounts interleave — the
        // property the parallel scheduler's determinism rests on.
        let outcomes_for = |interleave: &[usize]| {
            let eng = engine(FaultPlan::chaos());
            let mut per: [Vec<u16>; 2] = [Vec::new(), Vec::new()];
            for &acct in interleave {
                let req = Request::get("/profile/u1")
                    .header("Cookie", format!("sid=sid-{acct}-00000000"));
                match eng.pre(&req) {
                    Some(resp) => per[acct].push(resp.status.code()),
                    None => {
                        let resp = eng.post(&req, page());
                        per[acct].push(resp.status.code());
                        per[acct].push(resp.body.len() as u16);
                    }
                }
            }
            per
        };
        let round_robin: Vec<usize> = (0..400).map(|i| i % 2).collect();
        let blocked: Vec<usize> =
            std::iter::repeat_n(0, 200).chain(std::iter::repeat_n(1, 200)).collect();
        assert_eq!(outcomes_for(&round_robin), outcomes_for(&blocked));
    }

    #[test]
    fn injected_rate_limit_is_retryable_with_floor() {
        let plan = FaultPlan { rate_limit_per_mille: 1_000, ..FaultPlan::chaos() };
        let eng = engine(plan);
        let resp = eng.pre(&Request::get("/x")).expect("certain fault");
        assert_eq!(resp.status, Status::TOO_MANY_REQUESTS);
        match classify(&resp) {
            ErrorClass::Retryable { retry_after_ms } => {
                assert_eq!(retry_after_ms, Some(15_000));
            }
            other => panic!("expected retryable, got {other:?}"),
        }
    }

    #[test]
    fn truncation_cuts_before_closing_tag() {
        let plan = FaultPlan {
            truncate_per_mille: 1_000,
            reset_per_mille: 0,
            latency_per_mille: 0,
            ..FaultPlan::chaos()
        };
        let eng = engine(plan);
        let req = Request::get("/profile/u1");
        for _ in 0..50 {
            let resp = eng.post(&req, page());
            assert_eq!(resp.status, Status::OK);
            assert!(
                !resp.body_string().trim_end().ends_with("</html>"),
                "truncated body still looks complete"
            );
        }
    }

    #[test]
    fn reset_marker_is_classified_retryable() {
        let plan = FaultPlan { reset_per_mille: 1_000, latency_per_mille: 0, ..FaultPlan::chaos() };
        let eng = engine(plan);
        let resp = eng.post(&Request::get("/profile/u1"), page());
        assert_eq!(resp.headers.get(H_SIMULATED_FAULT), Some("reset"));
        assert!(resp.headers.connection_close());
        assert!(matches!(classify(&resp), ErrorClass::Retryable { .. }));
    }

    #[test]
    fn scripted_suspension_fires_at_threshold() {
        let plan = FaultPlan { suspend_account_after: vec![100, 0], ..FaultPlan::chaos() };
        let eng = engine(plan);
        assert!(!eng.should_force_suspend(0, 99));
        assert!(eng.should_force_suspend(0, 100));
        assert!(!eng.should_force_suspend(1, u64::MAX), "0 means never");
        assert!(!eng.should_force_suspend(7, u64::MAX), "unlisted accounts never");
    }

    #[test]
    fn sequence_mode_draws_are_replay_stable() {
        // With x-attempt-seq present, every decision is a pure function
        // of (principal, seq, site): re-presenting the same request —
        // in any order, interleaved with anything — reproduces the same
        // outcome. This is the property crash-resume replays rely on.
        let eng = engine(FaultPlan::chaos());
        let outcome = |seq: u64| {
            let req = Request::get("/profile/u1")
                .header("Cookie", "sid=sid-0-00000000")
                .header(H_ATTEMPT_SEQ, seq.to_string());
            let pre = eng.pre(&req).map(|r| r.status.code());
            let post = eng.post(&req, page());
            (pre, post.status.code(), post.body.len())
        };
        let first: Vec<_> = (0..300).map(outcome).collect();
        // Replay a scattered subset out of order, after all of them.
        for &seq in &[250u64, 3, 40, 199, 0, 299] {
            assert_eq!(outcome(seq), first[seq as usize], "seq {seq} must replay identically");
        }
        // Sanity: the sequence stream does inject faults at chaos rates.
        assert!(first.iter().any(|(pre, ..)| pre.is_some()), "no pre-faults in 300 draws");
        assert!(
            first.iter().any(|(_, _, len)| *len < page().body.len()),
            "no truncations in 300 draws"
        );
    }

    #[test]
    fn scaled_plan_clamps_and_scales() {
        let base = FaultPlan::chaos();
        let double = base.scaled(2.0);
        assert_eq!(double.rate_limit_per_mille, 60);
        let extreme = base.scaled(1_000.0);
        assert_eq!(extreme.rate_limit_per_mille, 1_000);
        let off = base.scaled(0.0);
        assert_eq!(off.rate_limit_per_mille, 0);
        assert_eq!(off.suspend_account_after, base.suspend_account_after);
    }
}
