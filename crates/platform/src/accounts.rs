//! Attacker-visible account management: signup, login, sessions.
//!
//! The simulated OSN lets anyone create an account (the paper's attacker
//! registers a handful of fake adult accounts) and hands out a session
//! cookie on login. Each account also carries a request counter for the
//! anti-crawling suspension rule.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};

/// One registered (attacker) account.
#[derive(Clone, Debug)]
pub struct Account {
    /// Dense index; used to diversify per-account search samples.
    pub index: usize,
    pub username: String,
    password: String,
    /// Requests served so far (anti-crawl accounting).
    pub requests: u64,
    /// Suspended by the anti-crawling rule.
    pub suspended: bool,
    /// Virtual-time stamps of requests inside the sliding suspension
    /// window (only maintained while the windowed rule is enabled).
    recent: VecDeque<u64>,
    /// Highest attempt sequence number served (replay-tolerant mode;
    /// see `hsp_http::resilient::H_ATTEMPT_SEQ`).
    last_seq: Option<u64>,
    /// Sequence number at which the account was suspended, so replays
    /// of earlier requests still succeed and replays at-or-after it
    /// still see the suspension.
    suspended_at_seq: Option<u64>,
}

/// Errors surfaced to HTTP handlers.
#[derive(Debug, PartialEq, Eq)]
pub enum AccountError {
    UsernameTaken,
    BadCredentials,
    NoSession,
    Suspended,
}

/// Registry of attacker accounts and live sessions.
#[derive(Default)]
pub struct Accounts {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    accounts: Vec<Account>,
    by_name: HashMap<String, usize>,
    /// session id -> account index
    sessions: HashMap<String, usize>,
    session_counter: u64,
}

impl Accounts {
    pub fn new() -> Self {
        Accounts::default()
    }

    /// Create an account. The platform does not verify anything — which
    /// is precisely the paper's point about unverified self-asserted
    /// ages.
    pub fn signup(&self, username: &str, password: &str) -> Result<usize, AccountError> {
        let mut inner = self.inner.lock();
        if inner.by_name.contains_key(username) {
            return Err(AccountError::UsernameTaken);
        }
        let index = inner.accounts.len();
        inner.accounts.push(Account {
            index,
            username: username.to_string(),
            password: password.to_string(),
            requests: 0,
            suspended: false,
            recent: VecDeque::new(),
            last_seq: None,
            suspended_at_seq: None,
        });
        inner.by_name.insert(username.to_string(), index);
        Ok(index)
    }

    /// Log in, returning a fresh session id.
    pub fn login(&self, username: &str, password: &str) -> Result<String, AccountError> {
        let mut inner = self.inner.lock();
        let &index = inner.by_name.get(username).ok_or(AccountError::BadCredentials)?;
        if inner.accounts[index].password != password {
            return Err(AccountError::BadCredentials);
        }
        inner.session_counter += 1;
        let sid = format!("sid-{index}-{:08x}", inner.session_counter.wrapping_mul(0x9e3779b9));
        inner.sessions.insert(sid.clone(), index);
        Ok(sid)
    }

    /// Resolve a session cookie to an account index, bumping the
    /// account's request counter and enforcing the lifetime-total
    /// suspension rule only (no windowed rule).
    pub fn authorize(&self, sid: &str, threshold: u64) -> Result<usize, AccountError> {
        self.authorize_at(sid, threshold, 0, 0, 0)
    }

    /// Like [`Accounts::authorize`], but additionally enforcing the
    /// virtual-time sliding-window rule: more than `max_in_window`
    /// requests within the last `window_ms` virtual milliseconds
    /// (as of `now_ms`) suspends the account. `max_in_window == 0`
    /// disables the windowed rule.
    pub fn authorize_at(
        &self,
        sid: &str,
        threshold: u64,
        max_in_window: u64,
        window_ms: u64,
        now_ms: u64,
    ) -> Result<usize, AccountError> {
        self.authorize_replay_aware(sid, threshold, max_in_window, window_ms, now_ms, None)
            .map(|(index, _)| index)
    }

    /// Like [`Accounts::authorize_at`], but replay-tolerant: when `seq`
    /// is present and the account has already served that sequence
    /// number, nothing is counted (no request-budget increment, no
    /// window entry) and the verdict is whatever it was the first time
    /// — allowed, or suspended if the suspension landed at or before
    /// this seq. This is what lets a crash-resumed crawler re-drive the
    /// request prefix after its last durable commit without pushing the
    /// platform's anti-crawl bookkeeping out of sync with an
    /// uninterrupted run. Returns `(index, replayed)`.
    pub fn authorize_replay_aware(
        &self,
        sid: &str,
        threshold: u64,
        max_in_window: u64,
        window_ms: u64,
        now_ms: u64,
        seq: Option<u64>,
    ) -> Result<(usize, bool), AccountError> {
        let mut inner = self.inner.lock();
        let &index = inner.sessions.get(sid).ok_or(AccountError::NoSession)?;
        let account = &mut inner.accounts[index];
        if let Some(s) = seq {
            if account.last_seq.is_some_and(|last| s <= last) {
                // Replay: reproduce the original verdict, count nothing.
                return match account.suspended_at_seq {
                    Some(at) if s >= at => Err(AccountError::Suspended),
                    _ => Ok((index, true)),
                };
            }
            account.last_seq = Some(s);
        }
        if account.suspended {
            return Err(AccountError::Suspended);
        }
        account.requests += 1;
        if account.requests > threshold {
            account.suspended = true;
            account.suspended_at_seq = seq;
            return Err(AccountError::Suspended);
        }
        if max_in_window > 0 {
            account.recent.push_back(now_ms);
            let horizon = now_ms.saturating_sub(window_ms);
            while account.recent.front().is_some_and(|&t| t < horizon) {
                account.recent.pop_front();
            }
            if account.recent.len() as u64 > max_in_window {
                account.suspended = true;
                account.suspended_at_seq = seq;
                return Err(AccountError::Suspended);
            }
        }
        Ok((index, false))
    }

    /// Suspend an account outright (scripted fault-plan escalation).
    pub fn force_suspend(&self, index: usize) {
        self.force_suspend_at(index, None);
    }

    /// Like [`Accounts::force_suspend`], recording the attempt sequence
    /// the suspension landed at so replays stay faithful.
    pub fn force_suspend_at(&self, index: usize, seq: Option<u64>) {
        let mut inner = self.inner.lock();
        let account = &mut inner.accounts[index];
        account.suspended = true;
        if account.suspended_at_seq.is_none() {
            account.suspended_at_seq = seq;
        }
    }

    /// Evict a live session (fault-plan session expiry). Returns
    /// whether the session existed.
    pub fn expire_session(&self, sid: &str) -> bool {
        self.inner.lock().sessions.remove(sid).is_some()
    }

    /// Request count for an account (tests / effort cross-checks).
    pub fn request_count(&self, index: usize) -> u64 {
        self.inner.lock().accounts[index].requests
    }

    pub fn is_suspended(&self, index: usize) -> bool {
        self.inner.lock().accounts[index].suspended
    }

    pub fn account_count(&self) -> usize {
        self.inner.lock().accounts.len()
    }

    /// Live (logged-in) session count.
    pub fn session_count(&self) -> usize {
        self.inner.lock().sessions.len()
    }

    /// Accounts tripped by the anti-crawling rule.
    pub fn suspended_count(&self) -> usize {
        self.inner.lock().accounts.iter().filter(|a| a.suspended).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signup_login_authorize_flow() {
        let accounts = Accounts::new();
        let idx = accounts.signup("spy1", "pw").unwrap();
        assert_eq!(idx, 0);
        assert_eq!(accounts.signup("spy1", "pw"), Err(AccountError::UsernameTaken));
        assert_eq!(accounts.login("spy1", "wrong"), Err(AccountError::BadCredentials));
        assert_eq!(accounts.login("nobody", "pw"), Err(AccountError::BadCredentials));
        let sid = accounts.login("spy1", "pw").unwrap();
        assert_eq!(accounts.authorize(&sid, 100), Ok(0));
        assert_eq!(accounts.authorize("bogus", 100), Err(AccountError::NoSession));
    }

    #[test]
    fn two_logins_get_distinct_sessions() {
        let accounts = Accounts::new();
        accounts.signup("a", "p").unwrap();
        let s1 = accounts.login("a", "p").unwrap();
        let s2 = accounts.login("a", "p").unwrap();
        assert_ne!(s1, s2);
        assert_eq!(accounts.authorize(&s1, 100), Ok(0));
        assert_eq!(accounts.authorize(&s2, 100), Ok(0));
    }

    #[test]
    fn suspension_after_threshold() {
        let accounts = Accounts::new();
        accounts.signup("greedy", "p").unwrap();
        let sid = accounts.login("greedy", "p").unwrap();
        for _ in 0..5 {
            assert!(accounts.authorize(&sid, 5).is_ok());
        }
        assert_eq!(accounts.authorize(&sid, 5), Err(AccountError::Suspended));
        // Stays suspended.
        assert_eq!(accounts.authorize(&sid, 5), Err(AccountError::Suspended));
        assert!(accounts.is_suspended(0));
    }

    #[test]
    fn windowed_rule_politeness_buys_headroom() {
        // Two identical budgets of 100 requests under a "max 10 per
        // virtual minute" rule. The impolite crawler fires them all at
        // the same virtual instant and is suspended on request 11; the
        // polite one spaces them 10s apart (advancing virtual time) and
        // finishes the full budget untouched.
        let accounts = Accounts::new();
        accounts.signup("impolite", "p").unwrap();
        accounts.signup("polite", "p").unwrap();
        let rude = accounts.login("impolite", "p").unwrap();
        let nice = accounts.login("polite", "p").unwrap();

        let mut rude_served = 0;
        for _ in 0..100 {
            match accounts.authorize_at(&rude, 1_000_000, 10, 60_000, 0) {
                Ok(_) => rude_served += 1,
                Err(AccountError::Suspended) => break,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert_eq!(rude_served, 10, "11th same-instant request must suspend");
        assert!(accounts.is_suspended(0));

        for i in 0..100u64 {
            let now = i * 10_000; // 10 virtual seconds of sleep per request
            accounts
                .authorize_at(&nice, 1_000_000, 10, 60_000, now)
                .expect("polite crawler must never be suspended");
        }
        assert!(!accounts.is_suspended(1));
        assert_eq!(accounts.request_count(1), 100);
    }

    #[test]
    fn windowed_rule_disabled_when_zero() {
        let accounts = Accounts::new();
        accounts.signup("a", "p").unwrap();
        let sid = accounts.login("a", "p").unwrap();
        for _ in 0..1_000 {
            accounts.authorize_at(&sid, 1_000_000, 0, 60_000, 0).unwrap();
        }
        assert!(!accounts.is_suspended(0));
    }

    #[test]
    fn force_suspend_and_session_expiry() {
        let accounts = Accounts::new();
        accounts.signup("a", "p").unwrap();
        let sid = accounts.login("a", "p").unwrap();
        assert!(accounts.expire_session(&sid));
        assert!(!accounts.expire_session(&sid), "already evicted");
        assert_eq!(accounts.authorize(&sid, 100), Err(AccountError::NoSession));
        // A fresh login works until the account itself is suspended.
        let sid = accounts.login("a", "p").unwrap();
        accounts.force_suspend(0);
        assert_eq!(accounts.authorize(&sid, 100), Err(AccountError::Suspended));
        assert_eq!(accounts.suspended_count(), 1);
    }

    #[test]
    fn request_counting() {
        let accounts = Accounts::new();
        accounts.signup("c", "p").unwrap();
        let sid = accounts.login("c", "p").unwrap();
        for _ in 0..7 {
            accounts.authorize(&sid, 100).unwrap();
        }
        assert_eq!(accounts.request_count(0), 7);
    }
}
