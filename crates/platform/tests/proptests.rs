//! Property tests for the platform: pagination must partition result
//! sets exactly, search sampling must be deterministic and respect the
//! cap, and every page render must be scrapeable back losslessly.

use hsp_graph::{
    Date, Gender, Network, PrivacySettings, ProfileContent, Registration, Role, School, SchoolId,
    SchoolKind, User, UserId,
};
use hsp_http::{DirectExchange, Exchange, Handler, Request, Status};
use hsp_platform::{Platform, PlatformConfig};
use hsp_policy::FacebookPolicy;
use proptest::prelude::*;
use std::sync::Arc;

/// Build a small adult-only world with the given friendship edges.
fn world(n_users: u64, edges: &[(u64, u64)]) -> Network {
    let mut net = Network::new(Date::ymd(2012, 3, 15));
    let city = net.add_city("X", "NY");
    let school = net.add_school(School {
        id: SchoolId(0),
        name: "HS".into(),
        city,
        kind: SchoolKind::HighSchool,
        public_enrollment_estimate: 100,
    });
    for i in 0..n_users {
        let mut profile = ProfileContent::bare(format!("U{i}"), "Tester", Gender::Male);
        profile.education.push(hsp_graph::EducationEntry::high_school(school, 2008));
        net.add_user(User {
            id: UserId(0),
            true_birth_date: Date::ymd(1988, 1, 1),
            registration: Registration {
                registered_birth_date: Date::ymd(1988, 1, 1),
                registration_date: Date::ymd(2008, 1, 1),
            },
            profile,
            privacy: PrivacySettings::facebook_adult_default(),
            role: Role::Alumnus { school, grad_year: 2008 },
        });
    }
    net.add_friendships_bulk(
        edges.iter().map(|&(a, b)| (UserId(a % n_users), UserId(b % n_users))),
    );
    net
}

fn login(handler: &Arc<dyn Handler>) -> DirectExchange {
    let mut ex = DirectExchange::new(handler.clone());
    ex.exchange(Request::post_form("/signup", &[("user", "p"), ("pass", "x")])).unwrap();
    ex.exchange(Request::post_form("/login", &[("user", "p"), ("pass", "x")])).unwrap();
    ex
}

/// Page through a listing endpoint, returning all ids in order.
fn page_all(ex: &mut DirectExchange, first_url: &str) -> Vec<UserId> {
    let mut url = first_url.to_string();
    let mut out = Vec::new();
    loop {
        let resp = ex.exchange(Request::get(&url)).unwrap();
        assert_eq!(resp.status, Status::OK, "{url}");
        let (ids, next) = hsp_crawler::parse_listing(&resp.body_string());
        out.extend(ids);
        match next {
            Some(n) => url = n,
            None => break,
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Friend-list pagination partitions the friend set exactly: no
    /// duplicates, no losses, regardless of page size.
    #[test]
    fn friends_pagination_partitions(
        n_users in 5u64..40,
        edges in prop::collection::vec((0u64..40, 0u64..40), 0..200),
        page_size in 1usize..30,
    ) {
        let net = world(n_users, &edges);
        let platform = Platform::new(
            Arc::new(net.clone()),
            Arc::new(FacebookPolicy::new()),
            PlatformConfig { friends_page_size: page_size, ..PlatformConfig::default() },
        );
        let handler = platform.into_handler();
        let mut ex = login(&handler);
        for i in 0..n_users {
            let u = UserId(i);
            let got = page_all(&mut ex, &format!("/friends/{u}"));
            let expected = net.friends(u).to_vec();
            prop_assert_eq!(got, expected, "user {}", u);
        }
    }

    /// Search results per account: deterministic across requests, capped,
    /// duplicate-free, and always a subset of the searchable pool.
    #[test]
    fn search_results_are_deterministic_capped_subsets(
        n_users in 10u64..60,
        cap in 4usize..30,
        page_size in 1usize..10,
    ) {
        let net = world(n_users, &[]);
        let platform = Platform::new(
            Arc::new(net.clone()),
            Arc::new(FacebookPolicy::new()),
            PlatformConfig {
                search_cap_per_account: cap,
                search_page_size: page_size,
                ..PlatformConfig::default()
            },
        );
        let handler = platform.into_handler();
        let mut ex = login(&handler);
        let a = page_all(&mut ex, "/find-friends?school=s0");
        let b = page_all(&mut ex, "/find-friends?school=s0");
        prop_assert_eq!(&a, &b, "same account must see identical results");
        prop_assert!(a.len() <= cap.max(n_users as usize));
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), a.len(), "duplicates in search results");
        for &u in &a {
            prop_assert!(u.index() < n_users as usize);
        }
    }

    /// Every rendered profile page scrapes back to the policy view's
    /// contents (round-trip through HTML).
    #[test]
    fn profile_pages_scrape_losslessly(
        n_users in 3u64..20,
        edges in prop::collection::vec((0u64..20, 0u64..20), 0..60),
    ) {
        let net = world(n_users, &edges);
        let policy = FacebookPolicy::new();
        let platform = Platform::new(
            Arc::new(net.clone()),
            Arc::new(policy.clone()),
            PlatformConfig::default(),
        );
        let handler = platform.into_handler();
        let mut ex = login(&handler);
        for i in 0..n_users {
            let u = UserId(i);
            let resp = ex.exchange(Request::get(format!("/profile/{u}"))).unwrap();
            let scraped = hsp_crawler::parse_profile(&resp.body_string());
            let view = hsp_policy::Policy::stranger_view(&policy, &net, u);
            prop_assert_eq!(scraped.uid, Some(u));
            prop_assert_eq!(&scraped.name, &view.name);
            prop_assert_eq!(scraped.friend_list_visible, view.friend_list_visible);
            prop_assert_eq!(scraped.message_button, view.message_button);
            prop_assert_eq!(scraped.photos_shared, view.photos_shared);
            prop_assert_eq!(
                scraped.education.len(),
                view.education.len(),
                "education mismatch for {}", u
            );
            prop_assert_eq!(scraped.is_minimal(), view.is_minimal());
        }
    }
}
