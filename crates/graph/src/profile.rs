//! User-entered profile content.
//!
//! Everything in this module is what the account owner typed into the OSN
//! — it may be incomplete (many users list no school) and, for the
//! registered birth date, may be a lie. Ground truth about the person
//! behind the account lives in [`crate::user::Role`].

use crate::date::Date;
use crate::ids::{CityId, SchoolId};
use crate::strings::Sym;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Self-reported gender.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gender {
    Female,
    Male,
    Unspecified,
}

impl fmt::Display for Gender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gender::Female => write!(f, "female"),
            Gender::Male => write!(f, "male"),
            Gender::Unspecified => write!(f, "unspecified"),
        }
    }
}

/// Relationship status as displayed on the profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelationshipStatus {
    Single,
    InARelationship,
    Engaged,
    Married,
    Complicated,
}

/// The "interested in" field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterestedIn {
    Men,
    Women,
    Both,
}

/// Kind of education entry listed on a profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EducationKind {
    HighSchool,
    College,
    GraduateSchool,
}

/// One education entry a user listed: a school plus an optional class
/// (graduation) year. A current student lists a grad year in the present
/// or future; an alumnus lists a past year.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EducationEntry {
    pub school: SchoolId,
    pub kind: EducationKind,
    pub grad_year: Option<i32>,
}

impl EducationEntry {
    pub fn high_school(school: SchoolId, grad_year: i32) -> Self {
        EducationEntry { school, kind: EducationKind::HighSchool, grad_year: Some(grad_year) }
    }

    pub fn college(school: SchoolId, grad_year: Option<i32>) -> Self {
        EducationEntry { school, kind: EducationKind::College, grad_year }
    }

    pub fn graduate_school(school: SchoolId) -> Self {
        EducationEntry { school, kind: EducationKind::GraduateSchool, grad_year: None }
    }
}

/// Contact information a user may have entered.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContactInfo {
    pub email: Option<String>,
    pub phone: Option<String>,
    pub address: Option<String>,
}

impl ContactInfo {
    pub fn is_empty(&self) -> bool {
        self.email.is_none() && self.phone.is_none() && self.address.is_none()
    }
}

/// Everything the account owner entered on their profile.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfileContent {
    /// Interned: the distinct-name universe is tiny next to the user
    /// count, so names are 4-byte symbols (see [`crate::strings`]).
    pub first_name: Sym,
    pub last_name: Sym,
    pub gender: Gender,
    /// Whether a profile photo was uploaded (the photo itself is not
    /// modelled, only its presence).
    pub has_profile_photo: bool,
    /// School / work networks the account joined. Fewer than 10 % of
    /// registered minors specify one (paper §3.1).
    pub networks: Vec<SchoolId>,
    /// Education entries (high school, college, graduate school).
    pub education: Vec<EducationEntry>,
    pub hometown: Option<CityId>,
    pub current_city: Option<CityId>,
    pub relationship: Option<RelationshipStatus>,
    pub interested_in: Option<InterestedIn>,
    /// Number of photos shared on the account (Table 5 reports averages).
    pub photos_shared: u32,
    /// Number of wall postings on the account.
    pub wall_posts: u32,
    pub contact: ContactInfo,
}

impl ProfileContent {
    /// A bare profile with just a name and gender, everything else empty.
    pub fn bare(first_name: impl Into<Sym>, last_name: impl Into<Sym>, gender: Gender) -> Self {
        ProfileContent {
            first_name: first_name.into(),
            last_name: last_name.into(),
            gender,
            has_profile_photo: true,
            networks: Vec::new(),
            education: Vec::new(),
            hometown: None,
            current_city: None,
            relationship: None,
            interested_in: None,
            photos_shared: 0,
            wall_posts: 0,
            contact: ContactInfo::default(),
        }
    }

    /// Full display name.
    pub fn full_name(&self) -> String {
        format!("{} {}", self.first_name, self.last_name)
    }

    /// The high-school education entry, if one is listed.
    pub fn listed_high_school(&self) -> Option<EducationEntry> {
        self.education.iter().copied().find(|e| e.kind == EducationKind::HighSchool)
    }

    /// All listed high-school entries (transfers may list several).
    pub fn listed_high_schools(&self) -> impl Iterator<Item = EducationEntry> + '_ {
        self.education.iter().copied().filter(|e| e.kind == EducationKind::HighSchool)
    }

    /// Whether a graduate school is listed (used by the paper's filter
    /// rules, §4.4).
    pub fn lists_graduate_school(&self) -> bool {
        self.education.iter().any(|e| e.kind == EducationKind::GraduateSchool)
    }

    /// Whether this user explicitly claims to currently attend `school`
    /// on date `today`: the school is listed as their high school with a
    /// graduation year in the current school year or later (paper §4.1
    /// step 2).
    pub fn claims_current_student(&self, school: SchoolId, senior_class_year: i32) -> bool {
        self.listed_high_schools()
            .any(|e| e.school == school && e.grad_year.is_some_and(|g| g >= senior_class_year))
    }
}

/// The registered birth date plus derived registered-age helpers.
///
/// Kept separate from [`ProfileContent`] because the OSN treats it as
/// account metadata (it determines minor/adult status) rather than a
/// profile field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Registration {
    /// Birth date entered at sign-up — possibly a lie.
    pub registered_birth_date: Date,
    /// When the account was created.
    pub registration_date: Date,
}

impl Registration {
    /// Age the OSN believes the user to be on `on`.
    pub fn registered_age(&self, on: Date) -> i32 {
        Date::age_on(self.registered_birth_date, on)
    }

    /// Whether the OSN considers this account a minor (< 18) on `on`.
    pub fn is_registered_minor(&self, on: Date) -> bool {
        self.registered_age(on) < 18
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listed_high_school_finds_hs_entry() {
        let mut p = ProfileContent::bare("Ann", "Lee", Gender::Female);
        p.education.push(EducationEntry::college(SchoolId(9), None));
        p.education.push(EducationEntry::high_school(SchoolId(1), 2014));
        let hs = p.listed_high_school().unwrap();
        assert_eq!(hs.school, SchoolId(1));
        assert_eq!(hs.grad_year, Some(2014));
    }

    #[test]
    fn claims_current_student_requires_current_or_future_year() {
        let mut p = ProfileContent::bare("Bo", "Kim", Gender::Male);
        p.education.push(EducationEntry::high_school(SchoolId(1), 2014));
        // Senior class of 2012: class of 2014 is a current (2nd-year) student.
        assert!(p.claims_current_student(SchoolId(1), 2012));
        // Senior class of 2015: class of 2014 already graduated.
        assert!(!p.claims_current_student(SchoolId(1), 2015));
        // Different school never matches.
        assert!(!p.claims_current_student(SchoolId(2), 2012));
    }

    #[test]
    fn alumnus_does_not_claim_current() {
        let mut p = ProfileContent::bare("Cy", "Row", Gender::Male);
        p.education.push(EducationEntry::high_school(SchoolId(1), 2010));
        assert!(!p.claims_current_student(SchoolId(1), 2012));
    }

    #[test]
    fn registered_minor_boundary_at_18() {
        let reg = Registration {
            registered_birth_date: Date::ymd(1994, 3, 10),
            registration_date: Date::ymd(2008, 5, 1),
        };
        assert!(reg.is_registered_minor(Date::ymd(2012, 3, 9)));
        assert!(!reg.is_registered_minor(Date::ymd(2012, 3, 10)));
        assert_eq!(reg.registered_age(Date::ymd(2012, 3, 10)), 18);
    }

    #[test]
    fn grad_school_filter_flag() {
        let mut p = ProfileContent::bare("Di", "Wu", Gender::Female);
        assert!(!p.lists_graduate_school());
        p.education.push(EducationEntry::graduate_school(SchoolId(3)));
        assert!(p.lists_graduate_school());
    }

    #[test]
    fn contact_info_emptiness() {
        let mut c = ContactInfo::default();
        assert!(c.is_empty());
        c.phone = Some("555-0100".into());
        assert!(!c.is_empty());
    }
}
