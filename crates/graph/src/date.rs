//! A minimal proleptic-Gregorian calendar date.
//!
//! The simulator needs birth dates, registration dates, school-year
//! arithmetic and age computation, but nothing about wall-clock time or
//! time zones, so a ~small self-contained `Date` type is preferable to a
//! full calendar dependency. The day-count conversion follows Howard
//! Hinnant's `days_from_civil` algorithm, which is exact over the whole
//! proleptic Gregorian calendar.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A calendar date (proleptic Gregorian).
///
/// Ordering is chronological. The internal representation is the civil
/// year/month/day triple; [`Date::to_days`] converts to a linear day count
/// (days since 1970-01-01) for arithmetic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Date {
    year: i32,
    /// 1..=12
    month: u8,
    /// 1..=31, validated against the month length
    day: u8,
}

/// Error returned when constructing a [`Date`] from invalid components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidDate {
    pub year: i32,
    pub month: u8,
    pub day: u8,
}

impl fmt::Display for InvalidDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid date {:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl std::error::Error for InvalidDate {}

impl Date {
    /// Construct a date, validating month and day ranges.
    pub fn new(year: i32, month: u8, day: u8) -> Result<Self, InvalidDate> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return Err(InvalidDate { year, month, day });
        }
        Ok(Date { year, month, day })
    }

    /// Construct a date, panicking on invalid components.
    ///
    /// Intended for literals in tests and scenario definitions.
    pub fn ymd(year: i32, month: u8, day: u8) -> Self {
        Self::new(year, month, day).expect("valid date literal")
    }

    pub fn year(&self) -> i32 {
        self.year
    }

    pub fn month(&self) -> u8 {
        self.month
    }

    pub fn day(&self) -> u8 {
        self.day
    }

    /// Days since the epoch 1970-01-01 (negative before it).
    pub fn to_days(&self) -> i64 {
        days_from_civil(self.year, self.month, self.day)
    }

    /// Inverse of [`Date::to_days`].
    pub fn from_days(days: i64) -> Self {
        let (year, month, day) = civil_from_days(days);
        Date { year, month, day }
    }

    /// The date `n` days after (`n` may be negative) this one.
    pub fn add_days(&self, n: i64) -> Self {
        Self::from_days(self.to_days() + n)
    }

    /// Signed number of days from `self` to `other` (positive if `other`
    /// is later).
    pub fn days_until(&self, other: Date) -> i64 {
        other.to_days() - self.to_days()
    }

    /// Completed years between a birth date and a reference date — i.e.
    /// the person's age on `on`, accounting for whether the birthday has
    /// passed yet that year.
    pub fn age_on(birth: Date, on: Date) -> i32 {
        let mut age = on.year - birth.year;
        if (on.month, on.day) < (birth.month, birth.day) {
            age -= 1;
        }
        age
    }

    /// Whether `self` falls strictly before `other`'s month/day within any
    /// year (used for birthday arithmetic).
    pub fn month_day(&self) -> (u8, u8) {
        (self.month, self.day)
    }
}

impl PartialOrd for Date {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Date {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.year, self.month, self.day).cmp(&(other.year, other.month, other.day))
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl fmt::Debug for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Date({self})")
    }
}

/// True for Gregorian leap years.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in the given month of the given year.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Hinnant's `days_from_civil`: days since 1970-01-01.
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Hinnant's `civil_from_days`: inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m as u8, d as u8)
}

/// School-year arithmetic for US four-year high schools.
///
/// The school year is taken to roll over on July 1: a student who
/// graduates in June of year `g` is in the class of `g`, and on any date
/// between July 1 of `g-1` and June 30 of `g` a class-of-`g` senior is in
/// their fourth year.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchoolCalendar {
    /// Month on which the school year rolls over (1..=12); default 7.
    pub rollover_month: u8,
}

impl Default for SchoolCalendar {
    fn default() -> Self {
        SchoolCalendar { rollover_month: 7 }
    }
}

impl SchoolCalendar {
    /// The graduation year of the class currently in its *final* year on
    /// date `on`. E.g. in March 2012 the seniors are the class of 2012; in
    /// September 2012 they are the class of 2013.
    pub fn senior_class_year(&self, on: Date) -> i32 {
        if on.month() >= self.rollover_month {
            on.year() + 1
        } else {
            on.year()
        }
    }

    /// School year index (1 = first year/freshman .. 4 = senior) of the
    /// class of `grad_year` on date `on`, or `None` if that class is not
    /// currently enrolled in a four-year school.
    pub fn year_index(&self, grad_year: i32, on: Date) -> Option<u8> {
        let senior = self.senior_class_year(on);
        let offset = grad_year - senior; // 0 for seniors, 3 for freshmen
        if (0..4).contains(&offset) {
            Some((4 - offset) as u8)
        } else {
            None
        }
    }

    /// Graduation years of the four classes currently enrolled on `on`,
    /// ordered from first-years (index 0) to seniors (index 3).
    pub fn enrolled_classes(&self, on: Date) -> [i32; 4] {
        let senior = self.senior_class_year(on);
        [senior + 3, senior + 2, senior + 1, senior]
    }

    /// True if the class of `grad_year` is currently enrolled on `on`.
    pub fn is_current_student_class(&self, grad_year: i32, on: Date) -> bool {
        self.year_index(grad_year, on).is_some()
    }

    /// A typical birth year for a student in the class of `grad_year`:
    /// US students usually turn 18 during their final school year.
    pub fn typical_birth_year(&self, grad_year: i32) -> i32 {
        grad_year - 18
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::ymd(1970, 1, 1).to_days(), 0);
        assert_eq!(Date::from_days(0), Date::ymd(1970, 1, 1));
    }

    #[test]
    fn known_day_counts() {
        assert_eq!(Date::ymd(2012, 3, 1).to_days(), 15400);
        assert_eq!(Date::ymd(1969, 12, 31).to_days(), -1);
        assert_eq!(Date::ymd(2000, 2, 29).to_days(), 11016);
    }

    #[test]
    fn rejects_invalid_dates() {
        assert!(Date::new(2012, 2, 30).is_err());
        assert!(Date::new(2012, 13, 1).is_err());
        assert!(Date::new(2012, 0, 1).is_err());
        assert!(Date::new(2012, 6, 0).is_err());
        assert!(Date::new(2011, 2, 29).is_err());
        assert!(Date::new(2012, 2, 29).is_ok());
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2012));
        assert!(!is_leap_year(2013));
    }

    #[test]
    fn add_days_crosses_month_and_year() {
        assert_eq!(Date::ymd(2012, 12, 31).add_days(1), Date::ymd(2013, 1, 1));
        assert_eq!(Date::ymd(2012, 3, 1).add_days(-1), Date::ymd(2012, 2, 29));
        assert_eq!(Date::ymd(2012, 1, 15).add_days(365), Date::ymd(2013, 1, 14));
    }

    #[test]
    fn age_respects_birthday_boundary() {
        let birth = Date::ymd(1999, 6, 15);
        assert_eq!(Date::age_on(birth, Date::ymd(2012, 6, 14)), 12);
        assert_eq!(Date::age_on(birth, Date::ymd(2012, 6, 15)), 13);
        assert_eq!(Date::age_on(birth, Date::ymd(2012, 6, 16)), 13);
        assert_eq!(Date::age_on(birth, Date::ymd(2017, 6, 14)), 17);
        assert_eq!(Date::age_on(birth, Date::ymd(2017, 6, 15)), 18);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(Date::ymd(2011, 12, 31) < Date::ymd(2012, 1, 1));
        assert!(Date::ymd(2012, 1, 2) > Date::ymd(2012, 1, 1));
        assert_eq!(Date::ymd(2012, 1, 1), Date::ymd(2012, 1, 1));
    }

    #[test]
    fn school_calendar_march_2012() {
        // The paper collected HS1 data in March 2012: seniors are the
        // class of 2012, freshmen the class of 2015.
        let cal = SchoolCalendar::default();
        let on = Date::ymd(2012, 3, 15);
        assert_eq!(cal.senior_class_year(on), 2012);
        assert_eq!(cal.enrolled_classes(on), [2015, 2014, 2013, 2012]);
        assert_eq!(cal.year_index(2012, on), Some(4));
        assert_eq!(cal.year_index(2015, on), Some(1));
        assert_eq!(cal.year_index(2016, on), None);
        assert_eq!(cal.year_index(2011, on), None);
    }

    #[test]
    fn school_calendar_rolls_over_in_july() {
        let cal = SchoolCalendar::default();
        assert_eq!(cal.senior_class_year(Date::ymd(2012, 6, 30)), 2012);
        assert_eq!(cal.senior_class_year(Date::ymd(2012, 7, 1)), 2013);
    }

    #[test]
    fn typical_birth_year_is_grad_minus_18() {
        let cal = SchoolCalendar::default();
        assert_eq!(cal.typical_birth_year(2012), 1994);
        assert_eq!(cal.typical_birth_year(2015), 1997);
    }
}
