//! Interned strings for the high-duplication text fields.
//!
//! A million-user world stores a few tens of thousands of *distinct*
//! names (the generator's name tables are finite), yet the naive layout
//! pays a heap `String` — pointer, capacity, allocation — per user per
//! field. [`Sym`] replaces those fields with a 4-byte symbol into a
//! process-wide interner: same text ⇒ same symbol, so equality is an
//! integer compare and `User` loses four pointer-sized fields of cold
//! cache lines.
//!
//! Interned text is leaked (`&'static str`): the universe of distinct
//! strings is bounded by the name tables (tens of thousands of short
//! strings, well under a megabyte), so the arena is effectively a
//! static table built on first use.
//!
//! Serialization round-trips through the *text*, never the raw symbol
//! id — symbol numbering depends on interning order, which differs
//! across thread counts and processes, so ids must never escape the
//! process. This keeps `Network::fingerprint` bit-identical to the
//! pre-interning `String` layout.

use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string: a 4-byte handle that compares, hashes and
/// displays like the text it names.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Sym(u32);

struct Interner {
    /// text -> id. Keys borrow from the leaked arena strings.
    map: HashMap<&'static str, u32>,
    /// id -> text.
    table: Vec<&'static str>,
}

fn pool() -> &'static RwLock<Interner> {
    static POOL: OnceLock<RwLock<Interner>> = OnceLock::new();
    POOL.get_or_init(|| {
        let mut i = Interner { map: HashMap::new(), table: Vec::new() };
        // Symbol 0 is always the empty string, so `Sym::default()`
        // needs no lock.
        i.map.insert("", 0);
        i.table.push("");
        RwLock::new(i)
    })
}

impl Sym {
    /// Intern `text`, returning its symbol. Repeated calls with equal
    /// text return the same symbol and take only a read lock.
    pub fn new(text: &str) -> Sym {
        let p = pool();
        if let Some(&id) = p.read().expect("interner poisoned").map.get(text) {
            return Sym(id);
        }
        let mut w = p.write().expect("interner poisoned");
        if let Some(&id) = w.map.get(text) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(text.to_owned().into_boxed_str());
        let id = u32::try_from(w.table.len()).expect("interner overflow");
        w.table.push(leaked);
        w.map.insert(leaked, id);
        Sym(id)
    }

    /// The interned text. `'static` because the arena never frees.
    pub fn as_str(self) -> &'static str {
        pool().read().expect("interner poisoned").table[self.0 as usize]
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::new(&s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        Sym::new(s)
    }
}

impl From<Sym> for String {
    fn from(s: Sym) -> String {
        s.as_str().to_owned()
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl Serialize for Sym {
    fn to_json_value(&self) -> Value {
        Value::String(self.as_str().to_owned())
    }
}

impl<'de> Deserialize<'de> for Sym {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::String(s) => Ok(Sym::new(s)),
            other => Err(format!("expected string for Sym, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_text_same_symbol() {
        let a = Sym::new("Ada");
        let b = Sym::from("Ada".to_string());
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "Ada");
        assert_ne!(a, Sym::new("Bo"));
    }

    #[test]
    fn default_is_empty() {
        assert_eq!(Sym::default().as_str(), "");
        assert!(Sym::default().is_empty());
        assert_eq!(Sym::default(), Sym::new(""));
    }

    #[test]
    fn display_and_string_conversions() {
        let s = Sym::new("Hill Valley");
        assert_eq!(format!("{s}"), "Hill Valley");
        assert_eq!(String::from(s), "Hill Valley");
        assert!(s == "Hill Valley");
    }

    #[test]
    fn serde_round_trips_text_not_ids() {
        let s = Sym::new("Westbrook");
        let v = s.to_json_value();
        assert_eq!(v.as_str(), Some("Westbrook"));
        let back = Sym::from_json_value(&v).unwrap();
        assert_eq!(back, s);
        assert!(Sym::from_json_value(&Value::Number(serde::value::Number::PosInt(3))).is_err());
    }

    #[test]
    fn concurrent_interning_converges() {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..64).map(|i| Sym::new(&format!("w{}", (i * 7) % 16))).collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for row in &all[1..] {
            assert_eq!(row, &all[0]);
        }
    }
}
