//! Strongly-typed identifiers for the simulated social network.
//!
//! All identifiers are dense indices assigned by the generator, so they
//! double as `Vec` indices in [`crate::network::Network`]. The newtype
//! wrappers prevent mixing a user id with a school id at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $repr:ty) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub $repr);

        impl $name {
            /// The raw index value.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a raw index.
            pub fn from_index(i: usize) -> Self {
                $name(i as $repr)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// A registered OSN account. Dense index into the network's user table.
    UserId,
    "u",
    u64
);

id_type!(
    /// A high school (or college) known to the OSN's education directory.
    SchoolId,
    "s",
    u32
);

id_type!(
    /// A city in the simulated geography.
    CityId,
    "c",
    u32
);

id_type!(
    /// A household: a street address shared by a family (ground truth
    /// for the §2 voter-record linking threat).
    HouseholdId,
    "h",
    u32
);

impl UserId {
    /// Parse the canonical textual form produced by `Display` (`u<digits>`),
    /// as found in scraped profile URLs.
    pub fn parse(s: &str) -> Option<UserId> {
        s.strip_prefix('u')?.parse().ok().map(UserId)
    }
}

impl SchoolId {
    /// Parse the canonical textual form (`s<digits>`).
    pub fn parse(s: &str) -> Option<SchoolId> {
        s.strip_prefix('s')?.parse().ok().map(SchoolId)
    }
}

impl CityId {
    /// Parse the canonical textual form (`c<digits>`).
    pub fn parse(s: &str) -> Option<CityId> {
        s.strip_prefix('c')?.parse().ok().map(CityId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_parse() {
        let u = UserId(42);
        assert_eq!(u.to_string(), "u42");
        assert_eq!(UserId::parse("u42"), Some(u));
        assert_eq!(SchoolId::parse(&SchoolId(7).to_string()), Some(SchoolId(7)));
        assert_eq!(CityId::parse(&CityId(0).to_string()), Some(CityId(0)));
    }

    #[test]
    fn parse_rejects_malformed_ids() {
        assert_eq!(UserId::parse("42"), None);
        assert_eq!(UserId::parse("s42"), None);
        assert_eq!(UserId::parse("u"), None);
        assert_eq!(UserId::parse("u4x2"), None);
        assert_eq!(UserId::parse(""), None);
    }

    #[test]
    fn ids_index_round_trip() {
        assert_eq!(UserId::from_index(9).index(), 9);
        assert_eq!(SchoolId::from_index(3).index(), 3);
    }
}
