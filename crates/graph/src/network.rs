//! The assembled social network: users, friendships, schools, cities and
//! the simulated "today".

use crate::date::{Date, SchoolCalendar};
use crate::friendship::{Circles, FriendGraph};
use crate::household::Households;
use crate::ids::{CityId, SchoolId, UserId};
use crate::interactions::Interactions;
use crate::school::{City, School};
use crate::strings::Sym;
use crate::user::{Role, User};
use serde::value::{Map, Value};
use serde::{Deserialize, Serialize};

/// The complete simulated OSN state plus generator-side ground truth.
///
/// The platform crate serves *views* of this structure filtered through
/// the privacy-policy engine; evaluation code reads the ground-truth
/// accessors directly (playing the role of the paper's confidential
/// school rosters).
///
/// # Sealing
///
/// A freshly built network is mutable ("building" layout). Calling
/// [`Network::seal`] freezes it for attack-time reads: the friendship
/// adjacency compacts into CSR form, hot per-user fields (role tag,
/// school, graduation year, privacy tier) are mirrored into
/// struct-of-arrays columns, and per-school "lister" indexes replace
/// the full-population scans behind school search. Sealing never
/// changes observable behaviour — every accessor answers identically
/// and [`Network::fingerprint`] is bit-identical — and any mutating
/// accessor transparently unseals first.
#[derive(Clone, Debug)]
pub struct Network {
    /// The simulated current date (the paper's crawls: March/June 2012).
    pub today: Date,
    pub calendar: SchoolCalendar,
    users: Vec<User>,
    friends: FriendGraph,
    schools: Vec<School>,
    cities: Vec<City>,
    households: Households,
    /// Asymmetric circle membership (Google+ mode; empty under
    /// Facebook-style symmetric friendship).
    circles: Circles,
    /// Pairwise interaction intensity (wall posts between friends).
    interactions: Interactions,
    /// Seal-time read indexes; dropped on any mutation. Never
    /// serialized — rebuilt by re-sealing after a round-trip.
    seal: Option<SealIndex>,
}

/// Struct-of-arrays mirror of the per-user fields that attack-time
/// scans touch, so a roster or searchability pass walks a few flat
/// byte/int columns instead of dragging every `User`'s cold `String`
/// and `Vec` cache lines through the core.
#[derive(Clone, Debug)]
pub struct UserColumns {
    /// Role discriminant (`UserColumns::CURRENT_STUDENT`, ...).
    role_tag: Vec<u8>,
    /// Role school index, `u32::MAX` when the role has none.
    role_school: Vec<u32>,
    /// Role graduation year, `0` when the role has none.
    grad_year: Vec<i32>,
    /// Packed privacy tier (`PUBLIC_SEARCH` | `EDUCATION_VISIBLE` | ...).
    privacy: Vec<u8>,
}

impl UserColumns {
    pub const CURRENT_STUDENT: u8 = 1;
    pub const FORMER_STUDENT: u8 = 2;
    pub const ALUMNUS: u8 = 3;
    pub const PARENT: u8 = 4;
    pub const OTHER_RESIDENT: u8 = 5;
    pub const NON_RESIDENT: u8 = 6;

    pub const PUBLIC_SEARCH: u8 = 1 << 0;
    pub const EDUCATION_VISIBLE: u8 = 1 << 1;
    pub const FRIEND_LIST_VISIBLE: u8 = 1 << 2;
    pub const WALL_VISIBLE: u8 = 1 << 3;

    fn build(users: &[User]) -> UserColumns {
        let mut c = UserColumns {
            role_tag: Vec::with_capacity(users.len()),
            role_school: Vec::with_capacity(users.len()),
            grad_year: Vec::with_capacity(users.len()),
            privacy: Vec::with_capacity(users.len()),
        };
        for u in users {
            let (tag, school, year) = match u.role {
                Role::CurrentStudent { school, grad_year } => {
                    (Self::CURRENT_STUDENT, school.index() as u32, grad_year)
                }
                Role::FormerStudent { school, grad_year } => {
                    (Self::FORMER_STUDENT, school.index() as u32, grad_year)
                }
                Role::Alumnus { school, grad_year } => {
                    (Self::ALUMNUS, school.index() as u32, grad_year)
                }
                Role::Parent { .. } => (Self::PARENT, u32::MAX, 0),
                Role::OtherResident => (Self::OTHER_RESIDENT, u32::MAX, 0),
                Role::NonResident => (Self::NON_RESIDENT, u32::MAX, 0),
            };
            c.role_tag.push(tag);
            c.role_school.push(school);
            c.grad_year.push(year);
            let mut p = 0u8;
            if u.privacy.public_search {
                p |= Self::PUBLIC_SEARCH;
            }
            if u.privacy.education.visible_to_stranger() {
                p |= Self::EDUCATION_VISIBLE;
            }
            if u.privacy.friend_list.visible_to_stranger() {
                p |= Self::FRIEND_LIST_VISIBLE;
            }
            if u.privacy.wall.visible_to_stranger() {
                p |= Self::WALL_VISIBLE;
            }
            c.privacy.push(p);
        }
        c
    }

    pub fn len(&self) -> usize {
        self.role_tag.len()
    }

    pub fn is_empty(&self) -> bool {
        self.role_tag.is_empty()
    }

    pub fn role_tag(&self, u: UserId) -> u8 {
        self.role_tag[u.index()]
    }

    /// The school the role is tied to, if any.
    pub fn role_school(&self, u: UserId) -> Option<SchoolId> {
        match self.role_school[u.index()] {
            u32::MAX => None,
            s => Some(SchoolId(s)),
        }
    }

    /// The role's graduation year (current/former/alumni roles only).
    pub fn role_grad_year(&self, u: UserId) -> Option<i32> {
        match self.role_tag[u.index()] {
            Self::CURRENT_STUDENT | Self::FORMER_STUDENT | Self::ALUMNUS => {
                Some(self.grad_year[u.index()])
            }
            _ => None,
        }
    }

    /// Packed privacy-tier bits for `u`.
    pub fn privacy_bits(&self, u: UserId) -> u8 {
        self.privacy[u.index()]
    }

    pub fn public_search(&self, u: UserId) -> bool {
        self.privacy[u.index()] & Self::PUBLIC_SEARCH != 0
    }
}

/// Everything [`Network::seal`] precomputes.
#[derive(Clone, Debug)]
struct SealIndex {
    columns: UserColumns,
    /// Per school: users whose *profile* ties them to the school
    /// (an education entry or a joined network), in id order. This is
    /// a superset of any policy's searchable pool — both the Facebook
    /// and Google+ search rules require a profile school listing — so
    /// search indexing filters these few thousand candidates instead
    /// of scanning the whole population per school.
    listers: Vec<Vec<UserId>>,
}

impl SealIndex {
    fn build(users: &[User], schools: usize) -> SealIndex {
        let columns = UserColumns::build(users);
        let mut listers = vec![Vec::new(); schools];
        for u in users {
            // Collect each user at most once per distinct school.
            let mut push = |s: SchoolId| {
                if let Some(list) = listers.get_mut(s.index()) {
                    if list.last() != Some(&u.id) {
                        list.push(u.id);
                    }
                }
            };
            for e in &u.profile.education {
                push(e.school);
            }
            for &n in &u.profile.networks {
                push(n);
            }
        }
        // `push` dedups only consecutive repeats within one profile;
        // a school listed in both education and networks needs a real
        // dedup pass. Users arrive in id order, so lists stay sorted.
        for list in &mut listers {
            list.dedup();
        }
        SealIndex { columns, listers }
    }
}

impl Network {
    pub fn new(today: Date) -> Self {
        Self::with_capacity(today, 0)
    }

    /// [`Network::new`] with room for `users` accounts, so metro-scale
    /// builds don't re-grow the user and adjacency tables on every
    /// insert.
    pub fn with_capacity(today: Date, users: usize) -> Self {
        let mut friends = FriendGraph::default();
        friends.reserve(users);
        Network {
            today,
            calendar: SchoolCalendar::default(),
            users: Vec::with_capacity(users),
            friends,
            schools: Vec::new(),
            cities: Vec::new(),
            households: Households::new(),
            circles: Circles::default(),
            interactions: Interactions::default(),
            seal: None,
        }
    }

    /// Reserve room for `additional` more users.
    pub fn reserve(&mut self, additional: usize) {
        self.users.reserve(additional);
        self.friends.reserve(self.users.len() + additional);
    }

    // ----- sealing ---------------------------------------------------------

    /// Freeze the network for attack-time reads: compact the adjacency
    /// into CSR form and build the SoA columns + per-school lister
    /// indexes. Idempotent. See the type-level docs for the contract.
    pub fn seal(&mut self) {
        self.friends.seal();
        if self.seal.is_none() {
            self.seal = Some(SealIndex::build(&self.users, self.schools.len()));
        }
    }

    pub fn is_sealed(&self) -> bool {
        self.seal.is_some()
    }

    /// Drop seal-time indexes (called by every mutating accessor; the
    /// adjacency thaws lazily inside [`FriendGraph`]).
    fn unseal(&mut self) {
        self.seal = None;
    }

    /// Seal-time SoA columns, if sealed.
    pub fn sealed_columns(&self) -> Option<&UserColumns> {
        self.seal.as_ref().map(|s| &s.columns)
    }

    /// Seal-time school-lister index: every user whose profile ties
    /// them to `school`, in id order. `None` when unsealed (callers
    /// fall back to a full scan).
    pub fn school_listers(&self, school: SchoolId) -> Option<&[UserId]> {
        self.seal.as_ref().map(|s| s.listers.get(school.index()).map(Vec::as_slice).unwrap_or(&[]))
    }

    // ----- construction ---------------------------------------------------

    /// Register a city, returning its id.
    pub fn add_city(&mut self, name: impl Into<Sym>, state: impl Into<Sym>) -> CityId {
        self.unseal();
        let id = CityId::from_index(self.cities.len());
        self.cities.push(City { id, name: name.into(), state: state.into() });
        id
    }

    /// Register a school, returning its id.
    pub fn add_school(&mut self, school: School) -> SchoolId {
        self.unseal();
        let id = SchoolId::from_index(self.schools.len());
        let mut school = school;
        school.id = id;
        self.schools.push(school);
        id
    }

    /// Add a user; the `id` field is overwritten with the assigned id.
    pub fn add_user(&mut self, mut user: User) -> UserId {
        self.unseal();
        let id = UserId::from_index(self.users.len());
        user.id = id;
        self.users.push(user);
        self.friends.ensure_users(self.users.len());
        id
    }

    /// Add a symmetric friendship.
    pub fn add_friendship(&mut self, a: UserId, b: UserId) -> bool {
        debug_assert!(a.index() < self.users.len() && b.index() < self.users.len());
        self.unseal();
        self.friends.add_friendship(a, b)
    }

    /// Bulk-insert friendships (see [`FriendGraph::bulk_insert`]).
    pub fn add_friendships_bulk(&mut self, edges: impl IntoIterator<Item = (UserId, UserId)>) {
        self.unseal();
        self.friends.bulk_insert(edges);
        self.friends.ensure_users(self.users.len());
    }

    /// Install a pre-built (typically CSR, via
    /// [`FriendGraph::from_edge_list`]) adjacency wholesale — the
    /// metro-scale path that never materializes per-user edge `Vec`s.
    /// The graph is grown to cover every user.
    pub fn set_friend_graph(&mut self, mut friends: FriendGraph) {
        self.unseal();
        friends.ensure_users(self.users.len());
        self.friends = friends;
    }

    /// Remove a symmetric friendship (live-world defriending). Returns
    /// `true` if the edge existed.
    pub fn remove_friendship(&mut self, a: UserId, b: UserId) -> bool {
        self.unseal();
        self.friends.remove_friendship(a, b)
    }

    /// Content hash of the entire network (FNV-1a over the canonical
    /// serialized form). Two networks fingerprint equal iff every user,
    /// edge, household, circle and interaction matches — the cheap
    /// bit-identity check behind the sharded generator's 1-thread ≡
    /// N-thread guarantee.
    ///
    /// Streams the serialized form through the hash instead of
    /// materializing it: a metro-scale world's JSON runs to gigabytes,
    /// so building the full `Value` tree (as `serde_json::to_vec`
    /// would) would dwarf the network's own memory footprint. The
    /// byte stream is pinned identical to `serde_json::to_vec(self)`
    /// by `streamed_fingerprint_matches_rendered`.
    pub fn fingerprint(&self) -> u64 {
        let mut s = FnvStream::new();
        s.raw("{\"calendar\":");
        s.value(&self.calendar.to_json_value());
        s.raw(",\"circles\":{\"inc\":");
        let (inc, out) = self.circles.fingerprint_parts();
        s.uid_lists(inc.iter().map(Vec::as_slice), inc.len());
        s.raw(",\"out\":");
        s.uid_lists(out.iter().map(Vec::as_slice), out.len());
        s.raw("},\"cities\":");
        s.value(&self.cities.to_json_value());
        s.raw(",\"friends\":{\"adj\":");
        s.uid_lists(self.friends.iter_lists(), self.friends.len());
        s.raw("},\"households\":{\"households\":");
        let (households, of_user) = self.households.fingerprint_parts();
        s.values(households.iter().map(|h| h.to_json_value()), households.len());
        s.raw(",\"of_user\":");
        s.values(of_user.iter().map(|h| h.to_json_value()), of_user.len());
        s.raw("},\"interactions\":{\"per_user\":");
        let per_user = self.interactions.fingerprint_parts();
        if per_user.is_empty() {
            s.raw("[]");
        } else {
            s.raw("[");
            for (i, partners) in per_user.iter().enumerate() {
                if i > 0 {
                    s.raw(",");
                }
                s.pair_list(partners);
            }
            s.raw("]");
        }
        s.raw("},\"schools\":");
        s.value(&self.schools.to_json_value());
        s.raw(",\"today\":");
        s.value(&self.today.to_json_value());
        s.raw(",\"users\":");
        s.values(self.users.iter().map(|u| u.to_json_value()), self.users.len());
        s.raw("}");
        s.finish()
    }

    // ----- accessors -------------------------------------------------------

    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    pub fn user(&self, id: UserId) -> &User {
        &self.users[id.index()]
    }

    pub fn try_user(&self, id: UserId) -> Option<&User> {
        self.users.get(id.index())
    }

    pub fn user_mut(&mut self, id: UserId) -> &mut User {
        self.unseal();
        &mut self.users[id.index()]
    }

    pub fn users(&self) -> impl Iterator<Item = &User> {
        self.users.iter()
    }

    pub fn user_ids(&self) -> impl Iterator<Item = UserId> {
        (0..self.users.len()).map(UserId::from_index)
    }

    pub fn school(&self, id: SchoolId) -> &School {
        &self.schools[id.index()]
    }

    pub fn schools(&self) -> &[School] {
        &self.schools
    }

    pub fn city(&self, id: CityId) -> &City {
        &self.cities[id.index()]
    }

    pub fn cities(&self) -> &[City] {
        &self.cities
    }

    pub fn friend_graph(&self) -> &FriendGraph {
        &self.friends
    }

    /// Asymmetric circles (Google+, paper Appendix A).
    pub fn circles(&self) -> &Circles {
        &self.circles
    }

    pub fn circles_mut(&mut self) -> &mut Circles {
        self.unseal();
        &mut self.circles
    }

    /// Pairwise interactions (wall-post counts between friends).
    pub fn interactions(&self) -> &Interactions {
        &self.interactions
    }

    pub fn interactions_mut(&mut self) -> &mut Interactions {
        self.unseal();
        &mut self.interactions
    }

    /// Ground-truth households (the substrate behind public records).
    pub fn households(&self) -> &Households {
        &self.households
    }

    pub fn households_mut(&mut self) -> &mut Households {
        self.unseal();
        &mut self.households
    }

    /// Sorted friend list of `u` (ground truth; the platform decides who
    /// may *see* it).
    pub fn friends(&self, u: UserId) -> &[UserId] {
        self.friends.friends(u)
    }

    pub fn are_friends(&self, a: UserId, b: UserId) -> bool {
        self.friends.are_friends(a, b)
    }

    // ----- paper definitions ----------------------------------------------

    /// The paper's stranger test (§3): `viewer` is a stranger to `target`
    /// iff they are not friends, share no mutual friend, and share no
    /// school/work network.
    pub fn is_stranger(&self, viewer: UserId, target: UserId) -> bool {
        if viewer == target || self.are_friends(viewer, target) {
            return false;
        }
        if self.friends.mutual_friend_count(viewer, target) > 0 {
            return false;
        }
        let vn = &self.user(viewer).profile.networks;
        let tn = &self.user(target).profile.networks;
        !vn.iter().any(|n| tn.contains(n))
    }

    /// Whether the OSN currently considers `u` a minor.
    pub fn is_registered_minor(&self, u: UserId) -> bool {
        self.user(u).is_registered_minor(self.today)
    }

    /// Whether `u` is actually a minor today (ground truth).
    pub fn is_true_minor(&self, u: UserId) -> bool {
        self.user(u).is_true_minor(self.today)
    }

    /// The graduation year of the current senior class.
    pub fn senior_class_year(&self) -> i32 {
        self.calendar.senior_class_year(self.today)
    }

    // ----- ground-truth rosters (the "confidential channel") ---------------

    /// Ground-truth set `M`: user ids of all *actual* current students of
    /// `school` with accounts, sorted by id.
    pub fn roster(&self, school: SchoolId) -> Vec<UserId> {
        if let Some(s) = &self.seal {
            let c = &s.columns;
            return (0..c.role_tag.len())
                .filter(|&i| {
                    c.role_tag[i] == UserColumns::CURRENT_STUDENT
                        && c.role_school[i] == school.index() as u32
                })
                .map(UserId::from_index)
                .collect();
        }
        self.users.iter().filter(|u| u.role.is_current_student_at(school)).map(|u| u.id).collect()
    }

    /// Ground-truth roster restricted to the class of `grad_year`.
    pub fn roster_for_class(&self, school: SchoolId, grad_year: i32) -> Vec<UserId> {
        if let Some(s) = &self.seal {
            let c = &s.columns;
            return (0..c.role_tag.len())
                .filter(|&i| {
                    c.role_tag[i] == UserColumns::CURRENT_STUDENT
                        && c.role_school[i] == school.index() as u32
                        && c.grad_year[i] == grad_year
                })
                .map(UserId::from_index)
                .collect();
        }
        self.users
            .iter()
            .filter(|u| {
                matches!(u.role, Role::CurrentStudent { school: s, grad_year: g }
                    if s == school && g == grad_year)
            })
            .map(|u| u.id)
            .collect()
    }

    /// Ground-truth alumni of `school` who graduated in `grad_year`.
    pub fn alumni_of_class(&self, school: SchoolId, grad_year: i32) -> Vec<UserId> {
        if let Some(s) = &self.seal {
            let c = &s.columns;
            return (0..c.role_tag.len())
                .filter(|&i| {
                    c.role_tag[i] == UserColumns::ALUMNUS
                        && c.role_school[i] == school.index() as u32
                        && c.grad_year[i] == grad_year
                })
                .map(UserId::from_index)
                .collect();
        }
        self.users
            .iter()
            .filter(|u| {
                matches!(u.role, Role::Alumnus { school: s, grad_year: g }
                    if s == school && g == grad_year)
            })
            .map(|u| u.id)
            .collect()
    }

    /// The ground-truth graduation year of a current student, if any.
    pub fn student_grad_year(&self, u: UserId) -> Option<i32> {
        if let Some(s) = &self.seal {
            let c = &s.columns;
            return if c.role_tag[u.index()] == UserColumns::CURRENT_STUDENT {
                Some(c.grad_year[u.index()])
            } else {
                None
            };
        }
        match self.user(u).role {
            Role::CurrentStudent { grad_year, .. } => Some(grad_year),
            _ => None,
        }
    }
}

// Hand-written serde over exactly the nine legacy fields: the `seal`
// index must never serialize (it is derived state, and including it
// would shift every pre-existing fingerprint). Key order is irrelevant
// to the byte stream — the `Value` object is a BTreeMap.
impl Serialize for Network {
    fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("today".to_string(), self.today.to_json_value());
        m.insert("calendar".to_string(), self.calendar.to_json_value());
        m.insert("users".to_string(), self.users.to_json_value());
        m.insert("friends".to_string(), self.friends.to_json_value());
        m.insert("schools".to_string(), self.schools.to_json_value());
        m.insert("cities".to_string(), self.cities.to_json_value());
        m.insert("households".to_string(), self.households.to_json_value());
        m.insert("circles".to_string(), self.circles.to_json_value());
        m.insert("interactions".to_string(), self.interactions.to_json_value());
        Value::Object(m)
    }
}

impl<'de> Deserialize<'de> for Network {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, String> {
            v.get(name).ok_or_else(|| format!("missing field `{name}`"))
        }
        Ok(Network {
            today: Date::from_json_value(field(v, "today")?)?,
            calendar: SchoolCalendar::from_json_value(field(v, "calendar")?)?,
            users: Vec::<User>::from_json_value(field(v, "users")?)?,
            friends: FriendGraph::from_json_value(field(v, "friends")?)?,
            schools: Vec::<School>::from_json_value(field(v, "schools")?)?,
            cities: Vec::<City>::from_json_value(field(v, "cities")?)?,
            households: Households::from_json_value(field(v, "households")?)?,
            circles: Circles::from_json_value(field(v, "circles")?)?,
            interactions: Interactions::from_json_value(field(v, "interactions")?)?,
            seal: None,
        })
    }
}

/// FNV-1a over a JSON byte stream, produced piecewise: small pieces are
/// rendered through the ordinary `Value` path, large arrays (users,
/// adjacency, circles, interactions, households) are streamed
/// element-by-element so the whole document never exists in memory.
struct FnvStream {
    h: u64,
    buf: String,
}

impl FnvStream {
    fn new() -> Self {
        FnvStream { h: 0xcbf2_9ce4_8422_2325, buf: String::new() }
    }

    fn raw(&mut self, s: &str) {
        for &b in s.as_bytes() {
            self.h ^= u64::from(b);
            self.h = self.h.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Hash one value's compact rendering.
    fn value(&mut self, v: &Value) {
        let rendered = v.render_compact();
        self.raw(&rendered);
    }

    /// Hash an array of values, streamed one element at a time.
    fn values(&mut self, items: impl Iterator<Item = Value>, len: usize) {
        if len == 0 {
            self.raw("[]");
            return;
        }
        self.raw("[");
        for (i, v) in items.enumerate() {
            if i > 0 {
                self.raw(",");
            }
            self.value(&v);
        }
        self.raw("]");
    }

    /// Hash an array of `UserId` lists without building `Value`s.
    fn uid_lists<'a>(&mut self, lists: impl Iterator<Item = &'a [UserId]>, len: usize) {
        use std::fmt::Write;
        if len == 0 {
            self.raw("[]");
            return;
        }
        self.raw("[");
        let mut first = true;
        for list in lists {
            if !first {
                self.raw(",");
            }
            first = false;
            self.buf.clear();
            self.buf.push('[');
            for (i, u) in list.iter().enumerate() {
                if i > 0 {
                    self.buf.push(',');
                }
                let _ = write!(self.buf, "{}", u.0);
            }
            self.buf.push(']');
            let piece = std::mem::take(&mut self.buf);
            self.raw(&piece);
            self.buf = piece;
        }
        self.raw("]");
    }

    /// Hash one `[(id, count), ...]` interaction list as `[[id,count],...]`.
    fn pair_list(&mut self, pairs: &[(UserId, u32)]) {
        use std::fmt::Write;
        if pairs.is_empty() {
            self.raw("[]");
            return;
        }
        self.buf.clear();
        self.buf.push('[');
        for (i, (u, n)) in pairs.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "[{},{}]", u.0, n);
        }
        self.buf.push(']');
        let piece = std::mem::take(&mut self.buf);
        self.raw(&piece);
        self.buf = piece;
    }

    fn finish(&self) -> u64 {
        self.h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privacy::PrivacySettings;
    use crate::profile::{EducationEntry, Gender, ProfileContent, Registration};
    use crate::school::SchoolKind;

    fn mk_user(net: &mut Network, role: Role) -> UserId {
        net.add_user(User {
            id: UserId(0),
            true_birth_date: Date::ymd(1996, 5, 1),
            registration: Registration {
                registered_birth_date: Date::ymd(1996, 5, 1),
                registration_date: Date::ymd(2010, 1, 1),
            },
            profile: ProfileContent::bare("T", "U", Gender::Female),
            privacy: PrivacySettings::facebook_adult_default(),
            role,
        })
    }

    fn base_network() -> (Network, SchoolId) {
        let mut net = Network::new(Date::ymd(2012, 3, 15));
        let city = net.add_city("Springfield", "NY");
        let school = net.add_school(School {
            id: SchoolId(0),
            name: "HS1".into(),
            city,
            kind: SchoolKind::HighSchool,
            public_enrollment_estimate: 360,
        });
        (net, school)
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let (mut net, school) = base_network();
        let a = mk_user(&mut net, Role::CurrentStudent { school, grad_year: 2014 });
        let b = mk_user(&mut net, Role::OtherResident);
        assert_eq!(a, UserId(0));
        assert_eq!(b, UserId(1));
        assert_eq!(net.user(a).id, a);
    }

    #[test]
    fn roster_matches_roles() {
        let (mut net, school) = base_network();
        let s1 = mk_user(&mut net, Role::CurrentStudent { school, grad_year: 2014 });
        let s2 = mk_user(&mut net, Role::CurrentStudent { school, grad_year: 2012 });
        let _al = mk_user(&mut net, Role::Alumnus { school, grad_year: 2010 });
        let _other = mk_user(&mut net, Role::OtherResident);
        assert_eq!(net.roster(school), vec![s1, s2]);
        assert_eq!(net.roster_for_class(school, 2014), vec![s1]);
        assert_eq!(net.roster_for_class(school, 2012), vec![s2]);
        assert!(net.alumni_of_class(school, 2010).len() == 1);
        assert_eq!(net.student_grad_year(s1), Some(2014));
        assert_eq!(net.student_grad_year(_other), None);
    }

    #[test]
    fn stranger_test_friend_and_mutual() {
        let (mut net, _school) = base_network();
        let a = mk_user(&mut net, Role::OtherResident);
        let b = mk_user(&mut net, Role::OtherResident);
        let c = mk_user(&mut net, Role::OtherResident);
        assert!(net.is_stranger(a, b));
        // Mutual friend breaks strangerhood.
        net.add_friendship(a, c);
        net.add_friendship(b, c);
        assert!(!net.is_stranger(a, b));
        // Direct friendship too.
        net.add_friendship(a, b);
        assert!(!net.is_stranger(a, b));
        // Never a stranger to yourself.
        assert!(!net.is_stranger(a, a));
    }

    #[test]
    fn stranger_test_shared_network() {
        let (mut net, school) = base_network();
        let a = mk_user(&mut net, Role::OtherResident);
        let b = mk_user(&mut net, Role::OtherResident);
        net.user_mut(a).profile.networks.push(school);
        net.user_mut(b).profile.networks.push(school);
        assert!(!net.is_stranger(a, b));
    }

    #[test]
    fn senior_class_in_march_2012() {
        let (net, _) = base_network();
        assert_eq!(net.senior_class_year(), 2012);
    }

    /// A small but fully-populated network exercising every serialized
    /// field: friendships, circles, interactions, households, an extra
    /// city/school, and varied profiles.
    fn populated_network() -> Network {
        let (mut net, school) = base_network();
        let other_city = net.add_city("Farvale", "PA");
        let college = net.add_school(School {
            id: SchoolId(0),
            name: "State College".into(),
            city: other_city,
            kind: SchoolKind::College,
            public_enrollment_estimate: 12_000,
        });
        let s1 = mk_user(&mut net, Role::CurrentStudent { school, grad_year: 2014 });
        let s2 = mk_user(&mut net, Role::CurrentStudent { school, grad_year: 2013 });
        let al = mk_user(&mut net, Role::Alumnus { school, grad_year: 2008 });
        let pa = mk_user(&mut net, Role::Parent { children: vec![s1] });
        net.user_mut(s1).profile.education.push(EducationEntry::high_school(school, 2014));
        net.user_mut(s2).profile.networks.push(school);
        net.user_mut(al).profile.education.push(EducationEntry::high_school(school, 2008));
        net.user_mut(al).profile.education.push(EducationEntry::college(college, None));
        net.add_friendship(s1, s2);
        net.add_friendship(s1, al);
        net.add_friendship(pa, s1);
        net.circles_mut().add(s2, al);
        net.interactions_mut().bulk_insert([(s1, s2, 4), (s1, al, 1)]);
        let h = net.households_mut().add("12 Oak St".into(), CityId(0), vec![pa]);
        net.households_mut().join(h, s1);
        net
    }

    #[test]
    fn streamed_fingerprint_matches_rendered() {
        let net = populated_network();
        let rendered = serde_json::to_vec(&net).expect("network serializes");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &rendered {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        assert_eq!(net.fingerprint(), h, "streamed fingerprint drifted from rendered JSON");
        // And the empty network agrees too.
        let empty = Network::new(Date::ymd(2012, 3, 15));
        let rendered = serde_json::to_vec(&empty).unwrap();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &rendered {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        assert_eq!(empty.fingerprint(), h);
    }

    #[test]
    fn sealing_preserves_fingerprint_and_answers() {
        let mut net = populated_network();
        let before = net.fingerprint();
        let school = net.schools()[0].id;
        let roster = net.roster(school);
        let class = net.roster_for_class(school, 2014);
        let alumni = net.alumni_of_class(school, 2008);
        net.seal();
        assert!(net.is_sealed());
        assert!(net.friend_graph().is_sealed());
        assert_eq!(net.fingerprint(), before, "sealing must not change the fingerprint");
        assert_eq!(net.roster(school), roster);
        assert_eq!(net.roster_for_class(school, 2014), class);
        assert_eq!(net.alumni_of_class(school, 2008), alumni);
        for u in net.user_ids() {
            assert_eq!(
                net.student_grad_year(u),
                match net.user(u).role {
                    Role::CurrentStudent { grad_year, .. } => Some(grad_year),
                    _ => None,
                }
            );
        }
    }

    #[test]
    fn sealed_listers_cover_profile_school_ties() {
        let mut net = populated_network();
        assert!(net.school_listers(SchoolId(0)).is_none(), "unsealed network has no listers");
        net.seal();
        let school = net.schools()[0].id;
        let listers = net.school_listers(school).unwrap().to_vec();
        // Exactly the users with an education entry or network for HS1.
        let expect: Vec<UserId> = net
            .user_ids()
            .filter(|&u| {
                let p = &net.user(u).profile;
                p.education.iter().any(|e| e.school == school) || p.networks.contains(&school)
            })
            .collect();
        assert_eq!(listers, expect);
        assert!(!listers.is_empty());
        // Unknown school index answers empty, not a panic.
        assert_eq!(net.school_listers(SchoolId(99)).unwrap(), &[] as &[UserId]);
    }

    #[test]
    fn mutation_unseals() {
        let mut net = populated_network();
        net.seal();
        assert!(net.is_sealed());
        let u = net.user_ids().next().unwrap();
        let _ = net.user_mut(u);
        assert!(!net.is_sealed(), "user_mut must drop the seal index");
        net.seal();
        net.add_friendship(UserId(0), UserId(3));
        assert!(!net.is_sealed(), "edge mutation must drop the seal index");
        assert!(net.are_friends(UserId(0), UserId(3)));
    }

    #[test]
    fn serde_round_trip_ignores_seal_state() {
        let mut net = populated_network();
        let before = net.fingerprint();
        net.seal();
        let bytes = serde_json::to_vec(&net).unwrap();
        let back: Network = serde_json::from_slice(&bytes).unwrap();
        assert!(!back.is_sealed(), "round-trip lands in the building layout");
        assert_eq!(back.fingerprint(), before);
    }

    #[test]
    fn with_capacity_matches_incremental_build() {
        let mut a = Network::with_capacity(Date::ymd(2012, 3, 15), 64);
        let mut b = Network::new(Date::ymd(2012, 3, 15));
        for net in [&mut a, &mut b] {
            net.add_city("Springfield", "NY");
            let school = net.add_school(School {
                id: SchoolId(0),
                name: "HS1".into(),
                city: CityId(0),
                kind: SchoolKind::HighSchool,
                public_enrollment_estimate: 360,
            });
            let s1 = mk_user(net, Role::CurrentStudent { school, grad_year: 2014 });
            let s2 = mk_user(net, Role::OtherResident);
            net.add_friendship(s1, s2);
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
