//! The assembled social network: users, friendships, schools, cities and
//! the simulated "today".

use crate::date::{Date, SchoolCalendar};
use crate::friendship::{Circles, FriendGraph};
use crate::household::Households;
use crate::ids::{CityId, SchoolId, UserId};
use crate::interactions::Interactions;
use crate::school::{City, School};
use crate::user::{Role, User};
use serde::{Deserialize, Serialize};

/// The complete simulated OSN state plus generator-side ground truth.
///
/// The platform crate serves *views* of this structure filtered through
/// the privacy-policy engine; evaluation code reads the ground-truth
/// accessors directly (playing the role of the paper's confidential
/// school rosters).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Network {
    /// The simulated current date (the paper's crawls: March/June 2012).
    pub today: Date,
    pub calendar: SchoolCalendar,
    users: Vec<User>,
    friends: FriendGraph,
    schools: Vec<School>,
    cities: Vec<City>,
    households: Households,
    /// Asymmetric circle membership (Google+ mode; empty under
    /// Facebook-style symmetric friendship).
    circles: Circles,
    /// Pairwise interaction intensity (wall posts between friends).
    interactions: Interactions,
}

impl Network {
    pub fn new(today: Date) -> Self {
        Network {
            today,
            calendar: SchoolCalendar::default(),
            users: Vec::new(),
            friends: FriendGraph::default(),
            schools: Vec::new(),
            cities: Vec::new(),
            households: Households::new(),
            circles: Circles::default(),
            interactions: Interactions::default(),
        }
    }

    // ----- construction ---------------------------------------------------

    /// Register a city, returning its id.
    pub fn add_city(&mut self, name: impl Into<String>, state: impl Into<String>) -> CityId {
        let id = CityId::from_index(self.cities.len());
        self.cities.push(City { id, name: name.into(), state: state.into() });
        id
    }

    /// Register a school, returning its id.
    pub fn add_school(&mut self, school: School) -> SchoolId {
        let id = SchoolId::from_index(self.schools.len());
        let mut school = school;
        school.id = id;
        self.schools.push(school);
        id
    }

    /// Add a user; the `id` field is overwritten with the assigned id.
    pub fn add_user(&mut self, mut user: User) -> UserId {
        let id = UserId::from_index(self.users.len());
        user.id = id;
        self.users.push(user);
        self.friends.ensure_users(self.users.len());
        id
    }

    /// Add a symmetric friendship.
    pub fn add_friendship(&mut self, a: UserId, b: UserId) -> bool {
        debug_assert!(a.index() < self.users.len() && b.index() < self.users.len());
        self.friends.add_friendship(a, b)
    }

    /// Bulk-insert friendships (see [`FriendGraph::bulk_insert`]).
    pub fn add_friendships_bulk(&mut self, edges: impl IntoIterator<Item = (UserId, UserId)>) {
        self.friends.bulk_insert(edges);
        self.friends.ensure_users(self.users.len());
    }

    /// Remove a symmetric friendship (live-world defriending). Returns
    /// `true` if the edge existed.
    pub fn remove_friendship(&mut self, a: UserId, b: UserId) -> bool {
        self.friends.remove_friendship(a, b)
    }

    /// Content hash of the entire network (FNV-1a over the canonical
    /// serialized form). Two networks fingerprint equal iff every user,
    /// edge, household, circle and interaction matches — the cheap
    /// bit-identity check behind the sharded generator's 1-thread ≡
    /// N-thread guarantee.
    pub fn fingerprint(&self) -> u64 {
        let bytes = serde_json::to_vec(self).expect("network serializes");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    // ----- accessors -------------------------------------------------------

    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    pub fn user(&self, id: UserId) -> &User {
        &self.users[id.index()]
    }

    pub fn try_user(&self, id: UserId) -> Option<&User> {
        self.users.get(id.index())
    }

    pub fn user_mut(&mut self, id: UserId) -> &mut User {
        &mut self.users[id.index()]
    }

    pub fn users(&self) -> impl Iterator<Item = &User> {
        self.users.iter()
    }

    pub fn user_ids(&self) -> impl Iterator<Item = UserId> {
        (0..self.users.len()).map(UserId::from_index)
    }

    pub fn school(&self, id: SchoolId) -> &School {
        &self.schools[id.index()]
    }

    pub fn schools(&self) -> &[School] {
        &self.schools
    }

    pub fn city(&self, id: CityId) -> &City {
        &self.cities[id.index()]
    }

    pub fn cities(&self) -> &[City] {
        &self.cities
    }

    pub fn friend_graph(&self) -> &FriendGraph {
        &self.friends
    }

    /// Asymmetric circles (Google+, paper Appendix A).
    pub fn circles(&self) -> &Circles {
        &self.circles
    }

    pub fn circles_mut(&mut self) -> &mut Circles {
        &mut self.circles
    }

    /// Pairwise interactions (wall-post counts between friends).
    pub fn interactions(&self) -> &Interactions {
        &self.interactions
    }

    pub fn interactions_mut(&mut self) -> &mut Interactions {
        &mut self.interactions
    }

    /// Ground-truth households (the substrate behind public records).
    pub fn households(&self) -> &Households {
        &self.households
    }

    pub fn households_mut(&mut self) -> &mut Households {
        &mut self.households
    }

    /// Sorted friend list of `u` (ground truth; the platform decides who
    /// may *see* it).
    pub fn friends(&self, u: UserId) -> &[UserId] {
        self.friends.friends(u)
    }

    pub fn are_friends(&self, a: UserId, b: UserId) -> bool {
        self.friends.are_friends(a, b)
    }

    // ----- paper definitions ----------------------------------------------

    /// The paper's stranger test (§3): `viewer` is a stranger to `target`
    /// iff they are not friends, share no mutual friend, and share no
    /// school/work network.
    pub fn is_stranger(&self, viewer: UserId, target: UserId) -> bool {
        if viewer == target || self.are_friends(viewer, target) {
            return false;
        }
        if self.friends.mutual_friend_count(viewer, target) > 0 {
            return false;
        }
        let vn = &self.user(viewer).profile.networks;
        let tn = &self.user(target).profile.networks;
        !vn.iter().any(|n| tn.contains(n))
    }

    /// Whether the OSN currently considers `u` a minor.
    pub fn is_registered_minor(&self, u: UserId) -> bool {
        self.user(u).is_registered_minor(self.today)
    }

    /// Whether `u` is actually a minor today (ground truth).
    pub fn is_true_minor(&self, u: UserId) -> bool {
        self.user(u).is_true_minor(self.today)
    }

    /// The graduation year of the current senior class.
    pub fn senior_class_year(&self) -> i32 {
        self.calendar.senior_class_year(self.today)
    }

    // ----- ground-truth rosters (the "confidential channel") ---------------

    /// Ground-truth set `M`: user ids of all *actual* current students of
    /// `school` with accounts, sorted by id.
    pub fn roster(&self, school: SchoolId) -> Vec<UserId> {
        self.users.iter().filter(|u| u.role.is_current_student_at(school)).map(|u| u.id).collect()
    }

    /// Ground-truth roster restricted to the class of `grad_year`.
    pub fn roster_for_class(&self, school: SchoolId, grad_year: i32) -> Vec<UserId> {
        self.users
            .iter()
            .filter(|u| {
                matches!(u.role, Role::CurrentStudent { school: s, grad_year: g }
                    if s == school && g == grad_year)
            })
            .map(|u| u.id)
            .collect()
    }

    /// Ground-truth alumni of `school` who graduated in `grad_year`.
    pub fn alumni_of_class(&self, school: SchoolId, grad_year: i32) -> Vec<UserId> {
        self.users
            .iter()
            .filter(|u| {
                matches!(u.role, Role::Alumnus { school: s, grad_year: g }
                    if s == school && g == grad_year)
            })
            .map(|u| u.id)
            .collect()
    }

    /// The ground-truth graduation year of a current student, if any.
    pub fn student_grad_year(&self, u: UserId) -> Option<i32> {
        match self.user(u).role {
            Role::CurrentStudent { grad_year, .. } => Some(grad_year),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privacy::PrivacySettings;
    use crate::profile::{Gender, ProfileContent, Registration};
    use crate::school::SchoolKind;

    fn mk_user(net: &mut Network, role: Role) -> UserId {
        net.add_user(User {
            id: UserId(0),
            true_birth_date: Date::ymd(1996, 5, 1),
            registration: Registration {
                registered_birth_date: Date::ymd(1996, 5, 1),
                registration_date: Date::ymd(2010, 1, 1),
            },
            profile: ProfileContent::bare("T", "U", Gender::Female),
            privacy: PrivacySettings::facebook_adult_default(),
            role,
        })
    }

    fn base_network() -> (Network, SchoolId) {
        let mut net = Network::new(Date::ymd(2012, 3, 15));
        let city = net.add_city("Springfield", "NY");
        let school = net.add_school(School {
            id: SchoolId(0),
            name: "HS1".into(),
            city,
            kind: SchoolKind::HighSchool,
            public_enrollment_estimate: 360,
        });
        (net, school)
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let (mut net, school) = base_network();
        let a = mk_user(&mut net, Role::CurrentStudent { school, grad_year: 2014 });
        let b = mk_user(&mut net, Role::OtherResident);
        assert_eq!(a, UserId(0));
        assert_eq!(b, UserId(1));
        assert_eq!(net.user(a).id, a);
    }

    #[test]
    fn roster_matches_roles() {
        let (mut net, school) = base_network();
        let s1 = mk_user(&mut net, Role::CurrentStudent { school, grad_year: 2014 });
        let s2 = mk_user(&mut net, Role::CurrentStudent { school, grad_year: 2012 });
        let _al = mk_user(&mut net, Role::Alumnus { school, grad_year: 2010 });
        let _other = mk_user(&mut net, Role::OtherResident);
        assert_eq!(net.roster(school), vec![s1, s2]);
        assert_eq!(net.roster_for_class(school, 2014), vec![s1]);
        assert_eq!(net.roster_for_class(school, 2012), vec![s2]);
        assert!(net.alumni_of_class(school, 2010).len() == 1);
        assert_eq!(net.student_grad_year(s1), Some(2014));
        assert_eq!(net.student_grad_year(_other), None);
    }

    #[test]
    fn stranger_test_friend_and_mutual() {
        let (mut net, _school) = base_network();
        let a = mk_user(&mut net, Role::OtherResident);
        let b = mk_user(&mut net, Role::OtherResident);
        let c = mk_user(&mut net, Role::OtherResident);
        assert!(net.is_stranger(a, b));
        // Mutual friend breaks strangerhood.
        net.add_friendship(a, c);
        net.add_friendship(b, c);
        assert!(!net.is_stranger(a, b));
        // Direct friendship too.
        net.add_friendship(a, b);
        assert!(!net.is_stranger(a, b));
        // Never a stranger to yourself.
        assert!(!net.is_stranger(a, a));
    }

    #[test]
    fn stranger_test_shared_network() {
        let (mut net, school) = base_network();
        let a = mk_user(&mut net, Role::OtherResident);
        let b = mk_user(&mut net, Role::OtherResident);
        net.user_mut(a).profile.networks.push(school);
        net.user_mut(b).profile.networks.push(school);
        assert!(!net.is_stranger(a, b));
    }

    #[test]
    fn senior_class_in_march_2012() {
        let (net, _) = base_network();
        assert_eq!(net.senior_class_year(), 2012);
    }
}
