//! # hsp-graph — social-graph substrate
//!
//! The foundational data model for the IMC'13 "Profiling High-School
//! Students with Facebook" reproduction: calendar dates and school-year
//! arithmetic, strongly-typed ids, user accounts (with the crucial split
//! between *registered* and *true* birth dates), user-chosen privacy
//! settings, profile content, schools/cities, and friendship storage
//! (symmetric Facebook-style adjacency plus asymmetric Google+-style
//! circles).
//!
//! Ground truth (who is really a student where, and their real age) lives
//! alongside the OSN-visible state but is only ever read by evaluation
//! code — the simulated platform never serves it, exactly as the paper's
//! confidential rosters were used only to score the attack.

pub mod date;
pub mod friendship;
pub mod household;
pub mod ids;
pub mod interactions;
pub mod network;
pub mod privacy;
pub mod profile;
pub mod school;
pub mod strings;
pub mod user;

pub use date::{Date, InvalidDate, SchoolCalendar};
pub use friendship::{jaccard_index, sorted_intersection_len, Circles, FriendGraph};
pub use household::{Household, Households};
pub use ids::{CityId, HouseholdId, SchoolId, UserId};
pub use interactions::Interactions;
pub use network::{Network, UserColumns};
pub use privacy::{Audience, PrivacySettings};
pub use profile::{
    ContactInfo, EducationEntry, EducationKind, Gender, InterestedIn, ProfileContent, Registration,
    RelationshipStatus,
};
pub use school::{City, School, SchoolKind};
pub use strings::Sym;
pub use user::{Role, User};
