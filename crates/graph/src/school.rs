//! Schools and cities of the simulated geography.

use crate::ids::{CityId, SchoolId};
use crate::strings::Sym;
use serde::{Deserialize, Serialize};

/// A city. Every school belongs to a city and users may list a city as
/// hometown / current city.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct City {
    pub id: CityId,
    pub name: Sym,
    pub state: Sym,
}

/// Kind of institution in the education directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchoolKind {
    /// A four-year US high school.
    HighSchool,
    /// A college / university (appears in alumni profiles and filter rules).
    College,
    /// A graduate school.
    GraduateSchool,
}

/// A school known to the OSN's education directory.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct School {
    pub id: SchoolId,
    pub name: Sym,
    pub city: CityId,
    pub kind: SchoolKind,
    /// Approximate enrolment, as a third party would find on Wikipedia
    /// (the paper's attacker uses this to pick the threshold `t`).
    pub public_enrollment_estimate: u32,
}

impl School {
    pub fn is_high_school(&self) -> bool {
        self.kind == SchoolKind::HighSchool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_school_flag() {
        let hs = School {
            id: SchoolId(0),
            name: "HS1".into(),
            city: CityId(0),
            kind: SchoolKind::HighSchool,
            public_enrollment_estimate: 362,
        };
        assert!(hs.is_high_school());
        let college = School { kind: SchoolKind::College, ..hs.clone() };
        assert!(!college.is_high_school());
    }
}
