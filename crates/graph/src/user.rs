//! Accounts and the generator-side ground truth behind them.

use crate::date::Date;
use crate::ids::{SchoolId, UserId};
use crate::privacy::PrivacySettings;
use crate::profile::{ProfileContent, Registration};
use serde::{Deserialize, Serialize};

/// Ground truth about the person behind an account.
///
/// This information is known to the generator (it created the person) and
/// plays the role of the paper's confidential school rosters: evaluation
/// code may read it, but the platform never serves it and the attacker
/// never sees it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// Currently enrolled at `school`, graduating in `grad_year`.
    CurrentStudent { school: SchoolId, grad_year: i32 },
    /// Attended `school` but transferred out (churn) before graduating.
    FormerStudent {
        school: SchoolId,
        /// The class they would have graduated with.
        grad_year: i32,
    },
    /// Graduated from `school` in `grad_year` (a past year).
    Alumnus { school: SchoolId, grad_year: i32 },
    /// A parent of one or more current students.
    Parent { children: Vec<UserId> },
    /// An adult resident of the city with no tie to the target school.
    OtherResident,
    /// A user living elsewhere (out-of-city friends, relatives, ...).
    NonResident,
}

impl Role {
    /// The school this role is tied to, if any.
    pub fn school(&self) -> Option<SchoolId> {
        match self {
            Role::CurrentStudent { school, .. }
            | Role::FormerStudent { school, .. }
            | Role::Alumnus { school, .. } => Some(*school),
            _ => None,
        }
    }

    /// True if this person is *actually* a current student at `school`.
    pub fn is_current_student_at(&self, school: SchoolId) -> bool {
        matches!(self, Role::CurrentStudent { school: s, .. } if *s == school)
    }
}

/// One registered OSN account, combining what the OSN stores (profile,
/// privacy settings, registered birth date) with the ground truth only
/// the generator knows (true birth date, actual role).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct User {
    pub id: UserId,
    /// The person's actual birth date (ground truth).
    pub true_birth_date: Date,
    /// What the OSN believes (possibly a registration-time lie).
    pub registration: Registration,
    pub profile: ProfileContent,
    pub privacy: PrivacySettings,
    /// Ground truth role — never served by the platform.
    pub role: Role,
}

impl User {
    /// The person's actual age on `on`.
    pub fn true_age(&self, on: Date) -> i32 {
        Date::age_on(self.true_birth_date, on)
    }

    /// Whether the person is actually a minor (< 18) on `on`.
    pub fn is_true_minor(&self, on: Date) -> bool {
        self.true_age(on) < 18
    }

    /// The age the OSN believes the user to be on `on`.
    pub fn registered_age(&self, on: Date) -> i32 {
        self.registration.registered_age(on)
    }

    /// Whether the OSN treats this account as a minor on `on`.
    pub fn is_registered_minor(&self, on: Date) -> bool {
        self.registration.is_registered_minor(on)
    }

    /// A minor who the OSN believes is an adult — the paper's "lying
    /// minor", the pivot of the whole attack.
    pub fn is_minor_registered_as_adult(&self, on: Date) -> bool {
        self.is_true_minor(on) && !self.is_registered_minor(on)
    }

    /// Whether the registered birth date differs from the true one.
    pub fn lied_about_age(&self) -> bool {
        self.registration.registered_birth_date != self.true_birth_date
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Gender;

    fn student(true_birth: Date, registered_birth: Date) -> User {
        User {
            id: UserId(0),
            true_birth_date: true_birth,
            registration: Registration {
                registered_birth_date: registered_birth,
                registration_date: Date::ymd(2008, 9, 1),
            },
            profile: ProfileContent::bare("Pat", "Doe", Gender::Female),
            privacy: PrivacySettings::facebook_adult_default(),
            role: Role::CurrentStudent { school: SchoolId(1), grad_year: 2014 },
        }
    }

    #[test]
    fn lying_minor_is_detected() {
        // Actually born 1997 (15 in 2012), registered as born 1992 (20).
        let u = student(Date::ymd(1997, 4, 2), Date::ymd(1992, 4, 2));
        let today = Date::ymd(2012, 3, 15);
        assert!(u.is_true_minor(today));
        assert!(!u.is_registered_minor(today));
        assert!(u.is_minor_registered_as_adult(today));
        assert!(u.lied_about_age());
    }

    #[test]
    fn truthful_minor_is_not_flagged() {
        let u = student(Date::ymd(1997, 4, 2), Date::ymd(1997, 4, 2));
        let today = Date::ymd(2012, 3, 15);
        assert!(u.is_true_minor(today));
        assert!(u.is_registered_minor(today));
        assert!(!u.is_minor_registered_as_adult(today));
        assert!(!u.lied_about_age());
    }

    #[test]
    fn adult_is_never_a_lying_minor() {
        let u = student(Date::ymd(1990, 1, 1), Date::ymd(1990, 1, 1));
        assert!(!u.is_minor_registered_as_adult(Date::ymd(2012, 3, 15)));
    }

    #[test]
    fn role_school_extraction() {
        let r = Role::Alumnus { school: SchoolId(5), grad_year: 2010 };
        assert_eq!(r.school(), Some(SchoolId(5)));
        assert!(!r.is_current_student_at(SchoolId(5)));
        assert_eq!(Role::OtherResident.school(), None);
        let c = Role::CurrentStudent { school: SchoolId(5), grad_year: 2014 };
        assert!(c.is_current_student_at(SchoolId(5)));
        assert!(!c.is_current_student_at(SchoolId(6)));
    }
}
