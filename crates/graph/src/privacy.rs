//! User-chosen privacy settings.
//!
//! These are the audiences a user *selects* in their account settings.
//! What a stranger actually sees is decided by the policy engine
//! (`hsp-policy`), which may cap these settings — e.g. Facebook shows at
//! most minimal information on a registered minor's public profile no
//! matter what the minor selects (paper §3.1, Table 1).

use serde::{Deserialize, Serialize};

/// The audience a profile field is shared with.
///
/// Ordered from most to least public: `Public > FriendsOfFriends >
/// Friends > OnlyMe`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Audience {
    /// Everyone, including strangers.
    Public,
    /// Friends and their friends.
    FriendsOfFriends,
    /// Direct friends only.
    Friends,
    /// Hidden from everyone but the owner.
    OnlyMe,
}

impl Audience {
    /// Whether a stranger (no friend link, no mutual friends, no shared
    /// network) can see a field with this audience.
    pub fn visible_to_stranger(self) -> bool {
        matches!(self, Audience::Public)
    }

    /// The more restrictive of two audiences.
    pub fn min(self, other: Audience) -> Audience {
        if self.rank() >= other.rank() {
            self
        } else {
            other
        }
    }

    fn rank(self) -> u8 {
        match self {
            Audience::Public => 0,
            Audience::FriendsOfFriends => 1,
            Audience::Friends => 2,
            Audience::OnlyMe => 3,
        }
    }
}

/// Per-field audience selections for one account.
///
/// Field names mirror the rows of the paper's Table 1.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivacySettings {
    /// Who can see the friend list.
    pub friend_list: Audience,
    /// Who can see high-school / college education entries (and grad year).
    pub education: Audience,
    /// Who can see relationship status.
    pub relationship: Audience,
    /// Who can see "interested in".
    pub interested_in: Audience,
    /// Who can see the full birthday.
    pub birthday: Audience,
    /// Who can see hometown.
    pub hometown: Audience,
    /// Who can see current city.
    pub current_city: Audience,
    /// Who can see shared photos.
    pub photos: Audience,
    /// Who can see contact information (email / phone / address).
    pub contact_info: Audience,
    /// Who can see wall postings.
    pub wall: Audience,
    /// Whether the account appears in public search results at all.
    pub public_search: bool,
    /// Who can use the "Message" button.
    pub message_button: Audience,
}

impl PrivacySettings {
    /// 2012-era Facebook defaults for a newly registered *adult* account,
    /// per the "Default for Reg. Adults" column of the paper's Table 1:
    /// education, relationship, interested-in, hometown, current city,
    /// friend list, photos and public search are stranger-visible by
    /// default; birthday and contact info are not.
    pub fn facebook_adult_default() -> Self {
        PrivacySettings {
            friend_list: Audience::Public,
            education: Audience::Public,
            relationship: Audience::Public,
            interested_in: Audience::Public,
            birthday: Audience::Friends,
            hometown: Audience::Public,
            current_city: Audience::Public,
            photos: Audience::Public,
            contact_info: Audience::Friends,
            wall: Audience::FriendsOfFriends,
            public_search: true,
            message_button: Audience::Public,
        }
    }

    /// 2012-era Facebook defaults for a registered *minor* account, per
    /// the "Default for Reg. minors" column of Table 1. (Facebook
    /// additionally hard-caps what strangers see of minors; that cap
    /// lives in the policy engine, not here.)
    pub fn facebook_minor_default() -> Self {
        PrivacySettings {
            friend_list: Audience::Friends,
            education: Audience::Friends,
            relationship: Audience::Friends,
            interested_in: Audience::Friends,
            birthday: Audience::Friends,
            hometown: Audience::Friends,
            current_city: Audience::Friends,
            photos: Audience::FriendsOfFriends,
            contact_info: Audience::Friends,
            wall: Audience::Friends,
            public_search: false,
            message_button: Audience::FriendsOfFriends,
        }
    }

    /// Everything shared as widely as the settings UI allows — the
    /// "worst case" columns of Table 1.
    pub fn maximum_sharing() -> Self {
        PrivacySettings {
            friend_list: Audience::Public,
            education: Audience::Public,
            relationship: Audience::Public,
            interested_in: Audience::Public,
            birthday: Audience::Public,
            hometown: Audience::Public,
            current_city: Audience::Public,
            photos: Audience::Public,
            contact_info: Audience::Public,
            wall: Audience::Public,
            public_search: true,
            message_button: Audience::Public,
        }
    }

    /// Everything locked down to friends-only and hidden from search.
    pub fn locked_down() -> Self {
        PrivacySettings {
            friend_list: Audience::OnlyMe,
            education: Audience::Friends,
            relationship: Audience::Friends,
            interested_in: Audience::Friends,
            birthday: Audience::OnlyMe,
            hometown: Audience::Friends,
            current_city: Audience::Friends,
            photos: Audience::Friends,
            contact_info: Audience::OnlyMe,
            wall: Audience::Friends,
            public_search: false,
            message_button: Audience::Friends,
        }
    }
}

impl Default for PrivacySettings {
    fn default() -> Self {
        Self::facebook_adult_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_public_is_stranger_visible() {
        assert!(Audience::Public.visible_to_stranger());
        assert!(!Audience::FriendsOfFriends.visible_to_stranger());
        assert!(!Audience::Friends.visible_to_stranger());
        assert!(!Audience::OnlyMe.visible_to_stranger());
    }

    #[test]
    fn min_picks_more_restrictive() {
        assert_eq!(Audience::Public.min(Audience::Friends), Audience::Friends);
        assert_eq!(Audience::OnlyMe.min(Audience::Public), Audience::OnlyMe);
        assert_eq!(
            Audience::FriendsOfFriends.min(Audience::FriendsOfFriends),
            Audience::FriendsOfFriends
        );
    }

    #[test]
    fn adult_default_matches_table1_default_column() {
        let p = PrivacySettings::facebook_adult_default();
        // Stranger-visible by default
        assert!(p.education.visible_to_stranger());
        assert!(p.relationship.visible_to_stranger());
        assert!(p.interested_in.visible_to_stranger());
        assert!(p.hometown.visible_to_stranger());
        assert!(p.current_city.visible_to_stranger());
        assert!(p.friend_list.visible_to_stranger());
        assert!(p.photos.visible_to_stranger());
        assert!(p.public_search);
        // Not stranger-visible by default
        assert!(!p.birthday.visible_to_stranger());
        assert!(!p.contact_info.visible_to_stranger());
    }

    #[test]
    fn minor_default_is_locked() {
        let p = PrivacySettings::facebook_minor_default();
        assert!(!p.friend_list.visible_to_stranger());
        assert!(!p.education.visible_to_stranger());
        assert!(!p.public_search);
    }

    #[test]
    fn maximum_sharing_is_all_public() {
        let p = PrivacySettings::maximum_sharing();
        assert!(p.birthday.visible_to_stranger());
        assert!(p.contact_info.visible_to_stranger());
        assert!(p.public_search);
    }
}
