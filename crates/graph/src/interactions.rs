//! Pairwise interaction intensity (wall posts / comments between
//! friends).
//!
//! The paper's §4.3 points at interaction graphs (Wilson et al.) and
//! activity evolution as unexplored ways to sharpen the attack: real
//! classmates don't just *friend* each other, they *interact*. The
//! generator records per-edge interaction counts; the platform exposes
//! them only through the audience-gated wall (recent posters on a
//! profile page), which is all a stranger — and hence the attacker —
//! ever sees.

use crate::ids::UserId;
use serde::{Deserialize, Serialize};

/// Per-user lists of interaction partners with counts, sorted by
/// descending count (then id) — the "top posters" order a wall shows.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Interactions {
    per_user: Vec<Vec<(UserId, u32)>>,
}

impl Interactions {
    pub fn new() -> Self {
        Interactions::default()
    }

    fn ensure(&mut self, users: usize) {
        if self.per_user.len() < users {
            self.per_user.resize(users, Vec::new());
        }
    }

    /// Bulk-load symmetric interaction counts; zero counts are dropped,
    /// duplicate pairs accumulate.
    pub fn bulk_insert(&mut self, pairs: impl IntoIterator<Item = (UserId, UserId, u32)>) {
        for (a, b, n) in pairs {
            if n == 0 || a == b {
                continue;
            }
            self.ensure(a.index().max(b.index()) + 1);
            self.per_user[a.index()].push((b, n));
            self.per_user[b.index()].push((a, n));
        }
        for list in &mut self.per_user {
            // Accumulate duplicates, then sort by descending count.
            list.sort_unstable_by_key(|&(u, _)| u);
            let mut merged: Vec<(UserId, u32)> = Vec::with_capacity(list.len());
            for &(u, n) in list.iter() {
                match merged.last_mut() {
                    Some(last) if last.0 == u => last.1 += n,
                    _ => merged.push((u, n)),
                }
            }
            merged.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            *list = merged;
        }
    }

    /// Interaction partners of `u`, strongest first.
    pub fn partners(&self, u: UserId) -> &[(UserId, u32)] {
        self.per_user.get(u.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Interaction count between two users (0 when none recorded).
    pub fn count(&self, a: UserId, b: UserId) -> u32 {
        self.partners(a).iter().find(|&&(u, _)| u == b).map(|&(_, n)| n).unwrap_or(0)
    }

    /// The top-`k` posters on `u`'s wall.
    pub fn top_partners(&self, u: UserId, k: usize) -> Vec<UserId> {
        self.partners(u).iter().take(k).map(|&(v, _)| v).collect()
    }

    pub fn is_empty(&self) -> bool {
        self.per_user.iter().all(Vec::is_empty)
    }

    /// The raw per-user partner lists, for the streaming fingerprint
    /// in `Network::fingerprint`.
    pub(crate) fn fingerprint_parts(&self) -> &[Vec<(UserId, u32)>] {
        &self.per_user
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u64) -> UserId {
        UserId(i)
    }

    #[test]
    fn bulk_insert_is_symmetric_and_sorted_by_count() {
        let mut x = Interactions::new();
        x.bulk_insert([(u(1), u(2), 5), (u(1), u(3), 9), (u(2), u(3), 1)]);
        assert_eq!(x.partners(u(1)), &[(u(3), 9), (u(2), 5)]);
        assert_eq!(x.count(u(2), u(1)), 5);
        assert_eq!(x.count(u(3), u(1)), 9);
        assert_eq!(x.count(u(1), u(9)), 0);
        assert_eq!(x.top_partners(u(1), 1), vec![u(3)]);
    }

    #[test]
    fn duplicates_accumulate_zeros_and_self_links_dropped() {
        let mut x = Interactions::new();
        x.bulk_insert([(u(1), u(2), 2), (u(2), u(1), 3), (u(1), u(1), 7), (u(1), u(4), 0)]);
        assert_eq!(x.count(u(1), u(2)), 5);
        assert_eq!(x.count(u(1), u(1)), 0);
        assert_eq!(x.count(u(1), u(4)), 0);
    }

    #[test]
    fn count_ties_break_by_id() {
        let mut x = Interactions::new();
        x.bulk_insert([(u(1), u(5), 3), (u(1), u(2), 3)]);
        assert_eq!(x.partners(u(1)), &[(u(2), 3), (u(5), 3)]);
    }

    #[test]
    fn empty_queries() {
        let x = Interactions::new();
        assert!(x.is_empty());
        assert!(x.partners(u(7)).is_empty());
        assert_eq!(x.top_partners(u(7), 3), Vec::<UserId>::new());
    }
}
