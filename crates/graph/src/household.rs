//! Households: the ground-truth street addresses behind the §2
//! voter-record linking threat.
//!
//! The paper's first consequential threat: a data broker buys voter
//! registration records and links discovered students to parents "using
//! the last name and city in the high-school profiles ... thereby
//! determining the street address of many of the students". The
//! generator assigns each family a household; adults in a household are
//! what a voter roll would list.

use crate::ids::{CityId, HouseholdId, UserId};
use serde::{Deserialize, Serialize};

/// A residential address shared by a family.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Household {
    pub id: HouseholdId,
    /// Street address, e.g. "412 Keller Ave".
    pub address: String,
    pub city: CityId,
    /// All members (children and adults).
    pub members: Vec<UserId>,
}

/// Registry of households plus a per-user index.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Households {
    households: Vec<Household>,
    /// member -> household, grown on demand.
    of_user: Vec<Option<HouseholdId>>,
}

impl Households {
    pub fn new() -> Self {
        Households::default()
    }

    /// Create a household; members are registered to it.
    pub fn add(&mut self, address: String, city: CityId, members: Vec<UserId>) -> HouseholdId {
        let id = HouseholdId::from_index(self.households.len());
        for &m in &members {
            self.index_user(m, id);
        }
        self.households.push(Household { id, address, city, members });
        id
    }

    /// Attach another member to an existing household.
    pub fn join(&mut self, household: HouseholdId, member: UserId) {
        self.households[household.index()].members.push(member);
        self.index_user(member, household);
    }

    fn index_user(&mut self, user: UserId, household: HouseholdId) {
        if self.of_user.len() <= user.index() {
            self.of_user.resize(user.index() + 1, None);
        }
        self.of_user[user.index()] = Some(household);
    }

    pub fn of(&self, user: UserId) -> Option<&Household> {
        self.of_user.get(user.index()).copied().flatten().map(|h| &self.households[h.index()])
    }

    pub fn get(&self, id: HouseholdId) -> &Household {
        &self.households[id.index()]
    }

    pub fn len(&self) -> usize {
        self.households.len()
    }

    pub fn is_empty(&self) -> bool {
        self.households.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Household> {
        self.households.iter()
    }

    /// The raw `(households, of_user)` tables, for the streaming
    /// fingerprint in `Network::fingerprint`.
    pub(crate) fn fingerprint_parts(&self) -> (&[Household], &[Option<HouseholdId>]) {
        (&self.households, &self.of_user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut hs = Households::new();
        let h = hs.add("1 Oak St".into(), CityId(0), vec![UserId(3), UserId(5)]);
        assert_eq!(hs.of(UserId(3)).unwrap().id, h);
        assert_eq!(hs.of(UserId(5)).unwrap().address, "1 Oak St");
        assert!(hs.of(UserId(99)).is_none());
        assert_eq!(hs.len(), 1);
    }

    #[test]
    fn join_extends_membership() {
        let mut hs = Households::new();
        let h = hs.add("2 Elm St".into(), CityId(1), vec![UserId(1)]);
        hs.join(h, UserId(2));
        assert_eq!(hs.get(h).members, vec![UserId(1), UserId(2)]);
        assert_eq!(hs.of(UserId(2)).unwrap().id, h);
    }

    #[test]
    fn later_household_wins_for_reassigned_user() {
        let mut hs = Households::new();
        let _a = hs.add("3 Ash St".into(), CityId(0), vec![UserId(7)]);
        let b = hs.add("4 Birch St".into(), CityId(0), vec![UserId(7)]);
        assert_eq!(hs.of(UserId(7)).unwrap().id, b);
    }
}
