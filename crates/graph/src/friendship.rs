//! Friendship storage: symmetric adjacency (Facebook-style friendships)
//! and asymmetric circles (Google+-style, paper Appendix A).

use crate::ids::UserId;
use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Symmetric friendship adjacency, one sorted neighbour list per user.
///
/// Sorted lists give `O(log n)` membership queries and cheap sorted-merge
/// mutual-friend counting, which the stranger test and the Jaccard
/// inference (paper §6.1) lean on heavily.
///
/// Two physical layouts share this one logical type:
///
/// - **Building** — one `Vec<UserId>` per user. Cheap to mutate; three
///   pointers of header plus a separate allocation per user.
/// - **Sealed** — frozen CSR (compressed sparse row): one offsets array
///   and one flat edge array. Zero per-user allocations, neighbour
///   lists are contiguous slices, and a metro-scale world drops from
///   ~50 B to ~8 B of overhead per edge endpoint.
///
/// Sealing ([`FriendGraph::seal`], usually via `Network::seal`) is a
/// pure layout change: every accessor answers identically, the serde
/// form is the legacy `{"adj": [[...]]}` either way, and any mutation
/// transparently thaws back to Building first.
#[derive(Clone, Debug)]
pub struct FriendGraph {
    repr: Repr,
}

#[derive(Clone, Debug)]
enum Repr {
    Building(Vec<Vec<UserId>>),
    Sealed(Csr),
}

/// Frozen compressed-sparse-row adjacency: `edges[offsets[u] as usize
/// .. offsets[u + 1] as usize]` is the sorted friend list of user `u`.
#[derive(Clone, Debug)]
struct Csr {
    offsets: Vec<u64>,
    edges: Vec<UserId>,
}

impl Csr {
    fn users(&self) -> usize {
        self.offsets.len() - 1
    }

    fn list(&self, i: usize) -> &[UserId] {
        &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

impl Default for FriendGraph {
    fn default() -> Self {
        FriendGraph { repr: Repr::Building(Vec::new()) }
    }
}

impl FriendGraph {
    pub fn with_capacity(users: usize) -> Self {
        FriendGraph { repr: Repr::Building(vec![Vec::new(); users]) }
    }

    /// Reserve outer-table capacity for `users` users (no-op when
    /// sealed — the CSR layout is already exactly sized).
    pub fn reserve(&mut self, users: usize) {
        if let Repr::Building(adj) = &mut self.repr {
            if users > adj.len() {
                adj.reserve(users - adj.len());
            }
        }
    }

    /// Number of users the graph currently tracks.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Building(adj) => adj.len(),
            Repr::Sealed(csr) => csr.users(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the graph is in the frozen CSR layout.
    pub fn is_sealed(&self) -> bool {
        matches!(self.repr, Repr::Sealed(_))
    }

    /// Freeze into the CSR layout. Idempotent; a no-op on an already
    /// sealed graph. Neighbour lists are already sorted, so this is one
    /// prefix sum plus one flat copy.
    pub fn seal(&mut self) {
        if let Repr::Building(adj) = &self.repr {
            let mut offsets = Vec::with_capacity(adj.len() + 1);
            let mut total = 0u64;
            offsets.push(0);
            for list in adj {
                total += list.len() as u64;
                offsets.push(total);
            }
            let mut edges = Vec::with_capacity(total as usize);
            for list in adj {
                edges.extend_from_slice(list);
            }
            self.repr = Repr::Sealed(Csr { offsets, edges });
        }
    }

    /// Build a sealed graph directly from an undirected edge list —
    /// the metro-scale fast path: degree count, prefix sum, scatter,
    /// then per-row sort + in-place dedup. Never materializes per-user
    /// `Vec`s. Self-loops and duplicate edges are dropped.
    pub fn from_edge_list(users: usize, edges: &[(UserId, UserId)]) -> FriendGraph {
        let mut degree = vec![0u64; users];
        for &(a, b) in edges {
            if a == b {
                continue;
            }
            degree[a.index()] += 1;
            degree[b.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(users + 1);
        let mut total = 0u64;
        offsets.push(0);
        for &d in &degree {
            total += d;
            offsets.push(total);
        }
        let mut flat = vec![UserId(0); total as usize];
        let mut cursor: Vec<u64> = offsets[..users].to_vec();
        for &(a, b) in edges {
            if a == b {
                continue;
            }
            flat[cursor[a.index()] as usize] = b;
            cursor[a.index()] += 1;
            flat[cursor[b.index()] as usize] = a;
            cursor[b.index()] += 1;
        }
        // Sort each row, then compact duplicates in place. The write
        // cursor never passes the read cursor, so this is safe.
        let mut write = 0usize;
        let mut compacted = Vec::with_capacity(users + 1);
        compacted.push(0u64);
        for u in 0..users {
            let (start, end) = (offsets[u] as usize, offsets[u + 1] as usize);
            flat[start..end].sort_unstable();
            let mut prev = None;
            for read in start..end {
                let v = flat[read];
                if prev != Some(v) {
                    flat[write] = v;
                    write += 1;
                    prev = Some(v);
                }
            }
            compacted.push(write as u64);
        }
        flat.truncate(write);
        FriendGraph { repr: Repr::Sealed(Csr { offsets: compacted, edges: flat }) }
    }

    /// Mutable Building-layout view, thawing a sealed graph first.
    fn building(&mut self) -> &mut Vec<Vec<UserId>> {
        if let Repr::Sealed(csr) = &self.repr {
            let adj = (0..csr.users()).map(|i| csr.list(i).to_vec()).collect();
            self.repr = Repr::Building(adj);
        }
        match &mut self.repr {
            Repr::Building(adj) => adj,
            Repr::Sealed(_) => unreachable!("just thawed"),
        }
    }

    /// Grow the user table to at least `users` entries.
    pub fn ensure_users(&mut self, users: usize) {
        if self.len() < users {
            self.building().resize(users, Vec::new());
        }
    }

    /// Insert a symmetric friendship. Self-links are ignored; duplicate
    /// insertions are idempotent. Returns `true` if the edge was new.
    pub fn add_friendship(&mut self, a: UserId, b: UserId) -> bool {
        if a == b {
            return false;
        }
        self.ensure_users(a.index().max(b.index()) + 1);
        let adj = self.building();
        let inserted = Self::insert_sorted(&mut adj[a.index()], b);
        if inserted {
            Self::insert_sorted(&mut adj[b.index()], a);
        }
        inserted
    }

    fn insert_sorted(list: &mut Vec<UserId>, v: UserId) -> bool {
        match list.binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                list.insert(pos, v);
                true
            }
        }
    }

    /// Remove a symmetric friendship. Returns `true` if the edge
    /// existed (removal happens on both sides); removing a missing or
    /// self edge is a no-op.
    pub fn remove_friendship(&mut self, a: UserId, b: UserId) -> bool {
        if a == b || a.index() >= self.len() || b.index() >= self.len() {
            return false;
        }
        if !self.are_friends(a, b) {
            return false;
        }
        let adj = self.building();
        Self::remove_sorted(&mut adj[a.index()], b);
        Self::remove_sorted(&mut adj[b.index()], a);
        true
    }

    fn remove_sorted(list: &mut Vec<UserId>, v: UserId) -> bool {
        match list.binary_search(&v) {
            Ok(pos) => {
                list.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// The sorted friend list of `u` (empty if out of range). In the
    /// sealed layout this is a slice of the flat CSR edge array —
    /// no per-user allocation exists to point into.
    pub fn friends(&self, u: UserId) -> &[UserId] {
        match &self.repr {
            Repr::Building(adj) => adj.get(u.index()).map(Vec::as_slice).unwrap_or(&[]),
            Repr::Sealed(csr) => {
                if u.index() < csr.users() {
                    csr.list(u.index())
                } else {
                    &[]
                }
            }
        }
    }

    /// Iterate every user's friend list in id order (both layouts).
    pub fn iter_lists(&self) -> impl Iterator<Item = &[UserId]> + '_ {
        (0..self.len()).map(move |i| self.friends(UserId::from_index(i)))
    }

    /// Degree of `u`.
    pub fn degree(&self, u: UserId) -> usize {
        self.friends(u).len()
    }

    /// Whether `a` and `b` are friends (binary search: `O(log d)`).
    pub fn are_friends(&self, a: UserId, b: UserId) -> bool {
        self.friends(a).binary_search(&b).is_ok()
    }

    /// Number of mutual friends of `a` and `b` (sorted-merge intersection).
    pub fn mutual_friend_count(&self, a: UserId, b: UserId) -> usize {
        sorted_intersection_len(self.friends(a), self.friends(b))
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        match &self.repr {
            Repr::Building(adj) => adj.iter().map(Vec::len).sum::<usize>() / 2,
            Repr::Sealed(csr) => csr.edges.len() / 2,
        }
    }

    /// Insert many edges at once: appends then sorts/dedups each
    /// adjacency list, which is `O(E log d)` instead of the `O(E · d)`
    /// of repeated sorted insertion. Self-loops and duplicates are
    /// dropped. Intended for the population generator.
    pub fn bulk_insert(&mut self, edges: impl IntoIterator<Item = (UserId, UserId)>) {
        let mut touched = Vec::new();
        {
            // Pre-grow outside the loop borrow, then fill.
            let mut max = self.len();
            let edges: Vec<(UserId, UserId)> = edges.into_iter().filter(|(a, b)| a != b).collect();
            for &(a, b) in &edges {
                max = max.max(a.index().max(b.index()) + 1);
            }
            self.ensure_users(max);
            let adj = self.building();
            for (a, b) in edges {
                adj[a.index()].push(b);
                adj[b.index()].push(a);
                touched.push(a);
                touched.push(b);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        let adj = self.building();
        for u in touched {
            let list = &mut adj[u.index()];
            list.sort_unstable();
            list.dedup();
        }
    }
}

// Hand-written serde: both layouts round-trip through the legacy
// `{"adj": [[...]]}` form, so `Network::fingerprint` is layout-blind
// and sealed worlds deserialize back into the mutable Building state.
impl Serialize for FriendGraph {
    fn to_json_value(&self) -> Value {
        let adj: Vec<Value> = self
            .iter_lists()
            .map(|list| Value::Array(list.iter().map(|u| u.to_json_value()).collect()))
            .collect();
        let mut m = serde::value::Map::new();
        m.insert("adj".to_string(), Value::Array(adj));
        Value::Object(m)
    }
}

impl<'de> Deserialize<'de> for FriendGraph {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        let adj = v.get("adj").ok_or_else(|| "missing field `adj`".to_string())?;
        Ok(FriendGraph { repr: Repr::Building(Vec::<Vec<UserId>>::from_json_value(adj)?) })
    }
}

/// Length of the intersection of two sorted, deduplicated slices.
pub fn sorted_intersection_len(a: &[UserId], b: &[UserId]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Jaccard index of two sorted friend lists, per the paper's hidden-link
/// inference (§6.1): `|A ∩ B| / |A ∪ B|`. Returns 0 for two empty lists.
pub fn jaccard_index(a: &[UserId], b: &[UserId]) -> f64 {
    let inter = sorted_intersection_len(a, b);
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Asymmetric circle membership, Google+-style: `a` may have `b` in her
/// circles without `b` reciprocating (paper Appendix A).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Circles {
    /// `out[a]` = users that `a` has in her circles (sorted).
    out: Vec<Vec<UserId>>,
    /// `inc[b]` = users that have `b` in their circles (sorted).
    inc: Vec<Vec<UserId>>,
}

impl Circles {
    pub fn with_capacity(users: usize) -> Self {
        Circles { out: vec![Vec::new(); users], inc: vec![Vec::new(); users] }
    }

    pub fn ensure_users(&mut self, users: usize) {
        if self.out.len() < users {
            self.out.resize(users, Vec::new());
            self.inc.resize(users, Vec::new());
        }
    }

    /// `a` adds `b` to her circles. Idempotent; self-links ignored.
    pub fn add(&mut self, a: UserId, b: UserId) -> bool {
        if a == b {
            return false;
        }
        self.ensure_users(a.index().max(b.index()) + 1);
        let inserted = FriendGraph::insert_sorted(&mut self.out[a.index()], b);
        if inserted {
            FriendGraph::insert_sorted(&mut self.inc[b.index()], a);
        }
        inserted
    }

    /// Users in `u`'s circles.
    pub fn in_circles_of(&self, u: UserId) -> &[UserId] {
        self.out.get(u.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Users who have `u` in their circles.
    pub fn have_in_circles(&self, u: UserId) -> &[UserId] {
        self.inc.get(u.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The raw `(inc, out)` list tables, for the streaming fingerprint
    /// in `Network::fingerprint`.
    pub(crate) fn fingerprint_parts(&self) -> (&[Vec<UserId>], &[Vec<UserId>]) {
        (&self.inc, &self.out)
    }

    /// Derive symmetric-looking circles from a friendship graph: both
    /// directions are populated, mirroring users who "circled back".
    pub fn from_friend_graph(g: &FriendGraph) -> Self {
        let mut c = Circles::with_capacity(g.len());
        for i in 0..g.len() {
            let u = UserId::from_index(i);
            for &v in g.friends(u) {
                c.add(u, v);
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: u64) -> UserId {
        UserId(i)
    }

    #[test]
    fn friendship_is_symmetric_and_idempotent() {
        let mut g = FriendGraph::default();
        assert!(g.add_friendship(u(1), u(2)));
        assert!(!g.add_friendship(u(2), u(1)));
        assert!(g.are_friends(u(1), u(2)));
        assert!(g.are_friends(u(2), u(1)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn remove_friendship_is_symmetric() {
        let mut g = FriendGraph::default();
        g.add_friendship(u(1), u(2));
        g.add_friendship(u(1), u(3));
        assert!(g.remove_friendship(u(2), u(1)));
        assert!(!g.are_friends(u(1), u(2)));
        assert!(!g.are_friends(u(2), u(1)));
        assert!(g.are_friends(u(1), u(3)), "unrelated edges survive");
        assert!(!g.remove_friendship(u(1), u(2)), "double-remove is a no-op");
        assert!(!g.remove_friendship(u(7), u(8)), "out-of-range is a no-op");
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_friendship_rejected() {
        let mut g = FriendGraph::default();
        assert!(!g.add_friendship(u(3), u(3)));
        assert_eq!(g.degree(u(3)), 0);
    }

    #[test]
    fn friend_lists_stay_sorted() {
        let mut g = FriendGraph::default();
        for i in [5u64, 1, 9, 3, 7] {
            g.add_friendship(u(0), u(i));
        }
        let f = g.friends(u(0));
        assert!(f.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(f.len(), 5);
    }

    #[test]
    fn mutual_friends_counted() {
        let mut g = FriendGraph::default();
        // 1 and 2 share friends 3 and 4; 5 is only 1's friend.
        g.add_friendship(u(1), u(3));
        g.add_friendship(u(1), u(4));
        g.add_friendship(u(1), u(5));
        g.add_friendship(u(2), u(3));
        g.add_friendship(u(2), u(4));
        assert_eq!(g.mutual_friend_count(u(1), u(2)), 2);
        assert_eq!(g.mutual_friend_count(u(1), u(5)), 0);
    }

    #[test]
    fn bulk_insert_matches_incremental() {
        let edges = [(1u64, 2), (2, 3), (1, 2), (4, 4), (0, 5), (5, 0), (3, 1)];
        let mut bulk = FriendGraph::default();
        bulk.bulk_insert(edges.iter().map(|&(a, b)| (u(a), u(b))));
        let mut inc = FriendGraph::default();
        for &(a, b) in &edges {
            inc.add_friendship(u(a), u(b));
        }
        for i in 0..6 {
            assert_eq!(bulk.friends(u(i)), inc.friends(u(i)), "user {i}");
        }
        assert_eq!(bulk.edge_count(), inc.edge_count());
    }

    #[test]
    fn out_of_range_queries_are_empty() {
        let g = FriendGraph::default();
        assert_eq!(g.friends(u(99)), &[] as &[UserId]);
        assert!(!g.are_friends(u(1), u(2)));
    }

    #[test]
    fn jaccard_basics() {
        let a: Vec<UserId> = [1u64, 2, 3, 4].iter().map(|&i| u(i)).collect();
        let b: Vec<UserId> = [3u64, 4, 5, 6].iter().map(|&i| u(i)).collect();
        let j = jaccard_index(&a, &b);
        assert!((j - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(jaccard_index(&[], &[]), 0.0);
        assert_eq!(jaccard_index(&a, &a), 1.0);
    }

    #[test]
    fn circles_are_asymmetric() {
        let mut c = Circles::default();
        assert!(c.add(u(1), u(2)));
        assert_eq!(c.in_circles_of(u(1)), &[u(2)]);
        assert_eq!(c.have_in_circles(u(2)), &[u(1)]);
        // The reverse direction was NOT created.
        assert_eq!(c.in_circles_of(u(2)), &[] as &[UserId]);
        assert_eq!(c.have_in_circles(u(1)), &[] as &[UserId]);
    }

    #[test]
    fn circles_from_friend_graph_mirror_both_ways() {
        let mut g = FriendGraph::default();
        g.add_friendship(u(0), u(1));
        let c = Circles::from_friend_graph(&g);
        assert_eq!(c.in_circles_of(u(0)), &[u(1)]);
        assert_eq!(c.in_circles_of(u(1)), &[u(0)]);
        assert_eq!(c.have_in_circles(u(0)), &[u(1)]);
    }
}
