//! Property tests for the graph substrate.

use hsp_graph::{
    jaccard_index, sorted_intersection_len, Date, FriendGraph, Network, PrivacySettings,
    ProfileContent, Registration, Role, UserId,
};
use proptest::prelude::*;

proptest! {
    /// `from_days ∘ to_days = id` over ±200 years around the epoch.
    #[test]
    fn date_day_count_round_trips(days in -73000i64..73000) {
        let d = Date::from_days(days);
        prop_assert_eq!(d.to_days(), days);
        // And the components are a valid date.
        prop_assert!(Date::new(d.year(), d.month(), d.day()).is_ok());
    }

    /// `add_days` composes additively.
    #[test]
    fn add_days_is_additive(start in -40000i64..40000, a in -5000i64..5000, b in -5000i64..5000) {
        let d = Date::from_days(start);
        prop_assert_eq!(d.add_days(a).add_days(b), d.add_days(a + b));
    }

    /// Age never decreases as the reference date advances.
    #[test]
    fn age_is_monotonic(birth_days in -20000i64..10000, on in -10000i64..20000, delta in 0i64..4000) {
        let birth = Date::from_days(birth_days);
        let d1 = Date::from_days(on);
        let d2 = d1.add_days(delta);
        prop_assert!(Date::age_on(birth, d2) >= Date::age_on(birth, d1));
    }

    /// Consecutive days differ by exactly one calendar step.
    #[test]
    fn successor_day_is_next_date(days in -40000i64..40000) {
        let d = Date::from_days(days);
        let next = Date::from_days(days + 1);
        prop_assert!(next > d);
        prop_assert_eq!(d.days_until(next), 1);
    }

    /// Bulk insertion is exactly equivalent to incremental insertion.
    #[test]
    fn bulk_insert_equals_incremental(
        edges in prop::collection::vec((0u64..60, 0u64..60), 0..150)
    ) {
        let mut bulk = FriendGraph::default();
        bulk.bulk_insert(edges.iter().map(|&(a, b)| (UserId(a), UserId(b))));
        let mut inc = FriendGraph::default();
        for &(a, b) in &edges {
            inc.add_friendship(UserId(a), UserId(b));
        }
        for i in 0..60 {
            prop_assert_eq!(bulk.friends(UserId(i)), inc.friends(UserId(i)));
        }
        prop_assert_eq!(bulk.edge_count(), inc.edge_count());
    }

    /// Friendship symmetry and sortedness hold under arbitrary insertion.
    #[test]
    fn adjacency_is_symmetric_and_sorted(
        edges in prop::collection::vec((0u64..40, 0u64..40), 0..120)
    ) {
        let mut g = FriendGraph::default();
        g.bulk_insert(edges.iter().map(|&(a, b)| (UserId(a), UserId(b))));
        for i in 0..40u64 {
            let u = UserId(i);
            let friends = g.friends(u);
            prop_assert!(friends.windows(2).all(|w| w[0] < w[1]), "unsorted/dup");
            for &f in friends {
                prop_assert!(g.are_friends(f, u), "asymmetric edge {}-{}", u, f);
                prop_assert_ne!(f, u, "self loop");
            }
        }
    }

    /// Jaccard is symmetric and bounded in [0, 1]; intersection length
    /// is commutative and bounded by both list lengths.
    #[test]
    fn jaccard_and_intersection_properties(
        a in prop::collection::btree_set(0u64..200, 0..60),
        b in prop::collection::btree_set(0u64..200, 0..60),
    ) {
        let av: Vec<UserId> = a.iter().map(|&x| UserId(x)).collect();
        let bv: Vec<UserId> = b.iter().map(|&x| UserId(x)).collect();
        let i1 = sorted_intersection_len(&av, &bv);
        let i2 = sorted_intersection_len(&bv, &av);
        prop_assert_eq!(i1, i2);
        prop_assert!(i1 <= av.len() && i1 <= bv.len());
        let j1 = jaccard_index(&av, &bv);
        let j2 = jaccard_index(&bv, &av);
        prop_assert!((j1 - j2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&j1));
        if !av.is_empty() {
            prop_assert!((jaccard_index(&av, &av) - 1.0).abs() < 1e-12);
        }
    }

    /// The paper's stranger relation is symmetric (all three conditions
    /// are symmetric predicates).
    #[test]
    fn stranger_relation_is_symmetric(
        edges in prop::collection::vec((0u64..12, 0u64..12), 0..30),
        networked in prop::collection::vec(any::<bool>(), 12),
    ) {
        let mut net = Network::new(Date::ymd(2012, 3, 15));
        let city = net.add_city("X", "NY");
        let school = net.add_school(hsp_graph::School {
            id: hsp_graph::SchoolId(0),
            name: "HS".into(),
            city,
            kind: hsp_graph::SchoolKind::HighSchool,
            public_enrollment_estimate: 100,
        });
        for &in_network in networked.iter().take(12) {
            let mut profile = ProfileContent::bare("A", "B", hsp_graph::Gender::Male);
            if in_network {
                profile.networks.push(school);
            }
            net.add_user(hsp_graph::User {
                id: UserId(0),
                true_birth_date: Date::ymd(1990, 1, 1),
                registration: Registration {
                    registered_birth_date: Date::ymd(1990, 1, 1),
                    registration_date: Date::ymd(2008, 1, 1),
                },
                profile,
                privacy: PrivacySettings::facebook_adult_default(),
                role: Role::OtherResident,
            });
        }
        net.add_friendships_bulk(
            edges.iter().map(|&(a, b)| (UserId(a), UserId(b))),
        );
        for a in 0..12u64 {
            for b in 0..12u64 {
                prop_assert_eq!(
                    net.is_stranger(UserId(a), UserId(b)),
                    net.is_stranger(UserId(b), UserId(a)),
                    "asymmetric strangerhood {},{}", a, b
                );
            }
        }
    }
}
