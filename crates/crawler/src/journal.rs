//! Durable crawl journal: a length-prefixed, CRC32-framed, monotonically
//! sequenced append-only WAL of per-lane crawl events, with group-commit
//! batching and atomic snapshot compaction.
//!
//! The paper's crawl ran for weeks from commodity machines; the
//! reproduction's attacker must therefore be **crash-only**: killing the
//! process at any instant — including mid-`write(2)`, leaving a torn
//! frame — and restarting it must reproduce the uninterrupted run
//! bit-for-bit. The journal is the attacker's only durable state:
//!
//! - **Framing**: each record is `[u32 len][u64 seq][u32 crc][payload]`
//!   (little-endian). The CRC covers the sequence number *and* the
//!   payload, so a flipped byte anywhere in a frame — including its
//!   header — is detected. `len` is validated implicitly: a corrupt
//!   length re-frames the scan onto bytes whose CRC cannot match.
//! - **Group commit**: records buffer in memory and reach the file in
//!   one `write` + `fdatasync` per committed group (one group per
//!   crawler operation). A crash between groups loses at most the
//!   uncommitted operation, which the resumed crawler deterministically
//!   re-executes.
//! - **Recovery**: a sequential scan that accepts the longest valid
//!   committed prefix. A bad frame with *no* valid frame after it is a
//!   torn tail (discarded, counted); a bad frame *followed by* a valid
//!   frame is interior corruption and recovery refuses to silently skip
//!   it — that distinction is what makes recovery safe rather than
//!   merely permissive. Sequence gaps between valid frames are hard
//!   errors too.
//! - **Compaction**: a fresh journal holding one `Base` snapshot of the
//!   folded state is written to `<path>.tmp`, fsynced, then renamed
//!   over the live journal — the old journal stays authoritative until
//!   the compacted file is durable.
//!
//! Kill-point injection ([`KillPlan`]) deterministically simulates the
//! crash at flush time: bytes up to (or partway into) the N-th record
//! reach the file, everything later in the group is lost, and the
//! journal reports [`JournalError::Killed`] — the in-process analogue
//! of `kill -9` between two sectors of a group write.

use crate::effort::Effort;
use crate::scrape::ScrapedProfile;
use crate::snapshot::fnv1a;
use hsp_graph::{SchoolId, UserId};
use hsp_obs::{Counter, Histogram, Registry};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Bytes of frame header: `u32` length + `u64` sequence + `u32` CRC.
pub const FRAME_HEADER_BYTES: usize = 16;

/// Sanity bound on a single frame's payload; anything larger is treated
/// as a corrupt length during recovery.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Reserved flight-recorder lane for recovery spans, far outside any
/// username-derived lane. Excluded from resume-determinism digests via
/// [`hsp_obs::FlightRecorder::digest_excluding`].
pub const LANE_RECOVERY: u64 = u64::MAX;

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 (table-based; no external crate).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

fn crc_of(seq: u64, payload: &[u8]) -> u32 {
    let mut framed = Vec::with_capacity(8 + payload.len());
    framed.extend_from_slice(&seq.to_le_bytes());
    framed.extend_from_slice(payload);
    crc32(&framed)
}

/// Journal failures. `Killed` is the deterministic kill-point firing —
/// the crash-harness analogue of the process dying mid-commit.
#[derive(Debug)]
pub enum JournalError {
    Io(std::io::Error),
    Encode(String),
    /// A frame with a valid CRC decoded to no known record shape.
    Decode {
        seq: u64,
        detail: String,
    },
    /// A corrupt or incomplete frame *followed by* a valid frame:
    /// recovery refuses to skip interior gaps.
    InteriorCorruption {
        offset: u64,
        next_valid_offset: u64,
    },
    /// Valid CRC but the sequence number is not the expected successor.
    SequenceGap {
        expected: u64,
        found: u64,
        offset: u64,
    },
    /// The configured [`KillPlan`] fired; the process is "dead".
    Killed,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io: {e}"),
            JournalError::Encode(e) => write!(f, "journal encode: {e}"),
            JournalError::Decode { seq, detail } => {
                write!(f, "journal decode at seq {seq}: {detail}")
            }
            JournalError::InteriorCorruption { offset, next_valid_offset } => write!(
                f,
                "journal interior corruption at byte {offset} (valid frame follows at \
                 {next_valid_offset}); refusing to skip the gap"
            ),
            JournalError::SequenceGap { expected, found, offset } => write!(
                f,
                "journal sequence gap at byte {offset}: expected seq {expected}, found {found}"
            ),
            JournalError::Killed => write!(f, "journal kill point fired"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Deterministic crash injection: the process "dies" while flushing the
/// group that contains lifetime record number `after_records` (1-based,
/// across compactions). Bytes up to the end of that record's frame —
/// or only `torn_bytes` of it, simulating a torn sector write — reach
/// the file; the rest of the group is lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KillPlan {
    pub after_records: u64,
    pub torn_bytes: Option<usize>,
}

impl KillPlan {
    pub fn after(after_records: u64) -> KillPlan {
        KillPlan { after_records, torn_bytes: None }
    }

    pub fn torn(after_records: u64, torn_bytes: usize) -> KillPlan {
        KillPlan { after_records, torn_bytes: Some(torn_bytes) }
    }
}

/// Snapshot of one circuit breaker (mirrors `driver::Breaker`).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BreakerState {
    pub consecutive: u32,
    pub open: bool,
}

/// Serializable transport state (mirrors `hsp_http::TransportState`,
/// which stays serde-free — hsp-http has no serde dependency).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TransportJournalState {
    pub cookies: Vec<(String, String)>,
    pub attempt_seq: u64,
    pub jitter_state: u64,
}

impl TransportJournalState {
    pub fn from_transport(t: &hsp_http::TransportState) -> TransportJournalState {
        TransportJournalState {
            cookies: t.cookies.clone(),
            attempt_seq: t.attempt_seq,
            jitter_state: t.jitter_state,
        }
    }

    pub fn to_transport(&self) -> hsp_http::TransportState {
        hsp_http::TransportState {
            cookies: self.cookies.clone(),
            attempt_seq: self.attempt_seq,
            jitter_state: self.jitter_state,
        }
    }
}

/// Serializable retry-stats counters (mirrors
/// `hsp_http::RetryStatsSnapshot`).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RetryStatsState {
    pub retries: u64,
    pub rate_limited: u64,
    pub server_errors: u64,
    pub sheds: u64,
    pub resets: u64,
    pub deadlines_exceeded: u64,
    pub backoff_virtual_ms: u64,
    pub edge_limited: u64,
    pub fault_rate_limited: u64,
    pub throttled: u64,
    pub stale_refetches: u64,
    pub tombstones: u64,
}

impl RetryStatsState {
    pub fn from_stats(s: &hsp_http::RetryStatsSnapshot) -> RetryStatsState {
        RetryStatsState {
            retries: s.retries,
            rate_limited: s.rate_limited,
            server_errors: s.server_errors,
            sheds: s.sheds,
            resets: s.resets,
            deadlines_exceeded: s.deadlines_exceeded,
            backoff_virtual_ms: s.backoff_virtual_ms,
            edge_limited: s.edge_limited,
            fault_rate_limited: s.fault_rate_limited,
            throttled: s.throttled,
            stale_refetches: s.stale_refetches,
            tombstones: s.tombstones,
        }
    }

    pub fn to_stats(&self) -> hsp_http::RetryStatsSnapshot {
        hsp_http::RetryStatsSnapshot {
            retries: self.retries,
            rate_limited: self.rate_limited,
            server_errors: self.server_errors,
            sheds: self.sheds,
            resets: self.resets,
            deadlines_exceeded: self.deadlines_exceeded,
            backoff_virtual_ms: self.backoff_virtual_ms,
            edge_limited: self.edge_limited,
            fault_rate_limited: self.fault_rate_limited,
            throttled: self.throttled,
            stale_refetches: self.stale_refetches,
            tombstones: self.tombstones,
        }
    }
}

/// One account lane's full resume state at a commit boundary.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LaneState {
    /// Position in the scheduler's account vector (enrollment order).
    pub index: u64,
    pub username: String,
    pub password: String,
    pub suspended: bool,
    pub effort: Effort,
    /// Fallback local timeline (clock-less seats).
    pub local_ms: u64,
    /// The lane's private [`hsp_obs::VirtualClock`] position.
    pub clock_ms: u64,
    /// Per-endpoint breaker states, keyed by endpoint label.
    pub breakers: BTreeMap<String, BreakerState>,
    /// Next trace ordinal on this lane.
    pub trace_ordinal: u64,
    pub transport: TransportJournalState,
}

/// Scheduler-level resume state at a commit boundary.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SchedState {
    pub rr: u64,
    pub modeled_wall_ms: u64,
    pub recruited: u64,
    pub stale_refetches: u64,
    pub retry_stats: RetryStatsState,
}

/// One circles-cache entry (`(uid, incoming) -> members`), kept as a
/// struct list rather than a tuple-keyed map for serialization.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CirclesEntry {
    pub uid: UserId,
    pub incoming: bool,
    pub members: Option<Vec<UserId>>,
}

/// Everything a killed crawler needs to resume bit-identically: caches,
/// world-generation stamps, per-lane state, scheduler state.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ResumeState {
    pub label: String,
    pub seeds: BTreeMap<SchoolId, Vec<UserId>>,
    pub profiles: BTreeMap<UserId, ScrapedProfile>,
    pub friends: BTreeMap<UserId, Option<Vec<UserId>>>,
    pub circles: Vec<CirclesEntry>,
    pub incomplete: Vec<UserId>,
    pub tombstoned: Vec<UserId>,
    /// `x-world-gen` stamp each committed friend list was read at —
    /// restored so resumed pair-reconciliation sees the pre-crash view.
    pub friends_gen: BTreeMap<UserId, u64>,
    pub lanes: Vec<LaneState>,
    pub sched: SchedState,
}

/// One journal record. Fine-grained events carry the crawl's data; the
/// per-group `Lanes`/`Sched` records carry the (small) mutable machine
/// state; `Commit` seals a group; `Base` is a compacted snapshot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// Compaction base: the folded state of everything before it.
    Base {
        state: ResumeState,
    },
    SeedsCollected {
        school: SchoolId,
        seeds: Vec<UserId>,
    },
    ProfileCommitted {
        uid: UserId,
        profile: ScrapedProfile,
    },
    FriendsCommitted {
        uid: UserId,
        friends: Option<Vec<UserId>>,
        partial: bool,
        gen: Option<u64>,
    },
    CirclesCommitted {
        uid: UserId,
        incoming: bool,
        members: Option<Vec<UserId>>,
    },
    MessageSent {
        uid: UserId,
        accepted: bool,
    },
    /// A lane was suspended by the platform since the previous group.
    LaneSuspended {
        index: u64,
        username: String,
    },
    /// A lane was recruited (fleet escalation) since the previous group.
    LaneRecruited {
        index: u64,
        username: String,
    },
    /// Full per-lane state at this commit boundary (fleets are small).
    Lanes {
        lanes: Vec<LaneState>,
    },
    /// Delta: one lane's state at this commit boundary. The scheduler
    /// emits these instead of a full [`JournalRecord::Lanes`] snapshot
    /// when only some lanes moved since the previous group — on a
    /// send-message group that's one lane out of the whole fleet, which
    /// is most of the journal's serialization volume.
    Lane {
        lane: LaneState,
    },
    /// Scheduler state at this commit boundary.
    Sched {
        sched: SchedState,
    },
    /// Group seal: everything since the previous `Commit` is atomic.
    Commit {
        op: String,
    },
}

/// Journal-side metrics (`crawler_journal_*`, `crawler_recovery_*`).
#[derive(Clone)]
pub struct JournalMetrics {
    pub appends_total: Arc<Counter>,
    pub bytes_total: Arc<Counter>,
    pub groups_total: Arc<Counter>,
    pub syncs_total: Arc<Counter>,
    /// Wall time spent inside journal write-path calls, in microseconds
    /// (see [`Journal::time_spent`]).
    pub write_us_total: Arc<Counter>,
    pub compactions_total: Arc<Counter>,
    pub recovery_runs_total: Arc<Counter>,
    pub recovery_records_total: Arc<Counter>,
    pub recovery_discarded_records_total: Arc<Counter>,
    pub recovery_torn_bytes_total: Arc<Counter>,
    pub recovery_us: Arc<Histogram>,
}

impl JournalMetrics {
    pub fn register(reg: &Registry) -> JournalMetrics {
        JournalMetrics {
            appends_total: reg.counter("crawler_journal_appends_total"),
            bytes_total: reg.counter("crawler_journal_bytes_total"),
            groups_total: reg.counter("crawler_journal_groups_total"),
            syncs_total: reg.counter("crawler_journal_syncs_total"),
            write_us_total: reg.counter("crawler_journal_write_us_total"),
            compactions_total: reg.counter("crawler_journal_compactions_total"),
            recovery_runs_total: reg.counter("crawler_recovery_runs_total"),
            recovery_records_total: reg.counter("crawler_recovery_records_total"),
            recovery_discarded_records_total: reg
                .counter("crawler_recovery_discarded_records_total"),
            recovery_torn_bytes_total: reg.counter("crawler_recovery_torn_bytes_total"),
            recovery_us: reg.histogram("crawler_recovery_us"),
        }
    }
}

/// The append side of the WAL.
pub struct Journal {
    file: std::fs::File,
    path: PathBuf,
    next_seq: u64,
    /// Group-commit buffer: encoded frames not yet flushed.
    pending: Vec<u8>,
    /// `(end offset in pending, frame length)` per buffered record.
    pending_records: Vec<(usize, usize)>,
    /// Durable records (lifetime, across compactions).
    records_written: u64,
    bytes_written: u64,
    groups_committed: u64,
    /// Fdatasync every n-th committed group (group-commit batching).
    sync_every: u64,
    /// Committed groups written since the last fdatasync.
    unsynced_groups: u64,
    kill: Option<KillPlan>,
    killed: bool,
    metrics: Option<JournalMetrics>,
    /// Wall time spent inside the write path (encode, flush, fsync) —
    /// the journal's direct cost, measured by the journal itself.
    spent: std::time::Duration,
}

impl Journal {
    /// Create (truncating) a fresh journal at `path`.
    pub fn create(path: &Path) -> Result<Journal, JournalError> {
        Ok(Journal {
            file: std::fs::File::create(path)?,
            path: path.to_path_buf(),
            next_seq: 0,
            pending: Vec::new(),
            pending_records: Vec::new(),
            records_written: 0,
            bytes_written: 0,
            groups_committed: 0,
            sync_every: 1,
            unsynced_groups: 0,
            kill: None,
            killed: false,
            metrics: None,
            spent: std::time::Duration::ZERO,
        })
    }

    /// Create a fresh journal whose first group is a compacted `Base`
    /// of `state` — the resume path's "reopen" primitive. The base is
    /// staged in `<path>.tmp` and renamed over the old journal only
    /// once durable, so a crash mid-reopen leaves the old journal (the
    /// only copy of the recovered state) authoritative.
    pub fn create_with_base(path: &Path, state: &ResumeState) -> Result<Journal, JournalError> {
        let t0 = std::time::Instant::now();
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        let mut journal = Journal::create(&tmp)?;
        journal.append(&JournalRecord::Base { state: state.clone() })?;
        journal.commit("base")?; // first group of a file is always fsynced
        std::fs::rename(&tmp, path)?;
        journal.path = path.to_path_buf();
        journal.file = std::fs::OpenOptions::new().append(true).open(path)?;
        // Charge the whole reopen (including the rename) as write-path
        // time; append/commit above already accrued their share, so
        // overwrite rather than add.
        journal.spent = t0.elapsed();
        Ok(journal)
    }

    pub fn with_kill_plan(mut self, plan: KillPlan) -> Journal {
        self.kill = Some(plan);
        self
    }

    /// Group-commit batching: fdatasync only every `n`-th committed
    /// group (plus the first group of a file, [`Journal::sync`],
    /// [`Journal::compact`], and drop). Commit *records* still seal
    /// every group, so recovery semantics are unchanged; what widens is
    /// the window of committed-but-not-yet-durable groups an actual
    /// power cut could lose — which a resume tolerates by re-driving
    /// that suffix through the replay-aware platform.
    pub fn with_sync_every(mut self, n: u64) -> Journal {
        self.sync_every = n.max(1);
        self
    }

    pub fn with_metrics(mut self, metrics: JournalMetrics) -> Journal {
        self.metrics = Some(metrics);
        self
    }

    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    pub fn groups_committed(&self) -> u64 {
        self.groups_committed
    }

    fn encode_frame(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        let payload =
            serde_json::to_string(record).map_err(|e| JournalError::Encode(e.to_string()))?;
        let payload = payload.as_bytes();
        let seq = self.next_seq;
        self.next_seq += 1;
        let crc = crc_of(seq, payload);
        let frame_len = FRAME_HEADER_BYTES + payload.len();
        self.pending.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.pending.extend_from_slice(&seq.to_le_bytes());
        self.pending.extend_from_slice(&crc.to_le_bytes());
        self.pending.extend_from_slice(payload);
        self.pending_records.push((self.pending.len(), frame_len));
        Ok(())
    }

    /// Fold `t0`'s elapsed time into the journal's own cost accounting
    /// (see [`Journal::time_spent`]).
    fn note_spent(&mut self, t0: std::time::Instant) {
        let d = t0.elapsed();
        self.spent += d;
        if let Some(m) = &self.metrics {
            m.write_us_total.add(d.as_micros() as u64);
        }
    }

    /// Wall time this journal has spent in its write path (encoding,
    /// group flushes, fdatasync, compaction). The direct journaling
    /// cost as seen by the crawl that carries the journal — an *upper*
    /// bound on the overhead vs an un-journaled run, since some of this
    /// time would otherwise overlap network waits. Measured in-process,
    /// it is immune to the host-level scheduling jitter that makes
    /// wall-clock A/B comparisons of two separate runs noisy.
    pub fn time_spent(&self) -> std::time::Duration {
        self.spent
    }

    /// Buffer one record into the current group. Nothing touches the
    /// file until [`Journal::commit`].
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        if self.killed {
            return Err(JournalError::Killed);
        }
        let t0 = std::time::Instant::now();
        let r = self.encode_frame(record);
        self.note_spent(t0);
        r
    }

    /// Seal the current group with a `Commit` record and flush it to
    /// the file in one write + fdatasync.
    pub fn commit(&mut self, op: &str) -> Result<(), JournalError> {
        if self.killed {
            return Err(JournalError::Killed);
        }
        let t0 = std::time::Instant::now();
        let r = self
            .encode_frame(&JournalRecord::Commit { op: op.to_string() })
            .and_then(|()| self.flush_group());
        self.note_spent(t0);
        r
    }

    /// Flush `pending` to the journal file, honoring the kill plan: if
    /// the group contains lifetime record number `after_records`, only
    /// bytes up to (or `torn_bytes` into) that record's frame reach the
    /// file.
    fn flush_group(&mut self) -> Result<(), JournalError> {
        let n = self.pending_records.len() as u64;
        if n == 0 {
            return Ok(());
        }
        if let Some(kill) = self.kill {
            let first = self.records_written + 1;
            let last = self.records_written + n;
            if kill.after_records >= first && kill.after_records <= last {
                let idx = (kill.after_records - first) as usize;
                let (end, frame_len) = self.pending_records[idx];
                let cut = match kill.torn_bytes {
                    Some(t) => end - frame_len + t.min(frame_len),
                    None => end,
                };
                {
                    let mut out = &self.file;
                    out.write_all(&self.pending[..cut])?;
                }
                self.file.sync_data()?;
                self.killed = true;
                return Err(JournalError::Killed);
            }
        }
        {
            let mut out = &self.file;
            out.write_all(&self.pending)?;
        }
        // Batched group commit: the first group of a file (the `Base`
        // on reopen — the file was just truncated, so losing it loses
        // everything) is always made durable; later groups fdatasync
        // every `sync_every`-th commit.
        self.unsynced_groups += 1;
        if self.groups_committed == 0 || self.unsynced_groups >= self.sync_every {
            self.file.sync_data()?;
            self.unsynced_groups = 0;
            if let Some(m) = &self.metrics {
                m.syncs_total.inc();
            }
        }
        self.records_written += n;
        self.bytes_written += self.pending.len() as u64;
        self.groups_committed += 1;
        if let Some(m) = &self.metrics {
            m.appends_total.add(n);
            m.bytes_total.add(self.pending.len() as u64);
            m.groups_total.inc();
        }
        self.pending.clear();
        self.pending_records.clear();
        Ok(())
    }

    /// Force any deferred fdatasync (see [`Journal::with_sync_every`]).
    pub fn sync(&mut self) -> Result<(), JournalError> {
        let t0 = std::time::Instant::now();
        let r = self.sync_inner();
        self.note_spent(t0);
        r
    }

    fn sync_inner(&mut self) -> Result<(), JournalError> {
        if self.unsynced_groups > 0 {
            self.file.sync_data()?;
            self.unsynced_groups = 0;
            if let Some(m) = &self.metrics {
                m.syncs_total.inc();
            }
        }
        Ok(())
    }

    /// Atomic compaction: write a fresh journal containing one `Base`
    /// group for `state` to `<path>.tmp`, fsync it, and rename it over
    /// the live journal. The old journal is only replaced once the
    /// compacted file is durable — a crash anywhere in between leaves
    /// the old journal authoritative.
    pub fn compact(&mut self, state: &ResumeState) -> Result<(), JournalError> {
        if self.killed {
            return Err(JournalError::Killed);
        }
        if !self.pending.is_empty() {
            return Err(JournalError::Encode("compact with uncommitted records".into()));
        }
        let t0 = std::time::Instant::now();
        let r = self.compact_inner(state);
        self.note_spent(t0);
        r
    }

    fn compact_inner(&mut self, state: &ResumeState) -> Result<(), JournalError> {
        let mut tmp_name = self.path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        // Re-encode from seq 0: a compacted journal is a fresh log.
        self.next_seq = 0;
        self.encode_frame(&JournalRecord::Base { state: state.clone() })?;
        self.encode_frame(&JournalRecord::Commit { op: "compact".to_string() })?;
        // Point the writer at the tmp file for the flush; a kill (or IO
        // failure) mid-flush abandons the tmp file before the rename,
        // leaving the old journal authoritative.
        self.file = std::fs::File::create(&tmp)?;
        self.flush_group()?;
        self.sync_inner()?; // the compacted snapshot must be durable pre-rename
        std::fs::rename(&tmp, &self.path)?;
        self.file = std::fs::OpenOptions::new().append(true).open(&self.path)?;
        if let Some(m) = &self.metrics {
            m.compactions_total.inc();
        }
        Ok(())
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        // Best-effort: flush any deferred group fdatasync on clean
        // shutdown. A real crash skips Drop by definition — that loss
        // window is exactly what a resume re-drives.
        let _ = self.sync();
    }
}

/// What recovery accepted from a journal file.
#[derive(Debug, Default)]
pub struct RecoveredLog {
    /// Records of all *committed* groups, in order.
    pub records: Vec<JournalRecord>,
    /// Committed groups accepted.
    pub groups: u64,
    /// Valid records seen, including any discarded uncommitted tail.
    pub records_seen: u64,
    /// Valid records after the last `Commit`, discarded.
    pub discarded_records: u64,
    /// Bytes of torn tail discarded.
    pub torn_bytes: u64,
}

enum FrameParse {
    Ok { seq: u64, payload_start: usize, payload_len: usize, next: usize },
    End,
    Bad,
}

fn frame_at(buf: &[u8], off: usize) -> FrameParse {
    if off == buf.len() {
        return FrameParse::End;
    }
    if buf.len() - off < FRAME_HEADER_BYTES {
        return FrameParse::Bad;
    }
    let len = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_BYTES || off + FRAME_HEADER_BYTES + len > buf.len() {
        return FrameParse::Bad;
    }
    let seq = u64::from_le_bytes(buf[off + 4..off + 12].try_into().expect("8 bytes"));
    let crc = u32::from_le_bytes(buf[off + 12..off + 16].try_into().expect("4 bytes"));
    let payload_start = off + FRAME_HEADER_BYTES;
    if crc_of(seq, &buf[payload_start..payload_start + len]) != crc {
        return FrameParse::Bad;
    }
    FrameParse::Ok { seq, payload_start, payload_len: len, next: payload_start + len }
}

/// Scan forward from `off + 1` for any byte offset that parses as a
/// valid frame — evidence that a bad frame at `off` is interior
/// corruption rather than a torn tail.
fn scan_ahead(buf: &[u8], off: usize) -> Option<usize> {
    ((off + 1)..buf.len().saturating_sub(FRAME_HEADER_BYTES - 1))
        .find(|&cand| matches!(frame_at(buf, cand), FrameParse::Ok { .. }))
}

/// Recover the longest valid committed prefix from raw journal bytes.
pub fn recover_bytes(buf: &[u8]) -> Result<RecoveredLog, JournalError> {
    let mut off = 0usize;
    let mut expected_seq = 0u64;
    let mut all: Vec<JournalRecord> = Vec::new();
    let mut last_commit: Option<usize> = None;
    let mut torn_bytes = 0u64;
    loop {
        match frame_at(buf, off) {
            FrameParse::End => break,
            FrameParse::Ok { seq, payload_start, payload_len, next } => {
                if seq != expected_seq {
                    return Err(JournalError::SequenceGap {
                        expected: expected_seq,
                        found: seq,
                        offset: off as u64,
                    });
                }
                let payload = &buf[payload_start..payload_start + payload_len];
                let text = std::str::from_utf8(payload)
                    .map_err(|e| JournalError::Decode { seq, detail: e.to_string() })?;
                let record: JournalRecord = serde_json::from_str(text)
                    .map_err(|e| JournalError::Decode { seq, detail: e.to_string() })?;
                if matches!(record, JournalRecord::Commit { .. }) {
                    last_commit = Some(all.len());
                }
                all.push(record);
                expected_seq += 1;
                off = next;
            }
            FrameParse::Bad => {
                if let Some(next_valid) = scan_ahead(buf, off) {
                    return Err(JournalError::InteriorCorruption {
                        offset: off as u64,
                        next_valid_offset: next_valid as u64,
                    });
                }
                torn_bytes = (buf.len() - off) as u64;
                break;
            }
        }
    }
    let records_seen = all.len() as u64;
    let committed = match last_commit {
        Some(idx) => {
            all.truncate(idx + 1);
            all
        }
        None => Vec::new(),
    };
    let discarded_records = records_seen - committed.len() as u64;
    let groups =
        committed.iter().filter(|r| matches!(r, JournalRecord::Commit { .. })).count() as u64;
    Ok(RecoveredLog { records: committed, groups, records_seen, discarded_records, torn_bytes })
}

/// Recover from a journal file. A missing file is an empty log (the
/// crawl never journaled anything durable).
pub fn recover(path: &Path) -> Result<RecoveredLog, JournalError> {
    let buf = match std::fs::read(path) {
        Ok(buf) => buf,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    recover_bytes(&buf)
}

/// Recover with metrics and timing (the production resume path).
pub fn recover_instrumented(
    path: &Path,
    metrics: &JournalMetrics,
) -> Result<RecoveredLog, JournalError> {
    let started = std::time::Instant::now();
    let result = recover(path);
    metrics.recovery_runs_total.inc();
    metrics.recovery_us.record(started.elapsed().as_micros() as u64);
    if let Ok(log) = &result {
        metrics.recovery_records_total.add(log.records.len() as u64);
        metrics.recovery_discarded_records_total.add(log.discarded_records);
        metrics.recovery_torn_bytes_total.add(log.torn_bytes);
    }
    result
}

/// Fold committed records into the resume state they describe. Returns
/// `None` when the log has no committed groups (nothing to resume) and
/// an error when the first committed record is not a `Base` — a journal
/// always begins with one.
pub fn fold_state(records: &[JournalRecord]) -> Result<Option<ResumeState>, JournalError> {
    if records.is_empty() {
        return Ok(None);
    }
    let mut state = match &records[0] {
        JournalRecord::Base { state } => state.clone(),
        other => {
            return Err(JournalError::Decode {
                seq: 0,
                detail: format!("journal does not begin with a Base record: {other:?}"),
            })
        }
    };
    for record in &records[1..] {
        match record {
            JournalRecord::Base { state: base } => state = base.clone(),
            JournalRecord::SeedsCollected { school, seeds } => {
                state.seeds.insert(*school, seeds.clone());
            }
            JournalRecord::ProfileCommitted { uid, profile } => {
                if profile.tombstoned && !state.tombstoned.contains(uid) {
                    state.tombstoned.push(*uid);
                    state.tombstoned.sort_unstable();
                }
                state.profiles.insert(*uid, profile.clone());
            }
            JournalRecord::FriendsCommitted { uid, friends, partial, gen } => {
                if *partial {
                    if !state.incomplete.contains(uid) {
                        state.incomplete.push(*uid);
                        state.incomplete.sort_unstable();
                    }
                } else {
                    state.incomplete.retain(|u| u != uid);
                }
                if let Some(g) = gen {
                    state.friends_gen.insert(*uid, *g);
                }
                state.friends.insert(*uid, friends.clone());
            }
            JournalRecord::CirclesCommitted { uid, incoming, members } => {
                state.circles.retain(|c| !(c.uid == *uid && c.incoming == *incoming));
                state.circles.push(CirclesEntry {
                    uid: *uid,
                    incoming: *incoming,
                    members: members.clone(),
                });
            }
            JournalRecord::MessageSent { .. }
            | JournalRecord::LaneSuspended { .. }
            | JournalRecord::LaneRecruited { .. }
            | JournalRecord::Commit { .. } => {}
            JournalRecord::Lanes { lanes } => state.lanes = lanes.clone(),
            JournalRecord::Lane { lane } => {
                match state.lanes.iter_mut().find(|l| l.index == lane.index) {
                    Some(slot) => *slot = lane.clone(),
                    None => {
                        state.lanes.push(lane.clone());
                        state.lanes.sort_by_key(|l| l.index);
                    }
                }
            }
            JournalRecord::Sched { sched } => state.sched = sched.clone(),
        }
    }
    Ok(Some(state))
}

/// Payload digest of a resume state (diagnostics / test assertions).
pub fn state_digest(state: &ResumeState) -> u64 {
    let value = serde_json::to_value(state).expect("resume state serializes");
    fnv1a(value.render_compact().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("hsp-journal-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Base { state: ResumeState { label: "t".into(), ..Default::default() } },
            JournalRecord::Commit { op: "base".into() },
            JournalRecord::SeedsCollected {
                school: SchoolId(3),
                seeds: vec![UserId(1), UserId(9)],
            },
            JournalRecord::Lanes { lanes: vec![LaneState { index: 0, ..Default::default() }] },
            JournalRecord::Sched { sched: SchedState::default() },
            JournalRecord::Commit { op: "collect_seeds".into() },
            JournalRecord::FriendsCommitted {
                uid: UserId(9),
                friends: Some(vec![UserId(1)]),
                partial: false,
                gen: Some(4),
            },
            JournalRecord::Commit { op: "prefetch_friends".into() },
        ]
    }

    /// Append `records` through the group API (one group per Commit).
    fn write_log(path: &Path, records: &[JournalRecord]) -> Journal {
        let mut journal = Journal::create(path).expect("create");
        for r in records {
            match r {
                JournalRecord::Commit { op } => journal.commit(op).expect("commit"),
                other => journal.append(other).expect("append"),
            }
        }
        journal
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn round_trips_groups() {
        let path = tmp_path("round_trip.wal");
        let records = sample_records();
        write_log(&path, &records);
        let log = recover(&path).expect("recover");
        assert_eq!(log.records, records);
        assert_eq!(log.groups, 3);
        assert_eq!(log.discarded_records, 0);
        assert_eq!(log.torn_bytes, 0);
        let state = fold_state(&log.records).expect("fold").expect("state");
        assert_eq!(state.seeds[&SchoolId(3)], vec![UserId(1), UserId(9)]);
        assert_eq!(state.friends[&UserId(9)], Some(vec![UserId(1)]));
        assert_eq!(state.friends_gen[&UserId(9)], 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn batched_sync_changes_nothing_recoverable() {
        // Group-commit batching only defers fdatasync; the on-file
        // byte stream (and thus recovery) is identical, and drop
        // flushes the deferred sync.
        let eager = tmp_path("sync_eager.wal");
        let batched = tmp_path("sync_batched.wal");
        let records = sample_records();
        write_log(&eager, &records);
        {
            let mut journal = Journal::create(&batched).expect("create").with_sync_every(64);
            for r in &records {
                match r {
                    JournalRecord::Commit { op } => journal.commit(op).expect("commit"),
                    other => journal.append(other).expect("append"),
                }
            }
            assert_eq!(journal.groups_committed(), 3);
        }
        assert_eq!(
            std::fs::read(&eager).expect("eager bytes"),
            std::fs::read(&batched).expect("batched bytes")
        );
        let log = recover(&batched).expect("recover");
        assert_eq!(log.records, records);
        let _ = std::fs::remove_file(&eager);
        let _ = std::fs::remove_file(&batched);
    }

    #[test]
    fn missing_file_is_empty_log() {
        let log = recover(&tmp_path("never_written.wal")).expect("recover");
        assert!(log.records.is_empty());
        assert!(fold_state(&log.records).expect("fold").is_none());
    }

    #[test]
    fn torn_tail_is_discarded_cleanly() {
        let path = tmp_path("torn.wal");
        write_log(&path, &sample_records());
        let full = std::fs::read(&path).expect("read");
        let whole = recover_bytes(&full).expect("whole");
        // Chop the last frame mid-payload: the final group loses its
        // Commit, so recovery falls back to the previous group.
        let cut = full.len() - 7;
        let log = recover_bytes(&full[..cut]).expect("recover torn");
        assert!(log.torn_bytes > 0);
        assert!(log.records.len() < whole.records.len());
        assert!(matches!(log.records.last(), Some(JournalRecord::Commit { .. })));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interior_corruption_is_refused() {
        let path = tmp_path("interior.wal");
        write_log(&path, &sample_records());
        let mut buf = std::fs::read(&path).expect("read");
        // Flip a byte in the middle of the SECOND frame's payload:
        // valid frames follow, so recovery must refuse, not skip.
        let first_len =
            u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize + FRAME_HEADER_BYTES;
        buf[first_len + FRAME_HEADER_BYTES + 2] ^= 0x40;
        match recover_bytes(&buf) {
            Err(JournalError::InteriorCorruption { offset, next_valid_offset }) => {
                assert_eq!(offset as usize, first_len);
                assert!(next_valid_offset > offset);
            }
            other => panic!("expected InteriorCorruption, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sequence_gap_is_refused() {
        let path = tmp_path("gap.wal");
        write_log(&path, &sample_records());
        let buf = std::fs::read(&path).expect("read");
        // Splice out the second frame entirely (a valid-CRC gap).
        let first_len =
            u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize + FRAME_HEADER_BYTES;
        let second_len = u32::from_le_bytes(buf[first_len..first_len + 4].try_into().unwrap())
            as usize
            + FRAME_HEADER_BYTES;
        let mut spliced = buf[..first_len].to_vec();
        spliced.extend_from_slice(&buf[first_len + second_len..]);
        match recover_bytes(&spliced) {
            Err(JournalError::SequenceGap { expected: 1, found: 2, .. }) => {}
            other => panic!("expected SequenceGap, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn uncommitted_tail_records_are_discarded() {
        let path = tmp_path("uncommitted.wal");
        let mut journal = write_log(&path, &sample_records());
        // Append events without committing, then flush them raw by
        // faking a commit-less write (simulate: records buffered only —
        // nothing hits the file, so recovery sees the committed log).
        journal
            .append(&JournalRecord::MessageSent { uid: UserId(5), accepted: true })
            .expect("append");
        drop(journal);
        let log = recover(&path).expect("recover");
        assert_eq!(log.records.len(), sample_records().len());
        assert_eq!(log.discarded_records, 0, "buffered records never reached the file");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn kill_plan_cuts_exactly_after_record_n() {
        let path = tmp_path("kill.wal");
        let mut journal =
            Journal::create(&path).expect("create").with_kill_plan(KillPlan::after(3));
        journal.append(&sample_records()[0]).expect("append");
        journal.commit("base").expect("commit");
        assert_eq!(journal.records_written(), 2);
        // Group 2 holds records 3..=4; the kill fires while flushing it.
        journal
            .append(&JournalRecord::SeedsCollected { school: SchoolId(1), seeds: vec![UserId(2)] })
            .expect("append");
        match journal.commit("collect_seeds") {
            Err(JournalError::Killed) => {}
            other => panic!("expected Killed, got {other:?}"),
        }
        // Everything after the kill keeps failing — the process is dead.
        assert!(matches!(
            journal.append(&JournalRecord::Commit { op: "x".into() }),
            Err(JournalError::Killed)
        ));
        // Record 3 reached the file whole but its group has no Commit:
        // recovery falls back to the base group.
        let log = recover(&path).expect("recover");
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.discarded_records, 1);
        assert!(matches!(log.records[0], JournalRecord::Base { .. }));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_kill_leaves_detectable_torn_tail() {
        let path = tmp_path("torn_kill.wal");
        let mut journal =
            Journal::create(&path).expect("create").with_kill_plan(KillPlan::torn(3, 9));
        journal.append(&sample_records()[0]).expect("append");
        journal.commit("base").expect("commit");
        journal
            .append(&JournalRecord::SeedsCollected { school: SchoolId(1), seeds: vec![UserId(2)] })
            .expect("append");
        assert!(matches!(journal.commit("collect_seeds"), Err(JournalError::Killed)));
        let log = recover(&path).expect("recover");
        assert_eq!(log.records.len(), 2, "only the base group survives");
        assert_eq!(log.torn_bytes, 9, "the torn prefix of record 3 is discarded");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_is_atomic_and_restartable() {
        let path = tmp_path("compact.wal");
        let mut journal = write_log(&path, &sample_records());
        let log = recover(&path).expect("recover");
        let state = fold_state(&log.records).expect("fold").expect("state");
        journal.compact(&state).expect("compact");
        assert!(!path.with_extension("wal.tmp").exists());
        // The compacted journal folds to the same state.
        let compacted = recover(&path).expect("recover compacted");
        assert_eq!(compacted.groups, 1);
        let refolded = fold_state(&compacted.records).expect("fold").expect("state");
        assert_eq!(state_digest(&refolded), state_digest(&state));
        // And stays appendable.
        journal
            .append(&JournalRecord::MessageSent { uid: UserId(7), accepted: false })
            .expect("append");
        journal.commit("send_message").expect("commit");
        let after = recover(&path).expect("recover after append");
        assert_eq!(after.groups, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn kill_during_compaction_preserves_old_journal() {
        let path = tmp_path("compact_kill.wal");
        let mut journal = write_log(&path, &sample_records());
        let before = recover(&path).expect("recover");
        let state = fold_state(&before.records).expect("fold").expect("state");
        journal.kill = Some(KillPlan::after(journal.records_written() + 1));
        assert!(matches!(journal.compact(&state), Err(JournalError::Killed)));
        // The rename never happened: the original journal is untouched.
        let after = recover(&path).expect("recover");
        assert_eq!(after.records, before.records);
        let _ = std::fs::remove_file(&path);
    }
}

#[cfg(test)]
mod framing_proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_record() -> impl Strategy<Value = JournalRecord> {
        prop_oneof![
            (any::<u32>(), proptest::collection::vec(any::<u64>(), 0..6)).prop_map(|(s, ids)| {
                JournalRecord::SeedsCollected {
                    school: SchoolId(s),
                    seeds: ids.into_iter().map(UserId).collect(),
                }
            }),
            (any::<u64>(), any::<bool>(), proptest::option::of(any::<u64>())).prop_map(
                |(u, partial, gen)| JournalRecord::FriendsCommitted {
                    uid: UserId(u),
                    friends: Some(vec![UserId(u ^ 1)]),
                    partial,
                    gen,
                }
            ),
            (any::<u64>(), any::<bool>())
                .prop_map(|(u, accepted)| JournalRecord::MessageSent { uid: UserId(u), accepted }),
            any::<u64>().prop_map(|u| JournalRecord::LaneSuspended {
                index: u % 8,
                username: format!("w-{}", u % 8)
            }),
        ]
    }

    /// Arbitrary event sequence pre-chunked into committed groups.
    fn arb_log() -> impl Strategy<Value = Vec<JournalRecord>> {
        proptest::collection::vec(
            (proptest::collection::vec(arb_record(), 0..4), "[a-z]{1,8}"),
            1..5,
        )
        .prop_map(|groups| {
            let mut records = Vec::new();
            for (events, op) in groups {
                records.extend(events);
                records.push(JournalRecord::Commit { op });
            }
            records
        })
    }

    fn encode_log(records: &[JournalRecord]) -> Vec<u8> {
        let dir = std::env::temp_dir().join("hsp-journal-proptest");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(format!("prop-{:x}.wal", fnv1a(format!("{records:?}").as_bytes())));
        let mut journal = Journal::create(&path).expect("create");
        for r in records {
            match r {
                JournalRecord::Commit { op } => journal.commit(op).expect("commit"),
                other => journal.append(other).expect("append"),
            }
        }
        let buf = std::fs::read(&path).expect("read");
        let _ = std::fs::remove_file(&path);
        buf
    }

    /// Recovery must only ever return a prefix of what was written:
    /// a "wrong record" (anything not literally in the original
    /// sequence, in order) is the one unacceptable outcome.
    fn assert_clean_prefix(original: &[JournalRecord], recovered: &RecoveredLog) {
        assert!(recovered.records.len() <= original.len());
        assert_eq!(
            recovered.records,
            original[..recovered.records.len()],
            "recovery invented or reordered records"
        );
        if !recovered.records.is_empty() {
            assert!(
                matches!(recovered.records.last(), Some(JournalRecord::Commit { .. })),
                "recovered log must end at a group boundary"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn round_trip_arbitrary_logs(records in arb_log()) {
            let buf = encode_log(&records);
            let log = recover_bytes(&buf).expect("clean log recovers");
            prop_assert_eq!(&log.records, &records);
            prop_assert_eq!(log.torn_bytes, 0);
            prop_assert_eq!(log.discarded_records, 0);
        }

        #[test]
        fn truncation_never_yields_wrong_records(records in arb_log(), frac in 0.0f64..1.0) {
            let buf = encode_log(&records);
            let cut = (buf.len() as f64 * frac) as usize;
            match recover_bytes(&buf[..cut]) {
                Ok(log) => assert_clean_prefix(&records, &log),
                // Truncation can only tear the tail; typed errors are
                // acceptable, silent garbage is not.
                Err(JournalError::InteriorCorruption { .. })
                | Err(JournalError::SequenceGap { .. })
                | Err(JournalError::Decode { .. }) => {}
                Err(e) => panic!("unexpected recovery error: {e}"),
            }
        }

        #[test]
        fn single_byte_corruption_never_yields_wrong_records(
            records in arb_log(),
            frac in 0.0f64..1.0,
            flip in 1u8..=255,
        ) {
            let mut buf = encode_log(&records);
            prop_assume!(!buf.is_empty());
            let offset = ((buf.len() - 1) as f64 * frac) as usize;
            buf[offset] ^= flip;
            match recover_bytes(&buf) {
                Ok(log) => assert_clean_prefix(&records, &log),
                Err(JournalError::InteriorCorruption { .. })
                | Err(JournalError::SequenceGap { .. })
                | Err(JournalError::Decode { .. }) => {}
                Err(e) => panic!("unexpected recovery error: {e}"),
            }
        }
    }

    /// Exhaustive single-byte corruption at EVERY offset for one small
    /// log (the proptest samples; this nails the boundary cases).
    #[test]
    fn corruption_at_every_offset_is_prefix_or_error() {
        let records = vec![
            JournalRecord::SeedsCollected { school: SchoolId(1), seeds: vec![UserId(3)] },
            JournalRecord::Commit { op: "seeds".into() },
            JournalRecord::MessageSent { uid: UserId(4), accepted: true },
            JournalRecord::Commit { op: "msg".into() },
        ];
        let buf = encode_log(&records);
        for offset in 0..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[offset] ^= 0x20;
            match recover_bytes(&corrupt) {
                Ok(log) => assert_clean_prefix(&records, &log),
                Err(JournalError::InteriorCorruption { .. })
                | Err(JournalError::SequenceGap { .. })
                | Err(JournalError::Decode { .. }) => {}
                Err(e) => panic!("offset {offset}: unexpected recovery error: {e}"),
            }
        }
    }
}
