//! HTML scrapers: turn platform pages back into structured data.
//!
//! Mirrors the paper's §3.2 pipeline ("our parser then extracted
//! relevant data from the HTML source code"). Parsing is defensive: a
//! page that lacks a field simply yields `None` — the attacker can only
//! work with what is rendered.

use hsp_graph::{CityId, Date, SchoolId, UserId};
use hsp_markup::{parse, select, select_first, Element};
use serde::{Deserialize, Serialize};

/// Education entry as scraped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrapedEducation {
    pub school: SchoolId,
    pub kind: ScrapedEduKind,
    pub grad_year: Option<i32>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScrapedEduKind {
    HighSchool,
    College,
    GraduateSchool,
}

/// Everything extractable from one public profile page.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ScrapedProfile {
    pub uid: Option<UserId>,
    pub name: String,
    pub gender: Option<String>,
    pub has_photo: bool,
    pub networks: Vec<SchoolId>,
    pub education: Vec<ScrapedEducation>,
    pub current_city: Option<CityId>,
    pub hometown: Option<CityId>,
    pub relationship: bool,
    pub interested_in: bool,
    pub birthday: Option<Date>,
    pub photos_shared: Option<u32>,
    pub wall_posts: Option<u32>,
    /// Authors of visible wall posts (interaction signal).
    pub wall_posters: Vec<UserId>,
    pub has_contact_info: bool,
    pub friend_list_visible: bool,
    pub message_button: bool,
    /// Live-world staleness stamp (`data-gen`): the user's mutation-touch
    /// count when the page was rendered. `None` on a frozen platform.
    #[serde(default)]
    pub generation: Option<u64>,
    /// `data-tombstone` marker: the account was deactivated or graduated
    /// away mid-crawl. The page is a 200 OK answer, not an error.
    #[serde(default)]
    pub tombstoned: bool,
}

impl ScrapedProfile {
    /// The paper's "minimal information" test applied to a scraped page
    /// (§3.1): nothing beyond name/photo/gender/networks, and no Message
    /// button. On Facebook this implies a registered minor or a fully
    /// locked-down adult.
    pub fn is_minimal(&self) -> bool {
        self.education.is_empty()
            && self.current_city.is_none()
            && self.hometown.is_none()
            && !self.relationship
            && !self.interested_in
            && self.birthday.is_none()
            && self.photos_shared.is_none()
            && self.wall_posts.is_none()
            && !self.has_contact_info
            && !self.friend_list_visible
            && !self.message_button
    }

    /// The high-school entry, if listed.
    pub fn listed_high_school(&self) -> Option<ScrapedEducation> {
        self.education.iter().copied().find(|e| e.kind == ScrapedEduKind::HighSchool)
    }

    /// §4.1 step 2: does this profile claim *current* attendance at
    /// `school`, given the current senior class year?
    pub fn claims_current_student(&self, school: SchoolId, senior_class_year: i32) -> bool {
        self.education.iter().any(|e| {
            e.kind == ScrapedEduKind::HighSchool
                && e.school == school
                && e.grad_year.is_some_and(|g| g >= senior_class_year)
        })
    }

    /// Does the profile list a graduate school (filter rule 1, §4.4)?
    pub fn lists_graduate_school(&self) -> bool {
        self.education.iter().any(|e| e.kind == ScrapedEduKind::GraduateSchool)
    }
}

/// Parse a profile page.
pub fn parse_profile(html: &str) -> ScrapedProfile {
    let dom = parse(html);
    let mut p = ScrapedProfile::default();
    let Some(root) = select_first(&dom, "#profile") else {
        return p;
    };
    p.uid = root.get_attr("data-uid").and_then(UserId::parse);
    p.generation = root.get_attr("data-gen").and_then(|g| g.parse().ok());
    p.tombstoned = root.get_attr("data-tombstone") == Some("1");
    if let Some(h1) = select_first(root, "h1.name") {
        p.name = h1.text_content();
    }
    p.has_photo = select_first(root, "img.profile-photo").is_some();
    p.gender = select_first(root, "span.gender").map(Element::text_content);
    for li in select(root, "ul.networks li.network") {
        if let Some(s) = li.get_attr("data-school").and_then(SchoolId::parse) {
            p.networks.push(s);
        }
    }
    for li in select(root, "ul.education li.edu") {
        let Some(school) = li.get_attr("data-school").and_then(SchoolId::parse) else {
            continue;
        };
        let kind = match li.get_attr("data-kind") {
            Some("highschool") => ScrapedEduKind::HighSchool,
            Some("college") => ScrapedEduKind::College,
            Some("gradschool") => ScrapedEduKind::GraduateSchool,
            _ => continue,
        };
        let grad_year = li.get_attr("data-year").and_then(|y| y.parse().ok());
        p.education.push(ScrapedEducation { school, kind, grad_year });
    }
    p.current_city = select_first(root, "span.current-city")
        .and_then(|e| e.get_attr("data-city"))
        .and_then(CityId::parse);
    p.hometown = select_first(root, "span.hometown")
        .and_then(|e| e.get_attr("data-city"))
        .and_then(CityId::parse);
    p.relationship = select_first(root, "span.relationship").is_some();
    p.interested_in = select_first(root, "span.interested-in").is_some();
    p.birthday = select_first(root, "span.birthday")
        .and_then(|e| e.get_attr("data-date"))
        .and_then(parse_date);
    p.photos_shared = select_first(root, "span.photos-count")
        .and_then(|e| e.get_attr("data-count"))
        .and_then(|c| c.parse().ok());
    p.wall_posts = select_first(root, "span.wall-count")
        .and_then(|e| e.get_attr("data-count"))
        .and_then(|c| c.parse().ok());
    for li in select(root, "ul.wall li.wall-post") {
        if let Some(author) = li.get_attr("data-author").and_then(UserId::parse) {
            p.wall_posters.push(author);
        }
    }
    p.has_contact_info = select_first(root, "div.contact").is_some();
    p.friend_list_visible = select_first(root, "a.friends-link").is_some();
    p.message_button = select_first(root, "a.message-button").is_some();
    p
}

/// Parse a listing page (search results or a friend-list page): the
/// linked user ids plus the next-page URL, if any.
pub fn parse_listing(html: &str) -> (Vec<UserId>, Option<String>) {
    let (ids, next, _) = parse_listing_stamped(html);
    (ids, next)
}

/// Like [`parse_listing`], also returning the live-world `data-gen`
/// staleness stamp on the list root (`None` on a frozen platform). The
/// crawler compares stamps across a pagination run — and against the
/// owner's profile stamp — to detect a list that mutated mid-read.
pub fn parse_listing_stamped(html: &str) -> (Vec<UserId>, Option<String>, Option<u64>) {
    let dom = parse(html);
    let ids = select(&dom, "a.profile-link")
        .into_iter()
        .filter_map(|a| {
            a.get_attr("href").and_then(|h| h.strip_prefix("/profile/")).and_then(UserId::parse)
        })
        .collect();
    let next =
        select_first(&dom, "#next-page").and_then(|a| a.get_attr("href")).map(str::to_string);
    let gen = select_first(&dom, "ul")
        .and_then(|ul| ul.get_attr("data-gen"))
        .and_then(|g| g.parse().ok());
    (ids, next, gen)
}

fn parse_date(s: &str) -> Option<Date> {
    let mut parts = s.split('-');
    let y = parts.next()?.parse().ok()?;
    let m = parts.next()?.parse().ok()?;
    let d = parts.next()?.parse().ok()?;
    Date::new(y, m, d).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    // A representative platform-rendered profile page.
    const RICH: &str = r#"<!DOCTYPE html><html><head><title>x</title></head><body>
      <div id="profile" data-uid="u42">
        <h1 class="name">Ava Keller</h1>
        <img class="profile-photo" src="/photo/u42">
        <span class="gender">female</span>
        <ul class="networks"><li class="network" data-school="s0">HS1</li></ul>
        <ul class="education">
          <li class="edu" data-kind="highschool" data-school="s0" data-year="2014">HS1, Class of 2014</li>
          <li class="edu" data-kind="college" data-school="s2">State College</li>
        </ul>
        <span class="current-city" data-city="c0">HS1 City, NY</span>
        <span class="relationship">Single</span>
        <span class="birthday" data-date="1992-06-01">1992-06-01</span>
        <span class="photos-count" data-count="19">19 photos</span>
        <a class="friends-link" href="/friends/u42">Friends</a>
        <a class="message-button" href="/message/u42">Message</a>
      </div></body></html>"#;

    const MINIMAL: &str = r#"<!DOCTYPE html><html><body>
      <div id="profile" data-uid="u7">
        <h1 class="name">Bo Nash</h1>
        <img class="profile-photo" src="/photo/u7">
        <span class="gender">male</span>
      </div></body></html>"#;

    #[test]
    fn parses_rich_profile() {
        let p = parse_profile(RICH);
        assert_eq!(p.uid, Some(UserId(42)));
        assert_eq!(p.name, "Ava Keller");
        assert_eq!(p.education.len(), 2);
        assert_eq!(
            p.listed_high_school(),
            Some(ScrapedEducation {
                school: SchoolId(0),
                kind: ScrapedEduKind::HighSchool,
                grad_year: Some(2014),
            })
        );
        assert_eq!(p.current_city, Some(CityId(0)));
        assert_eq!(p.birthday, Some(Date::ymd(1992, 6, 1)));
        assert_eq!(p.photos_shared, Some(19));
        assert!(p.friend_list_visible);
        assert!(p.message_button);
        assert!(!p.is_minimal());
        assert!(p.claims_current_student(SchoolId(0), 2012));
        assert!(!p.claims_current_student(SchoolId(0), 2015));
        assert!(!p.lists_graduate_school());
    }

    #[test]
    fn parses_minimal_profile() {
        let p = parse_profile(MINIMAL);
        assert_eq!(p.uid, Some(UserId(7)));
        assert!(p.is_minimal());
        assert!(p.listed_high_school().is_none());
    }

    #[test]
    fn junk_page_yields_default() {
        let p = parse_profile("<html><body><p>404</p></body></html>");
        assert_eq!(p.uid, None);
        assert!(p.is_minimal());
    }

    #[test]
    fn parses_listing_with_next() {
        let html = r#"<ul id="results">
          <li class="entry"><a class="profile-link" href="/profile/u3">A</a></li>
          <li class="entry"><a class="profile-link" href="/profile/u9">B</a></li>
        </ul><a id="next-page" href="/find-friends?school=s0&amp;page=2">More</a>"#;
        let (ids, next) = parse_listing(html);
        assert_eq!(ids, vec![UserId(3), UserId(9)]);
        assert_eq!(next.as_deref(), Some("/find-friends?school=s0&page=2"));
    }

    #[test]
    fn parses_listing_without_next() {
        let (ids, next) = parse_listing(r#"<ul id="friends"></ul>"#);
        assert!(ids.is_empty());
        assert!(next.is_none());
    }

    #[test]
    fn parses_generation_stamp_and_tombstone() {
        let stamped = r#"<div id="profile" data-uid="u3" data-gen="17">
          <h1 class="name">Gen Carrier</h1></div>"#;
        let p = parse_profile(stamped);
        assert_eq!(p.generation, Some(17));
        assert!(!p.tombstoned);
        // Frozen-platform pages carry no stamp.
        assert_eq!(parse_profile(MINIMAL).generation, None);

        let tomb = hsp_platform::render::tombstone_page(UserId(8), 4);
        let p = parse_profile(&tomb);
        assert_eq!(p.uid, Some(UserId(8)));
        assert!(p.tombstoned);
        assert_eq!(p.generation, Some(4));
        assert!(p.is_minimal());

        let listing = hsp_platform::render::listing_page_stamped(
            "friends",
            &[(UserId(1), "A B".into())],
            None,
            9,
        );
        let (ids, next, gen) = parse_listing_stamped(&listing);
        assert_eq!(ids, vec![UserId(1)]);
        assert!(next.is_none());
        assert_eq!(gen, Some(9));
        let (_, _, frozen_gen) = parse_listing_stamped(r#"<ul id="friends"></ul>"#);
        assert_eq!(frozen_gen, None);
    }

    #[test]
    fn round_trip_against_platform_renderer() {
        // Render with the platform's renderer and scrape it back.
        use hsp_graph::{Date as D, Network};
        use hsp_policy::PublicView;
        let mut net = Network::new(D::ymd(2012, 3, 15));
        let city = net.add_city("Rivertown", "NY");
        let school = net.add_school(hsp_graph::School {
            id: SchoolId(0),
            name: "Rivertown High".into(),
            city,
            kind: hsp_graph::SchoolKind::HighSchool,
            public_enrollment_estimate: 500,
        });
        let mut view = PublicView::minimal(
            UserId(5),
            "Cy Hale".into(),
            Some(hsp_graph::Gender::Male),
            true,
            vec![school],
        );
        view.education.push(hsp_graph::EducationEntry::high_school(school, 2013));
        view.current_city = Some(city);
        view.friend_list_visible = true;
        view.photos_shared = Some(33);
        let html = hsp_platform::render::profile_page(&net, &view);
        let p = parse_profile(&html);
        assert_eq!(p.uid, Some(UserId(5)));
        assert_eq!(p.name, "Cy Hale");
        assert_eq!(p.networks, vec![school]);
        assert_eq!(p.listed_high_school().unwrap().grad_year, Some(2013));
        assert_eq!(p.current_city, Some(city));
        assert_eq!(p.photos_shared, Some(33));
        assert!(p.friend_list_visible);
        assert!(!p.message_button);
    }
}
