//! # hsp-crawler — the attacker's crawler
//!
//! Implements the measurement side of the paper's methodology: logging
//! in with fake accounts, paging through the Find-Friends portal for
//! seeds, downloading public profile pages and friend lists (20 per
//! AJAX request), parsing the HTML back into structured records
//! ([`scrape`]), counting every HTTP GET for the Table 3 effort
//! analysis ([`effort`]), and pacing requests with a (virtual)
//! politeness clock (§3.2).
//!
//! [`Crawler`] is generic over the HTTP transport: identical attack
//! code runs over loopback TCP or in-process.
//!
//! [`scheduler::ParallelCrawler`] runs the same attack with the
//! sock-puppet fleet actually concurrent — one worker lane per
//! account, deterministic by construction (results are bit-identical
//! at any worker count).

pub mod driver;
pub mod effort;
pub mod journal;
pub mod scheduler;
pub mod scrape;
pub mod snapshot;

pub use driver::{
    AdaptiveStrategy, BreakerConfig, CrawlError, Crawler, CrawlerBuilder, OsnAccess, Politeness,
};
pub use effort::Effort;
pub use journal::{
    fold_state, recover, recover_bytes, recover_instrumented, Journal, JournalError,
    JournalMetrics, JournalRecord, KillPlan, LaneState, RecoveredLog, ResumeState, SchedState,
    LANE_RECOVERY,
};
pub use scheduler::{AccountSeat, ParallelCrawler, ParallelCrawlerBuilder};
pub use scrape::{parse_listing, parse_profile, ScrapedEduKind, ScrapedEducation, ScrapedProfile};
pub use snapshot::{CrawlSnapshot, SnapshotAccess, SnapshotError, SNAPSHOT_VERSION};
