//! Crawl snapshots: persist everything a crawl fetched and replay it
//! offline.
//!
//! The paper's pipeline stored scraped pages in an SQL database and ran
//! the analysis offline (§3.2). [`CrawlSnapshot`] is the equivalent: a
//! serializable record of seeds, profiles and friend lists, and
//! [`SnapshotAccess`] replays it through the same [`OsnAccess`]
//! interface the live crawler implements — so any methodology run can
//! be reproduced without the platform (or shipped to the bench harness
//! without re-crawling).

use crate::driver::{CrawlError, OsnAccess};
use crate::effort::Effort;
use crate::scrape::ScrapedProfile;
use hsp_graph::{SchoolId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// On-disk snapshot format version. Bumped when the payload layout
/// changes incompatibly; [`CrawlSnapshot::from_json`] refuses anything
/// else with a descriptive error instead of misparsing.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Typed failures of snapshot (de)serialization — the crash-recovery
/// path must distinguish "file is torn garbage" from "file is a valid
/// snapshot of an incompatible version" from "payload was tampered
/// with", so the old `expect("snapshot is serializable")` panic and
/// stringly `serde_json::Error` are gone.
#[derive(Debug)]
pub enum SnapshotError {
    /// The in-memory snapshot failed to serialize (should not happen;
    /// surfaced instead of panicking).
    Serialize(String),
    /// The input was not parseable as a snapshot envelope.
    Parse(String),
    /// The envelope parsed but declares a different format version.
    VersionMismatch { found: u64, expected: u64 },
    /// The payload does not hash to the recorded FNV-1a digest: the
    /// file was truncated, bit-flipped or hand-edited.
    DigestMismatch { found: String, expected: String },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Serialize(e) => write!(f, "snapshot serialize: {e}"),
            SnapshotError::Parse(e) => write!(f, "snapshot parse: {e}"),
            SnapshotError::VersionMismatch { found, expected } => write!(
                f,
                "snapshot version mismatch: file is v{found}, this build reads v{expected}"
            ),
            SnapshotError::DigestMismatch { found, expected } => write!(
                f,
                "snapshot digest mismatch: payload hashes to {found}, envelope records \
                 {expected} (torn or corrupted file)"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a over a byte string — the same digest primitive the trace
/// subsystem uses, kept dependency-free.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Write `text` to `path` atomically: `<path>.tmp` + fsync + rename.
/// A crash at any point leaves either the old file or the new one,
/// never a torn hybrid.
pub(crate) fn atomic_write(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp_name);
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(text.as_bytes())?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)
}

/// Everything one crawl saw, in stable (BTree) order.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CrawlSnapshot {
    /// Seeds per school searched.
    pub seeds: BTreeMap<SchoolId, Vec<UserId>>,
    /// Scraped public profiles.
    pub profiles: BTreeMap<UserId, ScrapedProfile>,
    /// Friend lists (`None` = list hidden from strangers).
    pub friends: BTreeMap<UserId, Option<Vec<UserId>>>,
    /// Effort spent producing this snapshot.
    pub effort: Effort,
    /// If the capture stopped early, the user whose fetch failed and
    /// the error, e.g. `("u93", "suspended: request budget exhausted")`.
    /// Everything fetched *before* that user is still in the snapshot —
    /// hours of crawling are not discarded because one page refused.
    #[serde(default)]
    pub aborted_at: Option<(UserId, String)>,
}

impl CrawlSnapshot {
    /// Whether the capture covered every requested user.
    pub fn is_complete(&self) -> bool {
        self.aborted_at.is_none()
    }

    /// Record a full crawl for `school`: seeds, their profiles, every
    /// friend list the given user set needs. `users` is typically the
    /// union of seeds + candidates the analysis will touch.
    ///
    /// A fetch failure mid-crawl does **not** discard progress: the
    /// snapshot is returned with everything captured so far and
    /// [`CrawlSnapshot::aborted_at`] names the user that failed. Only a
    /// seed-collection failure (nothing fetched yet) is a hard error.
    pub fn capture(
        access: &mut dyn OsnAccess,
        school: SchoolId,
        extra_users: &[UserId],
    ) -> Result<CrawlSnapshot, CrawlError> {
        let mut snap = CrawlSnapshot::default();
        let seeds = access.collect_seeds(school)?;
        for &u in seeds.iter().chain(extra_users) {
            let profile = match access.profile(u) {
                Ok(p) => p,
                Err(e) => {
                    snap.aborted_at = Some((u, e.to_string()));
                    break;
                }
            };
            let friends = match access.friends(u) {
                Ok(f) => f,
                Err(e) => {
                    // Keep the profile we just paid for; note the gap.
                    snap.profiles.insert(u, profile);
                    snap.aborted_at = Some((u, e.to_string()));
                    break;
                }
            };
            snap.profiles.insert(u, profile);
            snap.friends.insert(u, friends);
        }
        snap.seeds.insert(school, seeds);
        snap.effort = access.effort();
        Ok(snap)
    }

    /// Serialize to JSON, wrapped in a self-validating envelope: the
    /// payload object gains a `version` field and an FNV-1a `digest`
    /// over the payload's canonical (compact, key-sorted) rendering.
    pub fn to_json(&self) -> Result<String, SnapshotError> {
        let mut value =
            serde_json::to_value(self).map_err(|e| SnapshotError::Serialize(e.to_string()))?;
        let payload_digest = {
            let payload = value.render_compact();
            format!("{:016x}", fnv1a(payload.as_bytes()))
        };
        let obj = value
            .as_object_mut()
            .ok_or_else(|| SnapshotError::Serialize("snapshot is not an object".into()))?;
        obj.insert("version".into(), serde_json::to_value(SNAPSHOT_VERSION).unwrap());
        obj.insert("digest".into(), serde_json::to_value(&payload_digest).unwrap());
        Ok(value.render_compact())
    }

    /// Deserialize from JSON, validating the envelope: wrong `version`
    /// or a payload that does not hash to `digest` is a typed error,
    /// not a silent misparse. Envelopes written before versioning
    /// (no `version`/`digest` keys) still load.
    pub fn from_json(s: &str) -> Result<CrawlSnapshot, SnapshotError> {
        let mut value: serde_json::Value =
            serde_json::from_str(s).map_err(|e| SnapshotError::Parse(e.to_string()))?;
        let obj = value
            .as_object_mut()
            .ok_or_else(|| SnapshotError::Parse("snapshot is not a JSON object".into()))?;
        let version = obj.remove("version");
        let digest = obj.remove("digest");
        if let Some(v) = version {
            let found = v.as_u64().ok_or_else(|| {
                SnapshotError::Parse("snapshot `version` is not an integer".into())
            })?;
            if found != SNAPSHOT_VERSION {
                return Err(SnapshotError::VersionMismatch { found, expected: SNAPSHOT_VERSION });
            }
        }
        if let Some(d) = digest {
            let expected = d
                .as_str()
                .ok_or_else(|| SnapshotError::Parse("snapshot `digest` is not a string".into()))?
                .to_string();
            let found = format!("{:016x}", fnv1a(value.render_compact().as_bytes()));
            if found != expected {
                return Err(SnapshotError::DigestMismatch { found, expected });
            }
        }
        serde_json::from_value(value).map_err(|e| SnapshotError::Parse(e.to_string()))
    }

    /// Save to a file atomically (`<path>.tmp` + fsync + rename): a
    /// crash mid-save can never leave a torn snapshot behind.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let text = self
            .to_json()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        atomic_write(path, &text)
    }

    /// Load from a file.
    pub fn load(path: &std::path::Path) -> std::io::Result<CrawlSnapshot> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Replay a snapshot through the `OsnAccess` interface. Requests for
/// pages the snapshot never captured fail with `BadPage` — offline
/// analysis can only see what the crawl saw, exactly like the paper's
/// database.
pub struct SnapshotAccess {
    snapshot: CrawlSnapshot,
    /// Effort of the *replayed* requests (all free — nothing is
    /// fetched), kept for interface completeness.
    replay_effort: Effort,
}

impl SnapshotAccess {
    pub fn new(snapshot: CrawlSnapshot) -> SnapshotAccess {
        SnapshotAccess { snapshot, replay_effort: Effort::default() }
    }

    /// The original crawl's effort.
    pub fn original_effort(&self) -> Effort {
        self.snapshot.effort
    }
}

impl OsnAccess for SnapshotAccess {
    fn collect_seeds(&mut self, school: SchoolId) -> Result<Vec<UserId>, CrawlError> {
        self.snapshot
            .seeds
            .get(&school)
            .cloned()
            .ok_or(CrawlError::BadPage("school not in snapshot"))
    }

    fn profile(&mut self, uid: UserId) -> Result<ScrapedProfile, CrawlError> {
        self.snapshot
            .profiles
            .get(&uid)
            .cloned()
            .ok_or(CrawlError::BadPage("profile not in snapshot"))
    }

    fn friends(&mut self, uid: UserId) -> Result<Option<Vec<UserId>>, CrawlError> {
        self.snapshot
            .friends
            .get(&uid)
            .cloned()
            .ok_or(CrawlError::BadPage("friend list not in snapshot"))
    }

    fn effort(&self) -> Effort {
        self.replay_effort
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> CrawlSnapshot {
        let mut snap = CrawlSnapshot::default();
        snap.seeds.insert(SchoolId(0), vec![UserId(1), UserId(2)]);
        snap.profiles
            .insert(UserId(1), ScrapedProfile { name: "A B".into(), ..Default::default() });
        snap.friends.insert(UserId(1), Some(vec![UserId(2)]));
        snap.friends.insert(UserId(2), None);
        snap.effort = Effort { seed_requests: 3, ..Default::default() };
        snap
    }

    #[test]
    fn json_round_trip() {
        let snap = snapshot();
        let restored = CrawlSnapshot::from_json(&snap.to_json().unwrap()).unwrap();
        assert_eq!(restored, snap);
    }

    #[test]
    fn envelope_carries_version_and_digest() {
        let text = snapshot().to_json().unwrap();
        assert!(text.contains("\"version\":1"), "no version stamp in {text}");
        assert!(text.contains("\"digest\":\""), "no digest stamp in {text}");
    }

    #[test]
    fn version_mismatch_is_a_descriptive_error() {
        let text = snapshot().to_json().unwrap().replace("\"version\":1", "\"version\":9");
        match CrawlSnapshot::from_json(&text) {
            Err(SnapshotError::VersionMismatch { found: 9, expected }) => {
                assert_eq!(expected, SNAPSHOT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        let msg = CrawlSnapshot::from_json(&text).unwrap_err().to_string();
        assert!(msg.contains("v9"), "unhelpful message: {msg}");
    }

    #[test]
    fn payload_tampering_is_a_digest_error() {
        // Flip a payload value without touching the recorded digest.
        let text =
            snapshot().to_json().unwrap().replace("\"seed_requests\":3", "\"seed_requests\":4");
        match CrawlSnapshot::from_json(&text) {
            Err(SnapshotError::DigestMismatch { found, expected }) => {
                assert_ne!(found, expected);
            }
            other => panic!("expected DigestMismatch, got {other:?}"),
        }
    }

    #[test]
    fn legacy_envelope_without_stamps_still_loads() {
        // Strip the envelope fields: pre-versioning snapshots load.
        let mut value: serde_json::Value =
            serde_json::from_str(&snapshot().to_json().unwrap()).unwrap();
        let obj = value.as_object_mut().unwrap();
        obj.remove("version");
        obj.remove("digest");
        let restored = CrawlSnapshot::from_json(&value.render_compact()).unwrap();
        assert_eq!(restored, snapshot());
    }

    #[test]
    fn save_leaves_no_tmp_file_behind() {
        let snap = snapshot();
        let dir = std::env::temp_dir().join("hsp-snapshot-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        snap.save(&path).unwrap();
        assert!(path.exists());
        assert!(!dir.join("snap.json.tmp").exists(), "tmp file not renamed away");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_round_trip() {
        let snap = snapshot();
        let dir = std::env::temp_dir().join("hsp-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        snap.save(&path).unwrap();
        let restored = CrawlSnapshot::load(&path).unwrap();
        assert_eq!(restored, snap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn capture_keeps_progress_on_mid_crawl_failure() {
        // An access layer that dies on the third user: everything paid
        // for before that must survive into the snapshot.
        struct Flaky {
            served: u64,
        }
        impl OsnAccess for Flaky {
            fn collect_seeds(&mut self, _: SchoolId) -> Result<Vec<UserId>, CrawlError> {
                Ok(vec![UserId(1), UserId(2), UserId(3), UserId(4)])
            }
            fn profile(&mut self, uid: UserId) -> Result<ScrapedProfile, CrawlError> {
                if uid == UserId(3) {
                    return Err(CrawlError::BadPage("suspended mid-crawl"));
                }
                self.served += 1;
                Ok(ScrapedProfile { uid: Some(uid), ..Default::default() })
            }
            fn friends(&mut self, _: UserId) -> Result<Option<Vec<UserId>>, CrawlError> {
                Ok(None)
            }
            fn effort(&self) -> Effort {
                Effort { profile_requests: self.served, ..Default::default() }
            }
        }

        let mut access = Flaky { served: 0 };
        let snap = CrawlSnapshot::capture(&mut access, SchoolId(0), &[]).unwrap();
        assert!(!snap.is_complete());
        let (failed, why) = snap.aborted_at.clone().unwrap();
        assert_eq!(failed, UserId(3));
        assert!(why.contains("suspended mid-crawl"));
        // Users 1 and 2 were fetched before the failure and are kept;
        // the failing user and everything after it are absent.
        assert_eq!(snap.profiles.len(), 2);
        assert!(snap.profiles.contains_key(&UserId(1)));
        assert!(snap.profiles.contains_key(&UserId(2)));
        assert!(!snap.profiles.contains_key(&UserId(3)));
        assert!(!snap.profiles.contains_key(&UserId(4)));
        // Effort reflects what was actually paid, and the partial flag
        // round-trips through JSON.
        assert_eq!(snap.effort.profile_requests, 2);
        let restored = CrawlSnapshot::from_json(&snap.to_json().unwrap()).unwrap();
        assert_eq!(restored, snap);
        // Pre-aborted_at snapshots (no field in the JSON) load as
        // complete.
        let legacy = CrawlSnapshot::from_json(&snapshot().to_json().unwrap()).unwrap();
        assert!(legacy.is_complete());
    }

    #[test]
    fn replay_serves_captured_data_only() {
        let mut access = SnapshotAccess::new(snapshot());
        assert_eq!(access.collect_seeds(SchoolId(0)).unwrap(), vec![UserId(1), UserId(2)]);
        assert_eq!(access.profile(UserId(1)).unwrap().name, "A B");
        assert_eq!(access.friends(UserId(1)).unwrap(), Some(vec![UserId(2)]));
        assert_eq!(access.friends(UserId(2)).unwrap(), None);
        // Uncaptured pages are unavailable offline.
        assert!(access.profile(UserId(9)).is_err());
        assert!(access.collect_seeds(SchoolId(7)).is_err());
        assert_eq!(access.original_effort().seed_requests, 3);
        assert_eq!(access.effort(), Effort::default());
    }
}
