//! Crawl snapshots: persist everything a crawl fetched and replay it
//! offline.
//!
//! The paper's pipeline stored scraped pages in an SQL database and ran
//! the analysis offline (§3.2). [`CrawlSnapshot`] is the equivalent: a
//! serializable record of seeds, profiles and friend lists, and
//! [`SnapshotAccess`] replays it through the same [`OsnAccess`]
//! interface the live crawler implements — so any methodology run can
//! be reproduced without the platform (or shipped to the bench harness
//! without re-crawling).

use crate::driver::{CrawlError, OsnAccess};
use crate::effort::Effort;
use crate::scrape::ScrapedProfile;
use hsp_graph::{SchoolId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Everything one crawl saw, in stable (BTree) order.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CrawlSnapshot {
    /// Seeds per school searched.
    pub seeds: BTreeMap<SchoolId, Vec<UserId>>,
    /// Scraped public profiles.
    pub profiles: BTreeMap<UserId, ScrapedProfile>,
    /// Friend lists (`None` = list hidden from strangers).
    pub friends: BTreeMap<UserId, Option<Vec<UserId>>>,
    /// Effort spent producing this snapshot.
    pub effort: Effort,
    /// If the capture stopped early, the user whose fetch failed and
    /// the error, e.g. `("u93", "suspended: request budget exhausted")`.
    /// Everything fetched *before* that user is still in the snapshot —
    /// hours of crawling are not discarded because one page refused.
    #[serde(default)]
    pub aborted_at: Option<(UserId, String)>,
}

impl CrawlSnapshot {
    /// Whether the capture covered every requested user.
    pub fn is_complete(&self) -> bool {
        self.aborted_at.is_none()
    }

    /// Record a full crawl for `school`: seeds, their profiles, every
    /// friend list the given user set needs. `users` is typically the
    /// union of seeds + candidates the analysis will touch.
    ///
    /// A fetch failure mid-crawl does **not** discard progress: the
    /// snapshot is returned with everything captured so far and
    /// [`CrawlSnapshot::aborted_at`] names the user that failed. Only a
    /// seed-collection failure (nothing fetched yet) is a hard error.
    pub fn capture(
        access: &mut dyn OsnAccess,
        school: SchoolId,
        extra_users: &[UserId],
    ) -> Result<CrawlSnapshot, CrawlError> {
        let mut snap = CrawlSnapshot::default();
        let seeds = access.collect_seeds(school)?;
        for &u in seeds.iter().chain(extra_users) {
            let profile = match access.profile(u) {
                Ok(p) => p,
                Err(e) => {
                    snap.aborted_at = Some((u, e.to_string()));
                    break;
                }
            };
            let friends = match access.friends(u) {
                Ok(f) => f,
                Err(e) => {
                    // Keep the profile we just paid for; note the gap.
                    snap.profiles.insert(u, profile);
                    snap.aborted_at = Some((u, e.to_string()));
                    break;
                }
            };
            snap.profiles.insert(u, profile);
            snap.friends.insert(u, friends);
        }
        snap.seeds.insert(school, seeds);
        snap.effort = access.effort();
        Ok(snap)
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot is serializable")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<CrawlSnapshot, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Save to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load from a file.
    pub fn load(path: &std::path::Path) -> std::io::Result<CrawlSnapshot> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Replay a snapshot through the `OsnAccess` interface. Requests for
/// pages the snapshot never captured fail with `BadPage` — offline
/// analysis can only see what the crawl saw, exactly like the paper's
/// database.
pub struct SnapshotAccess {
    snapshot: CrawlSnapshot,
    /// Effort of the *replayed* requests (all free — nothing is
    /// fetched), kept for interface completeness.
    replay_effort: Effort,
}

impl SnapshotAccess {
    pub fn new(snapshot: CrawlSnapshot) -> SnapshotAccess {
        SnapshotAccess { snapshot, replay_effort: Effort::default() }
    }

    /// The original crawl's effort.
    pub fn original_effort(&self) -> Effort {
        self.snapshot.effort
    }
}

impl OsnAccess for SnapshotAccess {
    fn collect_seeds(&mut self, school: SchoolId) -> Result<Vec<UserId>, CrawlError> {
        self.snapshot
            .seeds
            .get(&school)
            .cloned()
            .ok_or(CrawlError::BadPage("school not in snapshot"))
    }

    fn profile(&mut self, uid: UserId) -> Result<ScrapedProfile, CrawlError> {
        self.snapshot
            .profiles
            .get(&uid)
            .cloned()
            .ok_or(CrawlError::BadPage("profile not in snapshot"))
    }

    fn friends(&mut self, uid: UserId) -> Result<Option<Vec<UserId>>, CrawlError> {
        self.snapshot
            .friends
            .get(&uid)
            .cloned()
            .ok_or(CrawlError::BadPage("friend list not in snapshot"))
    }

    fn effort(&self) -> Effort {
        self.replay_effort
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> CrawlSnapshot {
        let mut snap = CrawlSnapshot::default();
        snap.seeds.insert(SchoolId(0), vec![UserId(1), UserId(2)]);
        snap.profiles
            .insert(UserId(1), ScrapedProfile { name: "A B".into(), ..Default::default() });
        snap.friends.insert(UserId(1), Some(vec![UserId(2)]));
        snap.friends.insert(UserId(2), None);
        snap.effort = Effort { seed_requests: 3, ..Default::default() };
        snap
    }

    #[test]
    fn json_round_trip() {
        let snap = snapshot();
        let restored = CrawlSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(restored, snap);
    }

    #[test]
    fn file_round_trip() {
        let snap = snapshot();
        let dir = std::env::temp_dir().join("hsp-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        snap.save(&path).unwrap();
        let restored = CrawlSnapshot::load(&path).unwrap();
        assert_eq!(restored, snap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn capture_keeps_progress_on_mid_crawl_failure() {
        // An access layer that dies on the third user: everything paid
        // for before that must survive into the snapshot.
        struct Flaky {
            served: u64,
        }
        impl OsnAccess for Flaky {
            fn collect_seeds(&mut self, _: SchoolId) -> Result<Vec<UserId>, CrawlError> {
                Ok(vec![UserId(1), UserId(2), UserId(3), UserId(4)])
            }
            fn profile(&mut self, uid: UserId) -> Result<ScrapedProfile, CrawlError> {
                if uid == UserId(3) {
                    return Err(CrawlError::BadPage("suspended mid-crawl"));
                }
                self.served += 1;
                Ok(ScrapedProfile { uid: Some(uid), ..Default::default() })
            }
            fn friends(&mut self, _: UserId) -> Result<Option<Vec<UserId>>, CrawlError> {
                Ok(None)
            }
            fn effort(&self) -> Effort {
                Effort { profile_requests: self.served, ..Default::default() }
            }
        }

        let mut access = Flaky { served: 0 };
        let snap = CrawlSnapshot::capture(&mut access, SchoolId(0), &[]).unwrap();
        assert!(!snap.is_complete());
        let (failed, why) = snap.aborted_at.clone().unwrap();
        assert_eq!(failed, UserId(3));
        assert!(why.contains("suspended mid-crawl"));
        // Users 1 and 2 were fetched before the failure and are kept;
        // the failing user and everything after it are absent.
        assert_eq!(snap.profiles.len(), 2);
        assert!(snap.profiles.contains_key(&UserId(1)));
        assert!(snap.profiles.contains_key(&UserId(2)));
        assert!(!snap.profiles.contains_key(&UserId(3)));
        assert!(!snap.profiles.contains_key(&UserId(4)));
        // Effort reflects what was actually paid, and the partial flag
        // round-trips through JSON.
        assert_eq!(snap.effort.profile_requests, 2);
        let restored = CrawlSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(restored, snap);
        // Pre-aborted_at snapshots (no field in the JSON) load as
        // complete.
        let legacy = CrawlSnapshot::from_json(&snapshot().to_json()).unwrap();
        assert!(legacy.is_complete());
    }

    #[test]
    fn replay_serves_captured_data_only() {
        let mut access = SnapshotAccess::new(snapshot());
        assert_eq!(access.collect_seeds(SchoolId(0)).unwrap(), vec![UserId(1), UserId(2)]);
        assert_eq!(access.profile(UserId(1)).unwrap().name, "A B");
        assert_eq!(access.friends(UserId(1)).unwrap(), Some(vec![UserId(2)]));
        assert_eq!(access.friends(UserId(2)).unwrap(), None);
        // Uncaptured pages are unavailable offline.
        assert!(access.profile(UserId(9)).is_err());
        assert!(access.collect_seeds(SchoolId(7)).is_err());
        assert_eq!(access.original_effort().seed_requests, 3);
        assert_eq!(access.effort(), Effort::default());
    }
}
