//! Measurement-effort accounting (paper §4.5, Table 3).
//!
//! The paper argues the attack is cheap by counting HTTP GETs:
//! `A·R + |S| + |C|·f/p` for the basic methodology. We count the actual
//! requests the crawler issues, bucketed the same way Table 3 reports
//! them.

use serde::{Deserialize, Serialize};

/// Request counts by purpose.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Effort {
    /// Signup/login requests (not counted in the paper's totals, kept
    /// separately for completeness).
    pub auth_requests: u64,
    /// Search-portal pages fetched while gathering seeds (`A·R`).
    pub seed_requests: u64,
    /// Public profile pages fetched.
    pub profile_requests: u64,
    /// Friend-list pages fetched (`|C|·f/p`).
    pub friend_list_requests: u64,
    /// Direct messages POSTed (the §2 spear-phishing channel; not part
    /// of the paper's Table 3 totals).
    pub message_requests: u64,
    /// Transport-layer retries (429/5xx/reset re-issues by the
    /// resilient HTTP layer). Real GETs the platform had to absorb, so
    /// a chaotic crawl's true cost is `total()` — which includes them.
    pub retry_requests: u64,
    /// CAPTCHA challenges absorbed (the sybil detector's `x-captcha`
    /// interstitials). A separate line item — *not* folded into
    /// `retry_requests` — so Table 3 comparisons across detector
    /// strengths stay apples-to-apples.
    pub captcha_challenges: u64,
    /// Virtual milliseconds spent "solving" those CAPTCHAs.
    pub captcha_virtual_ms: u64,
    /// Decoy/mimicry fetches issued by the adaptive crawler to look
    /// human (revisits of already-scraped profiles). Real requests the
    /// platform served, but not scraping progress.
    pub decoy_requests: u64,
    /// Annotation: how many of the profile/friend-list requests above
    /// were *re*-fetches forced by a staleness mismatch on a live
    /// (mutating) world. The GETs themselves are already billed into
    /// `profile_requests`/`friend_list_requests`, so this is **not**
    /// added to `total()` — it explains where the budget went, it does
    /// not grow it.
    pub stale_refetch_requests: u64,
    /// Annotation: users found tombstoned (deactivated or graduated
    /// away) mid-crawl and degraded to completeness-only disclosure.
    /// Not a request class, so never part of `total()`.
    pub tombstones: u64,
}

impl Effort {
    /// The paper's total: seeds + profiles + friend lists — plus the
    /// retries it took to land them (zero in a fault-free run) and any
    /// decoy fetches the adaptive crawler spent on mimicry (zero for
    /// the naive crawler). CAPTCHA challenges are *time*, not requests,
    /// so they never enter this count.
    pub fn total(&self) -> u64 {
        self.seed_requests
            + self.profile_requests
            + self.friend_list_requests
            + self.retry_requests
            + self.decoy_requests
    }

    /// Difference (e.g. enhanced-phase effort = after - before).
    pub fn since(&self, earlier: &Effort) -> Effort {
        Effort {
            auth_requests: self.auth_requests - earlier.auth_requests,
            seed_requests: self.seed_requests - earlier.seed_requests,
            profile_requests: self.profile_requests - earlier.profile_requests,
            friend_list_requests: self.friend_list_requests - earlier.friend_list_requests,
            message_requests: self.message_requests - earlier.message_requests,
            retry_requests: self.retry_requests - earlier.retry_requests,
            captcha_challenges: self.captcha_challenges - earlier.captcha_challenges,
            captcha_virtual_ms: self.captcha_virtual_ms - earlier.captcha_virtual_ms,
            decoy_requests: self.decoy_requests - earlier.decoy_requests,
            stale_refetch_requests: self.stale_refetch_requests - earlier.stale_refetch_requests,
            tombstones: self.tombstones - earlier.tombstones,
        }
    }
}

impl std::fmt::Display for Effort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests (seeds {}, profiles {}, friend lists {}, retries {}, decoys {}, captchas {}; stale re-fetches {}, tombstones {})",
            self.total(),
            self.seed_requests,
            self.profile_requests,
            self.friend_list_requests,
            self.retry_requests,
            self.decoy_requests,
            self.captcha_challenges,
            self.stale_refetch_requests,
            self.tombstones
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_deltas() {
        let before = Effort {
            auth_requests: 4,
            seed_requests: 30,
            profile_requests: 100,
            friend_list_requests: 50,
            message_requests: 0,
            retry_requests: 2,
            ..Effort::default()
        };
        assert_eq!(before.total(), 182);
        let after = Effort {
            auth_requests: 4,
            seed_requests: 30,
            profile_requests: 400,
            friend_list_requests: 220,
            message_requests: 7,
            retry_requests: 12,
            captcha_challenges: 9,
            captcha_virtual_ms: 9 * 30_000,
            decoy_requests: 25,
            stale_refetch_requests: 6,
            tombstones: 2,
        };
        let delta = after.since(&before);
        assert_eq!(delta.profile_requests, 300);
        assert_eq!(delta.friend_list_requests, 170);
        assert_eq!(delta.retry_requests, 10);
        assert_eq!(delta.captcha_challenges, 9);
        assert_eq!(delta.decoy_requests, 25);
        assert_eq!(delta.stale_refetch_requests, 6);
        assert_eq!(delta.tombstones, 2);
        // Decoys are real requests; captchas are time, not requests.
        // Stale re-fetches are already inside the profile/friend-list
        // buckets and tombstones are not requests — neither may double
        // into the total.
        assert_eq!(delta.total(), 505);
    }
}
