//! Deterministic parallel crawl scheduler: the paper's sock-puppet
//! fleet, actually running concurrently.
//!
//! Each fake account owns a worker seat with its own keep-alive
//! exchange (typically a [`hsp_http::ResilientExchange`]), its own
//! politeness/rate budget on its own virtual clock, and its own
//! per-endpoint circuit breakers. Work arrives in batches (profile
//! prefetches, friend-list prefetches, per-account seed sweeps); the
//! scheduler shards every batch over the *live accounts* — item `i` in
//! canonical order goes to live account `i mod L` — and OS threads
//! steal whole account-queues from an atomic cursor. Worker count
//! therefore only decides which thread happens to drive an account; it
//! never changes any account's ordered request sequence, which is the
//! unit the platform's fault engine keys its streams on. Results are
//! committed to the caches in canonical (UserId-sorted) order after
//! the batch joins, so Table 3/Table 4 outputs and [`CrawlSnapshot`]
//! checkpoints are **bit-identical at any worker count** — including
//! under `FaultPlan::chaos()`.
//!
//! Failover matches the sequential [`crate::Crawler`]: a suspension
//! drops the account's unfinished queue items into a leftover pool,
//! the fleet doubles via (strictly serial) recruitment after the batch
//! joins — account indices on the platform are assigned by arrival
//! order — and the leftovers are redistributed over the survivors.
//!
//! Because politeness is virtual time, "how long would this crawl
//! take" is modeled rather than slept: each batch contributes the
//! makespan of a greedy least-loaded assignment of its per-account
//! queue durations onto `workers` lanes. That number is deterministic,
//! hardware-independent, and what `BENCH_crawl.json` reports as the
//! attack's virtual wall-clock.

use crate::driver::{
    html_complete, record_root_span, trace_lane, Breaker, BreakerConfig, CrawlError,
    CrawlerMetrics, OsnAccess, Politeness, EP_AUTH, EP_CIRCLES, EP_FRIENDS, EP_MESSAGE, EP_PROFILE,
    EP_SEEDS,
};
use crate::effort::Effort;
use crate::journal::{
    BreakerState, CirclesEntry, Journal, JournalError, JournalRecord, LaneState, ResumeState,
    RetryStatsState, SchedState, TransportJournalState,
};
use crate::scrape::{parse_listing, parse_listing_stamped, parse_profile, ScrapedProfile};
use crate::snapshot::CrawlSnapshot;
use hsp_graph::{SchoolId, UserId};
use hsp_http::resilient::{
    captcha_delay_ms, RetryStats, H_ACCOUNT_SUSPENDED, H_TRACE_ID, H_VIRTUAL_NOW,
};
use hsp_http::{Exchange, HttpError, Request, Status};
use hsp_obs::trace::TRACE_SEED;
use hsp_obs::{FlightRecorder, Gauge, Histogram, Registry, TraceCtx, VirtualClock};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One account's transport plus its private timeline. The clock must
/// be **per account** (not shared with other accounts): the resilient
/// layer charges backoff and absorbed latency to it, and sharing one
/// clock across concurrent accounts would make each account's apparent
/// elapsed time depend on thread interleaving.
pub struct AccountSeat<E: Exchange> {
    pub exchange: E,
    pub clock: Option<Arc<VirtualClock>>,
}

/// A unit of crawl work, shardable across accounts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Job {
    /// Page through this account's own search sample (seeds are
    /// per-account by design — each account sees its own sample).
    Seeds(SchoolId),
    Profile(UserId),
    Friends(UserId),
    Circles(UserId, bool),
}

/// What a completed job produced.
enum JobOut {
    Seeds(Vec<UserId>),
    Profile(ScrapedProfile),
    /// (list, partial, gen): `None` = hidden; `partial` = degraded
    /// mid-list; `gen` = the live-world generation stamp the pages
    /// agreed on (`None` on a frozen platform).
    Friends(Option<Vec<UserId>>, bool, Option<u64>),
    Circles(Option<Vec<UserId>>),
}

enum JobOutcome {
    Done(JobOut),
    /// The account was suspended mid-job; the job (and the rest of the
    /// account's queue) must fail over to a survivor.
    Suspended,
    Fatal(CrawlError),
}

enum FetchOut {
    Page(hsp_http::Response),
    Suspended,
    Fatal(CrawlError),
}

/// Read-only knobs shared by every worker thread.
struct Shared {
    politeness: Politeness,
    breaker: BreakerConfig,
    /// Per-job attempt budget (mirrors the sequential fetch loop).
    budget: usize,
    metrics: Option<Arc<CrawlerMetrics>>,
    /// Flight recorder shared with the registry (trace propagation).
    tracer: Option<Arc<FlightRecorder>>,
}

/// Scheduler-level telemetry (on top of the shared [`CrawlerMetrics`]).
struct SchedMetrics {
    prefetch_batch_us: Arc<Histogram>,
    pages_per_sec: Arc<Gauge>,
    virtual_pages_per_sec: Arc<Gauge>,
    workers: Arc<Gauge>,
}

impl SchedMetrics {
    fn register(reg: &Registry) -> SchedMetrics {
        SchedMetrics {
            prefetch_batch_us: reg.histogram("crawler_prefetch_batch_us"),
            pages_per_sec: reg.gauge("crawler_pages_per_sec"),
            virtual_pages_per_sec: reg.gauge("crawler_virtual_pages_per_sec"),
            workers: reg.gauge("crawler_workers"),
        }
    }
}

/// One sock-puppet account: exchange, session, effort ledger, private
/// virtual timeline, and per-endpoint breakers. Only one thread drives
/// an account at a time (queues are stolen whole), so the interior is
/// plain data behind the scheduler's `Mutex`.
struct AccountWorker<E: Exchange> {
    exchange: E,
    username: String,
    password: String,
    suspended: bool,
    effort: Effort,
    /// Fallback timeline when no clock was supplied.
    local_ms: u64,
    clock: Option<Arc<VirtualClock>>,
    breakers: HashMap<&'static str, Breaker>,
    /// Trace lane ([`trace_lane`] of the username) and the next request
    /// ordinal on it. Only this worker's thread touches the ordinal, so
    /// per-lane trace ids are deterministic at any worker count.
    lane: u64,
    trace_ordinal: u64,
}

impl<E: Exchange> AccountWorker<E> {
    fn now_ms(&self) -> u64 {
        match &self.clock {
            Some(clock) => clock.now_ms(),
            None => self.local_ms,
        }
    }

    fn advance_ms(&mut self, ms: u64) {
        self.local_ms += ms;
        if let Some(clock) = &self.clock {
            clock.advance_ms(ms);
        }
    }

    /// Mint the next trace context on this account's lane, or `None`
    /// when tracing is off.
    fn next_trace_ctx(&mut self, shared: &Shared) -> Option<(Arc<FlightRecorder>, TraceCtx)> {
        let tracer = shared.tracer.as_ref()?;
        if !tracer.is_enabled() {
            return None;
        }
        let ctx = TraceCtx::derive(TRACE_SEED, self.lane, self.trace_ordinal);
        self.trace_ordinal += 1;
        Some((Arc::clone(tracer), ctx))
    }

    fn count_request(&mut self, endpoint: &'static str, shared: &Shared) {
        match endpoint {
            EP_AUTH => self.effort.auth_requests += 1,
            EP_SEEDS => self.effort.seed_requests += 1,
            EP_PROFILE => self.effort.profile_requests += 1,
            EP_FRIENDS | EP_CIRCLES => self.effort.friend_list_requests += 1,
            EP_MESSAGE => self.effort.message_requests += 1,
            _ => {}
        }
        if let Some(m) = &shared.metrics {
            if let Some(c) = m.fetch.get(endpoint) {
                c.inc();
            }
        }
    }

    fn advance_politeness(&mut self, shared: &Shared) {
        let ms = shared.politeness.sleep_ms_between_requests;
        self.advance_ms(ms);
        if let Some(m) = &shared.metrics {
            m.politeness_virtual_ms.add(ms);
        }
    }

    /// Bill one page re-fetched over a live-world staleness conflict
    /// (the GET itself already landed in the endpoint bucket).
    fn note_stale_refetch(&mut self, shared: &Shared) {
        self.effort.stale_refetch_requests += 1;
        if let Some(m) = &shared.metrics {
            m.stale_refetches.inc();
        }
    }

    fn breaker_failure(&mut self, endpoint: &'static str, shared: &Shared) {
        let opened = self
            .breakers
            .entry(endpoint)
            .or_default()
            .record_failure(shared.breaker.failure_threshold);
        if opened {
            if let Some(m) = &shared.metrics {
                if let Some(c) = m.breaker_open.get(endpoint) {
                    c.inc();
                }
            }
            self.advance_ms(shared.breaker.cooldown_ms);
        }
    }

    fn breaker_success(&mut self, endpoint: &'static str, shared: &Shared) {
        if self.breakers.entry(endpoint).or_default().record_success() {
            if let Some(m) = &shared.metrics {
                if let Some(c) = m.breaker_closed.get(endpoint) {
                    c.inc();
                }
            }
        }
    }

    fn mark_suspended(&mut self, shared: &Shared) {
        if !self.suspended {
            self.suspended = true;
            if let Some(m) = &shared.metrics {
                m.account_suspensions.inc();
                m.refusal("suspension", 1);
            }
        }
    }

    /// Pay any `x-captcha` interstitial the sybil detector attached to
    /// this page: the "solve time" lands on this account's timeline and
    /// on its effort ledger, exactly like the sequential crawler's.
    fn absorb_captcha(&mut self, resp: &hsp_http::Response, shared: &Shared) {
        let Some(ms) = captcha_delay_ms(resp) else { return };
        self.effort.captcha_challenges += 1;
        self.effort.captcha_virtual_ms += ms;
        self.advance_ms(ms);
        if let Some(m) = &shared.metrics {
            m.captcha_challenges.inc();
            m.captcha_virtual_ms.add(ms);
        }
    }

    fn relogin(&mut self, shared: &Shared) -> Result<(), CrawlError> {
        let (username, password) = (self.username.clone(), self.password.clone());
        let trace = self.next_trace_ctx(shared);
        let mut req = Request::post_form("/login", &[("user", &username), ("pass", &password)]);
        if let Some((_, ctx)) = &trace {
            req = req.header(H_TRACE_ID, ctx.header_value());
        }
        let begin_ms = self.now_ms();
        let result = self.exchange.exchange(req);
        if let Some((tracer, ctx)) = &trace {
            record_root_span(tracer, ctx, EP_AUTH, begin_ms, self.now_ms(), result.as_ref().ok());
        }
        let resp = result?;
        self.count_request(EP_AUTH, shared);
        if !resp.status.is_success() {
            return Err(CrawlError::Denied(resp.status));
        }
        Ok(())
    }

    /// The per-account resilient fetch loop — same survival rules as
    /// the sequential crawler's, minus rotation (failover is the
    /// scheduler's job, at queue granularity).
    fn fetch(&mut self, endpoint: &'static str, path: &str, shared: &Shared) -> FetchOut {
        let mut relogins = 0u32;
        let mut truncations = 0u32;
        let mut last_denied = Status::SERVICE_UNAVAILABLE;
        for _ in 0..shared.budget {
            if self.suspended {
                return FetchOut::Suspended;
            }
            self.advance_politeness(shared);
            let trace = self.next_trace_ctx(shared);
            let begin_ms = self.now_ms();
            // Request-carried virtual time: in parallel mode only the
            // seat clocks advance, so this stamp is the one timeline a
            // mutating platform can serve deterministically.
            let mut req = Request::get(path).header(H_VIRTUAL_NOW, begin_ms.to_string());
            if let Some((_, ctx)) = &trace {
                req = req.header(H_TRACE_ID, ctx.header_value());
            }
            let result = self.exchange.exchange(req);
            if let Some((tracer, ctx)) = &trace {
                record_root_span(
                    tracer,
                    ctx,
                    endpoint,
                    begin_ms,
                    self.now_ms(),
                    result.as_ref().ok(),
                );
            }
            self.count_request(endpoint, shared);
            let resp = match result {
                Ok(resp) => resp,
                Err(HttpError::DeadlineExceeded) => {
                    self.breaker_failure(endpoint, shared);
                    continue;
                }
                Err(e) => return FetchOut::Fatal(e.into()),
            };
            self.absorb_captcha(&resp, shared);
            if resp.status.is_success() {
                if !html_complete(&resp) {
                    truncations += 1;
                    self.breaker_failure(endpoint, shared);
                    if truncations > 3 {
                        return FetchOut::Fatal(CrawlError::BadPage("persistently truncated page"));
                    }
                    continue;
                }
                self.breaker_success(endpoint, shared);
                return FetchOut::Page(resp);
            }
            match resp.status {
                Status::FORBIDDEN => {
                    self.breaker_success(endpoint, shared);
                    return FetchOut::Page(resp);
                }
                Status::UNAUTHORIZED => {
                    relogins += 1;
                    if relogins > 2 {
                        return FetchOut::Fatal(CrawlError::Denied(resp.status));
                    }
                    if let Err(e) = self.relogin(shared) {
                        return FetchOut::Fatal(e);
                    }
                }
                Status::TOO_MANY_REQUESTS if resp.headers.contains(H_ACCOUNT_SUSPENDED) => {
                    self.mark_suspended(shared);
                    return FetchOut::Suspended;
                }
                s => {
                    last_denied = s;
                    self.breaker_failure(endpoint, shared);
                }
            }
        }
        FetchOut::Fatal(CrawlError::Denied(last_denied))
    }

    fn run(&mut self, job: Job, shared: &Shared) -> JobOutcome {
        match job {
            Job::Seeds(school) => self.run_seeds(school, shared),
            Job::Profile(uid) => self.run_profile(uid, shared),
            Job::Friends(uid) => self.run_friends(uid, shared),
            Job::Circles(uid, incoming) => self.run_circles(uid, incoming, shared),
        }
    }

    fn run_seeds(&mut self, school: SchoolId, shared: &Shared) -> JobOutcome {
        let mut out = Vec::new();
        let mut url = format!("/find-friends?school={school}");
        loop {
            let resp = match self.fetch(EP_SEEDS, &url, shared) {
                FetchOut::Page(resp) => resp,
                // Seeds are pinned to this account's own sample; like
                // the sequential crawler, losing the account mid-sweep
                // sinks the seed phase.
                FetchOut::Suspended => {
                    return JobOutcome::Fatal(CrawlError::Denied(Status::TOO_MANY_REQUESTS))
                }
                FetchOut::Fatal(e) => return JobOutcome::Fatal(e),
            };
            if resp.status == Status::FORBIDDEN {
                return JobOutcome::Fatal(CrawlError::Denied(resp.status));
            }
            let (ids, next) = parse_listing(&resp.body_string());
            out.extend(ids);
            match next {
                Some(n) => url = n,
                None => return JobOutcome::Done(JobOut::Seeds(out)),
            }
        }
    }

    fn run_profile(&mut self, uid: UserId, shared: &Shared) -> JobOutcome {
        let resp = match self.fetch(EP_PROFILE, &format!("/profile/{uid}"), shared) {
            FetchOut::Page(resp) => resp,
            FetchOut::Suspended => return JobOutcome::Suspended,
            FetchOut::Fatal(e) => return JobOutcome::Fatal(e),
        };
        if resp.status == Status::FORBIDDEN {
            return JobOutcome::Fatal(CrawlError::Denied(resp.status));
        }
        let profile = parse_profile(&resp.body_string());
        if profile.uid != Some(uid) {
            return JobOutcome::Fatal(CrawlError::BadPage("profile uid mismatch"));
        }
        JobOutcome::Done(JobOut::Profile(profile))
    }

    fn run_friends(&mut self, uid: UserId, shared: &Shared) -> JobOutcome {
        // Live worlds: every page carries the owner's generation stamp;
        // a stamp change mid-pagination restarts the read from page 0,
        // bounded at two restarts (then the spliced pages are kept,
        // flagged partial).
        let mut passes = 0u32;
        'paginate: loop {
            passes += 1;
            let refetch_pass = passes > 1;
            let mut out = Vec::new();
            let mut first_page = true;
            let mut list_gen: Option<u64> = None;
            let mut partial = false;
            let mut url = format!("/friends/{uid}");
            loop {
                if refetch_pass {
                    self.note_stale_refetch(shared);
                }
                let resp = match self.fetch(EP_FRIENDS, &url, shared) {
                    FetchOut::Page(resp) => resp,
                    // Mid-list suspension: discard the partial pages and
                    // hand the whole job to a survivor (deterministic —
                    // the account's own request order decided it).
                    FetchOut::Suspended => return JobOutcome::Suspended,
                    // Graceful degradation: keep what we got, flagged
                    // partial; first-page failures still propagate.
                    FetchOut::Fatal(e) => {
                        if out.is_empty() {
                            return JobOutcome::Fatal(e);
                        }
                        return JobOutcome::Done(JobOut::Friends(Some(out), true, list_gen));
                    }
                };
                if resp.status == Status::FORBIDDEN {
                    return JobOutcome::Done(JobOut::Friends(None, false, None));
                }
                let (ids, next, gen) = parse_listing_stamped(&resp.body_string());
                if first_page {
                    first_page = false;
                    list_gen = gen;
                } else if gen != list_gen {
                    if passes < 3 {
                        continue 'paginate;
                    }
                    partial = true;
                }
                out.extend(ids);
                match next {
                    Some(n) => url = n,
                    None => return JobOutcome::Done(JobOut::Friends(Some(out), partial, list_gen)),
                }
            }
        }
    }

    fn run_circles(&mut self, uid: UserId, incoming: bool, shared: &Shared) -> JobOutcome {
        let dir = if incoming { "has" } else { "in" };
        let mut out = Vec::new();
        let mut url = format!("/circles/{uid}?dir={dir}");
        loop {
            let resp = match self.fetch(EP_CIRCLES, &url, shared) {
                FetchOut::Page(resp) => resp,
                FetchOut::Suspended => return JobOutcome::Suspended,
                FetchOut::Fatal(e) => return JobOutcome::Fatal(e),
            };
            if resp.status == Status::FORBIDDEN {
                return JobOutcome::Done(JobOut::Circles(None));
            }
            let (ids, next) = parse_listing(&resp.body_string());
            out.extend(ids);
            match next {
                Some(n) => url = n,
                None => return JobOutcome::Done(JobOut::Circles(Some(out))),
            }
        }
    }
}

/// One batch's merged output: completed `(job, produced)` pairs plus
/// jobs left unfinished by suspended accounts (re-sharded next round).
type BatchOut = (Vec<(Job, JobOut)>, Vec<Job>);

/// What one account-queue produced, merged after the batch joins.
struct QueueOut {
    done: Vec<(Job, JobOut)>,
    leftover: Vec<Job>,
    fatal: Option<CrawlError>,
    /// Virtual time this queue consumed on its account's timeline.
    virtual_ms: u64,
    /// Requests this queue issued (all effort buckets).
    requests: u64,
}

/// Deterministic modeled makespan: greedy least-loaded assignment of
/// the per-queue virtual durations onto `workers` lanes, in queue
/// order (ties break to the lowest lane index).
fn makespan(durations: &[u64], workers: usize) -> u64 {
    if durations.is_empty() {
        return 0;
    }
    let lanes = workers.clamp(1, durations.len());
    let mut load = vec![0u64; lanes];
    for &d in durations {
        let lightest = (0..lanes).min_by_key(|&i| (load[i], i)).expect("non-empty lanes");
        load[lightest] += d;
    }
    load.into_iter().max().unwrap_or(0)
}

fn effort_requests(e: &Effort) -> u64 {
    e.auth_requests
        + e.seed_requests
        + e.profile_requests
        + e.friend_list_requests
        + e.message_requests
}

/// Staged construction for a [`ParallelCrawler`].
pub struct ParallelCrawlerBuilder<E: Exchange + Send> {
    label: String,
    politeness: Politeness,
    breaker: BreakerConfig,
    workers: usize,
    max_accounts: usize,
    obs: Option<(Arc<CrawlerMetrics>, SchedMetrics)>,
    tracer: Option<Arc<FlightRecorder>>,
    retry_stats: Option<Arc<RetryStats>>,
    factory: Option<Box<dyn FnMut() -> AccountSeat<E>>>,
    journal: Option<Journal>,
}

impl<E: Exchange + Send> ParallelCrawlerBuilder<E> {
    pub fn new(label: &str) -> ParallelCrawlerBuilder<E> {
        ParallelCrawlerBuilder {
            label: label.to_string(),
            politeness: Politeness::default(),
            breaker: BreakerConfig::default(),
            workers: 1,
            max_accounts: 8,
            obs: None,
            tracer: None,
            retry_stats: None,
            factory: None,
            journal: None,
        }
    }

    /// OS threads driving account-queues. Affects wall-clock only —
    /// never results (that's the point).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    pub fn politeness(mut self, politeness: Politeness) -> Self {
        self.politeness = politeness;
        self
    }

    pub fn breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Record attacker-side telemetry (the same `crawler_*` metrics the
    /// sequential crawler emits, plus scheduler batch/throughput ones).
    /// Also picks up the registry's flight recorder: when tracing is
    /// enabled there, every issued request carries an `x-trace-id` and
    /// records its crawl-side root span.
    pub fn observability(mut self, registry: &Registry) -> Self {
        self.obs =
            Some((Arc::new(CrawlerMetrics::register(registry)), SchedMetrics::register(registry)));
        self.tracer = Some(Arc::clone(registry.tracer()));
        self
    }

    /// Fold transport-layer retries (from `ResilientExchange`s sharing
    /// this stats handle) into `Effort` and `crawler_fetch_total`.
    pub fn retry_stats(mut self, stats: Arc<RetryStats>) -> Self {
        self.retry_stats = Some(stats);
        self
    }

    /// Enable failover recruitment (the paper's 2→4→8 escalation),
    /// capped at `max_accounts` total. Recruitment is strictly serial
    /// and happens between batches, so platform-side account indices
    /// are deterministic.
    pub fn recruit_with(
        mut self,
        factory: impl FnMut() -> AccountSeat<E> + 'static,
        max_accounts: usize,
    ) -> Self {
        self.factory = Some(Box::new(factory));
        self.max_accounts = max_accounts;
        self
    }

    /// Journal every committed crawl operation to a durable append-only
    /// log (see [`crate::journal`]). Each `OsnAccess` op that mutates
    /// the caches seals one group-committed record batch; a process
    /// killed at any byte boundary resumes bit-identically via
    /// [`ParallelCrawlerBuilder::build_resumed`].
    pub fn journal(mut self, journal: Journal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Sign up + log in one fake account per seat (serially — the
    /// platform assigns account indices by arrival order) and return
    /// the ready scheduler.
    pub fn build(self, seats: Vec<AccountSeat<E>>) -> Result<ParallelCrawler<E>, CrawlError> {
        ParallelCrawler::assemble(seats, self)
    }

    /// Rebuild a crawler from a recovered journal state, **without**
    /// re-enrolling accounts: one fresh seat per journaled lane (same
    /// transport wiring as the original — e.g. `.with_attempt_seq()`
    /// resilient exchanges over the same platform), whose transport,
    /// clock, breaker, effort and trace state are all restored from the
    /// journal. The resumed crawler continues exactly where the last
    /// durable commit left off.
    pub fn build_resumed(
        self,
        state: &ResumeState,
        seats: Vec<AccountSeat<E>>,
    ) -> Result<ParallelCrawler<E>, CrawlError> {
        ParallelCrawler::assemble_resumed(state, seats, self)
    }
}

/// The parallel attack crawler. Implements [`OsnAccess`]; the
/// methodology code (hsp-core) stays sequential-looking and opts into
/// concurrency through the `prefetch_*` batch hints.
pub struct ParallelCrawler<E: Exchange + Send> {
    accounts: Vec<Mutex<AccountWorker<E>>>,
    label: String,
    workers: usize,
    shared: Shared,
    factory: Option<Box<dyn FnMut() -> AccountSeat<E>>>,
    recruited: usize,
    max_accounts: usize,
    retry_stats: Option<Arc<RetryStats>>,
    retries_synced: AtomicU64,
    edge_refusals_synced: AtomicU64,
    fault_refusals_synced: AtomicU64,
    throttle_refusals_synced: AtomicU64,
    sched_metrics: Option<SchedMetrics>,
    seeds_cache: HashMap<SchoolId, Vec<UserId>>,
    profile_cache: HashMap<UserId, ScrapedProfile>,
    friends_cache: HashMap<UserId, Option<Vec<UserId>>>,
    circles_cache: HashMap<(UserId, bool), Option<Vec<UserId>>>,
    incomplete: BTreeSet<UserId>,
    /// Users served tombstone pages (live-world deactivations and
    /// graduation rollovers), detected at commit time.
    tombstoned: BTreeSet<UserId>,
    /// Generation stamp each committed friend list was read at (live
    /// worlds only) — the reconciliation side of the pair check.
    friends_gen: HashMap<UserId, u64>,
    /// Profile re-fetches issued by commit-time pair reconciliation
    /// (on top of the workers' own pagination-restart counts).
    stale_refetches: u64,
    /// Round-robin cursor for the few non-batched requests (messages).
    rr: usize,
    /// Modeled virtual wall-clock of the whole crawl at `workers` lanes.
    modeled_wall_ms: u64,
    /// Durable crawl journal (crash-only operation); `None` = volatile.
    journal: Option<Journal>,
    /// Account indices whose suspension has already been journaled —
    /// each group diffs against this to emit `LaneSuspended` once.
    journal_suspended: BTreeSet<usize>,
    /// Recruits since the last sealed group, drained into the next one.
    pending_recruits: Vec<(u64, String)>,
    /// Lane states as of the last sealed group: each group diffs
    /// against this and journals only the lanes that moved.
    journal_lanes: Vec<LaneState>,
}

/// Journal failures surface as crawl errors: `Killed` is the injected
/// kill point (the crash harness's "process died here"); anything else
/// is a real durability failure the crawl must not paper over.
fn map_journal_err(e: JournalError) -> CrawlError {
    match e {
        JournalError::Killed => CrawlError::BadPage("journal kill point"),
        _ => CrawlError::BadPage("journal append failed"),
    }
}

/// Map a journaled breaker-endpoint name back to its `&'static str`
/// label (unknown names — a newer journal, say — are dropped).
fn endpoint_label(name: &str) -> Option<&'static str> {
    match name {
        EP_AUTH => Some(EP_AUTH),
        EP_SEEDS => Some(EP_SEEDS),
        EP_PROFILE => Some(EP_PROFILE),
        EP_FRIENDS => Some(EP_FRIENDS),
        EP_CIRCLES => Some(EP_CIRCLES),
        EP_MESSAGE => Some(EP_MESSAGE),
        _ => None,
    }
}

impl<E: Exchange + Send> ParallelCrawler<E> {
    pub fn builder(label: &str) -> ParallelCrawlerBuilder<E> {
        ParallelCrawlerBuilder::new(label)
    }

    fn assemble(
        seats: Vec<AccountSeat<E>>,
        builder: ParallelCrawlerBuilder<E>,
    ) -> Result<ParallelCrawler<E>, CrawlError> {
        let budget = 8 + 2 * builder.max_accounts.max(seats.len());
        let (metrics, sched_metrics) = match builder.obs {
            Some((m, s)) => (Some(m), Some(s)),
            None => (None, None),
        };
        let mut crawler = ParallelCrawler {
            accounts: Vec::new(),
            label: builder.label,
            workers: builder.workers,
            shared: Shared {
                politeness: builder.politeness,
                breaker: builder.breaker,
                budget,
                metrics,
                tracer: builder.tracer,
            },
            factory: builder.factory,
            recruited: 0,
            max_accounts: builder.max_accounts,
            retry_stats: builder.retry_stats,
            retries_synced: AtomicU64::new(0),
            edge_refusals_synced: AtomicU64::new(0),
            fault_refusals_synced: AtomicU64::new(0),
            throttle_refusals_synced: AtomicU64::new(0),
            sched_metrics,
            seeds_cache: HashMap::new(),
            profile_cache: HashMap::new(),
            friends_cache: HashMap::new(),
            circles_cache: HashMap::new(),
            incomplete: BTreeSet::new(),
            tombstoned: BTreeSet::new(),
            friends_gen: HashMap::new(),
            stale_refetches: 0,
            rr: 0,
            modeled_wall_ms: 0,
            journal: builder.journal,
            journal_suspended: BTreeSet::new(),
            pending_recruits: Vec::new(),
            journal_lanes: Vec::new(),
        };
        if let Some(m) = &crawler.sched_metrics {
            m.workers.set(crawler.workers as i64);
        }
        for (i, seat) in seats.into_iter().enumerate() {
            let username = format!("{}-{i}", crawler.label);
            crawler.enroll(seat, username)?;
        }
        if crawler.accounts.is_empty() {
            return Err(CrawlError::BadPage("no accounts"));
        }
        crawler.sync_retry_metric();
        crawler.write_base_group()?;
        Ok(crawler)
    }

    /// Rebuild from a journal's folded [`ResumeState`]; see
    /// [`ParallelCrawlerBuilder::build_resumed`].
    fn assemble_resumed(
        state: &ResumeState,
        seats: Vec<AccountSeat<E>>,
        builder: ParallelCrawlerBuilder<E>,
    ) -> Result<ParallelCrawler<E>, CrawlError> {
        if seats.len() != state.lanes.len() {
            return Err(CrawlError::BadPage("resume seat count mismatch"));
        }
        if state.lanes.is_empty() {
            return Err(CrawlError::BadPage("no accounts"));
        }
        let budget = 8 + 2 * builder.max_accounts.max(seats.len());
        let (metrics, sched_metrics) = match builder.obs {
            Some((m, s)) => (Some(m), Some(s)),
            None => (None, None),
        };
        let mut crawler = ParallelCrawler {
            accounts: Vec::new(),
            // The journaled label wins: recruit usernames ("{label}-rN")
            // must keep matching the original run's.
            label: state.label.clone(),
            workers: builder.workers,
            shared: Shared {
                politeness: builder.politeness,
                breaker: builder.breaker,
                budget,
                metrics,
                tracer: builder.tracer,
            },
            factory: builder.factory,
            recruited: state.sched.recruited as usize,
            max_accounts: builder.max_accounts,
            retry_stats: builder.retry_stats,
            retries_synced: AtomicU64::new(0),
            edge_refusals_synced: AtomicU64::new(0),
            fault_refusals_synced: AtomicU64::new(0),
            throttle_refusals_synced: AtomicU64::new(0),
            sched_metrics,
            seeds_cache: HashMap::new(),
            profile_cache: HashMap::new(),
            friends_cache: HashMap::new(),
            circles_cache: HashMap::new(),
            incomplete: state.incomplete.iter().copied().collect(),
            tombstoned: state.tombstoned.iter().copied().collect(),
            friends_gen: HashMap::new(),
            stale_refetches: state.sched.stale_refetches,
            rr: state.sched.rr as usize,
            modeled_wall_ms: state.sched.modeled_wall_ms,
            journal: builder.journal,
            journal_suspended: BTreeSet::new(),
            pending_recruits: Vec::new(),
            journal_lanes: Vec::new(),
        };
        if let Some(m) = &crawler.sched_metrics {
            m.workers.set(crawler.workers as i64);
        }
        for (&school, seeds) in &state.seeds {
            crawler.seeds_cache.insert(school, seeds.clone());
        }
        for (&uid, profile) in &state.profiles {
            crawler.profile_cache.insert(uid, profile.clone());
        }
        for (&uid, friends) in &state.friends {
            crawler.friends_cache.insert(uid, friends.clone());
        }
        for entry in &state.circles {
            crawler.circles_cache.insert((entry.uid, entry.incoming), entry.members.clone());
        }
        for (&uid, &gen) in &state.friends_gen {
            crawler.friends_gen.insert(uid, gen);
        }
        // Transport retry ledger: restore the shared stats handle and
        // pre-load the synced cursors so metric deltas only count
        // post-resume activity (no double-billing on restart).
        if let Some(stats) = &crawler.retry_stats {
            stats.restore(&state.sched.retry_stats.to_stats());
            crawler.retries_synced = AtomicU64::new(state.sched.retry_stats.retries);
            crawler.edge_refusals_synced = AtomicU64::new(state.sched.retry_stats.edge_limited);
            crawler.fault_refusals_synced =
                AtomicU64::new(state.sched.retry_stats.fault_rate_limited);
            crawler.throttle_refusals_synced = AtomicU64::new(state.sched.retry_stats.throttled);
        }
        for (i, (seat, lane)) in seats.into_iter().zip(&state.lanes).enumerate() {
            let mut exchange = seat.exchange;
            exchange.restore_transport_state(&lane.transport.to_transport());
            let clock = seat.clock;
            if let Some(c) = &clock {
                // A fresh seat clock starts at zero; fast-forward it to
                // the journaled timeline. (Not `advance_ms` on the
                // worker — that would double-charge `local_ms`.)
                c.advance_ms(lane.clock_ms);
            }
            let mut breakers = HashMap::new();
            for (name, b) in &lane.breakers {
                if let Some(ep) = endpoint_label(name) {
                    breakers.insert(ep, Breaker::restore(b.consecutive, b.open));
                }
            }
            let worker = AccountWorker {
                exchange,
                username: lane.username.clone(),
                password: lane.password.clone(),
                suspended: lane.suspended,
                effort: lane.effort,
                local_ms: lane.local_ms,
                clock,
                breakers,
                lane: trace_lane(&lane.username),
                trace_ordinal: lane.trace_ordinal,
            };
            crawler.accounts.push(Mutex::new(worker));
            if lane.suspended {
                crawler.journal_suspended.insert(i);
            }
        }
        crawler.write_base_group()?;
        Ok(crawler)
    }

    /// Seal the initial `Base` group if a journal is attached and still
    /// empty (a journal reopened via [`Journal::create_with_base`]
    /// already carries one).
    fn write_base_group(&mut self) -> Result<(), CrawlError> {
        match &self.journal {
            Some(j) if j.records_written() == 0 => {}
            _ => return Ok(()),
        }
        let state = self.resume_state();
        let journal = self.journal.as_mut().expect("journal present");
        journal.append(&JournalRecord::Base { state }).map_err(map_journal_err)?;
        journal.commit("base").map_err(map_journal_err)
    }

    /// Sign up (tolerating "already registered") and log in one seat.
    fn enroll(&mut self, seat: AccountSeat<E>, username: String) -> Result<(), CrawlError> {
        let password = "hunter2";
        let lane = trace_lane(&username);
        let mut worker = AccountWorker {
            exchange: seat.exchange,
            username,
            password: password.to_string(),
            suspended: false,
            effort: Effort::default(),
            local_ms: 0,
            clock: seat.clock,
            breakers: HashMap::new(),
            lane,
            trace_ordinal: 0,
        };
        let trace = worker.next_trace_ctx(&self.shared);
        let mut signup =
            Request::post_form("/signup", &[("user", &worker.username), ("pass", password)]);
        if let Some((_, ctx)) = &trace {
            signup = signup.header(H_TRACE_ID, ctx.header_value());
        }
        let begin_ms = worker.now_ms();
        let result = worker.exchange.exchange(signup);
        if let Some((tracer, ctx)) = &trace {
            record_root_span(tracer, ctx, EP_AUTH, begin_ms, worker.now_ms(), result.as_ref().ok());
        }
        let resp = result?;
        worker.count_request(EP_AUTH, &self.shared);
        if !resp.status.is_success() && resp.status != Status::BAD_REQUEST {
            return Err(CrawlError::Denied(resp.status));
        }
        let trace = worker.next_trace_ctx(&self.shared);
        let mut login =
            Request::post_form("/login", &[("user", &worker.username), ("pass", password)]);
        if let Some((_, ctx)) = &trace {
            login = login.header(H_TRACE_ID, ctx.header_value());
        }
        let begin_ms = worker.now_ms();
        let result = worker.exchange.exchange(login);
        if let Some((tracer, ctx)) = &trace {
            record_root_span(tracer, ctx, EP_AUTH, begin_ms, worker.now_ms(), result.as_ref().ok());
        }
        let resp = result?;
        worker.count_request(EP_AUTH, &self.shared);
        if !resp.status.is_success() {
            return Err(CrawlError::Denied(resp.status));
        }
        self.accounts.push(Mutex::new(worker));
        Ok(())
    }

    /// Number of fake accounts in use (live + suspended).
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Accounts still in rotation.
    pub fn live_account_count(&self) -> usize {
        self.live_indices().len()
    }

    /// Worker threads this scheduler runs batches with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Modeled virtual wall-clock of the crawl so far at `workers`
    /// concurrent lanes (per-batch greedy makespans, accumulated).
    pub fn modeled_wall_ms(&self) -> u64 {
        self.modeled_wall_ms
    }

    /// Users whose friend lists are partial (degraded fetches).
    pub fn incomplete_friend_lists(&self) -> Vec<UserId> {
        self.incomplete.iter().copied().collect()
    }

    /// Warm the caches from a checkpoint (see [`crate::Crawler::restore`]).
    pub fn restore(&mut self, snap: &CrawlSnapshot) {
        for (&school, seeds) in &snap.seeds {
            self.seeds_cache.insert(school, seeds.clone());
        }
        for (&uid, profile) in &snap.profiles {
            self.profile_cache.insert(uid, profile.clone());
        }
        for (&uid, friends) in &snap.friends {
            self.friends_cache.insert(uid, friends.clone());
            self.incomplete.remove(&uid);
        }
    }

    /// Snapshot every lane's full machine state (transport, clocks,
    /// breakers, effort, trace cursor) for a journal commit boundary.
    fn lane_states(&self) -> Vec<LaneState> {
        self.accounts
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let worker = a.lock().expect("account lock");
                let mut breakers = std::collections::BTreeMap::new();
                for (&ep, b) in &worker.breakers {
                    let (consecutive, open) = b.snapshot();
                    breakers.insert(ep.to_string(), BreakerState { consecutive, open });
                }
                LaneState {
                    index: i as u64,
                    username: worker.username.clone(),
                    password: worker.password.clone(),
                    suspended: worker.suspended,
                    effort: worker.effort,
                    local_ms: worker.local_ms,
                    clock_ms: worker.clock.as_ref().map(|c| c.now_ms()).unwrap_or(0),
                    breakers,
                    trace_ordinal: worker.trace_ordinal,
                    transport: TransportJournalState::from_transport(
                        &worker.exchange.transport_state(),
                    ),
                }
            })
            .collect()
    }

    fn sched_state(&self) -> SchedState {
        SchedState {
            rr: self.rr as u64,
            modeled_wall_ms: self.modeled_wall_ms,
            recruited: self.recruited as u64,
            stale_refetches: self.stale_refetches,
            retry_stats: self
                .retry_stats
                .as_ref()
                .map(|s| RetryStatsState::from_stats(&s.export()))
                .unwrap_or_default(),
        }
    }

    /// The crawler's complete durable state, foldable back into an
    /// identical crawler by [`ParallelCrawlerBuilder::build_resumed`].
    pub fn resume_state(&self) -> ResumeState {
        let mut state = ResumeState { label: self.label.clone(), ..ResumeState::default() };
        for (&school, seeds) in &self.seeds_cache {
            state.seeds.insert(school, seeds.clone());
        }
        for (&uid, profile) in &self.profile_cache {
            state.profiles.insert(uid, profile.clone());
        }
        for (&uid, friends) in &self.friends_cache {
            state.friends.insert(uid, friends.clone());
        }
        let mut circles: Vec<CirclesEntry> = self
            .circles_cache
            .iter()
            .map(|(&(uid, incoming), members)| CirclesEntry {
                uid,
                incoming,
                members: members.clone(),
            })
            .collect();
        circles.sort_by_key(|c| (c.uid, c.incoming));
        state.circles = circles;
        state.incomplete = self.incomplete.iter().copied().collect();
        state.tombstoned = self.tombstoned.iter().copied().collect();
        for (&uid, &gen) in &self.friends_gen {
            state.friends_gen.insert(uid, gen);
        }
        state.lanes = self.lane_states();
        state.sched = self.sched_state();
        state
    }

    /// Seal one journal group for a completed crawl op: the op's data
    /// events, any lane recruits/suspensions since the previous group,
    /// the full lane + scheduler machine state, then the `Commit`
    /// record — flushed and fsynced as one write. No-op when the
    /// crawler runs without a journal.
    fn journal_group(
        &mut self,
        op: &'static str,
        events: Vec<JournalRecord>,
    ) -> Result<(), CrawlError> {
        if self.journal.is_none() {
            return Ok(());
        }
        let mut newly_suspended = Vec::new();
        for (i, a) in self.accounts.iter().enumerate() {
            if self.journal_suspended.contains(&i) {
                continue;
            }
            let worker = a.lock().expect("account lock");
            if worker.suspended {
                newly_suspended.push((i, worker.username.clone()));
            }
        }
        let lanes = self.lane_states();
        let sched = self.sched_state();
        let recruits = std::mem::take(&mut self.pending_recruits);
        let journal = self.journal.as_mut().expect("journal present");
        for event in &events {
            journal.append(event).map_err(map_journal_err)?;
        }
        for (index, username) in recruits {
            journal
                .append(&JournalRecord::LaneRecruited { index, username })
                .map_err(map_journal_err)?;
        }
        for (index, username) in &newly_suspended {
            journal
                .append(&JournalRecord::LaneSuspended {
                    index: *index as u64,
                    username: username.clone(),
                })
                .map_err(map_journal_err)?;
        }
        // Lane-state deltas: a full fleet snapshot only when the fleet
        // changed shape (first group, recruit); otherwise just the
        // lanes that moved since the last group — on a send-message
        // group that's one lane, which is most of the journal's
        // serialization volume. `fold_state` upserts deltas by index.
        if self.journal_lanes.len() != lanes.len() {
            journal
                .append(&JournalRecord::Lanes { lanes: lanes.clone() })
                .map_err(map_journal_err)?;
        } else {
            for (prev, lane) in self.journal_lanes.iter().zip(&lanes) {
                if prev != lane {
                    journal
                        .append(&JournalRecord::Lane { lane: lane.clone() })
                        .map_err(map_journal_err)?;
                }
            }
        }
        journal.append(&JournalRecord::Sched { sched }).map_err(map_journal_err)?;
        journal.commit(op).map_err(map_journal_err)?;
        self.journal_lanes = lanes;
        for (i, _) in newly_suspended {
            self.journal_suspended.insert(i);
        }
        Ok(())
    }

    /// Atomically rewrite the journal down to a single `Base` snapshot
    /// of the current state (temp file + fsync + rename). No-op when
    /// the crawler runs without a journal.
    pub fn compact_journal(&mut self) -> Result<(), CrawlError> {
        if self.journal.is_none() {
            return Ok(());
        }
        let state = self.resume_state();
        self.journal.as_mut().expect("journal present").compact(&state).map_err(map_journal_err)
    }

    /// The attached journal, if any (tests, overhead accounting).
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Mutable journal access — e.g. to force a deferred group fsync
    /// ([`Journal::sync`]) before reading [`Journal::time_spent`].
    pub fn journal_mut(&mut self) -> Option<&mut Journal> {
        self.journal.as_mut()
    }

    fn live_indices(&self) -> Vec<usize> {
        self.accounts
            .iter()
            .enumerate()
            .filter(|(_, a)| !a.lock().expect("account lock").suspended)
            .map(|(i, _)| i)
            .collect()
    }

    /// Fold transport retries accumulated since the last sync into
    /// `crawler_fetch_total{endpoint="retry"}`, and the refusal ledger
    /// into `crawler_refusals_total{source=edge|fault|throttle}`.
    fn sync_retry_metric(&self) {
        let Some(stats) = &self.retry_stats else { return };
        let now = stats.retries();
        let prev = self.retries_synced.swap(now, Ordering::SeqCst);
        let delta = now.saturating_sub(prev);
        if delta > 0 {
            if let Some(m) = &self.shared.metrics {
                m.fetch_retry.add(delta);
            }
        }
        if let Some(m) = &self.shared.metrics {
            let edge = stats.edge_limited();
            let prev = self.edge_refusals_synced.swap(edge, Ordering::SeqCst);
            m.refusal("edge", edge.saturating_sub(prev));
            let fault = stats.fault_rate_limited();
            let prev = self.fault_refusals_synced.swap(fault, Ordering::SeqCst);
            m.refusal("fault", fault.saturating_sub(prev));
            let throttle = stats.throttled();
            let prev = self.throttle_refusals_synced.swap(throttle, Ordering::SeqCst);
            m.refusal("throttle", throttle.saturating_sub(prev));
        }
    }

    /// Double the fleet (serially) after a suspension, capped at
    /// `max_accounts`. No-op without a factory.
    fn recruit(&mut self) -> Result<(), CrawlError> {
        let Some(mut factory) = self.factory.take() else { return Ok(()) };
        let target = (self.accounts.len() * 2).min(self.max_accounts);
        let mut result = Ok(());
        while self.accounts.len() < target {
            let seat = factory();
            let username = format!("{}-r{}", self.label, self.recruited);
            self.recruited += 1;
            match self.enroll(seat, username.clone()) {
                Ok(()) => {
                    if let Some(m) = &self.shared.metrics {
                        m.accounts_recruited.inc();
                    }
                    if self.journal.is_some() {
                        let index = (self.accounts.len() - 1) as u64;
                        self.pending_recruits.push((index, username));
                    }
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        self.factory = Some(factory);
        result
    }

    /// Run one sharded batch: each `(account, queue)` is executed by
    /// whichever thread steals it, whole; results merge in queue order.
    fn run_queues(&mut self, queues: Vec<(usize, Vec<Job>)>) -> Result<BatchOut, CrawlError> {
        let lanes = queues.len();
        if lanes == 0 {
            return Ok((Vec::new(), Vec::new()));
        }
        let started = Instant::now();
        let threads = self.workers.clamp(1, lanes);
        let accounts = &self.accounts;
        let shared = &self.shared;
        let run_queue = |(account, jobs): &(usize, Vec<Job>)| -> QueueOut {
            let mut worker = accounts[*account].lock().expect("account lock");
            let t0 = worker.now_ms();
            let e0 = worker.effort;
            let mut out = QueueOut {
                done: Vec::with_capacity(jobs.len()),
                leftover: Vec::new(),
                fatal: None,
                virtual_ms: 0,
                requests: 0,
            };
            for (pos, &job) in jobs.iter().enumerate() {
                match worker.run(job, shared) {
                    JobOutcome::Done(produced) => out.done.push((job, produced)),
                    JobOutcome::Suspended => {
                        out.leftover.extend_from_slice(&jobs[pos..]);
                        break;
                    }
                    JobOutcome::Fatal(e) => {
                        out.fatal = Some(e);
                        break;
                    }
                }
            }
            out.virtual_ms = worker.now_ms() - t0;
            out.requests = effort_requests(&worker.effort) - effort_requests(&e0);
            out
        };
        let outs: Vec<QueueOut> = if threads == 1 {
            // No point spawning for one lane — run inline in queue order.
            queues.iter().map(run_queue).collect()
        } else {
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<QueueOut>>> =
                (0..lanes).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| loop {
                        let q = next.fetch_add(1, Ordering::SeqCst);
                        if q >= lanes {
                            break;
                        }
                        let out = run_queue(&queues[q]);
                        *slots[q].lock().expect("slot lock") = Some(out);
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.into_inner().expect("slot lock").expect("queue ran"))
                .collect()
        };
        // Deterministic merge, in queue order.
        let mut done = Vec::new();
        let mut leftover = Vec::new();
        let mut durations = Vec::with_capacity(lanes);
        let mut requests = 0u64;
        for out in outs {
            durations.push(out.virtual_ms);
            requests += out.requests;
            if let Some(e) = out.fatal {
                return Err(e);
            }
            done.extend(out.done);
            leftover.extend(out.leftover);
        }
        let batch_makespan = makespan(&durations, self.workers);
        self.modeled_wall_ms += batch_makespan;
        self.sync_retry_metric();
        if let Some(m) = &self.sched_metrics {
            let elapsed = started.elapsed();
            m.prefetch_batch_us.record(elapsed.as_micros() as u64);
            let secs = elapsed.as_secs_f64();
            if secs > 0.0 {
                m.pages_per_sec.set((requests as f64 / secs) as i64);
            }
            if let Some(rate) = requests.saturating_mul(1_000).checked_div(batch_makespan) {
                m.virtual_pages_per_sec.set(rate as i64);
            }
        }
        Ok((done, leftover))
    }

    /// Shard `jobs` over the live accounts (item `i` → live account
    /// `i mod L`), run until every job completed, recruiting and
    /// redistributing when accounts die mid-batch.
    fn run_sharded(&mut self, jobs: Vec<Job>) -> Result<Vec<(Job, JobOut)>, CrawlError> {
        let mut pending = jobs;
        let mut done = Vec::new();
        while !pending.is_empty() {
            let mut live = self.live_indices();
            if live.is_empty() {
                self.recruit()?;
                live = self.live_indices();
                if live.is_empty() {
                    return Err(CrawlError::Denied(Status::TOO_MANY_REQUESTS));
                }
            }
            let lanes = live.len();
            let mut queues: Vec<(usize, Vec<Job>)> =
                live.into_iter().map(|a| (a, Vec::new())).collect();
            for (i, &job) in pending.iter().enumerate() {
                queues[i % lanes].1.push(job);
            }
            let (batch_done, leftover) = self.run_queues(queues)?;
            done.extend(batch_done);
            if !leftover.is_empty() {
                // An account died mid-batch: escalate the fleet like
                // the sequential crawler before redistributing.
                self.recruit()?;
            }
            pending = leftover;
        }
        Ok(done)
    }

    /// Commit one fetched profile to the cache, detecting tombstones
    /// (once per user) on the way.
    fn commit_profile(&mut self, uid: UserId, profile: ScrapedProfile) {
        if profile.tombstoned && self.tombstoned.insert(uid) {
            if let Some(m) = &self.shared.metrics {
                m.tombstones.inc();
            }
        }
        self.profile_cache.insert(uid, profile);
    }

    fn total_effort(&self) -> Effort {
        let mut total = Effort::default();
        for account in &self.accounts {
            let e = account.lock().expect("account lock").effort;
            total.auth_requests += e.auth_requests;
            total.seed_requests += e.seed_requests;
            total.profile_requests += e.profile_requests;
            total.friend_list_requests += e.friend_list_requests;
            total.message_requests += e.message_requests;
            total.captcha_challenges += e.captcha_challenges;
            total.captcha_virtual_ms += e.captcha_virtual_ms;
            total.decoy_requests += e.decoy_requests;
            total.stale_refetch_requests += e.stale_refetch_requests;
        }
        total.stale_refetch_requests += self.stale_refetches;
        total.tombstones = self.tombstoned.len() as u64;
        if let Some(stats) = &self.retry_stats {
            total.retry_requests = stats.retries();
        }
        total
    }
}

impl<E: Exchange + Send> OsnAccess for ParallelCrawler<E> {
    fn collect_seeds(&mut self, school: SchoolId) -> Result<Vec<UserId>, CrawlError> {
        if let Some(seeds) = self.seeds_cache.get(&school) {
            return Ok(seeds.clone());
        }
        // One seed sweep per live account, concurrently: each account
        // pages its own search sample, exactly like the sequential
        // crawl — the per-account page sequences are identical.
        let queues: Vec<(usize, Vec<Job>)> =
            self.live_indices().into_iter().map(|a| (a, vec![Job::Seeds(school)])).collect();
        let (done, leftover) = self.run_queues(queues)?;
        if !leftover.is_empty() {
            return Err(CrawlError::Denied(Status::TOO_MANY_REQUESTS));
        }
        let mut seen: Vec<UserId> = done
            .into_iter()
            .flat_map(|(_, out)| match out {
                JobOut::Seeds(ids) => ids,
                _ => unreachable!("seed queue produced non-seed output"),
            })
            .collect();
        seen.sort_unstable();
        seen.dedup();
        self.seeds_cache.insert(school, seen.clone());
        self.journal_group(
            "collect_seeds",
            vec![JournalRecord::SeedsCollected { school, seeds: seen.clone() }],
        )?;
        Ok(seen)
    }

    fn prefetch_profiles(&mut self, uids: &[UserId]) -> Result<(), CrawlError> {
        let mut todo: Vec<UserId> =
            uids.iter().copied().filter(|u| !self.profile_cache.contains_key(u)).collect();
        todo.sort_unstable();
        todo.dedup();
        if todo.is_empty() {
            return Ok(());
        }
        if let Some(m) = &self.shared.metrics {
            m.cache_profile_misses.add(todo.len() as u64);
        }
        let done = self.run_sharded(todo.into_iter().map(Job::Profile).collect())?;
        // Canonical commit order: UserId-sorted, regardless of which
        // account/thread fetched what.
        let mut results: Vec<(UserId, ScrapedProfile)> = done
            .into_iter()
            .map(|(job, out)| match (job, out) {
                (Job::Profile(uid), JobOut::Profile(p)) => (uid, p),
                _ => unreachable!("profile batch produced non-profile output"),
            })
            .collect();
        results.sort_by_key(|&(uid, _)| uid);
        let journaling = self.journal.is_some();
        let mut events = Vec::new();
        for (uid, profile) in results {
            if journaling {
                events.push(JournalRecord::ProfileCommitted { uid, profile: profile.clone() });
            }
            self.commit_profile(uid, profile);
        }
        self.journal_group("prefetch_profiles", events)?;
        Ok(())
    }

    fn prefetch_friends(&mut self, uids: &[UserId]) -> Result<(), CrawlError> {
        // (uid, friend list, partial?, world-generation stamp)
        type FriendsFetch = (UserId, Option<Vec<UserId>>, bool, Option<u64>);
        let mut todo: Vec<UserId> =
            uids.iter().copied().filter(|u| !self.friends_cache.contains_key(u)).collect();
        todo.sort_unstable();
        todo.dedup();
        if todo.is_empty() {
            return Ok(());
        }
        if let Some(m) = &self.shared.metrics {
            m.cache_friends_misses.add(todo.len() as u64);
        }
        let done = self.run_sharded(todo.into_iter().map(Job::Friends).collect())?;
        let mut results: Vec<FriendsFetch> = done
            .into_iter()
            .map(|(job, out)| match (job, out) {
                (Job::Friends(uid), JobOut::Friends(list, partial, gen)) => {
                    (uid, list, partial, gen)
                }
                _ => unreachable!("friends batch produced non-friends output"),
            })
            .collect();
        results.sort_by_key(|&(uid, _, _, _)| uid);
        // Pair verification at commit: a friend list whose generation
        // stamp disagrees with the committed profile's means the user
        // mutated between the two fetches. Reconcile with one bounded
        // profile re-fetch round (canonical order — deterministic at
        // any worker count).
        let journaling = self.journal.is_some();
        let mut events = Vec::new();
        let mut conflicted: Vec<UserId> = Vec::new();
        for (uid, list, partial, gen) in results {
            if partial {
                self.incomplete.insert(uid);
                if let Some(m) = &self.shared.metrics {
                    m.partial_friend_lists.inc();
                }
            }
            if let Some(lg) = gen {
                self.friends_gen.insert(uid, lg);
                let profile_gen = self.profile_cache.get(&uid).and_then(|p| p.generation);
                if profile_gen.is_some_and(|pg| pg != lg) {
                    conflicted.push(uid);
                }
            }
            if journaling {
                events.push(JournalRecord::FriendsCommitted {
                    uid,
                    friends: list.clone(),
                    partial,
                    gen,
                });
            }
            self.friends_cache.insert(uid, list);
        }
        if !conflicted.is_empty() {
            self.stale_refetches += conflicted.len() as u64;
            if let Some(m) = &self.shared.metrics {
                m.stale_refetches.add(conflicted.len() as u64);
            }
            let done = self.run_sharded(conflicted.into_iter().map(Job::Profile).collect())?;
            let mut refreshed: Vec<(UserId, ScrapedProfile)> = done
                .into_iter()
                .map(|(job, out)| match (job, out) {
                    (Job::Profile(uid), JobOut::Profile(p)) => (uid, p),
                    _ => unreachable!("reconcile batch produced non-profile output"),
                })
                .collect();
            refreshed.sort_by_key(|&(uid, _)| uid);
            for (uid, profile) in refreshed {
                if journaling {
                    events.push(JournalRecord::ProfileCommitted { uid, profile: profile.clone() });
                }
                self.commit_profile(uid, profile);
            }
        }
        self.journal_group("prefetch_friends", events)?;
        Ok(())
    }

    fn profile(&mut self, uid: UserId) -> Result<ScrapedProfile, CrawlError> {
        if let Some(p) = self.profile_cache.get(&uid) {
            if let Some(m) = &self.shared.metrics {
                m.cache_profile_hits.inc();
            }
            return Ok(p.clone());
        }
        // Not prefetched: run a one-item batch through the same
        // machinery (failover and recruitment included).
        self.prefetch_profiles(&[uid])?;
        self.profile_cache.get(&uid).cloned().ok_or(CrawlError::BadPage("profile not fetched"))
    }

    fn friends(&mut self, uid: UserId) -> Result<Option<Vec<UserId>>, CrawlError> {
        if let Some(f) = self.friends_cache.get(&uid) {
            if let Some(m) = &self.shared.metrics {
                m.cache_friends_hits.inc();
            }
            return Ok(f.clone());
        }
        self.prefetch_friends(&[uid])?;
        self.friends_cache.get(&uid).cloned().ok_or(CrawlError::BadPage("friends not fetched"))
    }

    fn circles(&mut self, uid: UserId, incoming: bool) -> Result<Option<Vec<UserId>>, CrawlError> {
        if let Some(c) = self.circles_cache.get(&(uid, incoming)) {
            if let Some(m) = &self.shared.metrics {
                m.cache_circles_hits.inc();
            }
            return Ok(c.clone());
        }
        if let Some(m) = &self.shared.metrics {
            m.cache_circles_misses.inc();
        }
        let done = self.run_sharded(vec![Job::Circles(uid, incoming)])?;
        let journaling = self.journal.is_some();
        let mut events = Vec::new();
        for (job, out) in done {
            match (job, out) {
                (Job::Circles(u, inc), JobOut::Circles(list)) => {
                    if journaling {
                        events.push(JournalRecord::CirclesCommitted {
                            uid: u,
                            incoming: inc,
                            members: list.clone(),
                        });
                    }
                    self.circles_cache.insert((u, inc), list);
                }
                _ => unreachable!("circles batch produced non-circles output"),
            }
        }
        self.journal_group("circles", events)?;
        self.circles_cache
            .get(&(uid, incoming))
            .cloned()
            .ok_or(CrawlError::BadPage("circles not fetched"))
    }

    fn send_message(&mut self, uid: UserId, body: &str) -> Result<bool, CrawlError> {
        // Messages are rare one-offs; rotate over live accounts.
        let live = self.live_indices();
        if live.is_empty() {
            self.recruit()?;
        }
        let live = self.live_indices();
        let Some(&account) = live.get(self.rr % live.len().max(1)) else {
            return Err(CrawlError::Denied(Status::TOO_MANY_REQUESTS));
        };
        self.rr += 1;
        let mut worker = self.accounts[account].lock().expect("account lock");
        let t0 = worker.now_ms();
        worker.advance_politeness(&self.shared);
        let trace = worker.next_trace_ctx(&self.shared);
        let begin_ms = worker.now_ms();
        let mut req = Request::post_form(format!("/message/{uid}"), &[("body", body)])
            .header(H_VIRTUAL_NOW, begin_ms.to_string());
        if let Some((_, ctx)) = &trace {
            req = req.header(H_TRACE_ID, ctx.header_value());
        }
        let result = worker.exchange.exchange(req);
        if let Some((tracer, ctx)) = &trace {
            record_root_span(
                tracer,
                ctx,
                EP_MESSAGE,
                begin_ms,
                worker.now_ms(),
                result.as_ref().ok(),
            );
        }
        let resp = result?;
        worker.count_request(EP_MESSAGE, &self.shared);
        worker.absorb_captcha(&resp, &self.shared);
        let outcome = match resp.status {
            s if s.is_success() => Ok(true),
            Status::FORBIDDEN => Ok(false),
            Status::TOO_MANY_REQUESTS if resp.headers.contains(H_ACCOUNT_SUSPENDED) => {
                worker.mark_suspended(&self.shared);
                Err(CrawlError::Denied(Status::TOO_MANY_REQUESTS))
            }
            s => Err(CrawlError::Denied(s)),
        };
        let elapsed = worker.now_ms() - t0;
        drop(worker);
        self.modeled_wall_ms += elapsed;
        self.sync_retry_metric();
        if matches!(outcome, Err(CrawlError::Denied(Status::TOO_MANY_REQUESTS))) {
            self.recruit()?;
        }
        if let Ok(accepted) = outcome {
            self.journal_group("send_message", vec![JournalRecord::MessageSent { uid, accepted }])?;
        }
        outcome
    }

    fn effort(&self) -> Effort {
        self.sync_retry_metric();
        self.total_effort()
    }

    fn incomplete_friends(&self) -> Vec<UserId> {
        self.incomplete_friend_lists()
    }

    fn tombstoned_users(&self) -> Vec<UserId> {
        self.tombstoned.iter().copied().collect()
    }

    fn checkpoint(&self) -> CrawlSnapshot {
        let mut snap = CrawlSnapshot::default();
        for (&school, seeds) in &self.seeds_cache {
            snap.seeds.insert(school, seeds.clone());
        }
        for (&uid, profile) in &self.profile_cache {
            snap.profiles.insert(uid, profile.clone());
        }
        for (&uid, friends) in &self.friends_cache {
            if !self.incomplete.contains(&uid) {
                snap.friends.insert(uid, friends.clone());
            }
        }
        snap.effort = self.effort();
        snap
    }

    fn virtual_elapsed_ms(&self) -> u64 {
        self.modeled_wall_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_http::DirectExchange;
    use hsp_platform::{FaultPlan, Platform, PlatformConfig};
    use hsp_policy::FacebookPolicy;
    use hsp_synth::{generate, ScenarioConfig};

    fn tiny_platform(faults: FaultPlan) -> (Arc<Platform>, hsp_synth::Scenario) {
        let scenario = generate(&ScenarioConfig::tiny());
        let platform = Platform::new(
            Arc::new(scenario.network.clone()),
            Arc::new(FacebookPolicy::new()),
            PlatformConfig { faults, ..PlatformConfig::default() },
        );
        (platform, scenario)
    }

    fn parallel(
        platform: &Arc<Platform>,
        accounts: usize,
        workers: usize,
    ) -> ParallelCrawler<DirectExchange> {
        let handler = platform.into_handler();
        let seats = (0..accounts)
            .map(|_| AccountSeat { exchange: DirectExchange::new(handler.clone()), clock: None })
            .collect();
        let factory_handler = handler.clone();
        ParallelCrawler::builder("spy")
            .workers(workers)
            .observability(&platform.obs)
            .recruit_with(
                move || AccountSeat {
                    exchange: DirectExchange::new(factory_handler.clone()),
                    clock: None,
                },
                8,
            )
            .build(seats)
            .expect("enrolled")
    }

    /// The core determinism claim, in miniature: sharded prefetches at
    /// 1 and 4 workers produce identical caches, effort, and virtual
    /// wall-clock model inputs.
    #[test]
    fn worker_count_never_changes_results() {
        let run = |workers: usize| {
            let (platform, s) = tiny_platform(FaultPlan::default());
            let mut crawler = parallel(&platform, 3, workers);
            let seeds = crawler.collect_seeds(s.school).unwrap();
            crawler.prefetch_profiles(&seeds).unwrap();
            crawler.prefetch_friends(&seeds).unwrap();
            let snap = crawler.checkpoint();
            (seeds, snap.to_json().unwrap(), crawler.effort())
        };
        let (seeds_1, snap_1, effort_1) = run(1);
        let (seeds_4, snap_4, effort_4) = run(4);
        assert_eq!(seeds_1, seeds_4);
        assert_eq!(snap_1, snap_4, "checkpoints must be bit-identical across worker counts");
        assert_eq!(effort_1, effort_4);
    }

    #[test]
    fn matches_sequential_crawler_bit_for_bit() {
        let (platform, s) = tiny_platform(FaultPlan::default());
        let handler = platform.into_handler();
        let exchanges = (0..2).map(|_| DirectExchange::new(handler.clone())).collect();
        let mut sequential = crate::Crawler::new(exchanges, "spy").unwrap();

        let (platform_p, _) = tiny_platform(FaultPlan::default());
        let mut par = parallel(&platform_p, 2, 4);

        let seeds_seq = sequential.collect_seeds(s.school).unwrap();
        let seeds_par = par.collect_seeds(s.school).unwrap();
        assert_eq!(seeds_seq, seeds_par);

        par.prefetch_profiles(&seeds_par).unwrap();
        for &u in &seeds_seq {
            assert_eq!(sequential.profile(u).unwrap(), par.profile(u).unwrap());
            assert_eq!(sequential.friends(u).unwrap(), par.friends(u).unwrap());
        }
        assert_eq!(sequential.effort(), par.effort(), "same pages, same cost");
    }

    #[test]
    fn suspension_mid_batch_fails_over_and_recruits() {
        // Each run gets a fresh platform (suspension is server-side
        // state), so build per-run platforms instead of reusing one.
        let run_fresh = |workers: usize| {
            let (platform, s) = tiny_platform(FaultPlan {
                enabled: true,
                suspend_account_after: vec![10],
                ..FaultPlan::default()
            });
            let mut crawler = parallel(&platform, 2, workers);
            let seeds = crawler.collect_seeds(s.school).unwrap();
            crawler.prefetch_profiles(&seeds).unwrap();
            crawler.prefetch_friends(&seeds).unwrap();
            (
                crawler.checkpoint().to_json().unwrap(),
                crawler.account_count(),
                crawler.live_account_count(),
            )
        };
        let (snap_1, total_1, live_1) = run_fresh(1);
        let (snap_8, total_8, live_8) = run_fresh(8);
        assert_eq!(snap_1, snap_8, "failover must not depend on worker count");
        assert_eq!((total_1, live_1), (total_8, live_8));
        assert!(total_1 > 2, "the fleet escalated");
        assert_eq!(live_1 + 1, total_1, "exactly one account suspended");
    }

    #[test]
    fn modeled_wall_clock_shrinks_with_workers() {
        let run = |workers: usize| {
            let (platform, s) = tiny_platform(FaultPlan::default());
            let mut crawler = parallel(&platform, 4, workers);
            let seeds = crawler.collect_seeds(s.school).unwrap();
            crawler.prefetch_profiles(&seeds).unwrap();
            crawler.modeled_wall_ms()
        };
        let serial = run(1);
        let parallel_wall = run(4);
        assert!(serial > 0);
        assert!(
            parallel_wall * 2 < serial,
            "4 accounts on 4 lanes must model at least 2x faster: {parallel_wall} vs {serial}"
        );
    }
}
