//! The crawler facade: multiple logged-in fake accounts, request
//! accounting, politeness pacing, caching — and the survival machinery
//! that made the paper's crawl feasible against a hostile platform:
//! truncation re-fetches, re-login on session loss, per-endpoint
//! circuit breakers, multi-account failover on suspension (the paper's
//! 2→4→8 escalation), and checkpoint/resume.
//!
//! [`Crawler`] is generic over [`hsp_http::Exchange`], so the same
//! attack code runs over real loopback TCP ([`hsp_http::Client`]) or
//! in-process ([`hsp_http::DirectExchange`]) — and, wrapped in
//! [`hsp_http::ResilientExchange`], survives injected 429s, 5xxs and
//! connection resets transparently. Everything the resilient layer
//! can't fix (suspension, session expiry, truncated HTML) is handled
//! here.

use crate::effort::Effort;
use crate::scrape::{parse_listing, parse_listing_stamped, parse_profile, ScrapedProfile};
use crate::snapshot::CrawlSnapshot;
use hsp_graph::{SchoolId, UserId};
use hsp_http::resilient::{
    captcha_delay_ms, is_shed, refusal_provenance, retryable_transport_error, RetryStats,
    H_ACCOUNT_SUSPENDED, H_TRACE_ID, H_VIRTUAL_NOW,
};
use hsp_http::{Exchange, HttpError, Request, Response, Status};
use hsp_obs::trace::{fnv1a_chain, SpanRecord, FNV_OFFSET, TRACE_SEED};
use hsp_obs::{Counter, FlightRecorder, Registry, TraceCtx, VirtualClock};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Data-access interface the profiling methodology (hsp-core) consumes.
/// The real implementation is [`Crawler`]; tests may substitute stubs.
pub trait OsnAccess {
    /// Collect seeds for `school` using every account (paper §4.1 step 1).
    fn collect_seeds(&mut self, school: SchoolId) -> Result<Vec<UserId>, CrawlError>;

    /// Fetch (or return cached) public profile of `uid`.
    fn profile(&mut self, uid: UserId) -> Result<ScrapedProfile, CrawlError>;

    /// Fetch the full friend list of `uid`, paging through it; `None`
    /// when the list is not visible to strangers.
    fn friends(&mut self, uid: UserId) -> Result<Option<Vec<UserId>>, CrawlError>;

    /// Accumulated measurement effort.
    fn effort(&self) -> Effort;

    /// Users whose friend list came back *partial* (the crawl degraded
    /// gracefully instead of failing). Default: none.
    fn incomplete_friends(&self) -> Vec<UserId> {
        Vec::new()
    }

    /// Users found tombstoned (deactivated or graduated away) while the
    /// crawl was running — the platform served a marker page and the
    /// crawl degraded to a Completeness disclosure instead of erroring.
    /// Default: none (frozen platforms never tombstone).
    fn tombstoned_users(&self) -> Vec<UserId> {
        Vec::new()
    }

    /// Attempt to send a direct message (the §2 spear-phishing channel).
    /// Returns whether the platform accepted delivery. Default: not
    /// supported (stub accessors used in unit tests).
    fn send_message(&mut self, uid: UserId, body: &str) -> Result<bool, CrawlError> {
        let _ = (uid, body);
        Ok(false)
    }

    /// Fetch a circles page-set (Google+, Appendix A): `incoming = false`
    /// for "in your circles", `true` for "have you in circles". `None`
    /// when not visible or the platform has no circles. Default: no
    /// circles.
    fn circles(&mut self, uid: UserId, incoming: bool) -> Result<Option<Vec<UserId>>, CrawlError> {
        let _ = (uid, incoming);
        Ok(None)
    }

    /// Hint that these users' profiles are about to be requested.
    /// Parallel implementations fetch the batch concurrently and commit
    /// it to the cache in canonical (UserId-sorted) order; the default
    /// (sequential accessors, test stubs) is a no-op — callers always
    /// follow up with per-user [`OsnAccess::profile`] calls.
    fn prefetch_profiles(&mut self, uids: &[UserId]) -> Result<(), CrawlError> {
        let _ = uids;
        Ok(())
    }

    /// Like [`OsnAccess::prefetch_profiles`], for friend lists.
    fn prefetch_friends(&mut self, uids: &[UserId]) -> Result<(), CrawlError> {
        let _ = uids;
        Ok(())
    }

    /// Export everything fetched so far as a [`CrawlSnapshot`].
    /// Default: empty snapshot (stub accessors don't checkpoint).
    fn checkpoint(&self) -> CrawlSnapshot {
        CrawlSnapshot::default()
    }

    /// Virtual wall-clock the crawl has consumed so far, in ms.
    /// Default: untracked.
    fn virtual_elapsed_ms(&self) -> u64 {
        0
    }
}

/// Crawl-level failures.
#[derive(Debug)]
pub enum CrawlError {
    Http(HttpError),
    /// The platform refused the request (suspension, auth loss, ...).
    Denied(Status),
    /// A page could not be interpreted.
    BadPage(&'static str),
}

impl std::fmt::Display for CrawlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrawlError::Http(e) => write!(f, "http: {e}"),
            CrawlError::Denied(s) => write!(f, "denied: {s}"),
            CrawlError::BadPage(w) => write!(f, "bad page: {w}"),
        }
    }
}

impl std::error::Error for CrawlError {}

impl From<HttpError> for CrawlError {
    fn from(e: HttpError) -> Self {
        CrawlError::Http(e)
    }
}

/// Politeness model: the paper's crawlers "implement\[ed\] sleeping
/// functions" (§3.2). We advance a virtual clock instead of really
/// sleeping, so experiments report the wall-clock a polite crawl would
/// take without paying it.
///
/// The spacing is *adaptive*, modeling the paper's stay-under-the-radar
/// pacing: when the platform pushes back — a shed 503 from the hardened
/// edge, or an edge-rate-limit 429 — the crawler doubles its spacing
/// (up to `max_widen_factor`×); after `narrow_after_successes` clean
/// fetches in a row it halves its way back toward the base rate.
#[derive(Clone, Copy, Debug)]
pub struct Politeness {
    /// Base virtual milliseconds between consecutive requests per account.
    pub sleep_ms_between_requests: u64,
    /// Cap on the adaptive widening multiplier (1 disables adaptation).
    pub max_widen_factor: u64,
    /// Clean fetches in a row before the spacing narrows one step.
    pub narrow_after_successes: u32,
}

impl Default for Politeness {
    fn default() -> Self {
        Politeness {
            sleep_ms_between_requests: 1_500,
            max_widen_factor: 8,
            narrow_after_successes: 16,
        }
    }
}

/// Counter-free splitmix64 (same mix the platform's seeded streams
/// use): `stream(seed, lane, n)` is a pure function, so the adaptive
/// schedule an account follows depends only on its own request order.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The adaptive attacker: evasion maneuvers against the platform's
/// behavioral sybil detector (`hsp-defense`). Everything is drawn from
/// a seeded per-account lane RNG, so an adaptive crawl is exactly as
/// deterministic as a naive one.
///
/// - **politeness randomization**: each inter-request sleep is scaled
///   by a uniform per-mille factor in `[jitter_min_pm, jitter_max_pm]`,
///   killing the metronomic-gap signature;
/// - **account warm-up**: each account's first `warmup_requests`
///   requests are slowed by `warmup_factor`× (new accounts "age" before
///   crawling at speed), keeping young accounts under the detector's
///   evidence threshold longer;
/// - **traffic mimicry**: after every `decoy_every` productive profile
///   fetches, one already-scraped profile is re-fetched (humans revisit
///   friends), deflating the traversal fan-out feature. Decoys are
///   billed to `Effort::decoy_requests`, never to scraping progress.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveStrategy {
    /// Seed of the evasion RNG (per-account lanes are derived from it).
    pub seed: u64,
    /// Politeness jitter lower bound, per-mille of the base sleep.
    pub jitter_min_pm: u64,
    /// Politeness jitter upper bound, per-mille of the base sleep.
    pub jitter_max_pm: u64,
    /// Requests per account crawled at warm-up pace before full speed.
    pub warmup_requests: u64,
    /// Politeness multiplier during warm-up.
    pub warmup_factor: u64,
    /// One decoy re-fetch per this many productive profile fetches
    /// (0 disables mimicry).
    pub decoy_every: u64,
}

impl Default for AdaptiveStrategy {
    fn default() -> Self {
        AdaptiveStrategy {
            seed: 0xADA_2013,
            jitter_min_pm: 600,
            jitter_max_pm: 2_600,
            warmup_requests: 12,
            warmup_factor: 3,
            decoy_every: 3,
        }
    }
}

impl AdaptiveStrategy {
    /// Default maneuvers with an explicit seed.
    pub fn seeded(seed: u64) -> AdaptiveStrategy {
        AdaptiveStrategy { seed, ..AdaptiveStrategy::default() }
    }

    /// Sleep multiplier (per-mille) for account `lane`'s `n`-th request.
    fn jitter_pm(&self, lane: u64, n: u64) -> u64 {
        let draw =
            splitmix64(self.seed ^ splitmix64(1 + lane) ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let span = self.jitter_max_pm.saturating_sub(self.jitter_min_pm) + 1;
        self.jitter_min_pm + draw % span
    }
}

/// Per-endpoint circuit breaker shape.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive endpoint failures that open the breaker.
    pub failure_threshold: u32,
    /// Virtual cooldown before the half-open probe once opened.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 4, cooldown_ms: 30_000 }
    }
}

/// Consecutive-failure tracker for one endpoint. An "open" breaker
/// simply pays the cooldown in virtual time and goes half-open; the
/// next request is the probe.
///
/// Sharing semantics under concurrency: breakers are **per account**
/// (each [`crate::scheduler::ParallelCrawler`] account owns one breaker
/// per endpoint), and work is stolen at account granularity, so a
/// breaker's state is only ever *advanced* by the single thread
/// currently driving its account. The fields are atomics anyway —
/// `Sync` by construction — so the sequential [`Crawler`] and the
/// parallel scheduler share one implementation, and state can be
/// observed (tests, metrics) while an account is being driven without
/// torn reads.
#[derive(Default)]
pub(crate) struct Breaker {
    consecutive: std::sync::atomic::AtomicU32,
    open: std::sync::atomic::AtomicBool,
}

impl Breaker {
    /// Record one failure; `true` when this failure *opened* the
    /// breaker (the caller pays the cooldown and counts the transition).
    pub(crate) fn record_failure(&self, threshold: u32) -> bool {
        use std::sync::atomic::Ordering;
        let consecutive = self.consecutive.fetch_add(1, Ordering::Relaxed) + 1;
        if consecutive >= threshold {
            self.consecutive.store(0, Ordering::Relaxed);
            self.open.store(true, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Record one success; `true` when it closed an open breaker.
    pub(crate) fn record_success(&self) -> bool {
        use std::sync::atomic::Ordering;
        self.consecutive.store(0, Ordering::Relaxed);
        self.open.swap(false, Ordering::Relaxed)
    }

    /// Observe the breaker state for a durable journal checkpoint.
    pub(crate) fn snapshot(&self) -> (u32, bool) {
        use std::sync::atomic::Ordering;
        (self.consecutive.load(Ordering::Relaxed), self.open.load(Ordering::Relaxed))
    }

    /// Rebuild a breaker from a journal checkpoint (crash resume).
    pub(crate) fn restore(consecutive: u32, open: bool) -> Breaker {
        Breaker {
            consecutive: std::sync::atomic::AtomicU32::new(consecutive),
            open: std::sync::atomic::AtomicBool::new(open),
        }
    }
}

/// One logged-in fake account.
struct AccountSession<E: Exchange> {
    exchange: E,
    username: String,
    password: String,
    /// Kicked out by the platform's anti-crawling rule; out of rotation.
    suspended: bool,
    /// Trace lane (see [`trace_lane`]); cached at enrollment.
    lane: u64,
}

/// Endpoint labels used for metrics, effort buckets and breakers.
pub(crate) const EP_AUTH: &str = "auth";
pub(crate) const EP_SEEDS: &str = "find-friends";
pub(crate) const EP_PROFILE: &str = "profile";
pub(crate) const EP_FRIENDS: &str = "friends";
pub(crate) const EP_CIRCLES: &str = "circles";
pub(crate) const EP_MESSAGE: &str = "message";
/// Mimicry re-fetches by the adaptive crawler: real requests, but not
/// scraping progress — billed to their own effort bucket.
pub(crate) const EP_DECOY: &str = "decoy";
pub(crate) const ENDPOINTS: [&str; 7] =
    [EP_AUTH, EP_SEEDS, EP_PROFILE, EP_FRIENDS, EP_CIRCLES, EP_MESSAGE, EP_DECOY];

/// Refusal provenance labels for `crawler_refusals_total{source=…}` —
/// the audit-side half of the response-header taxonomy: every refusal
/// the crawl absorbs is attributed to exactly one limiter.
pub(crate) const REFUSAL_SOURCES: [&str; 5] = ["edge", "fault", "throttle", "shed", "suspension"];

/// Deterministic trace lane for an account: FNV-1a of its username.
/// Usernames are unique per account (including recruits) across both
/// the sequential crawler and the parallel scheduler, so lanes are
/// globally collision-stable and identical at any worker count.
pub(crate) fn trace_lane(username: &str) -> u64 {
    fnv1a_chain(FNV_OFFSET, username.as_bytes())
}

/// Record the crawl-side root span for one issued request. `resp` is
/// `None` when the transport failed outright (the retry layer's budget
/// included). The outcome taxonomy mirrors the fetch loop's own
/// branches so a trace reads like the crawler's decision log.
pub(crate) fn record_root_span(
    tracer: &FlightRecorder,
    ctx: &TraceCtx,
    name: &str,
    begin_ms: u64,
    end_ms: u64,
    resp: Option<&Response>,
) {
    let (status, outcome, provenance, captcha_ms) = match resp {
        None => (0, "transport", "", 0),
        Some(resp) => {
            let provenance = refusal_provenance(resp).unwrap_or("");
            let outcome = if resp.status.is_success() {
                "ok"
            } else if resp.status == Status::FORBIDDEN {
                "denied"
            } else if resp.status == Status::UNAUTHORIZED {
                "session-expired"
            } else if !provenance.is_empty() {
                "refused"
            } else {
                "error"
            };
            (resp.status.code(), outcome, provenance, captcha_delay_ms(resp).unwrap_or(0))
        }
    };
    tracer.record(SpanRecord {
        trace_id: ctx.trace_id,
        span_id: ctx.root_span(),
        parent_id: 0,
        lane: ctx.lane,
        ordinal: ctx.ordinal,
        name: name.to_string(),
        begin_ms,
        end_ms,
        status,
        outcome: outcome.to_string(),
        provenance: provenance.to_string(),
        captcha_ms,
    });
}

/// Pre-resolved crawler metric handles (attacker-side accounting):
/// per-endpoint fetch counts, cache hit/miss tallies, retry/breaker/
/// failover telemetry, and the virtual politeness clock. Recording is
/// atomic adds only, so one instance is safely shared across the
/// parallel scheduler's worker threads.
pub(crate) struct CrawlerMetrics {
    pub(crate) fetch: HashMap<&'static str, Arc<Counter>>,
    pub(crate) fetch_retry: Arc<Counter>,
    pub(crate) cache_profile_hits: Arc<Counter>,
    pub(crate) cache_profile_misses: Arc<Counter>,
    pub(crate) cache_friends_hits: Arc<Counter>,
    pub(crate) cache_friends_misses: Arc<Counter>,
    pub(crate) cache_circles_hits: Arc<Counter>,
    pub(crate) cache_circles_misses: Arc<Counter>,
    pub(crate) politeness_virtual_ms: Arc<Counter>,
    pub(crate) politeness_widened: Arc<Counter>,
    pub(crate) auth_retries: Arc<Counter>,
    pub(crate) breaker_open: HashMap<&'static str, Arc<Counter>>,
    pub(crate) breaker_closed: HashMap<&'static str, Arc<Counter>>,
    pub(crate) account_suspensions: Arc<Counter>,
    pub(crate) accounts_recruited: Arc<Counter>,
    pub(crate) partial_friend_lists: Arc<Counter>,
    /// CAPTCHA interstitials absorbed (count and virtual solve time).
    pub(crate) captcha_challenges: Arc<Counter>,
    pub(crate) captcha_virtual_ms: Arc<Counter>,
    /// Mimicry decoy fetches issued by the adaptive strategy.
    pub(crate) adapt_decoys: Arc<Counter>,
    /// Pages re-fetched because a live-world generation stamp went
    /// stale between the paired fetches (profile ↔ friend list, or
    /// across one friend-list pagination run).
    pub(crate) stale_refetches: Arc<Counter>,
    /// Tombstone pages absorbed (deactivated/graduated users degraded
    /// to a Completeness disclosure).
    pub(crate) tombstones: Arc<Counter>,
    /// Refusals by provenance (see [`REFUSAL_SOURCES`]).
    pub(crate) refusals: HashMap<&'static str, Arc<Counter>>,
}

impl CrawlerMetrics {
    pub(crate) fn register(reg: &Registry) -> CrawlerMetrics {
        let fetch = |e: &str| reg.counter_with("crawler_fetch_total", &[("endpoint", e)]);
        let cache = |c: &str, r: &str| {
            reg.counter_with("crawler_cache_total", &[("cache", c), ("result", r)])
        };
        let breaker = |e: &str, to: &str| {
            reg.counter_with("crawler_breaker_transitions_total", &[("endpoint", e), ("to", to)])
        };
        CrawlerMetrics {
            fetch: ENDPOINTS.iter().map(|&e| (e, fetch(e))).collect(),
            fetch_retry: fetch("retry"),
            cache_profile_hits: cache("profile", "hit"),
            cache_profile_misses: cache("profile", "miss"),
            cache_friends_hits: cache("friends", "hit"),
            cache_friends_misses: cache("friends", "miss"),
            cache_circles_hits: cache("circles", "hit"),
            cache_circles_misses: cache("circles", "miss"),
            politeness_virtual_ms: reg.counter("crawler_politeness_virtual_ms"),
            politeness_widened: reg.counter("crawler_politeness_widened_total"),
            auth_retries: reg.counter("crawler_auth_retries_total"),
            breaker_open: ENDPOINTS.iter().map(|&e| (e, breaker(e, "open"))).collect(),
            breaker_closed: ENDPOINTS.iter().map(|&e| (e, breaker(e, "closed"))).collect(),
            account_suspensions: reg.counter("crawler_account_suspensions_total"),
            accounts_recruited: reg.counter("crawler_accounts_recruited_total"),
            partial_friend_lists: reg.counter("crawler_partial_friend_lists_total"),
            captcha_challenges: reg.counter("crawler_adapt_captcha_challenges_total"),
            captcha_virtual_ms: reg.counter("crawler_adapt_captcha_virtual_ms"),
            adapt_decoys: reg.counter("crawler_adapt_decoys_total"),
            stale_refetches: reg.counter("crawler_stale_refetch_total"),
            tombstones: reg.counter("crawler_tombstones_total"),
            refusals: REFUSAL_SOURCES
                .iter()
                .map(|&s| (s, reg.counter_with("crawler_refusals_total", &[("source", s)])))
                .collect(),
        }
    }

    pub(crate) fn refusal(&self, source: &'static str, n: u64) {
        if n > 0 {
            if let Some(c) = self.refusals.get(source) {
                c.add(n);
            }
        }
    }
}

/// Staged construction for a [`Crawler`] with the resilience knobs the
/// plain constructors don't expose (shared virtual clock, retry-stat
/// folding, account recruitment, breaker tuning).
pub struct CrawlerBuilder<E: Exchange> {
    label: String,
    politeness: Politeness,
    obs: Option<CrawlerMetrics>,
    tracer: Option<Arc<FlightRecorder>>,
    clock: Option<Arc<VirtualClock>>,
    retry_stats: Option<Arc<RetryStats>>,
    factory: Option<Box<dyn FnMut() -> E>>,
    max_accounts: usize,
    breaker: BreakerConfig,
    adaptive: Option<AdaptiveStrategy>,
}

impl<E: Exchange> CrawlerBuilder<E> {
    pub fn new(label: &str) -> CrawlerBuilder<E> {
        CrawlerBuilder {
            label: label.to_string(),
            politeness: Politeness::default(),
            obs: None,
            tracer: None,
            clock: None,
            retry_stats: None,
            factory: None,
            max_accounts: 8,
            breaker: BreakerConfig::default(),
            adaptive: None,
        }
    }

    pub fn politeness(mut self, politeness: Politeness) -> Self {
        self.politeness = politeness;
        self
    }

    /// Record attacker-side telemetry into `registry`. Also picks up
    /// the registry's flight recorder: when tracing is enabled there,
    /// every issued request carries an `x-trace-id` and records its
    /// crawl-side root span.
    pub fn observability(mut self, registry: &Registry) -> Self {
        self.obs = Some(CrawlerMetrics::register(registry));
        self.tracer = Some(Arc::clone(registry.tracer()));
        self
    }

    /// Advance this shared clock on politeness sleeps (the platform's
    /// windowed suspension rule reads the same timeline).
    pub fn clock(mut self, clock: Arc<VirtualClock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Fold transport-layer retries (from `ResilientExchange`s sharing
    /// this stats handle) into `Effort` and `crawler_fetch_total`.
    pub fn retry_stats(mut self, stats: Arc<RetryStats>) -> Self {
        self.retry_stats = Some(stats);
        self
    }

    /// Enable account failover: when an account is suspended, recruit
    /// replacements from `factory`, doubling the fleet (the paper's
    /// 2→4→8 escalation) up to `max_accounts` total.
    pub fn recruit_with(
        mut self,
        factory: impl FnMut() -> E + 'static,
        max_accounts: usize,
    ) -> Self {
        self.factory = Some(Box::new(factory));
        self.max_accounts = max_accounts;
        self
    }

    pub fn breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Enable detector-evasion maneuvers (jittered pacing, account
    /// warm-up, decoy mimicry). See [`AdaptiveStrategy`].
    pub fn adaptive(mut self, strategy: AdaptiveStrategy) -> Self {
        self.adaptive = Some(strategy);
        self
    }

    /// Sign up + log in one fake account per exchange and return the
    /// ready crawler.
    pub fn build(self, exchanges: Vec<E>) -> Result<Crawler<E>, CrawlError> {
        Crawler::assemble(exchanges, self)
    }
}

/// The attacker's crawler.
pub struct Crawler<E: Exchange> {
    accounts: Vec<AccountSession<E>>,
    label: String,
    effort: Effort,
    politeness: Politeness,
    virtual_elapsed_ms: u64,
    clock: Option<Arc<VirtualClock>>,
    seeds_cache: HashMap<SchoolId, Vec<UserId>>,
    profile_cache: HashMap<UserId, ScrapedProfile>,
    friends_cache: HashMap<UserId, Option<Vec<UserId>>>,
    circles_cache: HashMap<(UserId, bool), Option<Vec<UserId>>>,
    /// Friend lists carried forward partially (degraded, not failed).
    incomplete: BTreeSet<UserId>,
    /// Users found tombstoned (deactivated/graduated mid-crawl); their
    /// pages degraded to a Completeness disclosure instead of erroring.
    tombstoned: BTreeSet<UserId>,
    /// Which account serves the next non-seed request (round-robin).
    rr: usize,
    /// Attacker-side telemetry; `None` when no registry was supplied.
    obs: Option<CrawlerMetrics>,
    /// Transport-retry counters shared with the `ResilientExchange`s.
    retry_stats: Option<Arc<RetryStats>>,
    retries_synced: u64,
    /// Shed 503s already folded into the adaptive pacing.
    sheds_synced: u64,
    /// Current politeness multiplier (adaptive, ≥ 1).
    widen_factor: u64,
    /// Clean fetches since the last widening/narrowing step.
    calm_streak: u32,
    /// Intentional application-level auth-POST retries issued (signup/
    /// login resent after a transport failure — safe because both are
    /// application-idempotent). The soak reconciles this against the
    /// chaos layer's POST-redelivery watchdog.
    auth_retries: u64,
    factory: Option<Box<dyn FnMut() -> E>>,
    recruited: usize,
    max_accounts: usize,
    breaker_cfg: BreakerConfig,
    breakers: HashMap<&'static str, Breaker>,
    /// Detector-evasion maneuvers; `None` = the naive crawler.
    adaptive: Option<AdaptiveStrategy>,
    /// Per-account politeness-draw counters (the lane RNG cursor).
    account_draws: Vec<u64>,
    /// Already-scraped profiles available as decoy targets, in
    /// insertion order (NOT a hash map — decoy picks must be
    /// deterministic).
    decoy_pool: Vec<UserId>,
    decoy_cursor: usize,
    /// Productive profile fetches since the crawl began (decoy cadence).
    productive_profile_fetches: u64,
    /// Refusal-ledger cursors into the shared [`RetryStats`].
    edge_refusals_synced: u64,
    fault_refusals_synced: u64,
    throttle_refusals_synced: u64,
    /// Flight recorder shared with the registry; `None` or disabled
    /// means no per-request trace context is minted.
    tracer: Option<Arc<FlightRecorder>>,
    /// Next request ordinal per trace lane.
    trace_ordinals: HashMap<u64, u64>,
}

impl<E: Exchange> Crawler<E> {
    /// Create the crawler: signs up and logs in one fake account per
    /// exchange. `label` distinguishes account batches (e.g. the paper's
    /// second seed crawl for HS2/HS3 evaluation).
    pub fn new(exchanges: Vec<E>, label: &str) -> Result<Self, CrawlError> {
        Self::with_politeness(exchanges, label, Politeness::default())
    }

    pub fn with_politeness(
        exchanges: Vec<E>,
        label: &str,
        politeness: Politeness,
    ) -> Result<Self, CrawlError> {
        CrawlerBuilder::new(label).politeness(politeness).build(exchanges)
    }

    /// Create the crawler with attacker-side telemetry recorded into
    /// `registry` (typically the same registry the platform and server
    /// use, so one scrape shows both sides of the experiment).
    pub fn with_observability(
        exchanges: Vec<E>,
        label: &str,
        politeness: Politeness,
        registry: &Registry,
    ) -> Result<Self, CrawlError> {
        CrawlerBuilder::new(label).politeness(politeness).observability(registry).build(exchanges)
    }

    /// Staged construction with the resilience knobs.
    pub fn builder(label: &str) -> CrawlerBuilder<E> {
        CrawlerBuilder::new(label)
    }

    fn assemble(exchanges: Vec<E>, builder: CrawlerBuilder<E>) -> Result<Self, CrawlError> {
        let mut crawler = Crawler {
            accounts: Vec::new(),
            label: builder.label,
            effort: Effort::default(),
            politeness: builder.politeness,
            virtual_elapsed_ms: 0,
            clock: builder.clock,
            seeds_cache: HashMap::new(),
            profile_cache: HashMap::new(),
            friends_cache: HashMap::new(),
            circles_cache: HashMap::new(),
            incomplete: BTreeSet::new(),
            tombstoned: BTreeSet::new(),
            rr: 0,
            obs: builder.obs,
            retry_stats: builder.retry_stats,
            retries_synced: 0,
            sheds_synced: 0,
            widen_factor: 1,
            calm_streak: 0,
            auth_retries: 0,
            factory: builder.factory,
            recruited: 0,
            max_accounts: builder.max_accounts,
            breaker_cfg: builder.breaker,
            breakers: HashMap::new(),
            adaptive: builder.adaptive,
            account_draws: Vec::new(),
            decoy_pool: Vec::new(),
            decoy_cursor: 0,
            productive_profile_fetches: 0,
            edge_refusals_synced: 0,
            fault_refusals_synced: 0,
            throttle_refusals_synced: 0,
            tracer: builder.tracer,
            trace_ordinals: HashMap::new(),
        };
        for (i, exchange) in exchanges.into_iter().enumerate() {
            let username = format!("{}-{i}", crawler.label);
            crawler.enroll(exchange, username)?;
        }
        if crawler.accounts.is_empty() {
            return Err(CrawlError::BadPage("no accounts"));
        }
        Ok(crawler)
    }

    /// Sign up (tolerating "already registered") and log in one fake
    /// account, adding it to the rotation.
    fn enroll(&mut self, mut exchange: E, username: String) -> Result<(), CrawlError> {
        let password = "hunter2";
        let lane = trace_lane(&username);
        let mut signup = Request::post_form("/signup", &[("user", &username), ("pass", password)]);
        let trace = self.next_trace_ctx(lane);
        if let Some((_, ctx)) = &trace {
            signup = signup.header(H_TRACE_ID, ctx.header_value());
        }
        let begin_ms = self.trace_now_ms();
        let (resp, retries) = auth_post(&mut exchange, &signup)?;
        if let Some((tracer, ctx)) = &trace {
            record_root_span(tracer, ctx, EP_AUTH, begin_ms, self.trace_now_ms(), Some(&resp));
        }
        self.count_auth_attempts(1 + retries);
        // An already-registered fake account is fine — reuse it by
        // logging in (the paper's attacker kept accounts across crawls).
        // This also covers a signup whose response was lost to transport
        // chaos after the server processed it: the retry sees 400
        // "already registered" and proceeds to log in.
        if !resp.status.is_success() && resp.status != Status::BAD_REQUEST {
            return Err(CrawlError::Denied(resp.status));
        }
        let mut login = Request::post_form("/login", &[("user", &username), ("pass", password)]);
        let trace = self.next_trace_ctx(lane);
        if let Some((_, ctx)) = &trace {
            login = login.header(H_TRACE_ID, ctx.header_value());
        }
        let begin_ms = self.trace_now_ms();
        let (resp, retries) = auth_post(&mut exchange, &login)?;
        if let Some((tracer, ctx)) = &trace {
            record_root_span(tracer, ctx, EP_AUTH, begin_ms, self.trace_now_ms(), Some(&resp));
        }
        self.count_auth_attempts(1 + retries);
        if !resp.status.is_success() {
            return Err(CrawlError::Denied(resp.status));
        }
        self.accounts.push(AccountSession {
            exchange,
            username,
            password: password.to_string(),
            suspended: false,
            lane,
        });
        self.account_draws.push(0);
        Ok(())
    }

    /// Mint the next trace context for `lane`, or `None` when tracing
    /// is off (the recorder check keeps the disabled path to one atomic
    /// load plus a map probe).
    fn next_trace_ctx(&mut self, lane: u64) -> Option<(Arc<FlightRecorder>, TraceCtx)> {
        let tracer = self.tracer.as_ref()?;
        if !tracer.is_enabled() {
            return None;
        }
        let ord = self.trace_ordinals.entry(lane).or_insert(0);
        let ctx = TraceCtx::derive(TRACE_SEED, lane, *ord);
        *ord += 1;
        Some((Arc::clone(tracer), ctx))
    }

    /// Current virtual time for span stamps (shared clock when present,
    /// otherwise the crawler's private elapsed counter).
    fn trace_now_ms(&self) -> u64 {
        match &self.clock {
            Some(clock) => clock.now_ms(),
            None => self.virtual_elapsed_ms,
        }
    }

    /// Number of fake accounts in use (live + suspended).
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Accounts still in rotation.
    pub fn live_account_count(&self) -> usize {
        self.accounts.iter().filter(|a| !a.suspended).count()
    }

    /// Account usernames (tests).
    pub fn usernames(&self) -> Vec<&str> {
        self.accounts.iter().map(|a| a.username.as_str()).collect()
    }

    /// Virtual time a polite crawl of this effort would have taken.
    /// With a shared clock this includes backoff and breaker cooldowns;
    /// without one, just the politeness sleeps.
    pub fn virtual_elapsed_ms(&self) -> u64 {
        match &self.clock {
            Some(clock) => clock.now_ms(),
            None => self.virtual_elapsed_ms,
        }
    }

    /// Users whose friend lists are partial (degraded fetches).
    pub fn incomplete_friend_lists(&self) -> Vec<UserId> {
        self.incomplete.iter().copied().collect()
    }

    /// Users served tombstone pages (live-world deactivations and
    /// graduation rollovers), in stable order.
    pub fn tombstoned_user_list(&self) -> Vec<UserId> {
        self.tombstoned.iter().copied().collect()
    }

    // ---- checkpoint / resume ----------------------------------------------

    /// Export everything fetched so far into a [`CrawlSnapshot`]: seeds,
    /// profiles, and *complete* friend lists (partial lists are dropped
    /// so a resumed crawl re-fetches them properly). `effort` records
    /// what this crawl paid up to the checkpoint.
    pub fn checkpoint(&self) -> CrawlSnapshot {
        let mut snap = CrawlSnapshot::default();
        for (&school, seeds) in &self.seeds_cache {
            snap.seeds.insert(school, seeds.clone());
        }
        for (&uid, profile) in &self.profile_cache {
            snap.profiles.insert(uid, profile.clone());
        }
        for (&uid, friends) in &self.friends_cache {
            if !self.incomplete.contains(&uid) {
                snap.friends.insert(uid, friends.clone());
            }
        }
        snap.effort = self.effort();
        snap
    }

    /// Warm the caches from a checkpoint: anything captured there is
    /// never re-fetched. The resumed crawler's own `Effort` starts from
    /// its live total — the snapshot's `effort` is what the killed
    /// crawl had already paid, so total cost = `snap.effort + effort()`.
    pub fn restore(&mut self, snap: &CrawlSnapshot) {
        for (&school, seeds) in &snap.seeds {
            self.seeds_cache.insert(school, seeds.clone());
        }
        for (&uid, profile) in &snap.profiles {
            self.profile_cache.insert(uid, profile.clone());
        }
        for (&uid, friends) in &snap.friends {
            self.friends_cache.insert(uid, friends.clone());
            self.incomplete.remove(&uid);
        }
    }

    // ---- accounting helpers -----------------------------------------------

    /// Count one issued request against the endpoint's effort bucket
    /// and metric. Re-fetches (truncation, failover) count again —
    /// that's the point: Table 3 stays honest under faults.
    fn count_request(&mut self, endpoint: &'static str) {
        match endpoint {
            EP_AUTH => self.effort.auth_requests += 1,
            EP_SEEDS => self.effort.seed_requests += 1,
            EP_PROFILE => self.effort.profile_requests += 1,
            EP_FRIENDS | EP_CIRCLES => self.effort.friend_list_requests += 1,
            EP_MESSAGE => self.effort.message_requests += 1,
            EP_DECOY => self.effort.decoy_requests += 1,
            _ => {}
        }
        if let Some(m) = &self.obs {
            if let Some(c) = m.fetch.get(endpoint) {
                c.inc();
            }
        }
    }

    /// Fold transport-layer retries accumulated since the last sync
    /// into `Effort` and `crawler_fetch_total{endpoint="retry"}`, and
    /// attribute any new 429s to their provenance ledger
    /// (`crawler_refusals_total{source=edge|fault|throttle}`).
    fn sync_retries(&mut self) {
        let Some(stats) = &self.retry_stats else { return };
        let now = stats.retries();
        let delta = now.saturating_sub(self.retries_synced);
        if delta > 0 {
            self.retries_synced = now;
            self.effort.retry_requests += delta;
            if let Some(m) = &self.obs {
                m.fetch_retry.add(delta);
            }
        }
        if let Some(m) = &self.obs {
            let edge = stats.edge_limited();
            m.refusal("edge", edge.saturating_sub(self.edge_refusals_synced));
            self.edge_refusals_synced = edge;
            let fault = stats.fault_rate_limited();
            m.refusal("fault", fault.saturating_sub(self.fault_refusals_synced));
            self.fault_refusals_synced = fault;
            let throttle = stats.throttled();
            m.refusal("throttle", throttle.saturating_sub(self.throttle_refusals_synced));
            self.throttle_refusals_synced = throttle;
        }
    }

    /// Count `attempts` issued auth requests (first try + app-level
    /// retries), fold transport retries, and record the intentional
    /// auth retries for the soak's POST-redelivery reconciliation.
    fn count_auth_attempts(&mut self, attempts: u64) {
        for _ in 0..attempts {
            self.count_request(EP_AUTH);
        }
        self.sync_retries();
        let retries = attempts.saturating_sub(1);
        if retries > 0 {
            self.auth_retries += retries;
            if let Some(m) = &self.obs {
                m.auth_retries.add(retries);
            }
        }
    }

    /// Intentional application-level auth-POST retries issued so far.
    pub fn auth_retries(&self) -> u64 {
        self.auth_retries
    }

    /// Bill one page re-fetched over a staleness conflict. The GET
    /// itself is already in the endpoint's bucket (`count_request`);
    /// this is the annotation ledger plus the shared [`RetryStats`]
    /// slot the trace audit reconciles against.
    fn note_stale_refetch(&mut self, n: u64) {
        self.effort.stale_refetch_requests += n;
        if let Some(m) = &self.obs {
            m.stale_refetches.add(n);
        }
        if let Some(stats) = &self.retry_stats {
            stats.stale_refetches.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Record a tombstone page (once per user).
    fn note_tombstone(&mut self, uid: UserId) {
        if self.tombstoned.insert(uid) {
            self.effort.tombstones += 1;
            if let Some(m) = &self.obs {
                m.tombstones.inc();
            }
            if let Some(stats) = &self.retry_stats {
                stats.tombstones.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }

    /// Sleep before `account`'s next request. The naive crawler sleeps
    /// a metronomic `base × widen_factor`; the adaptive one jitters the
    /// sleep from the account's lane RNG and triples it during the
    /// account's warm-up phase.
    fn advance_politeness(&mut self, account: usize) {
        let base = self.politeness.sleep_ms_between_requests * self.widen_factor;
        let ms = match self.adaptive {
            None => base,
            Some(s) => {
                let n = self.account_draws[account];
                self.account_draws[account] = n + 1;
                let mut ms = base * s.jitter_pm(account as u64, n) / 1_000;
                if n < s.warmup_requests {
                    ms *= s.warmup_factor.max(1);
                }
                ms.max(1)
            }
        };
        self.virtual_elapsed_ms += ms;
        if let Some(clock) = &self.clock {
            clock.advance_ms(ms);
        }
        if let Some(m) = &self.obs {
            m.politeness_virtual_ms.add(ms);
        }
    }

    /// Absorb a CAPTCHA interstitial riding on a served response: pay
    /// the solve cost in virtual time and bill it as its own effort
    /// line item (never folded into retries).
    fn absorb_captcha(&mut self, resp: &Response) {
        let Some(ms) = hsp_http::resilient::captcha_delay_ms(resp) else { return };
        self.effort.captcha_challenges += 1;
        self.effort.captcha_virtual_ms += ms;
        self.virtual_elapsed_ms += ms;
        if let Some(clock) = &self.clock {
            clock.advance_ms(ms);
        }
        if let Some(m) = &self.obs {
            m.captcha_challenges.inc();
            m.captcha_virtual_ms.add(ms);
        }
    }

    /// Current adaptive politeness multiplier (≥ 1).
    pub fn politeness_widen_factor(&self) -> u64 {
        self.widen_factor
    }

    /// The platform pushed back (shed 503 / edge 429): double the
    /// spacing, capped, the way the paper's crawlers slowed down to
    /// stay under the radar.
    fn widen_pacing(&mut self) {
        self.calm_streak = 0;
        let cap = self.politeness.max_widen_factor.max(1);
        if self.widen_factor < cap {
            self.widen_factor = (self.widen_factor * 2).min(cap);
            if let Some(m) = &self.obs {
                m.politeness_widened.inc();
            }
        }
    }

    /// A clean fetch: after enough calm in a row, narrow one step back
    /// toward the base rate.
    fn note_fetch_success(&mut self) {
        if self.widen_factor <= 1 {
            return;
        }
        self.calm_streak += 1;
        if self.calm_streak >= self.politeness.narrow_after_successes {
            self.calm_streak = 0;
            self.widen_factor /= 2;
        }
    }

    /// Fold shed 503s the transport retry layer absorbed (visible only
    /// through the shared [`RetryStats`]) into the adaptive pacing.
    fn observe_shed_pressure(&mut self) {
        let Some(stats) = &self.retry_stats else { return };
        let now = stats.sheds();
        if now > self.sheds_synced {
            if let Some(m) = &self.obs {
                m.refusal("shed", now - self.sheds_synced);
            }
            self.sheds_synced = now;
            self.widen_pacing();
        }
    }

    // ---- circuit breakers -------------------------------------------------

    fn breaker_failure(&mut self, endpoint: &'static str) {
        let threshold = self.breaker_cfg.failure_threshold;
        let cooldown = self.breaker_cfg.cooldown_ms;
        let breaker = self.breakers.entry(endpoint).or_default();
        if breaker.record_failure(threshold) {
            // Open: pay the cooldown in virtual time, then half-open —
            // the next request through is the probe.
            if let Some(m) = &self.obs {
                if let Some(c) = m.breaker_open.get(endpoint) {
                    c.inc();
                }
            }
            self.virtual_elapsed_ms += cooldown;
            if let Some(clock) = &self.clock {
                clock.advance_ms(cooldown);
            }
        }
    }

    fn breaker_success(&mut self, endpoint: &'static str) {
        let breaker = self.breakers.entry(endpoint).or_default();
        if breaker.record_success() {
            if let Some(m) = &self.obs {
                if let Some(c) = m.breaker_closed.get(endpoint) {
                    c.inc();
                }
            }
        }
    }

    // ---- account rotation / failover --------------------------------------

    fn next_live_account(&mut self) -> Result<usize, CrawlError> {
        let n = self.accounts.len();
        for _ in 0..n {
            let a = self.rr % n;
            self.rr += 1;
            if !self.accounts[a].suspended {
                return Ok(a);
            }
        }
        // Everyone is suspended; a recruiting crawler can still recover.
        self.recruit()?;
        match self.accounts.iter().position(|a| !a.suspended) {
            Some(a) => Ok(a),
            None => Err(CrawlError::Denied(Status::TOO_MANY_REQUESTS)),
        }
    }

    fn mark_suspended(&mut self, account: usize) {
        if !self.accounts[account].suspended {
            self.accounts[account].suspended = true;
            if let Some(m) = &self.obs {
                m.account_suspensions.inc();
                m.refusal("suspension", 1);
            }
        }
    }

    /// Escalate the fleet after a suspension, the way the paper did
    /// (2 → 4 → 8 accounts): recruit until the total doubles, capped
    /// at `max_accounts`. No-op without a factory.
    fn recruit(&mut self) -> Result<(), CrawlError> {
        let Some(mut factory) = self.factory.take() else { return Ok(()) };
        let target = (self.accounts.len() * 2).min(self.max_accounts);
        let mut result = Ok(());
        while self.accounts.len() < target {
            let exchange = factory();
            let username = format!("{}-r{}", self.label, self.recruited);
            self.recruited += 1;
            match self.enroll(exchange, username) {
                Ok(()) => {
                    if let Some(m) = &self.obs {
                        m.accounts_recruited.inc();
                    }
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        self.factory = Some(factory);
        result
    }

    /// Re-login an account whose session the platform dropped.
    fn relogin(&mut self, account: usize) -> Result<(), CrawlError> {
        let (username, password) =
            (self.accounts[account].username.clone(), self.accounts[account].password.clone());
        let mut login = Request::post_form("/login", &[("user", &username), ("pass", &password)]);
        let trace = self.next_trace_ctx(self.accounts[account].lane);
        if let Some((_, ctx)) = &trace {
            login = login.header(H_TRACE_ID, ctx.header_value());
        }
        let begin_ms = self.trace_now_ms();
        let (resp, retries) = auth_post(&mut self.accounts[account].exchange, &login)?;
        if let Some((tracer, ctx)) = &trace {
            record_root_span(tracer, ctx, EP_AUTH, begin_ms, self.trace_now_ms(), Some(&resp));
        }
        self.count_auth_attempts(1 + retries);
        if !resp.status.is_success() {
            return Err(CrawlError::Denied(resp.status));
        }
        Ok(())
    }

    // ---- the resilient fetch loop -----------------------------------------

    /// GET `path`, surviving what the transport-level retry layer
    /// couldn't fix: truncated pages (re-fetch), lost sessions
    /// (re-login), suspended accounts (failover + recruitment), and
    /// persistent endpoint failure (circuit breaker cooldowns).
    /// Every *issued* request is counted against `endpoint`.
    ///
    /// `pinned`: seed collection must stay on one account (samples are
    /// per-account); everything else rotates.
    fn fetch(
        &mut self,
        endpoint: &'static str,
        pinned: Option<usize>,
        path: &str,
    ) -> Result<Response, CrawlError> {
        let budget = 8 + 2 * self.max_accounts.max(self.accounts.len());
        let mut relogins = 0u32;
        let mut truncations = 0u32;
        let mut last_denied = Status::SERVICE_UNAVAILABLE;
        for _ in 0..budget {
            let account = match pinned {
                Some(a) if self.accounts[a].suspended => {
                    return Err(CrawlError::Denied(Status::TOO_MANY_REQUESTS))
                }
                Some(a) => a,
                None => self.next_live_account()?,
            };
            self.advance_politeness(account);
            let trace = self.next_trace_ctx(self.accounts[account].lane);
            let begin_ms = self.trace_now_ms();
            // Request-carried virtual time: a mutating platform serves
            // the world as of this stamp, so replay is bit-identical
            // whatever the platform's own clock is doing.
            let mut req = Request::get(path).header(H_VIRTUAL_NOW, begin_ms.to_string());
            if let Some((_, ctx)) = &trace {
                req = req.header(H_TRACE_ID, ctx.header_value());
            }
            let result = self.accounts[account].exchange.exchange(req);
            if let Some((tracer, ctx)) = &trace {
                record_root_span(
                    tracer,
                    ctx,
                    endpoint,
                    begin_ms,
                    self.trace_now_ms(),
                    result.as_ref().ok(),
                );
            }
            self.count_request(endpoint);
            self.sync_retries();
            self.observe_shed_pressure();
            let resp = match result {
                Ok(resp) => resp,
                Err(HttpError::DeadlineExceeded) => {
                    self.breaker_failure(endpoint);
                    continue;
                }
                // A transport failure that outlived the retry layer's
                // budget (sustained chaos): breaker accounting, then
                // try again rather than sinking the crawl.
                Err(e) if retryable_transport_error(&e) => {
                    self.breaker_failure(endpoint);
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            // A flagged session pays its CAPTCHA interstitial on every
            // served page — including degraded ones.
            self.absorb_captcha(&resp);
            if resp.status.is_success() {
                if !html_complete(&resp) {
                    truncations += 1;
                    self.breaker_failure(endpoint);
                    if truncations > 3 {
                        return Err(CrawlError::BadPage("persistently truncated page"));
                    }
                    continue;
                }
                self.breaker_success(endpoint);
                self.note_fetch_success();
                return Ok(resp);
            }
            match resp.status {
                // Policy denial, not a fault: callers interpret 403.
                Status::FORBIDDEN => {
                    self.breaker_success(endpoint);
                    return Ok(resp);
                }
                // Session lost (fault-injected expiry or eviction):
                // log back in on the same account and re-issue.
                Status::UNAUTHORIZED => {
                    relogins += 1;
                    if relogins > 2 {
                        return Err(CrawlError::Denied(resp.status));
                    }
                    self.relogin(account)?;
                }
                // Account suspended: out of rotation, escalate the
                // fleet, carry on with the survivors.
                Status::TOO_MANY_REQUESTS if resp.headers.contains(H_ACCOUNT_SUSPENDED) => {
                    self.mark_suspended(account);
                    self.recruit()?;
                    if pinned.is_some() {
                        return Err(CrawlError::Denied(resp.status));
                    }
                }
                // A retryable status that outlived the transport-layer
                // retry budget (sustained 429/5xx): breaker accounting,
                // then try again (possibly from another account).
                s => {
                    last_denied = s;
                    // Server-side pushback (edge shed or rate limit, as
                    // opposed to an injected fault 5xx): adaptively
                    // widen the politeness spacing.
                    if is_shed(&resp) || s == Status::TOO_MANY_REQUESTS {
                        self.widen_pacing();
                    }
                    self.breaker_failure(endpoint);
                }
            }
        }
        Err(CrawlError::Denied(last_denied))
    }

    /// Traffic mimicry: after every `decoy_every` productive profile
    /// fetches, re-fetch one already-scraped profile so the session's
    /// traversal fan-out looks human (people revisit their friends).
    /// Decoy targets rotate through the insertion-ordered pool, so the
    /// decoy schedule is a pure function of the crawl so far. A decoy
    /// that fails is simply dropped — mimicry is best-effort cover
    /// traffic, never load-bearing.
    fn maybe_issue_decoy(&mut self) {
        let Some(s) = self.adaptive else { return };
        self.productive_profile_fetches += 1;
        if s.decoy_every == 0
            || self.decoy_pool.is_empty()
            || !self.productive_profile_fetches.is_multiple_of(s.decoy_every)
        {
            return;
        }
        let uid = self.decoy_pool[self.decoy_cursor % self.decoy_pool.len()];
        self.decoy_cursor += 1;
        if let Some(m) = &self.obs {
            m.adapt_decoys.inc();
        }
        let _ = self.fetch(EP_DECOY, None, &format!("/profile/{uid}"));
    }

    /// Page through one account's search results.
    fn seeds_for_account(
        &mut self,
        account: usize,
        school: SchoolId,
    ) -> Result<Vec<UserId>, CrawlError> {
        let mut out = Vec::new();
        let mut url = format!("/find-friends?school={school}");
        loop {
            let resp = self.fetch(EP_SEEDS, Some(account), &url)?;
            if resp.status == Status::FORBIDDEN {
                return Err(CrawlError::Denied(resp.status));
            }
            let (ids, next) = parse_listing(&resp.body_string());
            out.extend(ids);
            match next {
                Some(n) => url = n,
                None => break,
            }
        }
        Ok(out)
    }
}

/// Attempts per auth POST (signup/login) before a transport failure is
/// surfaced. These POSTs are *application-idempotent* — a double signup
/// answers 400 "already registered" (tolerated), a double login mints a
/// fresh session — so resending after a transport error is safe, unlike
/// the blind transport-layer POST replay the retry layers forbid.
const AUTH_POST_ATTEMPTS: u32 = 4;

/// POST an auth form, retrying boundedly on retryable transport errors.
/// Returns the response and how many *retries* (attempts − 1) it took.
fn auth_post<E: Exchange>(exchange: &mut E, req: &Request) -> Result<(Response, u64), CrawlError> {
    let mut retries = 0u64;
    loop {
        match exchange.exchange(req.clone()) {
            Ok(resp) => return Ok((resp, retries)),
            Err(e)
                if retries + 1 < u64::from(AUTH_POST_ATTEMPTS) && retryable_transport_error(&e) =>
            {
                retries += 1;
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// An HTML page is complete iff the renderer's closing tag made it
/// through — the crawler's defense against silent truncation.
pub(crate) fn html_complete(resp: &Response) -> bool {
    let is_html = resp.headers.get("content-type").is_some_and(|ct| ct.contains("text/html"));
    !is_html || resp.body_string().trim_end().ends_with("</html>")
}

impl<E: Exchange> OsnAccess for Crawler<E> {
    fn collect_seeds(&mut self, school: SchoolId) -> Result<Vec<UserId>, CrawlError> {
        if let Some(seeds) = self.seeds_cache.get(&school) {
            return Ok(seeds.clone());
        }
        let mut seen = Vec::new();
        for account in 0..self.accounts.len() {
            let ids = self.seeds_for_account(account, school)?;
            seen.extend(ids);
        }
        seen.sort_unstable();
        seen.dedup();
        self.seeds_cache.insert(school, seen.clone());
        Ok(seen)
    }

    fn profile(&mut self, uid: UserId) -> Result<ScrapedProfile, CrawlError> {
        if let Some(p) = self.profile_cache.get(&uid) {
            if let Some(m) = &self.obs {
                m.cache_profile_hits.inc();
            }
            return Ok(p.clone());
        }
        if let Some(m) = &self.obs {
            m.cache_profile_misses.inc();
        }
        let resp = self.fetch(EP_PROFILE, None, &format!("/profile/{uid}"))?;
        if resp.status == Status::FORBIDDEN {
            return Err(CrawlError::Denied(resp.status));
        }
        let profile = parse_profile(&resp.body_string());
        if profile.uid != Some(uid) {
            return Err(CrawlError::BadPage("profile uid mismatch"));
        }
        // A tombstone is an answer (the user deactivated or graduated
        // away mid-crawl): keep the minimal page, disclose it, move on.
        if profile.tombstoned {
            self.note_tombstone(uid);
        }
        self.profile_cache.insert(uid, profile.clone());
        if !profile.tombstoned {
            self.decoy_pool.push(uid);
        }
        self.maybe_issue_decoy();
        Ok(profile)
    }

    fn friends(&mut self, uid: UserId) -> Result<Option<Vec<UserId>>, CrawlError> {
        if let Some(f) = self.friends_cache.get(&uid) {
            if let Some(m) = &self.obs {
                m.cache_friends_hits.inc();
            }
            return Ok(f.clone());
        }
        if let Some(m) = &self.obs {
            m.cache_friends_misses.inc();
        }
        // On a live platform the list can mutate between pages: every
        // page carries the owner's generation stamp, and a stamp change
        // mid-pagination restarts the read from page 0 (bounded — after
        // two restarts the merged pages are kept, disclosed as partial).
        let mut passes = 0u32;
        let (out, list_gen) = 'paginate: loop {
            passes += 1;
            let refetch_pass = passes > 1;
            let mut out = Vec::new();
            let mut first_page = true;
            let mut list_gen: Option<u64> = None;
            let mut url = format!("/friends/{uid}");
            loop {
                if refetch_pass {
                    self.note_stale_refetch(1);
                }
                let resp = match self.fetch(EP_FRIENDS, None, &url) {
                    Ok(resp) => resp,
                    // Graceful degradation: a mid-list failure keeps the
                    // pages already fetched, flagged incomplete, instead of
                    // sinking the whole crawl. (First-page failures still
                    // propagate — there is nothing to carry forward.)
                    Err(e) => {
                        if out.is_empty() {
                            return Err(e);
                        }
                        self.incomplete.insert(uid);
                        if let Some(m) = &self.obs {
                            m.partial_friend_lists.inc();
                        }
                        self.friends_cache.insert(uid, Some(out.clone()));
                        return Ok(Some(out));
                    }
                };
                if resp.status == Status::FORBIDDEN {
                    self.friends_cache.insert(uid, None);
                    return Ok(None);
                }
                let (ids, next, gen) = parse_listing_stamped(&resp.body_string());
                if first_page {
                    first_page = false;
                    list_gen = gen;
                } else if gen != list_gen {
                    if passes < 3 {
                        continue 'paginate;
                    }
                    // Bound hit: keep the spliced pages, but say so.
                    if self.incomplete.insert(uid) {
                        if let Some(m) = &self.obs {
                            m.partial_friend_lists.inc();
                        }
                    }
                }
                out.extend(ids);
                match next {
                    Some(n) => url = n,
                    None => break 'paginate (out, list_gen),
                }
            }
        };
        // Pair verification: the profile page fetched earlier and this
        // list must describe the same generation of the user. On a
        // mismatch, re-fetch the profile once so downstream analysis
        // sees one consistent world, and reconcile the cache.
        let profile_gen = self.profile_cache.get(&uid).and_then(|p| p.generation);
        if let (Some(lg), Some(pg)) = (list_gen, profile_gen) {
            if lg != pg {
                self.note_stale_refetch(1);
                if let Ok(resp) = self.fetch(EP_PROFILE, None, &format!("/profile/{uid}")) {
                    if resp.status.is_success() {
                        let p = parse_profile(&resp.body_string());
                        if p.uid == Some(uid) {
                            if p.tombstoned {
                                self.note_tombstone(uid);
                            }
                            self.profile_cache.insert(uid, p);
                        }
                    }
                }
            }
        }
        self.friends_cache.insert(uid, Some(out.clone()));
        Ok(Some(out))
    }

    fn effort(&self) -> Effort {
        self.effort
    }

    fn incomplete_friends(&self) -> Vec<UserId> {
        self.incomplete_friend_lists()
    }

    fn tombstoned_users(&self) -> Vec<UserId> {
        self.tombstoned_user_list()
    }

    fn checkpoint(&self) -> CrawlSnapshot {
        Crawler::checkpoint(self)
    }

    fn virtual_elapsed_ms(&self) -> u64 {
        Crawler::virtual_elapsed_ms(self)
    }

    fn circles(&mut self, uid: UserId, incoming: bool) -> Result<Option<Vec<UserId>>, CrawlError> {
        if let Some(c) = self.circles_cache.get(&(uid, incoming)) {
            if let Some(m) = &self.obs {
                m.cache_circles_hits.inc();
            }
            return Ok(c.clone());
        }
        if let Some(m) = &self.obs {
            m.cache_circles_misses.inc();
        }
        let dir = if incoming { "has" } else { "in" };
        let mut out = Vec::new();
        let mut url = format!("/circles/{uid}?dir={dir}");
        loop {
            let resp = self.fetch(EP_CIRCLES, None, &url)?;
            if resp.status == Status::FORBIDDEN {
                self.circles_cache.insert((uid, incoming), None);
                return Ok(None);
            }
            let (ids, next) = parse_listing(&resp.body_string());
            out.extend(ids);
            match next {
                Some(n) => url = n,
                None => break,
            }
        }
        self.circles_cache.insert((uid, incoming), Some(out.clone()));
        Ok(Some(out))
    }

    fn send_message(&mut self, uid: UserId, body: &str) -> Result<bool, CrawlError> {
        let account = self.next_live_account()?;
        self.advance_politeness(account);
        let trace = self.next_trace_ctx(self.accounts[account].lane);
        let begin_ms = self.trace_now_ms();
        let mut req = Request::post_form(format!("/message/{uid}"), &[("body", body)])
            .header(H_VIRTUAL_NOW, begin_ms.to_string());
        if let Some((_, ctx)) = &trace {
            req = req.header(H_TRACE_ID, ctx.header_value());
        }
        let result = self.accounts[account].exchange.exchange(req);
        if let Some((tracer, ctx)) = &trace {
            record_root_span(
                tracer,
                ctx,
                EP_MESSAGE,
                begin_ms,
                self.trace_now_ms(),
                result.as_ref().ok(),
            );
        }
        let resp = result?;
        self.count_request(EP_MESSAGE);
        self.sync_retries();
        self.absorb_captcha(&resp);
        match resp.status {
            s if s.is_success() => Ok(true),
            Status::FORBIDDEN => Ok(false),
            Status::TOO_MANY_REQUESTS if resp.headers.contains(H_ACCOUNT_SUSPENDED) => {
                self.mark_suspended(account);
                self.recruit()?;
                Err(CrawlError::Denied(Status::TOO_MANY_REQUESTS))
            }
            s => Err(CrawlError::Denied(s)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_http::DirectExchange;
    use hsp_platform::{FaultPlan, Platform, PlatformConfig};
    use hsp_policy::FacebookPolicy;
    use hsp_synth::{generate, ScenarioConfig};
    use std::sync::Arc;

    fn tiny_crawler(n_accounts: usize) -> (Crawler<DirectExchange>, hsp_synth::Scenario) {
        let scenario = generate(&ScenarioConfig::tiny());
        let platform = Platform::new(
            Arc::new(scenario.network.clone()),
            Arc::new(FacebookPolicy::new()),
            PlatformConfig::default(),
        );
        let handler = platform.into_handler();
        let exchanges = (0..n_accounts).map(|_| DirectExchange::new(handler.clone())).collect();
        (Crawler::new(exchanges, "spy").unwrap(), scenario)
    }

    #[test]
    fn seeds_contain_no_registered_minors_and_effort_is_counted() {
        let (mut crawler, s) = tiny_crawler(2);
        let seeds = crawler.collect_seeds(s.school).unwrap();
        assert!(!seeds.is_empty());
        for &u in &seeds {
            assert!(!s.network.user(u).is_registered_minor(s.network.today));
        }
        let effort = crawler.effort();
        assert!(effort.seed_requests >= 2, "at least one page per account");
        assert_eq!(effort.auth_requests, 4); // signup+login × 2 accounts
        assert_eq!(effort.profile_requests, 0);
    }

    #[test]
    fn profile_fetch_caches() {
        let (mut crawler, s) = tiny_crawler(1);
        let u = s.roster()[0];
        let p1 = crawler.profile(u).unwrap();
        let p2 = crawler.profile(u).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(crawler.effort().profile_requests, 1, "second hit was cached");
    }

    #[test]
    fn friends_pagination_reassembles_full_list() {
        let (mut crawler, s) = tiny_crawler(2);
        // Find an open adult with > 20 friends (forces paging).
        let open = s
            .network
            .user_ids()
            .find(|&u| {
                !s.network.user(u).is_registered_minor(s.network.today)
                    && s.network.user(u).privacy.friend_list == hsp_graph::Audience::Public
                    && s.network.friends(u).len() > 25
            })
            .expect("an open well-connected user");
        let got = crawler.friends(open).unwrap().unwrap();
        let mut expected = s.network.friends(open).to_vec();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        expected.sort_unstable();
        assert_eq!(sorted, expected);
        assert!(crawler.effort().friend_list_requests >= 2);
        assert!(crawler.incomplete_friend_lists().is_empty());
    }

    #[test]
    fn hidden_friend_list_yields_none() {
        let (mut crawler, s) = tiny_crawler(1);
        let minor = s.registered_minor_students()[0];
        assert!(crawler.friends(minor).unwrap().is_none());
        // Cached too.
        assert!(crawler.friends(minor).unwrap().is_none());
        assert_eq!(crawler.effort().friend_list_requests, 1);
    }

    #[test]
    fn politeness_advances_virtual_clock() {
        let (mut crawler, s) = tiny_crawler(1);
        let before = crawler.virtual_elapsed_ms();
        let _ = crawler.profile(s.roster()[0]).unwrap();
        assert!(crawler.virtual_elapsed_ms() > before);
    }

    #[test]
    fn observability_counts_fetches_caches_and_politeness() {
        let scenario = generate(&ScenarioConfig::tiny());
        let platform = Platform::new(
            Arc::new(scenario.network.clone()),
            Arc::new(FacebookPolicy::new()),
            PlatformConfig::default(),
        );
        let handler = platform.into_handler();
        let exchanges = (0..2).map(|_| DirectExchange::new(handler.clone())).collect();
        let mut crawler =
            Crawler::with_observability(exchanges, "spy", Politeness::default(), &platform.obs)
                .unwrap();

        let u = scenario.roster()[0];
        let _ = crawler.profile(u).unwrap();
        let _ = crawler.profile(u).unwrap(); // cache hit
        let _ = crawler.friends(u);

        let snap = platform.obs.snapshot();
        assert_eq!(snap.counter("crawler_fetch_total{endpoint=\"auth\"}"), 4);
        assert_eq!(snap.counter("crawler_fetch_total{endpoint=\"profile\"}"), 1);
        assert_eq!(snap.counter("crawler_cache_total{cache=\"profile\",result=\"hit\"}"), 1);
        assert_eq!(snap.counter("crawler_cache_total{cache=\"profile\",result=\"miss\"}"), 1);
        let virt = snap.counter("crawler_politeness_virtual_ms");
        assert_eq!(virt, crawler.virtual_elapsed_ms());
        assert!(virt >= 2 * Politeness::default().sleep_ms_between_requests);
        // Both sides of the experiment share one registry: the platform's
        // route counters moved too.
        assert!(snap.counter("http_route_requests_total{route=\"/profile/:uid\"}") >= 1);
    }

    #[test]
    fn shed_pressure_widens_pacing_and_calm_narrows_it() {
        let (mut crawler, _s) = tiny_crawler(1);
        assert_eq!(crawler.politeness_widen_factor(), 1);
        let base = Politeness::default().sleep_ms_between_requests;

        // Pushback doubles the spacing up to the configured cap.
        crawler.widen_pacing();
        assert_eq!(crawler.politeness_widen_factor(), 2);
        let before = crawler.virtual_elapsed_ms();
        crawler.advance_politeness(0);
        assert_eq!(crawler.virtual_elapsed_ms() - before, 2 * base);
        for _ in 0..10 {
            crawler.widen_pacing();
        }
        assert_eq!(
            crawler.politeness_widen_factor(),
            Politeness::default().max_widen_factor,
            "widening saturates at the cap"
        );

        // A calm streak narrows one step at a time; pressure resets it.
        for _ in 0..Politeness::default().narrow_after_successes - 1 {
            crawler.note_fetch_success();
        }
        crawler.widen_pacing(); // resets the streak at the cap
        for _ in 0..Politeness::default().narrow_after_successes {
            crawler.note_fetch_success();
        }
        assert_eq!(crawler.politeness_widen_factor(), Politeness::default().max_widen_factor / 2);

        // Sheds absorbed inside the retry layer also widen (via the
        // shared RetryStats bridge).
        let stats = Arc::new(hsp_http::RetryStats::default());
        crawler.retry_stats = Some(Arc::clone(&stats));
        crawler.observe_shed_pressure();
        assert_eq!(crawler.politeness_widen_factor(), Politeness::default().max_widen_factor / 2);
        stats.sheds.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        crawler.observe_shed_pressure();
        assert_eq!(crawler.politeness_widen_factor(), Politeness::default().max_widen_factor);
    }

    #[test]
    fn more_accounts_more_seeds() {
        // With a big enough pool, extra accounts surface extra seeds.
        let scenario = generate(&ScenarioConfig::tiny());
        let platform = Platform::new(
            Arc::new(scenario.network.clone()),
            Arc::new(FacebookPolicy::new()),
            PlatformConfig { search_cap_per_account: 20, ..PlatformConfig::default() },
        );
        let handler = platform.into_handler();
        let mk = |n: usize, label: &str| {
            let exchanges = (0..n).map(|_| DirectExchange::new(handler.clone())).collect();
            Crawler::new(exchanges, label).unwrap()
        };
        let one = mk(1, "a").collect_seeds(scenario.school).unwrap();
        let four = mk(4, "b").collect_seeds(scenario.school).unwrap();
        assert!(four.len() > one.len(), "{} vs {}", four.len(), one.len());
    }

    #[test]
    fn checkpoint_resume_skips_fetched_pages() {
        let scenario = generate(&ScenarioConfig::tiny());
        let platform = Platform::new(
            Arc::new(scenario.network.clone()),
            Arc::new(FacebookPolicy::new()),
            PlatformConfig::default(),
        );
        let handler = platform.into_handler();
        let mk = |label: &str| {
            let exchanges = (0..2).map(|_| DirectExchange::new(handler.clone())).collect();
            Crawler::new(exchanges, label).unwrap()
        };

        // First crawl: seeds + a few profiles, then "the process dies".
        let mut first = mk("spy");
        let seeds = first.collect_seeds(scenario.school).unwrap();
        for &u in seeds.iter().take(5) {
            first.profile(u).unwrap();
            first.friends(u).unwrap();
        }
        let checkpoint = first.checkpoint();
        assert_eq!(checkpoint.profiles.len(), 5);
        assert!(checkpoint.effort.total() > 0);

        // Round-trip through JSON, like an on-disk checkpoint file.
        let checkpoint = CrawlSnapshot::from_json(&checkpoint.to_json().unwrap()).unwrap();

        // Resumed crawl: restore, then redo the same work.
        let mut resumed = mk("spy2");
        resumed.restore(&checkpoint);
        let auth_only = resumed.effort();
        let seeds2 = resumed.collect_seeds(scenario.school).unwrap();
        assert_eq!(seeds2, seeds, "seeds come from the checkpoint");
        for &u in seeds.iter().take(5) {
            resumed.profile(u).unwrap();
            resumed.friends(u).unwrap();
        }
        let effort = resumed.effort();
        assert_eq!(effort.seed_requests, auth_only.seed_requests, "no seed re-fetch");
        assert_eq!(effort.profile_requests, 0, "no profile re-fetch");
        assert_eq!(effort.friend_list_requests, 0, "no friend-list re-fetch");

        // New work is still fetched (and paid for).
        if let Some(&fresh) = seeds.get(5) {
            resumed.profile(fresh).unwrap();
            assert_eq!(resumed.effort().profile_requests, 1);
        }
    }

    #[test]
    fn suspension_fails_over_and_recruits() {
        // Scripted suspension of account 0 after 10 served requests;
        // a recruiting crawler must fail over mid-crawl and finish.
        let scenario = generate(&ScenarioConfig::tiny());
        let platform = Platform::new(
            Arc::new(scenario.network.clone()),
            Arc::new(FacebookPolicy::new()),
            PlatformConfig {
                faults: FaultPlan {
                    enabled: true,
                    suspend_account_after: vec![10],
                    ..FaultPlan::default()
                },
                ..PlatformConfig::default()
            },
        );
        let handler = platform.into_handler();
        let factory_handler = handler.clone();
        let exchanges = (0..2).map(|_| DirectExchange::new(handler.clone())).collect();
        let mut crawler = Crawler::builder("spy")
            .observability(&platform.obs)
            .recruit_with(move || DirectExchange::new(factory_handler.clone()), 8)
            .build(exchanges)
            .unwrap();

        let seeds = crawler.collect_seeds(scenario.school).unwrap();
        for &u in &seeds {
            crawler.profile(u).unwrap();
            crawler.friends(u).unwrap();
        }
        assert_eq!(platform.accounts.suspended_count(), 1, "account 0 was suspended");
        assert_eq!(crawler.live_account_count() + 1, crawler.account_count());
        assert!(crawler.account_count() > 2, "fleet escalated past the initial 2");
        let snap = platform.obs.snapshot();
        assert_eq!(snap.counter("crawler_account_suspensions_total"), 1);
        assert!(snap.counter("crawler_accounts_recruited_total") >= 1);
    }
}
