//! The crawler facade: multiple logged-in fake accounts, request
//! accounting, politeness pacing, and caching.
//!
//! [`Crawler`] is generic over [`hsp_http::Exchange`], so the same
//! attack code runs over real loopback TCP ([`hsp_http::Client`]) or
//! in-process ([`hsp_http::DirectExchange`]).

use crate::effort::Effort;
use crate::scrape::{parse_listing, parse_profile, ScrapedProfile};
use hsp_graph::{SchoolId, UserId};
use hsp_http::{Exchange, HttpError, Request, Response, Status};
use hsp_obs::{Counter, Registry};
use std::collections::HashMap;
use std::sync::Arc;

/// Data-access interface the profiling methodology (hsp-core) consumes.
/// The real implementation is [`Crawler`]; tests may substitute stubs.
pub trait OsnAccess {
    /// Collect seeds for `school` using every account (paper §4.1 step 1).
    fn collect_seeds(&mut self, school: SchoolId) -> Result<Vec<UserId>, CrawlError>;

    /// Fetch (or return cached) public profile of `uid`.
    fn profile(&mut self, uid: UserId) -> Result<ScrapedProfile, CrawlError>;

    /// Fetch the full friend list of `uid`, paging through it; `None`
    /// when the list is not visible to strangers.
    fn friends(&mut self, uid: UserId) -> Result<Option<Vec<UserId>>, CrawlError>;

    /// Accumulated measurement effort.
    fn effort(&self) -> Effort;

    /// Attempt to send a direct message (the §2 spear-phishing channel).
    /// Returns whether the platform accepted delivery. Default: not
    /// supported (stub accessors used in unit tests).
    fn send_message(&mut self, uid: UserId, body: &str) -> Result<bool, CrawlError> {
        let _ = (uid, body);
        Ok(false)
    }

    /// Fetch a circles page-set (Google+, Appendix A): `incoming = false`
    /// for "in your circles", `true` for "have you in circles". `None`
    /// when not visible or the platform has no circles. Default: no
    /// circles.
    fn circles(&mut self, uid: UserId, incoming: bool) -> Result<Option<Vec<UserId>>, CrawlError> {
        let _ = (uid, incoming);
        Ok(None)
    }
}

/// Crawl-level failures.
#[derive(Debug)]
pub enum CrawlError {
    Http(HttpError),
    /// The platform refused the request (suspension, auth loss, ...).
    Denied(Status),
    /// A page could not be interpreted.
    BadPage(&'static str),
}

impl std::fmt::Display for CrawlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrawlError::Http(e) => write!(f, "http: {e}"),
            CrawlError::Denied(s) => write!(f, "denied: {s}"),
            CrawlError::BadPage(w) => write!(f, "bad page: {w}"),
        }
    }
}

impl std::error::Error for CrawlError {}

impl From<HttpError> for CrawlError {
    fn from(e: HttpError) -> Self {
        CrawlError::Http(e)
    }
}

/// Politeness model: the paper's crawlers "implement\[ed\] sleeping
/// functions" (§3.2). We advance a virtual clock instead of really
/// sleeping, so experiments report the wall-clock a polite crawl would
/// take without paying it.
#[derive(Clone, Copy, Debug)]
pub struct Politeness {
    /// Virtual milliseconds between consecutive requests per account.
    pub sleep_ms_between_requests: u64,
}

impl Default for Politeness {
    fn default() -> Self {
        Politeness { sleep_ms_between_requests: 1_500 }
    }
}

/// One logged-in fake account.
struct AccountSession<E: Exchange> {
    exchange: E,
    username: String,
}

/// Pre-resolved crawler metric handles (attacker-side accounting):
/// per-endpoint fetch counts, cache hit/miss tallies, and the virtual
/// politeness clock. Recording is atomic adds only.
struct CrawlerMetrics {
    fetch_auth: Arc<Counter>,
    fetch_seeds: Arc<Counter>,
    fetch_profile: Arc<Counter>,
    fetch_friends: Arc<Counter>,
    fetch_circles: Arc<Counter>,
    fetch_message: Arc<Counter>,
    cache_profile_hits: Arc<Counter>,
    cache_profile_misses: Arc<Counter>,
    cache_friends_hits: Arc<Counter>,
    cache_friends_misses: Arc<Counter>,
    cache_circles_hits: Arc<Counter>,
    cache_circles_misses: Arc<Counter>,
    politeness_virtual_ms: Arc<Counter>,
}

impl CrawlerMetrics {
    fn register(reg: &Registry) -> CrawlerMetrics {
        let fetch = |e: &str| reg.counter_with("crawler_fetch_total", &[("endpoint", e)]);
        let cache = |c: &str, r: &str| {
            reg.counter_with("crawler_cache_total", &[("cache", c), ("result", r)])
        };
        CrawlerMetrics {
            fetch_auth: fetch("auth"),
            fetch_seeds: fetch("find-friends"),
            fetch_profile: fetch("profile"),
            fetch_friends: fetch("friends"),
            fetch_circles: fetch("circles"),
            fetch_message: fetch("message"),
            cache_profile_hits: cache("profile", "hit"),
            cache_profile_misses: cache("profile", "miss"),
            cache_friends_hits: cache("friends", "hit"),
            cache_friends_misses: cache("friends", "miss"),
            cache_circles_hits: cache("circles", "hit"),
            cache_circles_misses: cache("circles", "miss"),
            politeness_virtual_ms: reg.counter("crawler_politeness_virtual_ms"),
        }
    }
}

/// The attacker's crawler.
pub struct Crawler<E: Exchange> {
    accounts: Vec<AccountSession<E>>,
    effort: Effort,
    politeness: Politeness,
    virtual_elapsed_ms: u64,
    profile_cache: HashMap<UserId, ScrapedProfile>,
    friends_cache: HashMap<UserId, Option<Vec<UserId>>>,
    circles_cache: HashMap<(UserId, bool), Option<Vec<UserId>>>,
    /// Which account serves the next non-seed request (round-robin).
    rr: usize,
    /// Attacker-side telemetry; `None` when no registry was supplied.
    obs: Option<CrawlerMetrics>,
}

impl<E: Exchange> Crawler<E> {
    /// Create the crawler: signs up and logs in one fake account per
    /// exchange. `label` distinguishes account batches (e.g. the paper's
    /// second seed crawl for HS2/HS3 evaluation).
    pub fn new(exchanges: Vec<E>, label: &str) -> Result<Self, CrawlError> {
        Self::with_politeness(exchanges, label, Politeness::default())
    }

    pub fn with_politeness(
        exchanges: Vec<E>,
        label: &str,
        politeness: Politeness,
    ) -> Result<Self, CrawlError> {
        Self::build(exchanges, label, politeness, None)
    }

    /// Create the crawler with attacker-side telemetry recorded into
    /// `registry` (typically the same registry the platform and server
    /// use, so one scrape shows both sides of the experiment).
    pub fn with_observability(
        exchanges: Vec<E>,
        label: &str,
        politeness: Politeness,
        registry: &Registry,
    ) -> Result<Self, CrawlError> {
        Self::build(exchanges, label, politeness, Some(CrawlerMetrics::register(registry)))
    }

    fn build(
        exchanges: Vec<E>,
        label: &str,
        politeness: Politeness,
        obs: Option<CrawlerMetrics>,
    ) -> Result<Self, CrawlError> {
        let mut crawler = Crawler {
            accounts: Vec::new(),
            effort: Effort::default(),
            politeness,
            virtual_elapsed_ms: 0,
            profile_cache: HashMap::new(),
            friends_cache: HashMap::new(),
            circles_cache: HashMap::new(),
            rr: 0,
            obs,
        };
        for (i, mut exchange) in exchanges.into_iter().enumerate() {
            let username = format!("{label}-{i}");
            let resp = exchange.exchange(Request::post_form(
                "/signup",
                &[("user", &username), ("pass", "hunter2")],
            ))?;
            crawler.bump_auth();
            // An already-registered fake account is fine — reuse it by
            // logging in (the paper's attacker kept accounts across
            // crawls).
            if !resp.status.is_success() && resp.status != Status::BAD_REQUEST {
                return Err(CrawlError::Denied(resp.status));
            }
            let resp = exchange.exchange(Request::post_form(
                "/login",
                &[("user", &username), ("pass", "hunter2")],
            ))?;
            crawler.bump_auth();
            if !resp.status.is_success() {
                return Err(CrawlError::Denied(resp.status));
            }
            crawler.accounts.push(AccountSession { exchange, username });
        }
        if crawler.accounts.is_empty() {
            return Err(CrawlError::BadPage("no accounts"));
        }
        Ok(crawler)
    }

    fn bump_auth(&mut self) {
        self.effort.auth_requests += 1;
        if let Some(m) = &self.obs {
            m.fetch_auth.inc();
        }
    }

    /// Number of fake accounts in use.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Account usernames (tests).
    pub fn usernames(&self) -> Vec<&str> {
        self.accounts.iter().map(|a| a.username.as_str()).collect()
    }

    /// Virtual time a polite crawl of this effort would have taken.
    pub fn virtual_elapsed_ms(&self) -> u64 {
        self.virtual_elapsed_ms
    }

    fn get(&mut self, account: usize, path: &str) -> Result<Response, CrawlError> {
        self.advance_politeness();
        let resp = self.accounts[account].exchange.exchange(Request::get(path))?;
        match resp.status {
            s if s.is_success() => Ok(resp),
            Status::FORBIDDEN => Ok(resp), // callers interpret 403
            s => Err(CrawlError::Denied(s)),
        }
    }

    fn advance_politeness(&mut self) {
        self.virtual_elapsed_ms += self.politeness.sleep_ms_between_requests;
        if let Some(m) = &self.obs {
            m.politeness_virtual_ms.add(self.politeness.sleep_ms_between_requests);
        }
    }

    fn next_account(&mut self) -> usize {
        let a = self.rr % self.accounts.len();
        self.rr += 1;
        a
    }

    /// Page through one account's search results.
    fn seeds_for_account(
        &mut self,
        account: usize,
        school: SchoolId,
    ) -> Result<Vec<UserId>, CrawlError> {
        let mut out = Vec::new();
        let mut url = format!("/find-friends?school={school}");
        loop {
            let resp = self.get(account, &url)?;
            self.effort.seed_requests += 1;
            if let Some(m) = &self.obs {
                m.fetch_seeds.inc();
            }
            if resp.status == Status::FORBIDDEN {
                return Err(CrawlError::Denied(resp.status));
            }
            let (ids, next) = parse_listing(&resp.body_string());
            out.extend(ids);
            match next {
                Some(n) => url = n,
                None => break,
            }
        }
        Ok(out)
    }
}

impl<E: Exchange> OsnAccess for Crawler<E> {
    fn collect_seeds(&mut self, school: SchoolId) -> Result<Vec<UserId>, CrawlError> {
        let mut seen = Vec::new();
        for account in 0..self.accounts.len() {
            let ids = self.seeds_for_account(account, school)?;
            seen.extend(ids);
        }
        seen.sort_unstable();
        seen.dedup();
        Ok(seen)
    }

    fn profile(&mut self, uid: UserId) -> Result<ScrapedProfile, CrawlError> {
        if let Some(p) = self.profile_cache.get(&uid) {
            if let Some(m) = &self.obs {
                m.cache_profile_hits.inc();
            }
            return Ok(p.clone());
        }
        if let Some(m) = &self.obs {
            m.cache_profile_misses.inc();
        }
        let account = self.next_account();
        let resp = self.get(account, &format!("/profile/{uid}"))?;
        self.effort.profile_requests += 1;
        if let Some(m) = &self.obs {
            m.fetch_profile.inc();
        }
        if resp.status == Status::FORBIDDEN {
            return Err(CrawlError::Denied(resp.status));
        }
        let profile = parse_profile(&resp.body_string());
        if profile.uid != Some(uid) {
            return Err(CrawlError::BadPage("profile uid mismatch"));
        }
        self.profile_cache.insert(uid, profile.clone());
        Ok(profile)
    }

    fn friends(&mut self, uid: UserId) -> Result<Option<Vec<UserId>>, CrawlError> {
        if let Some(f) = self.friends_cache.get(&uid) {
            if let Some(m) = &self.obs {
                m.cache_friends_hits.inc();
            }
            return Ok(f.clone());
        }
        if let Some(m) = &self.obs {
            m.cache_friends_misses.inc();
        }
        let mut out = Vec::new();
        let mut url = format!("/friends/{uid}");
        loop {
            let account = self.next_account();
            let resp = self.get(account, &url)?;
            self.effort.friend_list_requests += 1;
            if let Some(m) = &self.obs {
                m.fetch_friends.inc();
            }
            if resp.status == Status::FORBIDDEN {
                self.friends_cache.insert(uid, None);
                return Ok(None);
            }
            let (ids, next) = parse_listing(&resp.body_string());
            out.extend(ids);
            match next {
                Some(n) => url = n,
                None => break,
            }
        }
        self.friends_cache.insert(uid, Some(out.clone()));
        Ok(Some(out))
    }

    fn effort(&self) -> Effort {
        self.effort
    }

    fn circles(&mut self, uid: UserId, incoming: bool) -> Result<Option<Vec<UserId>>, CrawlError> {
        if let Some(c) = self.circles_cache.get(&(uid, incoming)) {
            if let Some(m) = &self.obs {
                m.cache_circles_hits.inc();
            }
            return Ok(c.clone());
        }
        if let Some(m) = &self.obs {
            m.cache_circles_misses.inc();
        }
        let dir = if incoming { "has" } else { "in" };
        let mut out = Vec::new();
        let mut url = format!("/circles/{uid}?dir={dir}");
        loop {
            let account = self.next_account();
            let resp = self.get(account, &url)?;
            self.effort.friend_list_requests += 1;
            if let Some(m) = &self.obs {
                m.fetch_circles.inc();
            }
            if resp.status == Status::FORBIDDEN {
                self.circles_cache.insert((uid, incoming), None);
                return Ok(None);
            }
            let (ids, next) = parse_listing(&resp.body_string());
            out.extend(ids);
            match next {
                Some(n) => url = n,
                None => break,
            }
        }
        self.circles_cache.insert((uid, incoming), Some(out.clone()));
        Ok(Some(out))
    }

    fn send_message(&mut self, uid: UserId, body: &str) -> Result<bool, CrawlError> {
        let account = self.next_account();
        self.advance_politeness();
        let resp = self.accounts[account]
            .exchange
            .exchange(Request::post_form(format!("/message/{uid}"), &[("body", body)]))?;
        self.effort.message_requests += 1;
        if let Some(m) = &self.obs {
            m.fetch_message.inc();
        }
        match resp.status {
            s if s.is_success() => Ok(true),
            Status::FORBIDDEN => Ok(false),
            s => Err(CrawlError::Denied(s)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_http::DirectExchange;
    use hsp_platform::{Platform, PlatformConfig};
    use hsp_policy::FacebookPolicy;
    use hsp_synth::{generate, ScenarioConfig};
    use std::sync::Arc;

    fn tiny_crawler(n_accounts: usize) -> (Crawler<DirectExchange>, hsp_synth::Scenario) {
        let scenario = generate(&ScenarioConfig::tiny());
        let platform = Platform::new(
            Arc::new(scenario.network.clone()),
            Arc::new(FacebookPolicy::new()),
            PlatformConfig::default(),
        );
        let handler = platform.into_handler();
        let exchanges = (0..n_accounts).map(|_| DirectExchange::new(handler.clone())).collect();
        (Crawler::new(exchanges, "spy").unwrap(), scenario)
    }

    #[test]
    fn seeds_contain_no_registered_minors_and_effort_is_counted() {
        let (mut crawler, s) = tiny_crawler(2);
        let seeds = crawler.collect_seeds(s.school).unwrap();
        assert!(!seeds.is_empty());
        for &u in &seeds {
            assert!(!s.network.user(u).is_registered_minor(s.network.today));
        }
        let effort = crawler.effort();
        assert!(effort.seed_requests >= 2, "at least one page per account");
        assert_eq!(effort.auth_requests, 4); // signup+login × 2 accounts
        assert_eq!(effort.profile_requests, 0);
    }

    #[test]
    fn profile_fetch_caches() {
        let (mut crawler, s) = tiny_crawler(1);
        let u = s.roster()[0];
        let p1 = crawler.profile(u).unwrap();
        let p2 = crawler.profile(u).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(crawler.effort().profile_requests, 1, "second hit was cached");
    }

    #[test]
    fn friends_pagination_reassembles_full_list() {
        let (mut crawler, s) = tiny_crawler(2);
        // Find an open adult with > 20 friends (forces paging).
        let open = s
            .network
            .user_ids()
            .find(|&u| {
                !s.network.user(u).is_registered_minor(s.network.today)
                    && s.network.user(u).privacy.friend_list == hsp_graph::Audience::Public
                    && s.network.friends(u).len() > 25
            })
            .expect("an open well-connected user");
        let got = crawler.friends(open).unwrap().unwrap();
        let mut expected = s.network.friends(open).to_vec();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        expected.sort_unstable();
        assert_eq!(sorted, expected);
        assert!(crawler.effort().friend_list_requests >= 2);
    }

    #[test]
    fn hidden_friend_list_yields_none() {
        let (mut crawler, s) = tiny_crawler(1);
        let minor = s.registered_minor_students()[0];
        assert!(crawler.friends(minor).unwrap().is_none());
        // Cached too.
        assert!(crawler.friends(minor).unwrap().is_none());
        assert_eq!(crawler.effort().friend_list_requests, 1);
    }

    #[test]
    fn politeness_advances_virtual_clock() {
        let (mut crawler, s) = tiny_crawler(1);
        let before = crawler.virtual_elapsed_ms();
        let _ = crawler.profile(s.roster()[0]).unwrap();
        assert!(crawler.virtual_elapsed_ms() > before);
    }

    #[test]
    fn observability_counts_fetches_caches_and_politeness() {
        let scenario = generate(&ScenarioConfig::tiny());
        let platform = Platform::new(
            Arc::new(scenario.network.clone()),
            Arc::new(FacebookPolicy::new()),
            PlatformConfig::default(),
        );
        let handler = platform.into_handler();
        let exchanges = (0..2).map(|_| DirectExchange::new(handler.clone())).collect();
        let mut crawler =
            Crawler::with_observability(exchanges, "spy", Politeness::default(), &platform.obs)
                .unwrap();

        let u = scenario.roster()[0];
        let _ = crawler.profile(u).unwrap();
        let _ = crawler.profile(u).unwrap(); // cache hit
        let _ = crawler.friends(u);

        let snap = platform.obs.snapshot();
        assert_eq!(snap.counter("crawler_fetch_total{endpoint=\"auth\"}"), 4);
        assert_eq!(snap.counter("crawler_fetch_total{endpoint=\"profile\"}"), 1);
        assert_eq!(snap.counter("crawler_cache_total{cache=\"profile\",result=\"hit\"}"), 1);
        assert_eq!(snap.counter("crawler_cache_total{cache=\"profile\",result=\"miss\"}"), 1);
        let virt = snap.counter("crawler_politeness_virtual_ms");
        assert_eq!(virt, crawler.virtual_elapsed_ms());
        assert!(virt >= 2 * Politeness::default().sleep_ms_between_requests);
        // Both sides of the experiment share one registry: the platform's
        // route counters moved too.
        assert!(snap.counter("http_route_requests_total{route=\"/profile/:uid\"}") >= 1);
    }

    #[test]
    fn more_accounts_more_seeds() {
        // With a big enough pool, extra accounts surface extra seeds.
        let scenario = generate(&ScenarioConfig::tiny());
        let platform = Platform::new(
            Arc::new(scenario.network.clone()),
            Arc::new(FacebookPolicy::new()),
            PlatformConfig { search_cap_per_account: 20, ..PlatformConfig::default() },
        );
        let handler = platform.into_handler();
        let mk = |n: usize, label: &str| {
            let exchanges = (0..n).map(|_| DirectExchange::new(handler.clone())).collect();
            Crawler::new(exchanges, label).unwrap()
        };
        let one = mk(1, "a").collect_seeds(scenario.school).unwrap();
        let four = mk(4, "b").collect_seeds(scenario.school).unwrap();
        assert!(four.len() > one.len(), "{} vs {}", four.len(), one.len());
    }
}
