//! The crawler facade: multiple logged-in fake accounts, request
//! accounting, politeness pacing, and caching.
//!
//! [`Crawler`] is generic over [`hsp_http::Exchange`], so the same
//! attack code runs over real loopback TCP ([`hsp_http::Client`]) or
//! in-process ([`hsp_http::DirectExchange`]).

use crate::effort::Effort;
use crate::scrape::{parse_listing, parse_profile, ScrapedProfile};
use hsp_graph::{SchoolId, UserId};
use hsp_http::{Exchange, HttpError, Request, Response, Status};
use std::collections::HashMap;

/// Data-access interface the profiling methodology (hsp-core) consumes.
/// The real implementation is [`Crawler`]; tests may substitute stubs.
pub trait OsnAccess {
    /// Collect seeds for `school` using every account (paper §4.1 step 1).
    fn collect_seeds(&mut self, school: SchoolId) -> Result<Vec<UserId>, CrawlError>;

    /// Fetch (or return cached) public profile of `uid`.
    fn profile(&mut self, uid: UserId) -> Result<ScrapedProfile, CrawlError>;

    /// Fetch the full friend list of `uid`, paging through it; `None`
    /// when the list is not visible to strangers.
    fn friends(&mut self, uid: UserId) -> Result<Option<Vec<UserId>>, CrawlError>;

    /// Accumulated measurement effort.
    fn effort(&self) -> Effort;

    /// Attempt to send a direct message (the §2 spear-phishing channel).
    /// Returns whether the platform accepted delivery. Default: not
    /// supported (stub accessors used in unit tests).
    fn send_message(&mut self, uid: UserId, body: &str) -> Result<bool, CrawlError> {
        let _ = (uid, body);
        Ok(false)
    }

    /// Fetch a circles page-set (Google+, Appendix A): `incoming = false`
    /// for "in your circles", `true` for "have you in circles". `None`
    /// when not visible or the platform has no circles. Default: no
    /// circles.
    fn circles(&mut self, uid: UserId, incoming: bool) -> Result<Option<Vec<UserId>>, CrawlError> {
        let _ = (uid, incoming);
        Ok(None)
    }
}

/// Crawl-level failures.
#[derive(Debug)]
pub enum CrawlError {
    Http(HttpError),
    /// The platform refused the request (suspension, auth loss, ...).
    Denied(Status),
    /// A page could not be interpreted.
    BadPage(&'static str),
}

impl std::fmt::Display for CrawlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrawlError::Http(e) => write!(f, "http: {e}"),
            CrawlError::Denied(s) => write!(f, "denied: {s}"),
            CrawlError::BadPage(w) => write!(f, "bad page: {w}"),
        }
    }
}

impl std::error::Error for CrawlError {}

impl From<HttpError> for CrawlError {
    fn from(e: HttpError) -> Self {
        CrawlError::Http(e)
    }
}

/// Politeness model: the paper's crawlers "implement\[ed\] sleeping
/// functions" (§3.2). We advance a virtual clock instead of really
/// sleeping, so experiments report the wall-clock a polite crawl would
/// take without paying it.
#[derive(Clone, Copy, Debug)]
pub struct Politeness {
    /// Virtual milliseconds between consecutive requests per account.
    pub sleep_ms_between_requests: u64,
}

impl Default for Politeness {
    fn default() -> Self {
        Politeness { sleep_ms_between_requests: 1_500 }
    }
}

/// One logged-in fake account.
struct AccountSession<E: Exchange> {
    exchange: E,
    username: String,
}

/// The attacker's crawler.
pub struct Crawler<E: Exchange> {
    accounts: Vec<AccountSession<E>>,
    effort: Effort,
    politeness: Politeness,
    virtual_elapsed_ms: u64,
    profile_cache: HashMap<UserId, ScrapedProfile>,
    friends_cache: HashMap<UserId, Option<Vec<UserId>>>,
    circles_cache: HashMap<(UserId, bool), Option<Vec<UserId>>>,
    /// Which account serves the next non-seed request (round-robin).
    rr: usize,
}

impl<E: Exchange> Crawler<E> {
    /// Create the crawler: signs up and logs in one fake account per
    /// exchange. `label` distinguishes account batches (e.g. the paper's
    /// second seed crawl for HS2/HS3 evaluation).
    pub fn new(exchanges: Vec<E>, label: &str) -> Result<Self, CrawlError> {
        Self::with_politeness(exchanges, label, Politeness::default())
    }

    pub fn with_politeness(
        exchanges: Vec<E>,
        label: &str,
        politeness: Politeness,
    ) -> Result<Self, CrawlError> {
        let mut crawler = Crawler {
            accounts: Vec::new(),
            effort: Effort::default(),
            politeness,
            virtual_elapsed_ms: 0,
            profile_cache: HashMap::new(),
            friends_cache: HashMap::new(),
            circles_cache: HashMap::new(),
            rr: 0,
        };
        for (i, mut exchange) in exchanges.into_iter().enumerate() {
            let username = format!("{label}-{i}");
            let resp = exchange.exchange(Request::post_form(
                "/signup",
                &[("user", &username), ("pass", "hunter2")],
            ))?;
            crawler.effort.auth_requests += 1;
            // An already-registered fake account is fine — reuse it by
            // logging in (the paper's attacker kept accounts across
            // crawls).
            if !resp.status.is_success() && resp.status != Status::BAD_REQUEST {
                return Err(CrawlError::Denied(resp.status));
            }
            let resp = exchange.exchange(Request::post_form(
                "/login",
                &[("user", &username), ("pass", "hunter2")],
            ))?;
            crawler.effort.auth_requests += 1;
            if !resp.status.is_success() {
                return Err(CrawlError::Denied(resp.status));
            }
            crawler.accounts.push(AccountSession { exchange, username });
        }
        if crawler.accounts.is_empty() {
            return Err(CrawlError::BadPage("no accounts"));
        }
        Ok(crawler)
    }

    /// Number of fake accounts in use.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Account usernames (tests).
    pub fn usernames(&self) -> Vec<&str> {
        self.accounts.iter().map(|a| a.username.as_str()).collect()
    }

    /// Virtual time a polite crawl of this effort would have taken.
    pub fn virtual_elapsed_ms(&self) -> u64 {
        self.virtual_elapsed_ms
    }

    fn get(&mut self, account: usize, path: &str) -> Result<Response, CrawlError> {
        self.virtual_elapsed_ms += self.politeness.sleep_ms_between_requests;
        let resp = self.accounts[account].exchange.exchange(Request::get(path))?;
        match resp.status {
            s if s.is_success() => Ok(resp),
            Status::FORBIDDEN => Ok(resp), // callers interpret 403
            s => Err(CrawlError::Denied(s)),
        }
    }

    fn next_account(&mut self) -> usize {
        let a = self.rr % self.accounts.len();
        self.rr += 1;
        a
    }

    /// Page through one account's search results.
    fn seeds_for_account(
        &mut self,
        account: usize,
        school: SchoolId,
    ) -> Result<Vec<UserId>, CrawlError> {
        let mut out = Vec::new();
        let mut url = format!("/find-friends?school={school}");
        loop {
            let resp = self.get(account, &url)?;
            self.effort.seed_requests += 1;
            if resp.status == Status::FORBIDDEN {
                return Err(CrawlError::Denied(resp.status));
            }
            let (ids, next) = parse_listing(&resp.body_string());
            out.extend(ids);
            match next {
                Some(n) => url = n,
                None => break,
            }
        }
        Ok(out)
    }
}

impl<E: Exchange> OsnAccess for Crawler<E> {
    fn collect_seeds(&mut self, school: SchoolId) -> Result<Vec<UserId>, CrawlError> {
        let mut seen = Vec::new();
        for account in 0..self.accounts.len() {
            let ids = self.seeds_for_account(account, school)?;
            seen.extend(ids);
        }
        seen.sort_unstable();
        seen.dedup();
        Ok(seen)
    }

    fn profile(&mut self, uid: UserId) -> Result<ScrapedProfile, CrawlError> {
        if let Some(p) = self.profile_cache.get(&uid) {
            return Ok(p.clone());
        }
        let account = self.next_account();
        let resp = self.get(account, &format!("/profile/{uid}"))?;
        self.effort.profile_requests += 1;
        if resp.status == Status::FORBIDDEN {
            return Err(CrawlError::Denied(resp.status));
        }
        let profile = parse_profile(&resp.body_string());
        if profile.uid != Some(uid) {
            return Err(CrawlError::BadPage("profile uid mismatch"));
        }
        self.profile_cache.insert(uid, profile.clone());
        Ok(profile)
    }

    fn friends(&mut self, uid: UserId) -> Result<Option<Vec<UserId>>, CrawlError> {
        if let Some(f) = self.friends_cache.get(&uid) {
            return Ok(f.clone());
        }
        let mut out = Vec::new();
        let mut url = format!("/friends/{uid}");
        loop {
            let account = self.next_account();
            let resp = self.get(account, &url)?;
            self.effort.friend_list_requests += 1;
            if resp.status == Status::FORBIDDEN {
                self.friends_cache.insert(uid, None);
                return Ok(None);
            }
            let (ids, next) = parse_listing(&resp.body_string());
            out.extend(ids);
            match next {
                Some(n) => url = n,
                None => break,
            }
        }
        self.friends_cache.insert(uid, Some(out.clone()));
        Ok(Some(out))
    }

    fn effort(&self) -> Effort {
        self.effort
    }

    fn circles(&mut self, uid: UserId, incoming: bool) -> Result<Option<Vec<UserId>>, CrawlError> {
        if let Some(c) = self.circles_cache.get(&(uid, incoming)) {
            return Ok(c.clone());
        }
        let dir = if incoming { "has" } else { "in" };
        let mut out = Vec::new();
        let mut url = format!("/circles/{uid}?dir={dir}");
        loop {
            let account = self.next_account();
            let resp = self.get(account, &url)?;
            self.effort.friend_list_requests += 1;
            if resp.status == Status::FORBIDDEN {
                self.circles_cache.insert((uid, incoming), None);
                return Ok(None);
            }
            let (ids, next) = parse_listing(&resp.body_string());
            out.extend(ids);
            match next {
                Some(n) => url = n,
                None => break,
            }
        }
        self.circles_cache.insert((uid, incoming), Some(out.clone()));
        Ok(Some(out))
    }

    fn send_message(&mut self, uid: UserId, body: &str) -> Result<bool, CrawlError> {
        let account = self.next_account();
        self.virtual_elapsed_ms += self.politeness.sleep_ms_between_requests;
        let resp = self.accounts[account]
            .exchange
            .exchange(Request::post_form(&format!("/message/{uid}"), &[("body", body)]))?;
        self.effort.message_requests += 1;
        match resp.status {
            s if s.is_success() => Ok(true),
            Status::FORBIDDEN => Ok(false),
            s => Err(CrawlError::Denied(s)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_http::DirectExchange;
    use hsp_platform::{Platform, PlatformConfig};
    use hsp_policy::FacebookPolicy;
    use hsp_synth::{generate, ScenarioConfig};
    use std::sync::Arc;

    fn tiny_crawler(n_accounts: usize) -> (Crawler<DirectExchange>, hsp_synth::Scenario) {
        let scenario = generate(&ScenarioConfig::tiny());
        let platform = Platform::new(
            Arc::new(scenario.network.clone()),
            Arc::new(FacebookPolicy::new()),
            PlatformConfig::default(),
        );
        let handler = platform.into_handler();
        let exchanges = (0..n_accounts)
            .map(|_| DirectExchange::new(handler.clone()))
            .collect();
        (Crawler::new(exchanges, "spy").unwrap(), scenario)
    }

    #[test]
    fn seeds_contain_no_registered_minors_and_effort_is_counted() {
        let (mut crawler, s) = tiny_crawler(2);
        let seeds = crawler.collect_seeds(s.school).unwrap();
        assert!(!seeds.is_empty());
        for &u in &seeds {
            assert!(!s.network.user(u).is_registered_minor(s.network.today));
        }
        let effort = crawler.effort();
        assert!(effort.seed_requests >= 2, "at least one page per account");
        assert_eq!(effort.auth_requests, 4); // signup+login × 2 accounts
        assert_eq!(effort.profile_requests, 0);
    }

    #[test]
    fn profile_fetch_caches() {
        let (mut crawler, s) = tiny_crawler(1);
        let u = s.roster()[0];
        let p1 = crawler.profile(u).unwrap();
        let p2 = crawler.profile(u).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(crawler.effort().profile_requests, 1, "second hit was cached");
    }

    #[test]
    fn friends_pagination_reassembles_full_list() {
        let (mut crawler, s) = tiny_crawler(2);
        // Find an open adult with > 20 friends (forces paging).
        let open = s
            .network
            .user_ids()
            .filter(|&u| {
                !s.network.user(u).is_registered_minor(s.network.today)
                    && s.network.user(u).privacy.friend_list
                        == hsp_graph::Audience::Public
                    && s.network.friends(u).len() > 25
            })
            .next()
            .expect("an open well-connected user");
        let got = crawler.friends(open).unwrap().unwrap();
        let mut expected = s.network.friends(open).to_vec();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        expected.sort_unstable();
        assert_eq!(sorted, expected);
        assert!(crawler.effort().friend_list_requests >= 2);
    }

    #[test]
    fn hidden_friend_list_yields_none() {
        let (mut crawler, s) = tiny_crawler(1);
        let minor = s.registered_minor_students()[0];
        assert!(crawler.friends(minor).unwrap().is_none());
        // Cached too.
        assert!(crawler.friends(minor).unwrap().is_none());
        assert_eq!(crawler.effort().friend_list_requests, 1);
    }

    #[test]
    fn politeness_advances_virtual_clock() {
        let (mut crawler, s) = tiny_crawler(1);
        let before = crawler.virtual_elapsed_ms();
        let _ = crawler.profile(s.roster()[0]).unwrap();
        assert!(crawler.virtual_elapsed_ms() > before);
    }

    #[test]
    fn more_accounts_more_seeds() {
        // With a big enough pool, extra accounts surface extra seeds.
        let scenario = generate(&ScenarioConfig::tiny());
        let platform = Platform::new(
            Arc::new(scenario.network.clone()),
            Arc::new(FacebookPolicy::new()),
            PlatformConfig { search_cap_per_account: 20, ..PlatformConfig::default() },
        );
        let handler = platform.into_handler();
        let mk = |n: usize, label: &str| {
            let exchanges = (0..n).map(|_| DirectExchange::new(handler.clone())).collect();
            Crawler::new(exchanges, label).unwrap()
        };
        let one = mk(1, "a").collect_seeds(scenario.school).unwrap();
        let four = mk(4, "b").collect_seeds(scenario.school).unwrap();
        assert!(four.len() > one.len(), "{} vs {}", four.len(), one.len());
    }
}
