//! Property tests for the scrape layer: `parse_profile` and
//! `parse_listing` must never panic, whatever the platform (or the
//! fault injector) throws at them — arbitrary strings, tag soup, and
//! real rendered pages truncated at every possible byte boundary, which
//! is exactly the malformed HTML `FaultPlan` truncation produces.

use hsp_crawler::{parse_listing, parse_profile};
use hsp_http::{DirectExchange, Exchange, Request};
use hsp_platform::{FaultPlan, Platform, PlatformConfig};
use hsp_policy::FacebookPolicy;
use hsp_synth::{generate, ScenarioConfig};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// Real rendered pages (one profile, one friend-list page, one search
/// page), fetched once from a fault-free platform.
fn real_pages() -> &'static Vec<String> {
    static PAGES: OnceLock<Vec<String>> = OnceLock::new();
    PAGES.get_or_init(|| {
        let scenario = generate(&ScenarioConfig::tiny());
        let platform = Platform::new(
            Arc::new(scenario.network.clone()),
            Arc::new(FacebookPolicy::new()),
            PlatformConfig::default(),
        );
        let handler = platform.into_handler();
        let mut x = DirectExchange::new(handler);
        x.exchange(Request::post_form("/signup", &[("user", "probe"), ("pass", "pw")])).unwrap();
        x.exchange(Request::post_form("/login", &[("user", "probe"), ("pass", "pw")])).unwrap();
        let adult = scenario
            .network
            .user_ids()
            .find(|&u| !scenario.network.user(u).is_registered_minor(scenario.network.today))
            .unwrap();
        let school = scenario.school;
        [
            format!("/profile/{adult}"),
            format!("/friends/{adult}"),
            format!("/find-friends?school={school}"),
        ]
        .iter()
        .map(|path| x.exchange(Request::get(path)).unwrap().body_string())
        .collect()
    })
}

proptest! {
    #[test]
    fn parse_profile_never_panics_on_arbitrary_strings(input in ".*") {
        let _ = parse_profile(&input);
    }

    #[test]
    fn parse_listing_never_panics_on_arbitrary_strings(input in ".*") {
        let _ = parse_listing(&input);
    }

    #[test]
    fn parsers_never_panic_on_taggy_soup(
        parts in prop::collection::vec(
            prop_oneof![
                Just("<ul class=\"friend-list\">".to_string()),
                Just("<li data-uid=\"".to_string()),
                Just("<a href=\"/profile/".to_string()),
                Just("<dl class=\"profile\">".to_string()),
                Just("<dt>".to_string()),
                Just("</".to_string()),
                Just("&amp;".to_string()),
                Just("&#".to_string()),
                "[0-9]{0,6}",
                "[a-z<>&\"=/ ]{0,8}",
            ],
            0..40,
        )
    ) {
        let soup: String = parts.concat();
        let _ = parse_profile(&soup);
        let _ = parse_listing(&soup);
    }

    /// The fault engine truncates page bodies at arbitrary byte offsets
    /// (possibly mid-UTF-8-sequence; the client decodes lossily, like
    /// `Response::body_string`). The parsers must survive every prefix
    /// of every real page.
    #[test]
    fn parsers_never_panic_on_byte_truncated_real_pages(
        page in 0usize..3,
        cut_pct in 0u32..=100,
    ) {
        let html = &real_pages()[page];
        let cut = html.len() * cut_pct as usize / 100;
        let truncated = String::from_utf8_lossy(&html.as_bytes()[..cut]);
        let _ = parse_profile(&truncated);
        let _ = parse_listing(&truncated);
    }
}

/// End-to-end variant: pages truncated by the *actual* fault engine
/// (`truncate_per_mille = 1000` ⇒ every HTML response is cut) parse
/// without panicking, and the damage is detectable — no truncated page
/// ends with the renderer's closing tag.
#[test]
fn fault_engine_truncated_pages_parse_without_panic() {
    let scenario = generate(&ScenarioConfig::tiny());
    let platform = Platform::new(
        Arc::new(scenario.network.clone()),
        Arc::new(FacebookPolicy::new()),
        PlatformConfig {
            faults: FaultPlan { enabled: true, truncate_per_mille: 1000, ..FaultPlan::default() },
            ..PlatformConfig::default()
        },
    );
    let handler = platform.into_handler();
    let mut x = DirectExchange::new(handler);
    x.exchange(Request::post_form("/signup", &[("user", "probe"), ("pass", "pw")])).unwrap();
    x.exchange(Request::post_form("/login", &[("user", "probe"), ("pass", "pw")])).unwrap();

    let mut truncated_seen = 0;
    for u in scenario.network.user_ids().take(30) {
        for path in [format!("/profile/{u}"), format!("/friends/{u}")] {
            let resp = x.exchange(Request::get(&path)).unwrap();
            let body = resp.body_string();
            if resp.status.is_success() && !body.trim_end().ends_with("</html>") {
                truncated_seen += 1;
            }
            let _ = parse_profile(&body);
            let _ = parse_listing(&body);
        }
    }
    assert!(truncated_seen > 0, "the chaos plan should have mangled some pages");
}
