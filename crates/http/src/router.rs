//! Path-pattern routing for the simulated platform.

use crate::message::{Request, Response};
use crate::types::{Method, Status};
use std::collections::HashMap;
use std::sync::Arc;

/// Anything that can answer a request. The platform's application
/// implements this; so do [`Router`] and plain closures.
pub trait Handler: Send + Sync {
    fn handle(&self, req: &Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync,
{
    fn handle(&self, req: &Request) -> Response {
        self(req)
    }
}

impl Handler for Arc<dyn Handler> {
    fn handle(&self, req: &Request) -> Response {
        self.as_ref().handle(req)
    }
}

/// Path parameters captured from `:name` pattern segments.
#[derive(Clone, Debug, Default)]
pub struct PathParams {
    params: HashMap<String, String>,
}

impl PathParams {
    pub fn get(&self, name: &str) -> Option<&str> {
        self.params.get(name).map(String::as_str)
    }
}

type RouteFn = Arc<dyn Fn(&Request, &PathParams) -> Response + Send + Sync>;

struct Route {
    method: Method,
    segments: Vec<Segment>,
    handler: RouteFn,
}

enum Segment {
    Literal(String),
    Param(String),
}

/// A method + path-pattern router. Patterns are `/`-separated literals
/// and `:name` captures, e.g. `/profile/:id`.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    pub fn new() -> Router {
        Router::default()
    }

    /// Register a route.
    pub fn route(
        &mut self,
        method: Method,
        pattern: &str,
        handler: impl Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        let segments = pattern
            .trim_start_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| match s.strip_prefix(':') {
                Some(name) => Segment::Param(name.to_string()),
                None => Segment::Literal(s.to_string()),
            })
            .collect();
        self.routes.push(Route { method, segments, handler: Arc::new(handler) });
        self
    }

    /// Shorthand for GET routes.
    pub fn get(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        self.route(Method::Get, pattern, handler)
    }

    /// Shorthand for POST routes.
    pub fn post(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    ) -> &mut Self {
        self.route(Method::Post, pattern, handler)
    }

    fn match_route(&self, method: Method, path: &str) -> MatchResult<'_> {
        let parts: Vec<&str> =
            path.trim_start_matches('/').split('/').filter(|s| !s.is_empty()).collect();
        let mut path_matched = false;
        for route in &self.routes {
            if route.segments.len() != parts.len() {
                continue;
            }
            let mut params = PathParams::default();
            let ok = route.segments.iter().zip(&parts).all(|(seg, part)| match seg {
                Segment::Literal(lit) => lit == part,
                Segment::Param(name) => {
                    params.params.insert(name.clone(), (*part).to_string());
                    true
                }
            });
            if ok {
                path_matched = true;
                if route.method == method {
                    return MatchResult::Found(&route.handler, params);
                }
            }
        }
        if path_matched {
            MatchResult::WrongMethod
        } else {
            MatchResult::NotFound
        }
    }
}

enum MatchResult<'a> {
    Found(&'a RouteFn, PathParams),
    WrongMethod,
    NotFound,
}

impl Handler for Router {
    fn handle(&self, req: &Request) -> Response {
        let path = req.path();
        match self.match_route(req.method, &path) {
            MatchResult::Found(handler, params) => handler(req, &params),
            MatchResult::WrongMethod => {
                Response::error(Status::METHOD_NOT_ALLOWED, "method not allowed")
            }
            MatchResult::NotFound => Response::error(Status::NOT_FOUND, "not found"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> Router {
        let mut r = Router::new();
        r.get("/", |_, _| Response::text("home"));
        r.get("/profile/:id", |_, p| Response::text(format!("profile {}", p.get("id").unwrap())));
        r.get("/a/:x/b/:y", |_, p| {
            Response::text(format!("{}/{}", p.get("x").unwrap(), p.get("y").unwrap()))
        });
        r.post("/login", |req, _| {
            Response::text(format!("hi {}", req.form_param("user").unwrap_or_default()))
        });
        r
    }

    #[test]
    fn literal_and_param_matching() {
        let r = router();
        assert_eq!(r.handle(&Request::get("/")).body_string(), "home");
        assert_eq!(r.handle(&Request::get("/profile/u42")).body_string(), "profile u42");
        assert_eq!(r.handle(&Request::get("/a/1/b/2")).body_string(), "1/2");
    }

    #[test]
    fn query_string_does_not_affect_matching() {
        let r = router();
        assert_eq!(r.handle(&Request::get("/profile/u1?tab=friends")).body_string(), "profile u1");
    }

    #[test]
    fn not_found_and_wrong_method() {
        let r = router();
        assert_eq!(r.handle(&Request::get("/nope")).status, Status::NOT_FOUND);
        assert_eq!(r.handle(&Request::get("/login")).status, Status::METHOD_NOT_ALLOWED);
        // Segment-count mismatch is a 404, not a partial match.
        assert_eq!(r.handle(&Request::get("/profile/u1/extra")).status, Status::NOT_FOUND);
    }

    #[test]
    fn post_routes_see_form_body() {
        let r = router();
        let resp = r.handle(&Request::post_form("/login", &[("user", "eve")]));
        assert_eq!(resp.body_string(), "hi eve");
    }

    #[test]
    fn trailing_slash_is_tolerated() {
        let r = router();
        assert_eq!(r.handle(&Request::get("/profile/u1/")).body_string(), "profile u1");
    }
}
