//! # hsp-http — minimal blocking HTTP/1.1 substrate
//!
//! The paper's attack is carried out by "customized crawlers that visit
//! public Web pages ... and download the HTML source code of each Web
//! page" (§3.2). To reproduce that faithfully, the simulated OSN
//! (`hsp-platform`) is served over real HTTP and the attacker
//! (`hsp-crawler`) really issues GETs — including the AJAX-style paging
//! the paper describes for search results and friend lists.
//!
//! This crate is the shared substrate: wire types ([`types`],
//! [`message`]), an incremental `bytes`-based codec ([`wire`]), URL and
//! query handling ([`uri`]), cookies ([`cookie`]), a path router
//! ([`router`]), a thread-pool TCP server ([`server`]) and a keep-alive
//! client plus an in-memory fast path ([`client`]).
//!
//! The server is deliberately synchronous (std::net + worker pool, in
//! the from-scratch spirit of smoltcp) — the workload is a handful of
//! loopback crawler connections, far below where an async runtime pays
//! for itself.

pub mod chaos;
pub mod client;
pub mod cookie;
pub mod error;
pub mod message;
pub mod resilient;
pub mod router;
pub mod server;
pub mod types;
pub mod uri;
pub mod wire;

pub use chaos::{ChaosPlan, ChaosStats, ChaosStream, ChaosTransport};
pub use client::{Client, DirectExchange, Exchange, TransportState, DEFAULT_CLIENT_READ_TIMEOUT};
pub use cookie::{request_cookie, CookieJar};
pub use error::{HttpError, Result};
pub use message::{Request, Response};
pub use resilient::{
    captcha_delay_ms, classify, is_edge_limited, is_fault_limited, is_shed, is_throttled,
    refusal_provenance, retryable_transport_error, ErrorClass, ResilientExchange, RetryPolicy,
    RetryStats, RetryStatsSnapshot, H_ATTEMPT_SEQ, H_TRACE_ID,
};
pub use router::{Handler, PathParams, Router};
pub use server::{AccessLogFn, AccessRecord, RateLimit, Server, ServerConfig};
pub use types::{Headers, Method, Status};
pub use uri::{build_query, parse_query, percent_decode, percent_encode, url, Target};
