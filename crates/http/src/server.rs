//! A blocking HTTP/1.1 server over `std::net` with a worker thread pool.
//!
//! Each accepted connection is handed to a pool worker, which serves
//! keep-alive requests on it until the peer closes, an error occurs, or
//! `Connection: close` is exchanged. The design follows the synchronous
//! from-scratch style (cf. smoltcp) rather than pulling in an async
//! runtime: loopback-scale load with a handful of crawler connections
//! needs nothing more.
//!
//! ## Overload protection
//!
//! The serving edge defends itself rather than collapsing:
//!
//! - **Load shedding** — admission is bounded by the accept queue and
//!   [`ServerConfig::max_connections`]. A connection that cannot be
//!   admitted is answered with a fast `503 Service Unavailable` +
//!   `Retry-After` and closed; never silently dropped.
//! - **Edge rate limiting** — an optional per-client token bucket
//!   ([`ServerConfig::rate_limit`]) answers over-limit requests with
//!   `429 Too Many Requests` + `Retry-After` before the handler runs.
//! - **Slowloris defense** — reads poll on a short tick so a worker is
//!   never blocked: a client that stalls mid-request for
//!   [`ServerConfig::read_timeout`], or trickles bytes past
//!   [`ServerConfig::request_deadline`], gets `408 Request Timeout`;
//!   idle keep-alive connections are reaped after
//!   [`ServerConfig::idle_timeout`].
//! - **Graceful drain** — shutdown completes in-flight requests under
//!   [`ServerConfig::drain_deadline`] while shedding new connections
//!   with an explicit 503.
//!
//! ## Telemetry
//!
//! When [`ServerConfig::metrics`] carries a registry, the transport
//! layer accounts for itself under `http_*` metrics: request and
//! status-class counters, request/response byte counters, a request
//! latency histogram, gauges for in-flight connections and the accept
//! queue, and counters for accept errors, decode errors, shed and
//! rate-limited connections, slow-client closes, idle reaps, drained
//! connections and shutdown-time rejects. All per-request recording is
//! pre-resolved atomic handles — no locks on the hot path.
//! Route-pattern-level accounting (e.g. `/profile/:uid`) lives a layer
//! up, in `hsp-platform`, which sees the routing decision; the server
//! only knows raw paths and deliberately does not use them as label
//! values (unbounded cardinality).

use crate::error::HttpError;
use crate::message::Response;
use crate::resilient::H_TRACE_ID;
use crate::router::Handler;
use crate::types::{Method, Status};
use crate::wire::{decode_request, encode_response, Decoded};
use bytes::BytesMut;
use crossbeam_channel::{bounded, Sender, TrySendError};
use hsp_obs::trace::{SpanRecord, SLOT_EDGE};
use hsp_obs::{Counter, FlightRecorder, Gauge, Histogram, Registry, TraceCtx};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One served request, as seen by the [`ServerConfig::access_log`] hook.
#[derive(Clone, Copy, Debug)]
pub struct AccessRecord<'a> {
    pub method: Method,
    /// Raw request target (path + query), before routing.
    pub target: &'a str,
    pub status: u16,
    pub latency_us: u64,
    pub request_bytes: u64,
    pub response_bytes: u64,
}

/// Access-log callback; invoked after each response is written.
pub type AccessLogFn = Arc<dyn Fn(&AccessRecord<'_>) + Send + Sync>;

/// Per-client token-bucket rate limit, enforced at the edge before the
/// handler runs. This is the platform-side countermeasure the paper's
/// §8 discussion calls for: a crawler exceeding it sees `429` +
/// `Retry-After` instead of pages.
#[derive(Clone, Copy, Debug)]
pub struct RateLimit {
    /// Bucket capacity: requests a client may burst before refill matters.
    pub burst: u32,
    /// Sustained refill rate, tokens (requests) per second.
    pub per_sec: f64,
}

/// Server configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// No-progress deadline while a request is partially received: a
    /// client that sends part of a request and then stalls this long is
    /// answered `408` and closed.
    pub read_timeout: Duration,
    /// Total deadline for receiving one complete request, first byte to
    /// full decode. Defeats slowloris clients that trickle a byte just
    /// often enough to dodge `read_timeout`.
    pub request_deadline: Duration,
    /// Idle keep-alive connections (no partial request buffered) are
    /// quietly reaped after this long.
    pub idle_timeout: Duration,
    /// Per-write socket timeout for responses and shed replies.
    pub write_timeout: Duration,
    /// Capacity of the accepted-connection queue between the accept
    /// loop and the worker pool. A connection arriving while the queue
    /// is full is shed with `503` + `Retry-After` (never blocked on,
    /// never silently dropped).
    pub queue_depth: usize,
    /// Hard cap on concurrently admitted connections (queued + being
    /// served); beyond it new connections are shed with `503`.
    pub max_connections: usize,
    /// Deadline for graceful drain: shutdown lets in-flight requests
    /// finish for at most this long while shedding new connections.
    pub drain_deadline: Duration,
    /// Optional per-client-IP token-bucket rate limit.
    pub rate_limit: Option<RateLimit>,
    /// Prefix for server thread names (`{prefix}-accept`,
    /// `{prefix}-worker3`), visible in debuggers and `/proc`.
    pub thread_name_prefix: String,
    /// Metrics registry; `None` disables transport telemetry.
    pub metrics: Option<Arc<Registry>>,
    /// Per-request access-log hook.
    pub access_log: Option<AccessLogFn>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            read_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_millis(250),
            queue_depth: 16,
            max_connections: 256,
            drain_deadline: Duration::from_secs(2),
            rate_limit: None,
            thread_name_prefix: "hsp-http".to_string(),
            metrics: None,
            access_log: None,
        }
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("workers", &self.workers)
            .field("read_timeout", &self.read_timeout)
            .field("request_deadline", &self.request_deadline)
            .field("idle_timeout", &self.idle_timeout)
            .field("write_timeout", &self.write_timeout)
            .field("queue_depth", &self.queue_depth)
            .field("max_connections", &self.max_connections)
            .field("drain_deadline", &self.drain_deadline)
            .field("rate_limit", &self.rate_limit)
            .field("thread_name_prefix", &self.thread_name_prefix)
            .field("metrics", &self.metrics.is_some())
            .field("access_log", &self.access_log.is_some())
            .finish()
    }
}

/// Pre-resolved transport metric handles (hot path = atomics only).
struct ServerMetrics {
    requests: Arc<Counter>,
    class_2xx: Arc<Counter>,
    class_3xx: Arc<Counter>,
    class_4xx: Arc<Counter>,
    class_5xx: Arc<Counter>,
    latency_us: Arc<Histogram>,
    request_bytes: Arc<Counter>,
    response_bytes: Arc<Counter>,
    connections: Arc<Counter>,
    active_connections: Arc<Gauge>,
    accept_queue: Arc<Gauge>,
    accept_errors: Arc<Counter>,
    decode_errors: Arc<Counter>,
    shutdown_rejects: Arc<Counter>,
    shed_queue_full: Arc<Counter>,
    shed_overcap: Arc<Counter>,
    rate_limited: Arc<Counter>,
    slow_closed: Arc<Counter>,
    idle_reaped: Arc<Counter>,
    drained: Arc<Counter>,
}

impl ServerMetrics {
    fn register(reg: &Registry) -> ServerMetrics {
        let class = |c: &str| reg.counter_with("http_server_status_total", &[("class", c)]);
        let shed = |r: &str| reg.counter_with("http_server_shed_total", &[("reason", r)]);
        ServerMetrics {
            requests: reg.counter("http_server_requests_total"),
            class_2xx: class("2xx"),
            class_3xx: class("3xx"),
            class_4xx: class("4xx"),
            class_5xx: class("5xx"),
            latency_us: reg.histogram("http_server_latency_us"),
            request_bytes: reg.counter("http_server_request_bytes_total"),
            response_bytes: reg.counter("http_server_response_bytes_total"),
            connections: reg.counter("http_server_connections_total"),
            active_connections: reg.gauge("http_server_active_connections"),
            accept_queue: reg.gauge("http_server_accept_queue"),
            accept_errors: reg.counter("http_server_accept_errors_total"),
            decode_errors: reg.counter("http_server_decode_errors_total"),
            shutdown_rejects: reg.counter("http_server_shutdown_rejects_total"),
            shed_queue_full: shed("queue_full"),
            shed_overcap: shed("max_connections"),
            rate_limited: reg.counter("http_server_rate_limited_total"),
            slow_closed: reg.counter("http_server_slow_client_closes_total"),
            idle_reaped: reg.counter("http_server_idle_reaped_total"),
            drained: reg.counter("http_server_drained_total"),
        }
    }

    fn observe(&self, status: u16, latency_us: u64, req_bytes: u64, resp_bytes: u64) {
        self.requests.inc();
        match status {
            200..=299 => self.class_2xx.inc(),
            300..=399 => self.class_3xx.inc(),
            400..=499 => self.class_4xx.inc(),
            _ => self.class_5xx.inc(),
        }
        self.latency_us.record(latency_us);
        self.request_bytes.add(req_bytes);
        self.response_bytes.add(resp_bytes);
    }
}

/// Per-client-IP token buckets. One lock around a small map: the edge
/// check runs once per request, far off the byte-shoveling hot path.
struct EdgeLimiter {
    cfg: RateLimit,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

struct Bucket {
    tokens: f64,
    last: Instant,
}

impl EdgeLimiter {
    fn new(cfg: RateLimit) -> EdgeLimiter {
        EdgeLimiter { cfg, buckets: Mutex::new(HashMap::new()) }
    }

    /// Take one token for `ip`; `Err(retry_after_secs)` when exhausted.
    fn allow(&self, ip: IpAddr) -> std::result::Result<(), u32> {
        let now = Instant::now();
        let burst = f64::from(self.cfg.burst.max(1));
        let mut map = self.buckets.lock();
        let b = map.entry(ip).or_insert(Bucket { tokens: burst, last: now });
        let refill = now.duration_since(b.last).as_secs_f64() * self.cfg.per_sec;
        b.tokens = (b.tokens + refill).min(burst);
        b.last = now;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            Ok(())
        } else if self.cfg.per_sec > 0.0 {
            let wait = (1.0 - b.tokens) / self.cfg.per_sec;
            Err(wait.ceil().max(1.0) as u32)
        } else {
            Err(1)
        }
    }
}

/// State shared between the server handle, accept loop and workers.
struct Shared {
    shutdown: AtomicBool,
    draining: AtomicBool,
    drain_started: Mutex<Option<Instant>>,
    /// Admitted connections: queued + being served.
    open: AtomicUsize,
}

/// Everything a worker needs to serve connections.
struct ConnContext {
    handler: Arc<dyn Handler>,
    read_timeout: Duration,
    request_deadline: Duration,
    idle_timeout: Duration,
    write_timeout: Duration,
    drain_deadline: Duration,
    limiter: Option<EdgeLimiter>,
    shared: Arc<Shared>,
    metrics: Option<ServerMetrics>,
    /// Flight recorder from [`ServerConfig::metrics`]: edge refusals
    /// never reach a handler, so the edge annotates its own spans.
    tracer: Option<Arc<FlightRecorder>>,
    access_log: Option<AccessLogFn>,
}

/// A running HTTP server. Shuts down (and joins its threads) on drop.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind to `127.0.0.1:0` (ephemeral port) and start serving `handler`.
    pub fn start(handler: Arc<dyn Handler>) -> std::io::Result<Server> {
        Self::start_with(handler, ServerConfig::default())
    }

    /// Bind with explicit configuration.
    pub fn start_with(handler: Arc<dyn Handler>, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            drain_started: Mutex::new(None),
            open: AtomicUsize::new(0),
        });
        let (tx, rx) = bounded::<TcpStream>(config.queue_depth.max(1));

        let ctx = Arc::new(ConnContext {
            handler,
            read_timeout: config.read_timeout,
            request_deadline: config.request_deadline,
            idle_timeout: config.idle_timeout,
            write_timeout: config.write_timeout,
            drain_deadline: config.drain_deadline,
            limiter: config.rate_limit.map(EdgeLimiter::new),
            shared: Arc::clone(&shared),
            metrics: config.metrics.as_deref().map(ServerMetrics::register),
            tracer: config.metrics.as_ref().map(|r| Arc::clone(r.tracer())),
            access_log: config.access_log.clone(),
        });

        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let rx = rx.clone();
            let ctx = Arc::clone(&ctx);
            let builder = std::thread::Builder::new()
                .name(format!("{}-worker{i}", config.thread_name_prefix));
            workers.push(builder.spawn(move || {
                while let Ok(stream) = rx.recv() {
                    if let Some(m) = &ctx.metrics {
                        m.accept_queue.dec();
                    }
                    if ctx.shared.shutdown.load(Ordering::SeqCst) {
                        // Queued behind shutdown: it never reached a
                        // handler, so shed it explicitly.
                        reject_with_unavailable(stream, &ctx);
                    } else {
                        let _ = serve_connection(stream, &ctx);
                    }
                    ctx.shared.open.fetch_sub(1, Ordering::SeqCst);
                }
            })?);
        }

        let accept_ctx = Arc::clone(&ctx);
        let max_connections = config.max_connections.max(1);
        let accept_thread = std::thread::Builder::new()
            .name(format!("{}-accept", config.thread_name_prefix))
            .spawn(move || {
                accept_loop(listener, tx, accept_ctx, max_connections);
            })?;

        Ok(Server { addr, shared, accept_thread: Some(accept_thread), workers })
    }

    /// The bound address (ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Base URL, e.g. `http://127.0.0.1:43817`.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Begin a graceful drain without blocking: in-flight requests keep
    /// completing (responses carry `Connection: close`), new
    /// connections are shed with `503`, and serving winds down within
    /// [`ServerConfig::drain_deadline`]. Call [`Server::shutdown`] (or
    /// drop) afterwards to join the threads.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        let mut started = self.shared.drain_started.lock();
        if started.is_none() {
            *started = Some(Instant::now());
        }
        drop(started);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop so it switches to shedding mode.
        let _ = TcpStream::connect(self.addr);
    }

    /// Request shutdown (graceful drain) and join all threads.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        self.begin_drain();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.do_shutdown();
        }
    }
}

/// Longest pause between accept retries when `accept()` keeps failing.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(500);

/// Poll tick for connection reads and the drain loop. Short enough that
/// deadlines are observed promptly, long enough to stay off the CPU.
const POLL_TICK: Duration = Duration::from_millis(20);

fn accept_loop(
    listener: TcpListener,
    tx: Sender<TcpStream>,
    ctx: Arc<ConnContext>,
    max_connections: usize,
) {
    let mut backoff = Duration::from_millis(1);
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                backoff = Duration::from_millis(1);
                if ctx.shared.shutdown.load(Ordering::SeqCst) {
                    // Shutdown began: shed this connection explicitly,
                    // then keep shedding until the drain completes.
                    reject_with_unavailable(stream, &ctx);
                    drain_accepts(&listener, &ctx);
                    return; // tx drops, workers drain and exit
                }
                if ctx.shared.open.load(Ordering::SeqCst) >= max_connections {
                    shed(stream, &ctx, SHED_RETRY_AFTER_SECS);
                    if let Some(m) = &ctx.metrics {
                        m.shed_overcap.inc();
                    }
                    continue;
                }
                ctx.shared.open.fetch_add(1, Ordering::SeqCst);
                if let Some(m) = &ctx.metrics {
                    m.accept_queue.inc();
                }
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        // Queue saturated: fast 503 + Retry-After, never
                        // a blocked accept loop or a silent drop.
                        ctx.shared.open.fetch_sub(1, Ordering::SeqCst);
                        if let Some(m) = &ctx.metrics {
                            m.accept_queue.dec();
                            m.shed_queue_full.inc();
                        }
                        shed(stream, &ctx, SHED_RETRY_AFTER_SECS);
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(_) => {
                if ctx.shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // A persistent accept failure (EMFILE, ENFILE, ...)
                // must not busy-spin the accept thread: count it and
                // back off exponentially until accepts succeed again.
                if let Some(m) = &ctx.metrics {
                    m.accept_errors.inc();
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
        }
    }
}

/// After shutdown: keep shedding new connections with an explicit 503
/// until in-flight connections finish or the drain deadline passes, so
/// a draining server never answers with a connection reset.
fn drain_accepts(listener: &TcpListener, ctx: &ConnContext) {
    let started = ctx.shared.drain_started.lock().unwrap_or_else(Instant::now);
    let deadline = started + ctx.drain_deadline;
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        match listener.accept() {
            Ok((stream, _)) => reject_with_unavailable(stream, ctx),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= deadline || ctx.shared.open.load(Ordering::SeqCst) == 0 {
                    return;
                }
                std::thread::sleep(POLL_TICK);
            }
            Err(_) => return,
        }
    }
}

/// `Retry-After` advertised on shed connections: the queue turns over
/// quickly, so a polite client may come back almost immediately.
const SHED_RETRY_AFTER_SECS: u32 = 1;

/// Shed a connection that cannot be admitted: best-effort fast
/// `503 Service Unavailable` + `Retry-After`, then close.
fn shed(mut stream: TcpStream, ctx: &ConnContext, retry_after_secs: u32) {
    let resp = Response::error(Status::SERVICE_UNAVAILABLE, "server overloaded")
        .header("Retry-After", retry_after_secs.to_string())
        .header("Connection", "close");
    let _ = stream.set_write_timeout(Some(ctx.write_timeout));
    let _ = stream.write_all(&encode_response(&resp));
}

/// Drain a connection that lost the shutdown race: best-effort
/// `503 Service Unavailable` with `Connection: close`, then drop.
fn reject_with_unavailable(mut stream: TcpStream, ctx: &ConnContext) {
    if let Some(m) = &ctx.metrics {
        m.shutdown_rejects.inc();
    }
    let resp = Response::error(Status::SERVICE_UNAVAILABLE, "server shutting down")
        .header("Retry-After", SHED_RETRY_AFTER_SECS.to_string())
        .header("Connection", "close");
    let _ = stream.set_write_timeout(Some(ctx.write_timeout));
    let _ = stream.write_all(&encode_response(&resp));
}

/// Serve keep-alive requests on one connection until close.
///
/// Reads poll on [`POLL_TICK`] so the worker observes stall deadlines
/// and drain requests promptly instead of blocking in `read(2)`.
fn serve_connection(mut stream: TcpStream, ctx: &ConnContext) -> Result<(), HttpError> {
    stream.set_read_timeout(Some(POLL_TICK))?;
    stream.set_write_timeout(Some(ctx.write_timeout))?;
    stream.set_nodelay(true)?;
    let peer_ip = stream.peer_addr().map(|a| a.ip()).unwrap_or(IpAddr::V4(Ipv4Addr::UNSPECIFIED));
    let _active = ctx.metrics.as_ref().map(|m| {
        m.connections.inc();
        ActiveGuard::new(Arc::clone(&m.active_connections))
    });
    let mut buf = BytesMut::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    // Last time any byte arrived (stall detection) and when the
    // currently-buffered partial request started (trickle detection).
    let mut last_progress = Instant::now();
    let mut request_started: Option<Instant> = None;
    loop {
        // Decode as many pipelined requests as the buffer holds.
        loop {
            let buffered = buf.len();
            match decode_request(&mut buf) {
                Ok(Decoded::Complete(req)) => {
                    request_started = if buf.is_empty() { None } else { Some(Instant::now()) };
                    let req_bytes = (buffered - buf.len()) as u64;
                    let started = Instant::now();
                    let close = req.headers.connection_close();
                    // Edge rate limit: over-limit requests are answered
                    // before the handler ever sees them.
                    if let Some(limiter) = &ctx.limiter {
                        if let Err(retry_after) = limiter.allow(peer_ip) {
                            let resp = Response::error(Status::TOO_MANY_REQUESTS, "rate limited")
                                .header("Retry-After", retry_after.to_string())
                                .header(crate::resilient::H_EDGE_LIMITED, "1");
                            // The refusal never reaches a handler, so
                            // the edge writes the trace span itself.
                            if let Some(tracer) = ctx.tracer.as_ref().filter(|t| t.is_enabled()) {
                                if let Some(tc) =
                                    req.headers.get(H_TRACE_ID).and_then(TraceCtx::parse)
                                {
                                    tracer.record(SpanRecord {
                                        trace_id: tc.trace_id,
                                        span_id: tc.span(SLOT_EDGE),
                                        parent_id: tc.root_span(),
                                        lane: tc.lane,
                                        ordinal: tc.ordinal,
                                        name: "edge-limit".to_string(),
                                        begin_ms: 0,
                                        end_ms: 0,
                                        status: 429,
                                        outcome: "refused".to_string(),
                                        provenance: "edge".to_string(),
                                        captcha_ms: 0,
                                    });
                                }
                            }
                            let wire = encode_response(&resp);
                            stream.write_all(&wire)?;
                            let latency_us = started.elapsed().as_micros() as u64;
                            if let Some(m) = &ctx.metrics {
                                m.rate_limited.inc();
                                m.observe(
                                    resp.status.code(),
                                    latency_us,
                                    req_bytes,
                                    wire.len() as u64,
                                );
                            }
                            if let Some(log) = &ctx.access_log {
                                log(&AccessRecord {
                                    method: req.method,
                                    target: &req.target,
                                    status: resp.status.code(),
                                    latency_us,
                                    request_bytes: req_bytes,
                                    response_bytes: wire.len() as u64,
                                });
                            }
                            if close {
                                return Ok(());
                            }
                            continue;
                        }
                    }
                    let head_only = req.method == Method::Head;
                    let mut resp = if head_only {
                        // RFC 9110: HEAD is GET without the body; the
                        // Content-Length still describes the GET body.
                        let mut get = req.clone();
                        get.method = Method::Get;
                        ctx.handler.handle(&get)
                    } else {
                        ctx.handler.handle(&req)
                    };
                    let draining = ctx.shared.draining.load(Ordering::SeqCst);
                    if draining {
                        // Finish this request, then let the connection go.
                        resp = resp.header("Connection", "close");
                    }
                    let resp_close = resp.headers.connection_close();
                    let wire = if head_only {
                        crate::wire::encode_response_head(&resp)
                    } else {
                        encode_response(&resp)
                    };
                    stream.write_all(&wire)?;
                    let latency_us = started.elapsed().as_micros() as u64;
                    if let Some(m) = &ctx.metrics {
                        m.observe(resp.status.code(), latency_us, req_bytes, wire.len() as u64);
                    }
                    if let Some(log) = &ctx.access_log {
                        log(&AccessRecord {
                            method: req.method,
                            target: &req.target,
                            status: resp.status.code(),
                            latency_us,
                            request_bytes: req_bytes,
                            response_bytes: wire.len() as u64,
                        });
                    }
                    if close || resp_close {
                        if draining {
                            if let Some(m) = &ctx.metrics {
                                m.drained.inc();
                            }
                        }
                        return Ok(());
                    }
                }
                Ok(Decoded::Incomplete) => break,
                Err(e) => {
                    // Tell the peer off and drop the connection.
                    if let Some(m) = &ctx.metrics {
                        m.decode_errors.inc();
                    }
                    let resp = Response::error(Status::BAD_REQUEST, "bad request");
                    let _ = stream.write_all(&encode_response(&resp));
                    return Err(e);
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => {
                if buf.is_empty() {
                    request_started = Some(Instant::now());
                }
                last_progress = Instant::now();
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                let now = Instant::now();
                if ctx.shared.draining.load(Ordering::SeqCst) {
                    let started = ctx.shared.drain_started.lock().unwrap_or(now);
                    if buf.is_empty() || now >= started + ctx.drain_deadline {
                        // Nothing in flight (or past the deadline):
                        // the drain lets this connection go.
                        if let Some(m) = &ctx.metrics {
                            m.drained.inc();
                        }
                        return Ok(());
                    }
                }
                if buf.is_empty() {
                    if now.duration_since(last_progress) >= ctx.idle_timeout {
                        // Idle keep-alive connection: reap quietly.
                        if let Some(m) = &ctx.metrics {
                            m.idle_reaped.inc();
                        }
                        return Ok(());
                    }
                } else {
                    let stalled = now.duration_since(last_progress) >= ctx.read_timeout;
                    let overdue = request_started
                        .is_some_and(|t| now.duration_since(t) >= ctx.request_deadline);
                    if stalled || overdue {
                        // Slowloris: partial request either stalled
                        // outright or is trickling past the deadline.
                        if let Some(m) = &ctx.metrics {
                            m.slow_closed.inc();
                        }
                        let resp = Response::error(Status::REQUEST_TIMEOUT, "request timeout")
                            .header("Connection", "close");
                        let _ = stream.write_all(&encode_response(&resp));
                        return Ok(());
                    }
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// RAII increment/decrement of the active-connection gauge.
struct ActiveGuard(Arc<Gauge>);

impl ActiveGuard {
    fn new(g: Arc<Gauge>) -> ActiveGuard {
        g.inc();
        ActiveGuard(g)
    }
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.dec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Request;
    use crate::router::Router;
    use crate::wire::{decode_response, encode_request};

    fn test_router() -> Arc<Router> {
        let mut router = Router::new();
        router.get("/ping", |_, _| Response::text("pong"));
        router.get("/echo/:word", |_, p| Response::text(p.get("word").unwrap().to_string()));
        Arc::new(router)
    }

    fn test_server() -> Server {
        Server::start(test_router()).unwrap()
    }

    fn raw_round_trip(addr: SocketAddr, reqs: &[Request]) -> Vec<Response> {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut out = Vec::new();
        for req in reqs {
            stream.write_all(&encode_request(req)).unwrap();
        }
        let mut buf = BytesMut::new();
        let mut chunk = [0u8; 1024];
        while out.len() < reqs.len() {
            while let Decoded::Complete(r) = decode_response(&mut buf).unwrap() {
                out.push(r);
                if out.len() == reqs.len() {
                    return out;
                }
            }
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed early");
            buf.extend_from_slice(&chunk[..n]);
        }
        out
    }

    #[test]
    fn serves_over_real_tcp() {
        let server = test_server();
        let resps = raw_round_trip(server.addr(), &[Request::get("/ping")]);
        assert_eq!(resps[0].body_string(), "pong");
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let server = test_server();
        let resps = raw_round_trip(
            server.addr(),
            &[Request::get("/ping"), Request::get("/echo/two"), Request::get("/ping")],
        );
        assert_eq!(resps.len(), 3);
        assert_eq!(resps[1].body_string(), "two");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = test_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..6)
            .map(|i| {
                std::thread::spawn(move || {
                    let word = format!("w{i}");
                    let resps = raw_round_trip(addr, &[Request::get(format!("/echo/{word}"))]);
                    assert_eq!(resps[0].body_string(), word);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn head_returns_headers_with_get_content_length_and_no_body() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut req = Request::get("/ping");
        req.method = Method::Head;
        // Close so EOF delimits the (bodyless) response.
        req.headers.set("Connection", "close");
        stream.write_all(&encode_request(&req)).unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 200"), "got: {text}");
        // Content-Length matches the GET body ("pong" = 4)...
        assert!(text.contains("Content-Length: 4"), "got: {text}");
        // ...but the body itself is absent.
        assert!(text.ends_with("\r\n\r\n"), "body bytes were sent: {text:?}");
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let server = test_server();
        let addr = server.addr();
        server.shutdown();
        // Subsequent connections must fail or be refused quickly.
        let ok = TcpStream::connect(addr)
            .map(|mut s| {
                let _ = s.write_all(&encode_request(&Request::get("/ping")));
                let mut buf = [0u8; 16];
                matches!(s.read(&mut buf), Ok(0) | Err(_))
            })
            .unwrap_or(true);
        assert!(ok, "server still serving after shutdown");
    }

    #[test]
    fn transport_metrics_account_for_requests() {
        let reg = Registry::shared();
        let config = ServerConfig {
            metrics: Some(Arc::clone(&reg)),
            thread_name_prefix: "metrics-test".to_string(),
            ..ServerConfig::default()
        };
        let server = Server::start_with(test_router(), config).unwrap();
        raw_round_trip(server.addr(), &[Request::get("/ping"), Request::get("/nope")]);
        server.shutdown();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("http_server_requests_total"), 2);
        assert_eq!(snap.counter("http_server_status_total{class=\"2xx\"}"), 1);
        assert_eq!(snap.counter("http_server_status_total{class=\"4xx\"}"), 1);
        assert_eq!(snap.counter("http_server_connections_total"), 1);
        assert!(snap.counter("http_server_response_bytes_total") > 0);
        assert!(snap.counter("http_server_request_bytes_total") > 0);
        let lat = snap.histogram("http_server_latency_us").unwrap();
        assert_eq!(lat.count, 2);
        // All connections done: both gauges are back to zero.
        assert_eq!(snap.gauge("http_server_active_connections"), 0);
        assert_eq!(snap.gauge("http_server_accept_queue"), 0);
    }

    #[test]
    fn access_log_hook_sees_each_request() {
        let lines: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&lines);
        let config = ServerConfig {
            access_log: Some(Arc::new(move |rec: &AccessRecord<'_>| {
                sink.lock().push(format!("{} {} {}", rec.method, rec.target, rec.status));
            })),
            ..ServerConfig::default()
        };
        let server = Server::start_with(test_router(), config).unwrap();
        raw_round_trip(server.addr(), &[Request::get("/echo/hi")]);
        server.shutdown();
        let lines = lines.lock();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0], "GET /echo/hi 200");
    }

    #[test]
    fn edge_rate_limit_answers_429_with_retry_after() {
        let reg = Registry::shared();
        let config = ServerConfig {
            rate_limit: Some(RateLimit { burst: 3, per_sec: 0.5 }),
            metrics: Some(Arc::clone(&reg)),
            thread_name_prefix: "ratelimit-test".to_string(),
            ..ServerConfig::default()
        };
        let server = Server::start_with(test_router(), config).unwrap();
        let reqs = vec![Request::get("/ping"); 5];
        let resps = raw_round_trip(server.addr(), &reqs);
        server.shutdown();
        let ok = resps.iter().filter(|r| r.status == Status::OK).count();
        let limited: Vec<_> =
            resps.iter().filter(|r| r.status == Status::TOO_MANY_REQUESTS).collect();
        assert_eq!(ok, 3, "burst of 3 should pass");
        assert_eq!(limited.len(), 2);
        for r in &limited {
            let ra: u32 = r.headers.get("Retry-After").expect("Retry-After").parse().unwrap();
            assert!(ra >= 1);
        }
        assert_eq!(reg.snapshot().counter("http_server_rate_limited_total"), 2);
    }

    #[test]
    fn slowloris_partial_request_gets_408() {
        let reg = Registry::shared();
        let config = ServerConfig {
            read_timeout: Duration::from_millis(80),
            metrics: Some(Arc::clone(&reg)),
            thread_name_prefix: "slowloris-test".to_string(),
            ..ServerConfig::default()
        };
        let server = Server::start_with(test_router(), config).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // Half a request line, then stall.
        stream.write_all(b"GET /pi").unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 408"), "got: {text}");
        server.shutdown();
        assert_eq!(reg.snapshot().counter("http_server_slow_client_closes_total"), 1);
    }

    #[test]
    fn idle_keep_alive_connection_is_reaped() {
        let reg = Registry::shared();
        let config = ServerConfig {
            idle_timeout: Duration::from_millis(80),
            metrics: Some(Arc::clone(&reg)),
            thread_name_prefix: "idle-test".to_string(),
            ..ServerConfig::default()
        };
        let server = Server::start_with(test_router(), config).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(&encode_request(&Request::get("/ping"))).unwrap();
        // Read the response, then go idle; the server closes (EOF).
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        assert!(String::from_utf8_lossy(&raw).starts_with("HTTP/1.1 200"));
        server.shutdown();
        assert_eq!(reg.snapshot().counter("http_server_idle_reaped_total"), 1);
    }
}
