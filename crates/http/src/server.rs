//! A blocking HTTP/1.1 server over `std::net` with a worker thread pool.
//!
//! Each accepted connection is handed to a pool worker, which serves
//! keep-alive requests on it until the peer closes, an error occurs, or
//! `Connection: close` is exchanged. The design follows the synchronous
//! from-scratch style (cf. smoltcp) rather than pulling in an async
//! runtime: loopback-scale load with a handful of crawler connections
//! needs nothing more.
//!
//! ## Telemetry
//!
//! When [`ServerConfig::metrics`] carries a registry, the transport
//! layer accounts for itself under `http_*` metrics: request and
//! status-class counters, request/response byte counters, a request
//! latency histogram, gauges for in-flight connections and the accept
//! queue, and counters for accept errors, decode errors and
//! shutdown-time rejects. All per-request recording is pre-resolved
//! atomic handles — no locks on the hot path. Route-pattern-level
//! accounting (e.g. `/profile/:uid`) lives a layer up, in
//! `hsp-platform`, which sees the routing decision; the server only
//! knows raw paths and deliberately does not use them as label values
//! (unbounded cardinality).

use crate::error::HttpError;
use crate::message::Response;
use crate::router::Handler;
use crate::types::{Method, Status};
use crate::wire::{decode_request, encode_response, Decoded};
use bytes::BytesMut;
use crossbeam_channel::{bounded, Sender};
use hsp_obs::{Counter, Gauge, Histogram, Registry};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One served request, as seen by the [`ServerConfig::access_log`] hook.
#[derive(Clone, Copy, Debug)]
pub struct AccessRecord<'a> {
    pub method: Method,
    /// Raw request target (path + query), before routing.
    pub target: &'a str,
    pub status: u16,
    pub latency_us: u64,
    pub request_bytes: u64,
    pub response_bytes: u64,
}

/// Access-log callback; invoked after each response is written.
pub type AccessLogFn = Arc<dyn Fn(&AccessRecord<'_>) + Send + Sync>;

/// Server configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Per-read socket timeout; keeps dead connections from pinning
    /// workers forever.
    pub read_timeout: Duration,
    /// Capacity of the accepted-connection queue between the accept
    /// loop and the worker pool. Acceptance blocks (backpressure) once
    /// this many connections await a free worker.
    pub queue_depth: usize,
    /// Prefix for server thread names (`{prefix}-accept`,
    /// `{prefix}-worker3`), visible in debuggers and `/proc`.
    pub thread_name_prefix: String,
    /// Metrics registry; `None` disables transport telemetry.
    pub metrics: Option<Arc<Registry>>,
    /// Per-request access-log hook.
    pub access_log: Option<AccessLogFn>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            read_timeout: Duration::from_secs(5),
            queue_depth: 16,
            thread_name_prefix: "hsp-http".to_string(),
            metrics: None,
            access_log: None,
        }
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("workers", &self.workers)
            .field("read_timeout", &self.read_timeout)
            .field("queue_depth", &self.queue_depth)
            .field("thread_name_prefix", &self.thread_name_prefix)
            .field("metrics", &self.metrics.is_some())
            .field("access_log", &self.access_log.is_some())
            .finish()
    }
}

/// Pre-resolved transport metric handles (hot path = atomics only).
struct ServerMetrics {
    requests: Arc<Counter>,
    class_2xx: Arc<Counter>,
    class_3xx: Arc<Counter>,
    class_4xx: Arc<Counter>,
    class_5xx: Arc<Counter>,
    latency_us: Arc<Histogram>,
    request_bytes: Arc<Counter>,
    response_bytes: Arc<Counter>,
    connections: Arc<Counter>,
    active_connections: Arc<Gauge>,
    accept_queue: Arc<Gauge>,
    accept_errors: Arc<Counter>,
    decode_errors: Arc<Counter>,
    shutdown_rejects: Arc<Counter>,
}

impl ServerMetrics {
    fn register(reg: &Registry) -> ServerMetrics {
        let class = |c: &str| reg.counter_with("http_server_status_total", &[("class", c)]);
        ServerMetrics {
            requests: reg.counter("http_server_requests_total"),
            class_2xx: class("2xx"),
            class_3xx: class("3xx"),
            class_4xx: class("4xx"),
            class_5xx: class("5xx"),
            latency_us: reg.histogram("http_server_latency_us"),
            request_bytes: reg.counter("http_server_request_bytes_total"),
            response_bytes: reg.counter("http_server_response_bytes_total"),
            connections: reg.counter("http_server_connections_total"),
            active_connections: reg.gauge("http_server_active_connections"),
            accept_queue: reg.gauge("http_server_accept_queue"),
            accept_errors: reg.counter("http_server_accept_errors_total"),
            decode_errors: reg.counter("http_server_decode_errors_total"),
            shutdown_rejects: reg.counter("http_server_shutdown_rejects_total"),
        }
    }

    fn observe(&self, status: u16, latency_us: u64, req_bytes: u64, resp_bytes: u64) {
        self.requests.inc();
        match status {
            200..=299 => self.class_2xx.inc(),
            300..=399 => self.class_3xx.inc(),
            400..=499 => self.class_4xx.inc(),
            _ => self.class_5xx.inc(),
        }
        self.latency_us.record(latency_us);
        self.request_bytes.add(req_bytes);
        self.response_bytes.add(resp_bytes);
    }
}

/// Everything a worker needs to serve connections.
struct ConnContext {
    handler: Arc<dyn Handler>,
    read_timeout: Duration,
    metrics: Option<ServerMetrics>,
    access_log: Option<AccessLogFn>,
}

/// A running HTTP server. Shuts down (and joins its threads) on drop.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind to `127.0.0.1:0` (ephemeral port) and start serving `handler`.
    pub fn start(handler: Arc<dyn Handler>) -> std::io::Result<Server> {
        Self::start_with(handler, ServerConfig::default())
    }

    /// Bind with explicit configuration.
    pub fn start_with(handler: Arc<dyn Handler>, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = bounded::<TcpStream>(config.queue_depth.max(1));

        let ctx = Arc::new(ConnContext {
            handler,
            read_timeout: config.read_timeout,
            metrics: config.metrics.as_deref().map(ServerMetrics::register),
            access_log: config.access_log.clone(),
        });

        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let rx = rx.clone();
            let ctx = Arc::clone(&ctx);
            let builder = std::thread::Builder::new()
                .name(format!("{}-worker{i}", config.thread_name_prefix));
            workers.push(builder.spawn(move || {
                while let Ok(stream) = rx.recv() {
                    if let Some(m) = &ctx.metrics {
                        m.accept_queue.dec();
                    }
                    let _ = serve_connection(stream, &ctx);
                }
            })?);
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_ctx = Arc::clone(&ctx);
        let accept_thread = std::thread::Builder::new()
            .name(format!("{}-accept", config.thread_name_prefix))
            .spawn(move || {
                accept_loop(listener, tx, accept_shutdown, accept_ctx);
            })?;

        Ok(Server { addr, shutdown, accept_thread: Some(accept_thread), workers })
    }

    /// The bound address (ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Base URL, e.g. `http://127.0.0.1:43817`.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Request shutdown and join all threads.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.do_shutdown();
        }
    }
}

/// Longest pause between accept retries when `accept()` keeps failing.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(500);

fn accept_loop(
    listener: TcpListener,
    tx: Sender<TcpStream>,
    shutdown: Arc<AtomicBool>,
    ctx: Arc<ConnContext>,
) {
    let mut backoff = Duration::from_millis(1);
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                backoff = Duration::from_millis(1);
                if shutdown.load(Ordering::SeqCst) {
                    // Lost the race: this connection was accepted after
                    // shutdown began. Tell the peer explicitly instead
                    // of dropping it with a reset.
                    reject_with_unavailable(stream, &ctx);
                    return; // tx drops, workers drain and exit
                }
                if let Some(m) = &ctx.metrics {
                    m.accept_queue.inc();
                }
                if tx.send(stream).is_err() {
                    return;
                }
            }
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // A persistent accept failure (EMFILE, ENFILE, ...)
                // must not busy-spin the accept thread: count it and
                // back off exponentially until accepts succeed again.
                if let Some(m) = &ctx.metrics {
                    m.accept_errors.inc();
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
        }
    }
}

/// Drain a connection that lost the shutdown race: best-effort
/// `503 Service Unavailable` with `Connection: close`, then drop.
fn reject_with_unavailable(mut stream: TcpStream, ctx: &ConnContext) {
    if let Some(m) = &ctx.metrics {
        m.shutdown_rejects.inc();
    }
    let resp = Response::error(Status::SERVICE_UNAVAILABLE, "server shutting down")
        .header("Connection", "close");
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = stream.write_all(&encode_response(&resp));
}

/// Serve keep-alive requests on one connection until close.
fn serve_connection(mut stream: TcpStream, ctx: &ConnContext) -> Result<(), HttpError> {
    stream.set_read_timeout(Some(ctx.read_timeout))?;
    stream.set_nodelay(true)?;
    let _active = ctx.metrics.as_ref().map(|m| {
        m.connections.inc();
        ActiveGuard::new(Arc::clone(&m.active_connections))
    });
    let mut buf = BytesMut::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    loop {
        // Decode as many pipelined requests as the buffer holds.
        loop {
            let buffered = buf.len();
            match decode_request(&mut buf) {
                Ok(Decoded::Complete(req)) => {
                    let req_bytes = (buffered - buf.len()) as u64;
                    let started = Instant::now();
                    let close = req.headers.connection_close();
                    let head_only = req.method == Method::Head;
                    let resp = if head_only {
                        // RFC 9110: HEAD is GET without the body; the
                        // Content-Length still describes the GET body.
                        let mut get = req.clone();
                        get.method = Method::Get;
                        ctx.handler.handle(&get)
                    } else {
                        ctx.handler.handle(&req)
                    };
                    let resp_close = resp.headers.connection_close();
                    let wire = if head_only {
                        crate::wire::encode_response_head(&resp)
                    } else {
                        encode_response(&resp)
                    };
                    stream.write_all(&wire)?;
                    let latency_us = started.elapsed().as_micros() as u64;
                    if let Some(m) = &ctx.metrics {
                        m.observe(resp.status.code(), latency_us, req_bytes, wire.len() as u64);
                    }
                    if let Some(log) = &ctx.access_log {
                        log(&AccessRecord {
                            method: req.method,
                            target: &req.target,
                            status: resp.status.code(),
                            latency_us,
                            request_bytes: req_bytes,
                            response_bytes: wire.len() as u64,
                        });
                    }
                    if close || resp_close {
                        return Ok(());
                    }
                }
                Ok(Decoded::Incomplete) => break,
                Err(e) => {
                    // Tell the peer off and drop the connection.
                    if let Some(m) = &ctx.metrics {
                        m.decode_errors.inc();
                    }
                    let resp = Response::error(Status::BAD_REQUEST, "bad request");
                    let _ = stream.write_all(&encode_response(&resp));
                    return Err(e);
                }
            }
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(()); // peer closed
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// RAII increment/decrement of the active-connection gauge.
struct ActiveGuard(Arc<Gauge>);

impl ActiveGuard {
    fn new(g: Arc<Gauge>) -> ActiveGuard {
        g.inc();
        ActiveGuard(g)
    }
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.dec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Request;
    use crate::router::Router;
    use crate::wire::{decode_response, encode_request};

    fn test_router() -> Arc<Router> {
        let mut router = Router::new();
        router.get("/ping", |_, _| Response::text("pong"));
        router.get("/echo/:word", |_, p| Response::text(p.get("word").unwrap().to_string()));
        Arc::new(router)
    }

    fn test_server() -> Server {
        Server::start(test_router()).unwrap()
    }

    fn raw_round_trip(addr: SocketAddr, reqs: &[Request]) -> Vec<Response> {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut out = Vec::new();
        for req in reqs {
            stream.write_all(&encode_request(req)).unwrap();
        }
        let mut buf = BytesMut::new();
        let mut chunk = [0u8; 1024];
        while out.len() < reqs.len() {
            while let Decoded::Complete(r) = decode_response(&mut buf).unwrap() {
                out.push(r);
                if out.len() == reqs.len() {
                    return out;
                }
            }
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed early");
            buf.extend_from_slice(&chunk[..n]);
        }
        out
    }

    #[test]
    fn serves_over_real_tcp() {
        let server = test_server();
        let resps = raw_round_trip(server.addr(), &[Request::get("/ping")]);
        assert_eq!(resps[0].body_string(), "pong");
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let server = test_server();
        let resps = raw_round_trip(
            server.addr(),
            &[Request::get("/ping"), Request::get("/echo/two"), Request::get("/ping")],
        );
        assert_eq!(resps.len(), 3);
        assert_eq!(resps[1].body_string(), "two");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = test_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..6)
            .map(|i| {
                std::thread::spawn(move || {
                    let word = format!("w{i}");
                    let resps = raw_round_trip(addr, &[Request::get(format!("/echo/{word}"))]);
                    assert_eq!(resps[0].body_string(), word);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn head_returns_headers_with_get_content_length_and_no_body() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut req = Request::get("/ping");
        req.method = Method::Head;
        // Close so EOF delimits the (bodyless) response.
        req.headers.set("Connection", "close");
        stream.write_all(&encode_request(&req)).unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 200"), "got: {text}");
        // Content-Length matches the GET body ("pong" = 4)...
        assert!(text.contains("Content-Length: 4"), "got: {text}");
        // ...but the body itself is absent.
        assert!(text.ends_with("\r\n\r\n"), "body bytes were sent: {text:?}");
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let server = test_server();
        let addr = server.addr();
        server.shutdown();
        // Subsequent connections must fail or be refused quickly.
        let ok = TcpStream::connect(addr)
            .map(|mut s| {
                let _ = s.write_all(&encode_request(&Request::get("/ping")));
                let mut buf = [0u8; 16];
                matches!(s.read(&mut buf), Ok(0) | Err(_))
            })
            .unwrap_or(true);
        assert!(ok, "server still serving after shutdown");
    }

    #[test]
    fn transport_metrics_account_for_requests() {
        let reg = Registry::shared();
        let config = ServerConfig {
            metrics: Some(Arc::clone(&reg)),
            thread_name_prefix: "metrics-test".to_string(),
            ..ServerConfig::default()
        };
        let server = Server::start_with(test_router(), config).unwrap();
        raw_round_trip(server.addr(), &[Request::get("/ping"), Request::get("/nope")]);
        server.shutdown();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("http_server_requests_total"), 2);
        assert_eq!(snap.counter("http_server_status_total{class=\"2xx\"}"), 1);
        assert_eq!(snap.counter("http_server_status_total{class=\"4xx\"}"), 1);
        assert_eq!(snap.counter("http_server_connections_total"), 1);
        assert!(snap.counter("http_server_response_bytes_total") > 0);
        assert!(snap.counter("http_server_request_bytes_total") > 0);
        let lat = snap.histogram("http_server_latency_us").unwrap();
        assert_eq!(lat.count, 2);
        // All connections done: both gauges are back to zero.
        assert_eq!(snap.gauge("http_server_active_connections"), 0);
        assert_eq!(snap.gauge("http_server_accept_queue"), 0);
    }

    #[test]
    fn access_log_hook_sees_each_request() {
        use parking_lot::Mutex;
        let lines: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&lines);
        let config = ServerConfig {
            access_log: Some(Arc::new(move |rec: &AccessRecord<'_>| {
                sink.lock().push(format!("{} {} {}", rec.method, rec.target, rec.status));
            })),
            ..ServerConfig::default()
        };
        let server = Server::start_with(test_router(), config).unwrap();
        raw_round_trip(server.addr(), &[Request::get("/echo/hi")]);
        server.shutdown();
        let lines = lines.lock();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0], "GET /echo/hi 200");
    }
}
