//! A blocking HTTP/1.1 server over `std::net` with a worker thread pool.
//!
//! Each accepted connection is handed to a pool worker, which serves
//! keep-alive requests on it until the peer closes, an error occurs, or
//! `Connection: close` is exchanged. The design follows the synchronous
//! from-scratch style (cf. smoltcp) rather than pulling in an async
//! runtime: loopback-scale load with a handful of crawler connections
//! needs nothing more.

use crate::error::HttpError;
use crate::message::Response;
use crate::router::Handler;
use crate::types::Status;
use crate::wire::{decode_request, encode_response, Decoded};
use bytes::BytesMut;
use crossbeam_channel::{bounded, Sender};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Per-read socket timeout; keeps dead connections from pinning
    /// workers forever.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { workers: 8, read_timeout: Duration::from_secs(5) }
    }
}

/// A running HTTP server. Shuts down (and joins its threads) on drop.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind to `127.0.0.1:0` (ephemeral port) and start serving `handler`.
    pub fn start(handler: Arc<dyn Handler>) -> std::io::Result<Server> {
        Self::start_with(handler, ServerConfig::default())
    }

    /// Bind with explicit configuration.
    pub fn start_with(handler: Arc<dyn Handler>, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = bounded::<TcpStream>(config.workers * 2);

        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let rx = rx.clone();
            let handler = Arc::clone(&handler);
            let timeout = config.read_timeout;
            workers.push(std::thread::spawn(move || {
                while let Ok(stream) = rx.recv() {
                    let _ = serve_connection(stream, handler.as_ref(), timeout);
                }
            }));
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(listener, tx, accept_shutdown);
        });

        Ok(Server { addr, shutdown, accept_thread: Some(accept_thread), workers })
    }

    /// The bound address (ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Base URL, e.g. `http://127.0.0.1:43817`.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Request shutdown and join all threads.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.do_shutdown();
        }
    }
}

fn accept_loop(listener: TcpListener, tx: Sender<TcpStream>, shutdown: Arc<AtomicBool>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shutdown.load(Ordering::SeqCst) {
                    return; // tx drops, workers drain and exit
                }
                if tx.send(stream).is_err() {
                    return;
                }
            }
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Serve keep-alive requests on one connection until close.
fn serve_connection(
    mut stream: TcpStream,
    handler: &dyn Handler,
    read_timeout: Duration,
) -> Result<(), HttpError> {
    stream.set_read_timeout(Some(read_timeout))?;
    stream.set_nodelay(true)?;
    let mut buf = BytesMut::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    loop {
        // Decode as many pipelined requests as the buffer holds.
        loop {
            match decode_request(&mut buf) {
                Ok(Decoded::Complete(req)) => {
                    let close = req.headers.connection_close();
                    let head_only = req.method == crate::types::Method::Head;
                    let resp = if head_only {
                        // RFC 9110: HEAD is GET without the body; the
                        // Content-Length still describes the GET body.
                        let mut get = req.clone();
                        get.method = crate::types::Method::Get;
                        handler.handle(&get)
                    } else {
                        handler.handle(&req)
                    };
                    let resp_close = resp.headers.connection_close();
                    let wire = if head_only {
                        crate::wire::encode_response_head(&resp)
                    } else {
                        encode_response(&resp)
                    };
                    stream.write_all(&wire)?;
                    if close || resp_close {
                        return Ok(());
                    }
                }
                Ok(Decoded::Incomplete) => break,
                Err(e) => {
                    // Tell the peer off and drop the connection.
                    let resp = Response::error(Status::BAD_REQUEST, "bad request");
                    let _ = stream.write_all(&encode_response(&resp));
                    return Err(e);
                }
            }
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(()); // peer closed
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Request;
    use crate::router::Router;
    use crate::wire::{decode_response, encode_request};

    fn test_server() -> Server {
        let mut router = Router::new();
        router.get("/ping", |_, _| Response::text("pong"));
        router.get("/echo/:word", |_, p| {
            Response::text(p.get("word").unwrap().to_string())
        });
        Server::start(Arc::new(router)).unwrap()
    }

    fn raw_round_trip(addr: SocketAddr, reqs: &[Request]) -> Vec<Response> {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut out = Vec::new();
        for req in reqs {
            stream.write_all(&encode_request(req)).unwrap();
        }
        let mut buf = BytesMut::new();
        let mut chunk = [0u8; 1024];
        while out.len() < reqs.len() {
            loop {
                match decode_response(&mut buf).unwrap() {
                    Decoded::Complete(r) => {
                        out.push(r);
                        if out.len() == reqs.len() {
                            return out;
                        }
                    }
                    Decoded::Incomplete => break,
                }
            }
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed early");
            buf.extend_from_slice(&chunk[..n]);
        }
        out
    }

    #[test]
    fn serves_over_real_tcp() {
        let server = test_server();
        let resps = raw_round_trip(server.addr(), &[Request::get("/ping")]);
        assert_eq!(resps[0].body_string(), "pong");
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let server = test_server();
        let resps = raw_round_trip(
            server.addr(),
            &[Request::get("/ping"), Request::get("/echo/two"), Request::get("/ping")],
        );
        assert_eq!(resps.len(), 3);
        assert_eq!(resps[1].body_string(), "two");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = test_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..6)
            .map(|i| {
                std::thread::spawn(move || {
                    let word = format!("w{i}");
                    let resps =
                        raw_round_trip(addr, &[Request::get(format!("/echo/{word}"))]);
                    assert_eq!(resps[0].body_string(), word);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn head_returns_headers_with_get_content_length_and_no_body() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut req = Request::get("/ping");
        req.method = crate::types::Method::Head;
        // Close so EOF delimits the (bodyless) response.
        req.headers.set("Connection", "close");
        stream.write_all(&encode_request(&req)).unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 200"), "got: {text}");
        // Content-Length matches the GET body ("pong" = 4)...
        assert!(text.contains("Content-Length: 4"), "got: {text}");
        // ...but the body itself is absent.
        assert!(text.ends_with("\r\n\r\n"), "body bytes were sent: {text:?}");
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let server = test_server();
        let addr = server.addr();
        server.shutdown();
        // Subsequent connections must fail or be refused quickly.
        let ok = TcpStream::connect(addr)
            .map(|mut s| {
                let _ = s.write_all(&encode_request(&Request::get("/ping")));
                let mut buf = [0u8; 16];
                matches!(s.read(&mut buf), Ok(0) | Err(_))
            })
            .unwrap_or(true);
        assert!(ok, "server still serving after shutdown");
    }
}
