//! A minimal cookie jar: enough for the platform's session cookie.

use crate::message::{Request, Response};

/// Stores `name=value` cookies and applies them to outgoing requests.
#[derive(Clone, Debug, Default)]
pub struct CookieJar {
    cookies: Vec<(String, String)>,
}

impl CookieJar {
    pub fn new() -> Self {
        CookieJar::default()
    }

    /// Record cookies from a response's `Set-Cookie` headers.
    pub fn absorb(&mut self, resp: &Response) {
        for raw in resp.headers.get_all("set-cookie") {
            // "name=value; Path=/; ..." — we only keep name=value.
            let first = raw.split(';').next().unwrap_or("");
            if let Some((name, value)) = first.split_once('=') {
                let name = name.trim().to_string();
                let value = value.trim().to_string();
                if name.is_empty() {
                    continue;
                }
                if let Some(slot) = self.cookies.iter_mut().find(|(n, _)| *n == name) {
                    slot.1 = value;
                } else {
                    self.cookies.push((name, value));
                }
            }
        }
    }

    /// Attach a `Cookie` header to an outgoing request.
    pub fn apply(&self, req: &mut Request) {
        if self.cookies.is_empty() {
            return;
        }
        let header =
            self.cookies.iter().map(|(n, v)| format!("{n}={v}")).collect::<Vec<_>>().join("; ");
        req.headers.set("Cookie", header);
    }

    pub fn get(&self, name: &str) -> Option<&str> {
        self.cookies.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// All stored cookies (for transport-state export).
    pub fn entries(&self) -> &[(String, String)] {
        &self.cookies
    }

    /// Insert or replace a cookie directly (for transport-state
    /// restore — normal traffic goes through [`CookieJar::absorb`]).
    pub fn insert(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.cookies.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.cookies.push((name, value));
        }
    }

    pub fn clear(&mut self) {
        self.cookies.clear();
    }

    pub fn is_empty(&self) -> bool {
        self.cookies.is_empty()
    }
}

/// Server-side: read a cookie value from a request's `Cookie` header.
pub fn request_cookie<'a>(req: &'a Request, name: &str) -> Option<&'a str> {
    let header = req.headers.get("cookie")?;
    header.split(';').find_map(|pair| {
        let (n, v) = pair.split_once('=')?;
        (n.trim() == name).then_some(v.trim())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jar_absorbs_and_applies() {
        let resp = Response::html("x").set_cookie("sid", "abc").set_cookie("t", "9");
        let mut jar = CookieJar::new();
        jar.absorb(&resp);
        assert_eq!(jar.get("sid"), Some("abc"));
        let mut req = Request::get("/next");
        jar.apply(&mut req);
        assert_eq!(req.headers.get("cookie"), Some("sid=abc; t=9"));
    }

    #[test]
    fn later_cookie_replaces_earlier() {
        let mut jar = CookieJar::new();
        jar.absorb(&Response::html("x").set_cookie("sid", "one"));
        jar.absorb(&Response::html("x").set_cookie("sid", "two"));
        assert_eq!(jar.get("sid"), Some("two"));
        let mut req = Request::get("/");
        jar.apply(&mut req);
        assert_eq!(req.headers.get("cookie"), Some("sid=two"));
    }

    #[test]
    fn server_side_cookie_parse() {
        let req = Request::get("/").header("Cookie", "a=1; sid=xyz ;b=2");
        assert_eq!(request_cookie(&req, "sid"), Some("xyz"));
        assert_eq!(request_cookie(&req, "a"), Some("1"));
        assert_eq!(request_cookie(&req, "nope"), None);
        assert_eq!(request_cookie(&Request::get("/"), "sid"), None);
    }

    #[test]
    fn empty_jar_adds_no_header() {
        let jar = CookieJar::new();
        let mut req = Request::get("/");
        jar.apply(&mut req);
        assert!(!req.headers.contains("cookie"));
    }
}
