//! Request and response message types.

use crate::types::{Headers, Method, Status};
use crate::uri::Target;
use bytes::Bytes;

/// An HTTP/1.1 request.
#[derive(Clone, Debug)]
pub struct Request {
    pub method: Method,
    /// Raw request-target as it appeared on the request line.
    pub target: String,
    pub headers: Headers,
    pub body: Bytes,
}

impl Request {
    /// A bodyless GET for `target`.
    pub fn get(target: impl Into<String>) -> Request {
        Request {
            method: Method::Get,
            target: target.into(),
            headers: Headers::new(),
            body: Bytes::new(),
        }
    }

    /// A POST with a form-encoded body.
    pub fn post_form(target: impl Into<String>, form: &[(&str, &str)]) -> Request {
        let pairs: Vec<(String, String)> =
            form.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        let body = crate::uri::build_query(&pairs);
        let mut req = Request {
            method: Method::Post,
            target: target.into(),
            headers: Headers::new(),
            body: Bytes::from(body),
        };
        req.headers.set("Content-Type", "application/x-www-form-urlencoded");
        req
    }

    /// Builder-style header.
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Request {
        self.headers.set(name, value);
        self
    }

    /// Parsed view of the request target.
    pub fn parsed_target(&self) -> Target {
        Target::parse(&self.target)
    }

    /// The decoded path (no query).
    pub fn path(&self) -> String {
        self.parsed_target().path().into_owned()
    }

    /// First query parameter value.
    pub fn query_param(&self, key: &str) -> Option<String> {
        self.parsed_target().query_param(key).map(str::to_string)
    }

    /// Parse a form-encoded body into pairs.
    pub fn form_params(&self) -> Vec<(String, String)> {
        match std::str::from_utf8(&self.body) {
            Ok(s) => crate::uri::parse_query(s),
            Err(_) => Vec::new(),
        }
    }

    /// First form value for `key`.
    pub fn form_param(&self, key: &str) -> Option<String> {
        self.form_params().into_iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// An HTTP/1.1 response.
#[derive(Clone, Debug)]
pub struct Response {
    pub status: Status,
    pub headers: Headers,
    pub body: Bytes,
}

impl Response {
    pub fn new(status: Status) -> Response {
        Response { status, headers: Headers::new(), body: Bytes::new() }
    }

    /// 200 with an HTML body.
    pub fn html(body: impl Into<String>) -> Response {
        let mut r = Response::new(Status::OK);
        r.headers.set("Content-Type", "text/html; charset=utf-8");
        r.body = Bytes::from(body.into());
        r
    }

    /// 200 with a plain-text body.
    pub fn text(body: impl Into<String>) -> Response {
        let mut r = Response::new(Status::OK);
        r.headers.set("Content-Type", "text/plain; charset=utf-8");
        r.body = Bytes::from(body.into());
        r
    }

    /// An error status with a short text body.
    pub fn error(status: Status, message: impl Into<String>) -> Response {
        let mut r = Response::new(status);
        r.headers.set("Content-Type", "text/plain; charset=utf-8");
        r.body = Bytes::from(message.into());
        r
    }

    /// 302 redirect.
    pub fn redirect(location: impl Into<String>) -> Response {
        let mut r = Response::new(Status::FOUND);
        r.headers.set("Location", location.into());
        r
    }

    /// Builder-style header.
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.set(name, value);
        self
    }

    /// Append a `Set-Cookie` header.
    pub fn set_cookie(mut self, name: &str, value: &str) -> Response {
        self.headers.append("Set-Cookie", format!("{name}={value}; Path=/"));
        self
    }

    /// Body interpreted as UTF-8 (lossy).
    pub fn body_string(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_builder() {
        let r = Request::get("/profile?id=u7").header("Host", "osn.local");
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path(), "/profile");
        assert_eq!(r.query_param("id").as_deref(), Some("u7"));
        assert_eq!(r.headers.get("host"), Some("osn.local"));
    }

    #[test]
    fn post_form_encodes_body() {
        let r = Request::post_form("/login", &[("user", "spy one"), ("pass", "p&q")]);
        assert_eq!(r.form_param("user").as_deref(), Some("spy one"));
        assert_eq!(r.form_param("pass").as_deref(), Some("p&q"));
        assert_eq!(r.headers.get("content-type"), Some("application/x-www-form-urlencoded"));
    }

    #[test]
    fn response_builders() {
        let r = Response::html("<p>x</p>");
        assert_eq!(r.status, Status::OK);
        assert_eq!(r.body_string(), "<p>x</p>");
        let r = Response::redirect("/home");
        assert_eq!(r.status, Status::FOUND);
        assert_eq!(r.headers.get("location"), Some("/home"));
        let r = Response::error(Status::TOO_MANY_REQUESTS, "slow down");
        assert_eq!(r.status.code(), 429);
    }

    #[test]
    fn set_cookie_appends() {
        let r = Response::html("x").set_cookie("sid", "abc").set_cookie("t", "1");
        assert_eq!(r.headers.get_all("set-cookie").count(), 2);
    }
}
