//! Core HTTP message types: methods, status codes, headers.

use std::fmt;

/// Request methods the simulator uses. (The paper's crawler only ever
/// sends GETs; POST exists for the login form.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    Get,
    Post,
    Head,
}

impl Method {
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
        }
    }

    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "HEAD" => Some(Method::Head),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Response status codes used by the platform.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Status(pub u16);

impl Status {
    pub const OK: Status = Status(200);
    pub const FOUND: Status = Status(302);
    pub const BAD_REQUEST: Status = Status(400);
    pub const UNAUTHORIZED: Status = Status(401);
    pub const FORBIDDEN: Status = Status(403);
    pub const NOT_FOUND: Status = Status(404);
    pub const METHOD_NOT_ALLOWED: Status = Status(405);
    pub const REQUEST_TIMEOUT: Status = Status(408);
    pub const TOO_MANY_REQUESTS: Status = Status(429);
    pub const INTERNAL_SERVER_ERROR: Status = Status(500);
    pub const SERVICE_UNAVAILABLE: Status = Status(503);

    pub fn code(self) -> u16 {
        self.0
    }

    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    pub fn is_redirect(self) -> bool {
        (300..400).contains(&self.0)
    }

    /// Canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            302 => "Found",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// A multimap of headers with case-insensitive names, preserving
/// insertion order (needed for multiple `Set-Cookie` lines).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    pub fn new() -> Self {
        Headers::default()
    }

    /// Append a header (does not replace existing values).
    pub fn append(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// Replace all values of `name` with a single value.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        self.entries.push((name.to_string(), value.into()));
    }

    /// First value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// All values of `name`.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.entries
            .iter()
            .filter(move |(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// `Content-Length`, parsed.
    pub fn content_length(&self) -> Option<usize> {
        self.get("content-length").and_then(|v| v.trim().parse().ok())
    }

    /// Whether `Connection: close` was requested.
    pub fn connection_close(&self) -> bool {
        self.get("connection").map(|v| v.eq_ignore_ascii_case("close")).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_round_trip() {
        for m in [Method::Get, Method::Post, Method::Head] {
            assert_eq!(Method::parse(m.as_str()), Some(m));
        }
        assert_eq!(Method::parse("PATCH"), None);
        assert_eq!(Method::parse("get"), None); // methods are case-sensitive
    }

    #[test]
    fn status_classification() {
        assert!(Status::OK.is_success());
        assert!(Status::FOUND.is_redirect());
        assert!(!Status::NOT_FOUND.is_success());
        assert_eq!(Status::TOO_MANY_REQUESTS.reason(), "Too Many Requests");
        assert_eq!(Status(599).reason(), "Unknown");
    }

    #[test]
    fn headers_are_case_insensitive() {
        let mut h = Headers::new();
        h.append("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/html"));
        assert!(h.contains("Content-type"));
        assert!(!h.contains("content-length"));
    }

    #[test]
    fn set_replaces_all_append_accumulates() {
        let mut h = Headers::new();
        h.append("Set-Cookie", "a=1");
        h.append("Set-Cookie", "b=2");
        assert_eq!(h.get_all("set-cookie").count(), 2);
        h.set("Set-Cookie", "c=3");
        let all: Vec<_> = h.get_all("set-cookie").collect();
        assert_eq!(all, vec!["c=3"]);
    }

    #[test]
    fn content_length_parsing() {
        let mut h = Headers::new();
        assert_eq!(h.content_length(), None);
        h.set("Content-Length", " 42 ");
        assert_eq!(h.content_length(), Some(42));
        h.set("Content-Length", "nope");
        assert_eq!(h.content_length(), None);
    }

    #[test]
    fn connection_close_flag() {
        let mut h = Headers::new();
        assert!(!h.connection_close());
        h.set("Connection", "Close");
        assert!(h.connection_close());
        h.set("Connection", "keep-alive");
        assert!(!h.connection_close());
    }
}
