//! Wire-format encoding and incremental decoding of HTTP/1.1 messages.
//!
//! The decoder follows the `bytes`-based framing idiom: callers feed
//! chunks into a [`bytes::BytesMut`] buffer and repeatedly ask whether a
//! complete message can be cut from the front. Limits on the header
//! block and body protect the server from unbounded buffering, and they
//! are enforced *before* the oversized part is accepted: an incomplete
//! head is rejected the moment the buffer reaches [`MAX_HEAD`], and an
//! oversized `Content-Length` is rejected as soon as the head parses —
//! the decoder never waits for (or buffers) a body it would refuse.
//! Malformed framing (non-numeric, overflowing or conflicting
//! `Content-Length`) is a typed [`HttpError`], never a panic and never
//! a silent zero-length fallback.

use crate::error::{HttpError, Result};
use crate::message::{Request, Response};
use crate::types::{Headers, Method, Status};
use bytes::{Buf, Bytes, BytesMut};

/// Maximum size of the request/status line + header block.
pub const MAX_HEAD: usize = 32 * 1024;
/// Maximum body size accepted.
pub const MAX_BODY: usize = 8 * 1024 * 1024;

/// Decimal digit count of `n` (for exact capacity precomputation).
fn dec_len(n: usize) -> usize {
    let mut n = n;
    let mut len = 1;
    while n >= 10 {
        n /= 10;
        len += 1;
    }
    len
}

/// Append `n` in decimal without going through `format!` (the encoders
/// sit on the per-request hot path; formatting machinery plus its
/// intermediate `String` showed up in profiles).
fn push_dec(out: &mut Vec<u8>, mut n: usize) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&buf[i..]);
}

/// Serialize a request to wire bytes.
pub fn encode_request(req: &Request) -> Bytes {
    let mut wrote_len = false;
    // Exact capacity: one allocation, no growth doubling mid-encode.
    let mut cap = req.method.as_str().len() + 1 + req.target.len() + 11;
    for (name, value) in req.headers.iter() {
        if name.eq_ignore_ascii_case("content-length") {
            wrote_len = true;
        }
        cap += name.len() + 2 + value.len() + 2;
    }
    let needs_len = !wrote_len && !req.body.is_empty();
    if needs_len {
        cap += 16 + dec_len(req.body.len()) + 2;
    }
    cap += 2 + req.body.len();

    let mut out = Vec::with_capacity(cap);
    out.extend_from_slice(req.method.as_str().as_bytes());
    out.push(b' ');
    out.extend_from_slice(req.target.as_bytes());
    out.extend_from_slice(b" HTTP/1.1\r\n");
    for (name, value) in req.headers.iter() {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    if needs_len {
        out.extend_from_slice(b"Content-Length: ");
        push_dec(&mut out, req.body.len());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&req.body);
    debug_assert_eq!(out.len(), cap);
    Bytes::from(out)
}

/// Shared head encoding for [`encode_response`]/[`encode_response_head`]:
/// status line, caller headers (minus any Content-Length — we own
/// framing), our Content-Length, and the blank line.
fn encode_head(resp: &Response, extra: usize) -> Vec<u8> {
    let mut cap = 9 + dec_len(resp.status.code() as usize) + 1 + resp.status.reason().len() + 2;
    for (name, value) in resp.headers.iter() {
        if name.eq_ignore_ascii_case("content-length") {
            continue;
        }
        cap += name.len() + 2 + value.len() + 2;
    }
    cap += 16 + dec_len(resp.body.len()) + 2 + 2;

    let mut out = Vec::with_capacity(cap + extra);
    out.extend_from_slice(b"HTTP/1.1 ");
    push_dec(&mut out, resp.status.code() as usize);
    out.push(b' ');
    out.extend_from_slice(resp.status.reason().as_bytes());
    out.extend_from_slice(b"\r\n");
    for (name, value) in resp.headers.iter() {
        if name.eq_ignore_ascii_case("content-length") {
            continue;
        }
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"Content-Length: ");
    push_dec(&mut out, resp.body.len());
    out.extend_from_slice(b"\r\n\r\n");
    debug_assert_eq!(out.len(), cap);
    out
}

/// Serialize a response to wire bytes. A `Content-Length` header is
/// always emitted so keep-alive framing is unambiguous.
pub fn encode_response(resp: &Response) -> Bytes {
    let mut out = encode_head(resp, resp.body.len());
    out.extend_from_slice(&resp.body);
    Bytes::from(out)
}

/// Serialize only the head of a response (for HEAD requests): identical
/// status line and headers — including the Content-Length the matching
/// GET would carry — but no body bytes.
pub fn encode_response_head(resp: &Response) -> Bytes {
    Bytes::from(encode_head(resp, 0))
}

/// Parse the body length a header block declares, with request-smuggling
/// defenses: the value must be pure ASCII digits (no sign, no
/// whitespace-padded garbage), must fit in `usize`, must not exceed
/// `max`, and duplicate `Content-Length` headers must agree.
/// `Headers::content_length()` is tolerant (`None` on anything odd);
/// framing cannot afford that — a dropped length silently misframes the
/// connection, so every oddity is a typed error here.
fn declared_body_len(headers: &Headers, max: usize, what: &'static str) -> Result<usize> {
    let mut declared: Option<usize> = None;
    for (name, value) in headers.iter() {
        if !name.eq_ignore_ascii_case("content-length") {
            continue;
        }
        let value = value.trim();
        if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
            return Err(HttpError::Malformed("non-numeric content-length"));
        }
        // > 20 digits cannot fit in u64; parse::<usize> catches the rest.
        let n: usize = value.parse().map_err(|_| HttpError::TooLarge(what))?;
        match declared {
            Some(prev) if prev != n => {
                return Err(HttpError::Malformed("conflicting content-length"))
            }
            _ => declared = Some(n),
        }
    }
    let n = declared.unwrap_or(0);
    if n > max {
        return Err(HttpError::TooLarge(what));
    }
    Ok(n)
}

/// Result of a decode attempt over a partially-filled buffer.
#[derive(Debug)]
pub enum Decoded<T> {
    /// A complete message was cut from the buffer.
    Complete(T),
    /// More bytes are needed.
    Incomplete,
}

/// Try to decode one request from the front of `buf`, consuming it on
/// success.
pub fn decode_request(buf: &mut BytesMut) -> Result<Decoded<Request>> {
    let Some(head_end) = find_head_end(buf) else {
        // No separator within the head budget: reject *now*, before
        // another byte of this head is buffered.
        if buf.len() >= MAX_HEAD {
            return Err(HttpError::TooLarge("request head"));
        }
        return Ok(Decoded::Incomplete);
    };
    if head_end > MAX_HEAD {
        return Err(HttpError::TooLarge("request head"));
    }
    let head =
        std::str::from_utf8(&buf[..head_end]).map_err(|_| HttpError::Malformed("non-utf8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().and_then(Method::parse).ok_or(HttpError::Malformed("bad method"))?;
    let target = parts.next().ok_or(HttpError::Malformed("missing target"))?.to_string();
    if target.is_empty() || !target.starts_with('/') {
        return Err(HttpError::Malformed("bad target"));
    }
    let version = parts.next().ok_or(HttpError::Malformed("missing version"))?;
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed("bad version"));
    }
    let headers = parse_headers(lines)?;
    // Checked before any body byte is awaited: an oversized or malformed
    // declaration never gets the chance to grow the buffer.
    let body_len = declared_body_len(&headers, MAX_BODY, "request body")?;
    let total = head_end + 4 + body_len;
    if buf.len() < total {
        return Ok(Decoded::Incomplete);
    }
    buf.advance(head_end + 4);
    let body = buf.split_to(body_len).freeze();
    Ok(Decoded::Complete(Request { method, target, headers, body }))
}

/// Try to decode one response from the front of `buf`.
pub fn decode_response(buf: &mut BytesMut) -> Result<Decoded<Response>> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() >= MAX_HEAD {
            return Err(HttpError::TooLarge("response head"));
        }
        return Ok(Decoded::Incomplete);
    };
    if head_end > MAX_HEAD {
        return Err(HttpError::TooLarge("response head"));
    }
    let head =
        std::str::from_utf8(&buf[..head_end]).map_err(|_| HttpError::Malformed("non-utf8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().ok_or(HttpError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("bad version"));
    }
    let code: u16 =
        parts.next().and_then(|c| c.parse().ok()).ok_or(HttpError::Malformed("bad status code"))?;
    let headers = parse_headers(lines)?;
    let body_len = declared_body_len(&headers, MAX_BODY, "response body")?;
    let total = head_end + 4 + body_len;
    if buf.len() < total {
        return Ok(Decoded::Incomplete);
    }
    buf.advance(head_end + 4);
    let body = buf.split_to(body_len).freeze();
    Ok(Decoded::Complete(Response { status: Status(code), headers, body }))
}

/// Index of the `\r\n\r\n` separator, if present.
fn find_head_end(buf: &BytesMut) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_headers<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Headers> {
    let mut headers = Headers::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) =
            line.split_once(':').ok_or(HttpError::Malformed("header without colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed("bad header name"));
        }
        headers.append(name.trim(), value.trim());
    }
    Ok(headers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_req_all(bytes: &[u8]) -> Request {
        let mut buf = BytesMut::from(bytes);
        match decode_request(&mut buf).unwrap() {
            Decoded::Complete(r) => r,
            Decoded::Incomplete => panic!("expected complete"),
        }
    }

    #[test]
    fn request_round_trip() {
        let req = Request::post_form("/login?next=%2Fhome", &[("u", "a"), ("p", "b")])
            .header("Host", "osn.local");
        let wire = encode_request(&req);
        let decoded = decode_req_all(&wire);
        assert_eq!(decoded.method, Method::Post);
        assert_eq!(decoded.target, req.target);
        assert_eq!(decoded.headers.get("host"), Some("osn.local"));
        assert_eq!(decoded.body, req.body);
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::html("<p>hello</p>").set_cookie("sid", "xyz");
        let wire = encode_response(&resp);
        let mut buf = BytesMut::from(&wire[..]);
        let decoded = match decode_response(&mut buf).unwrap() {
            Decoded::Complete(r) => r,
            Decoded::Incomplete => panic!(),
        };
        assert_eq!(decoded.status, Status::OK);
        assert_eq!(decoded.body_string(), "<p>hello</p>");
        assert_eq!(decoded.headers.get("set-cookie"), Some("sid=xyz; Path=/"));
        assert!(buf.is_empty());
    }

    #[test]
    fn incremental_decoding_waits_for_full_message() {
        let wire = encode_request(&Request::get("/x").header("Host", "h"));
        let mut buf = BytesMut::new();
        for (i, chunk) in wire.chunks(7).enumerate() {
            buf.extend_from_slice(chunk);
            let done = (i + 1) * 7 >= wire.len();
            match decode_request(&mut buf).unwrap() {
                Decoded::Complete(r) => {
                    assert!(done, "completed early");
                    assert_eq!(r.target, "/x");
                    return;
                }
                Decoded::Incomplete => assert!(!done, "failed to complete"),
            }
        }
        panic!("never completed");
    }

    #[test]
    fn body_split_across_chunks() {
        let req = Request::post_form("/f", &[("k", "0123456789")]);
        let wire = encode_request(&req);
        let split = wire.len() - 4; // cut inside the body
        let mut buf = BytesMut::from(&wire[..split]);
        assert!(matches!(decode_request(&mut buf).unwrap(), Decoded::Incomplete));
        buf.extend_from_slice(&wire[split..]);
        let r = match decode_request(&mut buf).unwrap() {
            Decoded::Complete(r) => r,
            Decoded::Incomplete => panic!(),
        };
        assert_eq!(r.form_param("k").as_deref(), Some("0123456789"));
    }

    #[test]
    fn pipelined_requests_decode_sequentially() {
        let mut wire = encode_request(&Request::get("/a")).to_vec();
        wire.extend_from_slice(&encode_request(&Request::get("/b")));
        let mut buf = BytesMut::from(&wire[..]);
        let a = match decode_request(&mut buf).unwrap() {
            Decoded::Complete(r) => r,
            _ => panic!(),
        };
        let b = match decode_request(&mut buf).unwrap() {
            Decoded::Complete(r) => r,
            _ => panic!(),
        };
        assert_eq!(a.target, "/a");
        assert_eq!(b.target, "/b");
        assert!(buf.is_empty());
    }

    #[test]
    fn malformed_inputs_are_rejected_not_panicked() {
        for bad in [
            "BREW /x HTTP/1.1\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/2\r\n\r\n",
            "GET /x HTTP/1.1\r\nbad header\r\n\r\n",
            "GET /x HTTP/1.1\r\nbad name: v\r\n\r\n",
        ] {
            let mut buf = BytesMut::from(bad.as_bytes());
            assert!(decode_request(&mut buf).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn oversized_head_rejected() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"GET /x HTTP/1.1\r\n");
        while buf.len() <= MAX_HEAD {
            buf.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        assert!(matches!(decode_request(&mut buf), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn malformed_content_length_is_a_typed_error_not_zero() {
        // A decoder that "tolerates" these by assuming 0 silently
        // misframes the connection — the body bytes would be parsed as
        // the next request line. Every one must be a hard error.
        for bad in [
            "POST /f HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
            "POST /f HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
            "POST /f HTTP/1.1\r\nContent-Length: 1e3\r\n\r\n",
            "POST /f HTTP/1.1\r\nContent-Length: 0x10\r\n\r\n",
            "POST /f HTTP/1.1\r\nContent-Length:\r\n\r\n",
            "POST /f HTTP/1.1\r\nContent-Length: 3 3\r\n\r\n",
        ] {
            let mut buf = BytesMut::from(bad.as_bytes());
            assert!(
                matches!(decode_request(&mut buf), Err(HttpError::Malformed(_))),
                "accepted: {bad:?}"
            );
        }
    }

    #[test]
    fn overflowing_content_length_is_too_large() {
        for bad in [
            // Overflows u64 outright.
            "POST /f HTTP/1.1\r\nContent-Length: 99999999999999999999999999\r\n\r\n",
            // Fits in u64 but exceeds MAX_BODY.
            "POST /f HTTP/1.1\r\nContent-Length: 8388609\r\n\r\n",
        ] {
            let mut buf = BytesMut::from(bad.as_bytes());
            assert!(
                matches!(decode_request(&mut buf), Err(HttpError::TooLarge(_))),
                "accepted: {bad:?}"
            );
        }
    }

    #[test]
    fn conflicting_content_lengths_are_rejected_duplicates_tolerated() {
        let mut buf = BytesMut::from(
            &b"POST /f HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\nabcd"[..],
        );
        assert!(matches!(decode_request(&mut buf), Err(HttpError::Malformed(_))));
        // Agreeing duplicates are legal per RFC 9110 §8.6.
        let mut buf = BytesMut::from(
            &b"POST /f HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc"[..],
        );
        let r = match decode_request(&mut buf).unwrap() {
            Decoded::Complete(r) => r,
            _ => panic!(),
        };
        assert_eq!(&r.body[..], b"abc");
    }

    #[test]
    fn oversized_body_rejected_before_body_bytes_arrive() {
        // Head only — no body byte has been buffered yet. The decoder
        // must reject from the declaration alone instead of returning
        // Incomplete (which would invite MAX_BODY bytes of buffering).
        let head = format!("POST /f HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        let mut buf = BytesMut::from(head.as_bytes());
        assert!(matches!(decode_request(&mut buf), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn head_at_exactly_max_head_without_separator_is_rejected() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"GET /x HTTP/1.1\r\n");
        buf.extend_from_slice(&vec![b'a'; MAX_HEAD - buf.len()]);
        assert_eq!(buf.len(), MAX_HEAD);
        assert!(matches!(decode_request(&mut buf), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn content_length_framing_is_exact() {
        let mut buf = BytesMut::from(&b"POST /f HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcEXTRA"[..]);
        let r = match decode_request(&mut buf).unwrap() {
            Decoded::Complete(r) => r,
            _ => panic!(),
        };
        assert_eq!(&r.body[..], b"abc");
        assert_eq!(&buf[..], b"EXTRA");
    }
}
