//! Retry/backoff layer over any [`Exchange`].
//!
//! The paper's crawlers ran for days against a platform that rate-limited,
//! erred and reset connections; what made the attack feasible was cheap
//! client-side persistence. [`ResilientExchange`] wraps any transport with:
//!
//! - **error classification** ([`classify`], [`retryable_transport_error`]):
//!   retryable (429, 500, 503, connection reset) vs fatal (account
//!   suspension, session expiry — these need account-level recovery, not a
//!   blind resend, and are surfaced to the caller);
//! - **capped exponential backoff with full jitter**, honoring the
//!   server's `Retry-After` header;
//! - **per-request deadlines** in virtual time ([`HttpError::DeadlineExceeded`]);
//! - POST is never replayed on a transport error (it may have been
//!   processed before the connection died).
//!
//! All waiting advances a shared [`VirtualClock`] instead of sleeping, and
//! jitter comes from a seeded splitmix64 stream, so a chaos run's retry
//! schedule is a pure function of (seed, request sequence) — bit-identical
//! across runs and across TCP vs in-process transports.
//!
//! Fault signalling is header-based so both transports behave identically;
//! the header names are shared constants ([`H_RETRY_AFTER`] etc.) used by
//! the platform fault engine on the way out and this layer on the way in.

use crate::client::Exchange;
use crate::error::{HttpError, Result};
use crate::message::{Request, Response};
use crate::types::Method;
use hsp_obs::trace::{SpanRecord, SLOT_ATTEMPT_BASE};
use hsp_obs::{FlightRecorder, TraceCtx, VirtualClock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Wire header carrying the deterministic trace context
/// (`TraceCtx::header_value` form). Set once by the crawler per logical
/// fetch; every layer beneath — this retry layer, the chaos transport,
/// the server edge, the platform — annotates its spans against it.
pub const H_TRACE_ID: &str = "x-trace-id";

/// Standard rate-limit header: seconds to wait before retrying.
pub const H_RETRY_AFTER: &str = "Retry-After";
/// Simulated server-side latency in virtual milliseconds; the client
/// "experiences" it by advancing the virtual clock.
pub const H_VIRTUAL_LATENCY_MS: &str = "x-virtual-latency-ms";
/// Marks a 429 as an account suspension (fatal: needs failover).
pub const H_ACCOUNT_SUSPENDED: &str = "x-account-suspended";
/// Marks a 401 as a fault-injected session expiry (fatal: needs re-login).
pub const H_SESSION_EXPIRED: &str = "x-session-expired";
/// Names the injected fault, e.g. `reset` for a mid-body connection
/// reset (the body is truncated and the connection closed).
pub const H_SIMULATED_FAULT: &str = "x-simulated-fault";

/// The requester's current virtual time in milliseconds. Attached by
/// the crawler so the platform's mutation engine can serve the world
/// *as of the account's own timeline*: under the parallel scheduler
/// every seat keeps its own clock and the shared platform clock never
/// advances, so request-carried time is the only representation that
/// replays bit-identically at any worker count. Absent the header, the
/// platform falls back to its own clock.
pub const H_VIRTUAL_NOW: &str = "x-virtual-now-ms";

/// Monotone per-exchange attempt sequence number, stamped on every
/// attempt when enabled ([`ResilientExchange::with_attempt_seq`]). The
/// platform uses it two ways: fault draws become a pure function of
/// `(principal, seq, draw site)` instead of arrival order, and account
/// bookkeeping treats an already-seen seq as a *replay* (no counter
/// increments, same verdict as the first time). Together these make a
/// crawl that is killed and re-driven through the same request prefix
/// land the platform in the same state as an uninterrupted run — the
/// server half of crash-only resume.
pub const H_ATTEMPT_SEQ: &str = "x-attempt-seq";

/// How a response (or transport error) should be handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorClass {
    /// Usable response — hand it to the caller.
    Terminal,
    /// Transient failure — worth retrying after a backoff, optionally
    /// with a server-mandated minimum wait.
    Retryable { retry_after_ms: Option<u64> },
    /// Account- or session-level failure (suspension, expired session):
    /// resending the same request cannot help. Returned to the caller,
    /// which must fail over or re-authenticate.
    Fatal,
}

/// Whether a response is a server-side *load shed*: the hardened edge
/// turning work away with `503` + `Retry-After` (queue saturated, too
/// many connections, draining). Distinct from a fault-injected 5xx,
/// which carries no `Retry-After`: a shed is the server asking for
/// wider spacing, and the crawler's adaptive politeness obliges.
pub fn is_shed(resp: &Response) -> bool {
    resp.status.code() == 503 && resp.headers.contains(H_RETRY_AFTER)
}

/// Marks a 429 as coming from the server's *edge* token-bucket limiter
/// (the request never reached a handler), as opposed to an
/// application-level 429 served by the platform. Audit harnesses use
/// this to reconcile the platform's route counters with what clients
/// actually sent.
pub const H_EDGE_LIMITED: &str = "x-edge-limited";

/// Whether a 429 was produced by the server's edge rate limiter rather
/// than by application code. See [`H_EDGE_LIMITED`].
pub fn is_edge_limited(resp: &Response) -> bool {
    resp.status.code() == 429 && resp.headers.contains(H_EDGE_LIMITED)
}

/// Marks a 429 as a *fault-injected* rate limit from the chaos engine,
/// as opposed to the edge limiter or the sybil detector. One of the
/// three refusal provenances audits must keep apart.
pub const H_FAULT_INJECTED: &str = "x-fault-injected";

/// CAPTCHA challenge issued by the platform's sybil detector. The value
/// is the solve cost in virtual milliseconds; the response itself is
/// still served (the challenge rides along as an interstitial), and a
/// crawler that wants to keep the session must absorb the delay.
pub const H_CAPTCHA: &str = "x-captcha";

/// Marks a 429 as a *detector throttle*: the sybil detector temporarily
/// refusing an account it has flagged. Distinct from `x-edge-limited`
/// (capacity) and `x-fault-injected` (chaos).
pub const H_THROTTLED: &str = "x-throttled";

/// Marks a suspension as a *detector* verdict (escalation ladder top),
/// alongside the generic `x-account-suspended` failover marker.
pub const H_SUSPENDED: &str = "x-suspended";

/// Whether a 429 came from the chaos fault engine. See [`H_FAULT_INJECTED`].
pub fn is_fault_limited(resp: &Response) -> bool {
    resp.status.code() == 429 && resp.headers.contains(H_FAULT_INJECTED)
}

/// Whether a 429 is a sybil-detector throttle. See [`H_THROTTLED`].
pub fn is_throttled(resp: &Response) -> bool {
    resp.status.code() == 429 && resp.headers.contains(H_THROTTLED)
}

/// CAPTCHA solve cost attached to an otherwise-served response, in
/// virtual milliseconds. See [`H_CAPTCHA`].
pub fn captcha_delay_ms(resp: &Response) -> Option<u64> {
    resp.headers.get(H_CAPTCHA).and_then(|v| v.trim().parse::<u64>().ok())
}

/// Which of the five-way refusal taxonomy a response belongs to:
/// `edge` (edge token bucket), `fault` (chaos 429), `throttle`
/// (detector throttle), `shed` (503 + `Retry-After`) or `suspension`
/// (429 + account-suspended). `None` for anything that is not a
/// refusal. The 429 precedence mirrors the [`RetryStats`] subsets.
pub fn refusal_provenance(resp: &Response) -> Option<&'static str> {
    if is_edge_limited(resp) {
        Some("edge")
    } else if is_fault_limited(resp) {
        Some("fault")
    } else if is_throttled(resp) {
        Some("throttle")
    } else if is_shed(resp) {
        Some("shed")
    } else if resp.status.code() == 429 && resp.headers.contains(H_ACCOUNT_SUSPENDED) {
        Some("suspension")
    } else {
        None
    }
}

fn retry_after_ms(resp: &Response) -> Option<u64> {
    resp.headers
        .get(H_RETRY_AFTER)
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(|secs| secs * 1_000)
}

/// Classify a response for retry purposes.
pub fn classify(resp: &Response) -> ErrorClass {
    if resp.headers.get(H_SIMULATED_FAULT) == Some("reset") {
        // Mid-body connection reset: the body is truncated garbage.
        return ErrorClass::Retryable { retry_after_ms: None };
    }
    match resp.status.code() {
        429 if resp.headers.contains(H_ACCOUNT_SUSPENDED) => ErrorClass::Fatal,
        429 => ErrorClass::Retryable { retry_after_ms: retry_after_ms(resp) },
        // A shed 503 names its own floor; a fault 5xx does not.
        503 if is_shed(resp) => ErrorClass::Retryable { retry_after_ms: retry_after_ms(resp) },
        500 | 503 => ErrorClass::Retryable { retry_after_ms: None },
        401 if resp.headers.contains(H_SESSION_EXPIRED) => ErrorClass::Fatal,
        _ => ErrorClass::Terminal,
    }
}

/// Whether a transport-level error is worth retrying at all. (Even then,
/// only idempotent requests are actually resent.)
pub fn retryable_transport_error(e: &HttpError) -> bool {
    matches!(e, HttpError::Io(_) | HttpError::UnexpectedEof | HttpError::Malformed(_))
}

/// Retry budget and backoff shape for one [`ResilientExchange`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// First backoff ceiling in virtual ms; doubles per retry.
    pub base_backoff_ms: u64,
    /// Backoff ceiling cap.
    pub max_backoff_ms: u64,
    /// Per-request deadline in virtual ms (0 = none). Counted from the
    /// first attempt; a retry that would wait past it fails with
    /// [`HttpError::DeadlineExceeded`] instead.
    pub deadline_ms: u64,
    /// Seed for the jitter stream (deterministic per-exchange).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_backoff_ms: 250,
            max_backoff_ms: 8_000,
            deadline_ms: 120_000,
            jitter_seed: 0x9d5f_2013,
        }
    }
}

impl RetryPolicy {
    /// Default shape with an explicit jitter seed.
    pub fn seeded(seed: u64) -> RetryPolicy {
        RetryPolicy { jitter_seed: seed, ..RetryPolicy::default() }
    }
}

/// Counters shared between a [`ResilientExchange`] and whoever accounts
/// for effort (the crawler folds these into its request totals).
#[derive(Debug, Default)]
pub struct RetryStats {
    /// Requests resent after a retryable failure.
    pub retries: AtomicU64,
    /// 429 responses seen (excluding suspensions).
    pub rate_limited: AtomicU64,
    /// Fault 500/503 responses seen (excluding sheds).
    pub server_errors: AtomicU64,
    /// Load-shed 503s seen (`Retry-After` present): the server's edge
    /// turning work away, distinct from fault 5xxs.
    pub sheds: AtomicU64,
    /// Mid-body connection resets (marker or transport-level).
    pub resets: AtomicU64,
    /// Requests abandoned at their virtual deadline.
    pub deadlines_exceeded: AtomicU64,
    /// Virtual milliseconds spent waiting in backoff.
    pub backoff_virtual_ms: AtomicU64,
    /// 429s stamped `x-edge-limited` (edge token bucket; a subset of
    /// `rate_limited` — provenance ledger, not a new total).
    pub edge_limited: AtomicU64,
    /// 429s stamped `x-fault-injected` (chaos engine; subset of
    /// `rate_limited`).
    pub fault_rate_limited: AtomicU64,
    /// 429s stamped `x-throttled` (sybil-detector throttle; subset of
    /// `rate_limited`).
    pub throttled: AtomicU64,
    /// Pages re-fetched because their generation stamp went stale
    /// mid-crawl (live-world consistency conflicts). Counted by the
    /// crawler, not this layer — the stamp lives in the page body.
    pub stale_refetches: AtomicU64,
    /// Tombstone pages served for deactivated/graduated users. Counted
    /// by the crawler alongside `stale_refetches`.
    pub tombstones: AtomicU64,
}

/// Plain-data copy of [`RetryStats`] for journaling/restore across a
/// process restart (serialization lives with the journal, not here).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStatsSnapshot {
    pub retries: u64,
    pub rate_limited: u64,
    pub server_errors: u64,
    pub sheds: u64,
    pub resets: u64,
    pub deadlines_exceeded: u64,
    pub backoff_virtual_ms: u64,
    pub edge_limited: u64,
    pub fault_rate_limited: u64,
    pub throttled: u64,
    pub stale_refetches: u64,
    pub tombstones: u64,
}

impl RetryStats {
    /// Export every counter (for the crash journal).
    pub fn export(&self) -> RetryStatsSnapshot {
        RetryStatsSnapshot {
            retries: self.retries(),
            rate_limited: self.rate_limited(),
            server_errors: self.server_errors(),
            sheds: self.sheds(),
            resets: self.resets(),
            deadlines_exceeded: self.deadlines_exceeded(),
            backoff_virtual_ms: self.backoff_virtual_ms(),
            edge_limited: self.edge_limited(),
            fault_rate_limited: self.fault_rate_limited(),
            throttled: self.throttled(),
            stale_refetches: self.stale_refetches(),
            tombstones: self.tombstones(),
        }
    }

    /// Overwrite every counter from a journaled snapshot (resume path).
    pub fn restore(&self, snap: &RetryStatsSnapshot) {
        self.retries.store(snap.retries, Ordering::Relaxed);
        self.rate_limited.store(snap.rate_limited, Ordering::Relaxed);
        self.server_errors.store(snap.server_errors, Ordering::Relaxed);
        self.sheds.store(snap.sheds, Ordering::Relaxed);
        self.resets.store(snap.resets, Ordering::Relaxed);
        self.deadlines_exceeded.store(snap.deadlines_exceeded, Ordering::Relaxed);
        self.backoff_virtual_ms.store(snap.backoff_virtual_ms, Ordering::Relaxed);
        self.edge_limited.store(snap.edge_limited, Ordering::Relaxed);
        self.fault_rate_limited.store(snap.fault_rate_limited, Ordering::Relaxed);
        self.throttled.store(snap.throttled, Ordering::Relaxed);
        self.stale_refetches.store(snap.stale_refetches, Ordering::Relaxed);
        self.tombstones.store(snap.tombstones, Ordering::Relaxed);
    }

    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    pub fn rate_limited(&self) -> u64 {
        self.rate_limited.load(Ordering::Relaxed)
    }

    pub fn server_errors(&self) -> u64 {
        self.server_errors.load(Ordering::Relaxed)
    }

    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    pub fn resets(&self) -> u64 {
        self.resets.load(Ordering::Relaxed)
    }

    pub fn deadlines_exceeded(&self) -> u64 {
        self.deadlines_exceeded.load(Ordering::Relaxed)
    }

    pub fn backoff_virtual_ms(&self) -> u64 {
        self.backoff_virtual_ms.load(Ordering::Relaxed)
    }

    pub fn edge_limited(&self) -> u64 {
        self.edge_limited.load(Ordering::Relaxed)
    }

    pub fn fault_rate_limited(&self) -> u64 {
        self.fault_rate_limited.load(Ordering::Relaxed)
    }

    pub fn throttled(&self) -> u64 {
        self.throttled.load(Ordering::Relaxed)
    }

    pub fn stale_refetches(&self) -> u64 {
        self.stale_refetches.load(Ordering::Relaxed)
    }

    pub fn tombstones(&self) -> u64 {
        self.tombstones.load(Ordering::Relaxed)
    }
}

/// An [`Exchange`] wrapper adding deadlines, classification-driven
/// retries and jittered backoff in virtual time.
pub struct ResilientExchange<E> {
    inner: E,
    policy: RetryPolicy,
    clock: Arc<VirtualClock>,
    stats: Arc<RetryStats>,
    jitter_state: u64,
    tracer: Option<Arc<FlightRecorder>>,
    /// `Some(next)`: stamp [`H_ATTEMPT_SEQ`] on every attempt.
    attempt_seq: Option<u64>,
}

impl<E: Exchange> ResilientExchange<E> {
    pub fn new(inner: E, policy: RetryPolicy, clock: Arc<VirtualClock>) -> ResilientExchange<E> {
        Self::with_stats(inner, policy, clock, Arc::new(RetryStats::default()))
    }

    /// Like [`new`](Self::new) but folding retries into a shared stats
    /// block — one handle for a whole fleet of account exchanges.
    pub fn with_stats(
        inner: E,
        policy: RetryPolicy,
        clock: Arc<VirtualClock>,
        stats: Arc<RetryStats>,
    ) -> ResilientExchange<E> {
        let jitter_state = policy.jitter_seed;
        ResilientExchange {
            inner,
            policy,
            clock,
            stats,
            jitter_state,
            tracer: None,
            attempt_seq: None,
        }
    }

    /// Stamp a monotone [`H_ATTEMPT_SEQ`] header on every attempt,
    /// switching the platform's fault engine and account bookkeeping
    /// into replay-tolerant sequence mode (see the header docs). Both
    /// the baseline and any killed-and-resumed run must use this.
    pub fn with_attempt_seq(mut self) -> ResilientExchange<E> {
        self.attempt_seq = Some(0);
        self
    }

    /// Record one span per attempt into `tracer` for requests carrying
    /// an [`H_TRACE_ID`] header (begin/end virtual time, status,
    /// classification outcome and refusal provenance).
    pub fn with_tracer(mut self, tracer: Arc<FlightRecorder>) -> ResilientExchange<E> {
        self.tracer = Some(tracer);
        self
    }

    /// Shared retry counters (clone the Arc to account elsewhere).
    pub fn stats(&self) -> Arc<RetryStats> {
        Arc::clone(&self.stats)
    }

    /// The virtual clock this exchange waits against.
    pub fn clock(&self) -> Arc<VirtualClock> {
        Arc::clone(&self.clock)
    }

    fn next_jitter(&mut self, ceiling: u64) -> u64 {
        // splitmix64: cheap, seedable, good enough for jitter.
        self.jitter_state = self.jitter_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.jitter_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Full jitter in [1, ceiling]: always advances the clock so a
        // retry storm cannot happen "instantaneously".
        1 + z % ceiling.max(1)
    }

    /// Backoff for the n-th retry (1-based): full jitter under an
    /// exponentially growing ceiling, floored by any `Retry-After`.
    fn backoff_ms(&mut self, retry: u32, retry_after_ms: Option<u64>) -> u64 {
        let shift = (retry - 1).min(20);
        let ceiling =
            self.policy.base_backoff_ms.saturating_mul(1 << shift).min(self.policy.max_backoff_ms);
        let jittered = self.next_jitter(ceiling);
        jittered.max(retry_after_ms.unwrap_or(0))
    }

    /// Absorb the response's simulated latency into the virtual timeline.
    fn observe_latency(&self, resp: &Response) {
        if let Some(ms) = resp.headers.get(H_VIRTUAL_LATENCY_MS).and_then(|v| v.parse().ok()) {
            self.clock.advance_ms(ms);
        }
    }
}

impl<E: Exchange> Exchange for ResilientExchange<E> {
    fn exchange(&mut self, req: Request) -> Result<Response> {
        let start_ms = self.clock.now_ms();
        let idempotent = matches!(req.method, Method::Get | Method::Head);
        let trace = self
            .tracer
            .as_ref()
            .filter(|t| t.is_enabled())
            .cloned()
            .zip(req.headers.get(H_TRACE_ID).and_then(TraceCtx::parse));
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let begin_ms = self.clock.now_ms();
            let mut req_attempt = req.clone();
            if let Some(seq) = self.attempt_seq.as_mut() {
                req_attempt.headers.set(H_ATTEMPT_SEQ, seq.to_string());
                *seq += 1;
            }
            let outcome = self.inner.exchange(req_attempt);
            if let Ok(resp) = &outcome {
                self.observe_latency(resp);
            }
            if let Some((tracer, ctx)) = &trace {
                let (status, verdict, provenance, captcha_ms) = match &outcome {
                    Ok(resp) => (
                        resp.status.code(),
                        match classify(resp) {
                            ErrorClass::Terminal => "ok",
                            ErrorClass::Fatal => "fatal",
                            ErrorClass::Retryable { .. } => "retryable",
                        },
                        refusal_provenance(resp).unwrap_or(""),
                        captcha_delay_ms(resp).unwrap_or(0),
                    ),
                    Err(e) if retryable_transport_error(e) => (0, "transport", "", 0),
                    Err(_) => (0, "error", "", 0),
                };
                tracer.record(SpanRecord {
                    trace_id: ctx.trace_id,
                    span_id: ctx.span(SLOT_ATTEMPT_BASE + u64::from(attempt)),
                    parent_id: ctx.root_span(),
                    lane: ctx.lane,
                    ordinal: ctx.ordinal,
                    name: "attempt".to_string(),
                    begin_ms,
                    end_ms: self.clock.now_ms(),
                    status,
                    outcome: verdict.to_string(),
                    provenance: provenance.to_string(),
                    captcha_ms,
                });
            }
            let retry_after_ms = match outcome {
                Ok(resp) => {
                    match classify(&resp) {
                        ErrorClass::Terminal | ErrorClass::Fatal => return Ok(resp),
                        ErrorClass::Retryable { retry_after_ms } => {
                            match resp.status.code() {
                                429 => {
                                    // Provenance ledger: which of the
                                    // three limiters said no.
                                    if is_edge_limited(&resp) {
                                        self.stats.edge_limited.fetch_add(1, Ordering::Relaxed);
                                    } else if is_fault_limited(&resp) {
                                        self.stats
                                            .fault_rate_limited
                                            .fetch_add(1, Ordering::Relaxed);
                                    } else if is_throttled(&resp) {
                                        self.stats.throttled.fetch_add(1, Ordering::Relaxed);
                                    }
                                    self.stats.rate_limited.fetch_add(1, Ordering::Relaxed)
                                }
                                503 if is_shed(&resp) => {
                                    self.stats.sheds.fetch_add(1, Ordering::Relaxed)
                                }
                                500 | 503 => {
                                    self.stats.server_errors.fetch_add(1, Ordering::Relaxed)
                                }
                                _ => self.stats.resets.fetch_add(1, Ordering::Relaxed),
                            };
                            if attempt >= self.policy.max_attempts {
                                // Out of budget: surface the last
                                // response so the caller sees *why*.
                                return Ok(resp);
                            }
                            retry_after_ms
                        }
                    }
                }
                Err(e) if retryable_transport_error(&e) && idempotent => {
                    self.stats.resets.fetch_add(1, Ordering::Relaxed);
                    if attempt >= self.policy.max_attempts {
                        return Err(e);
                    }
                    None
                }
                Err(e) => return Err(e),
            };
            let wait_ms = self.backoff_ms(attempt, retry_after_ms);
            if self.policy.deadline_ms > 0 {
                let elapsed = self.clock.now_ms().saturating_sub(start_ms);
                if elapsed + wait_ms > self.policy.deadline_ms {
                    self.stats.deadlines_exceeded.fetch_add(1, Ordering::Relaxed);
                    return Err(HttpError::DeadlineExceeded);
                }
            }
            self.clock.advance_ms(wait_ms);
            self.stats.backoff_virtual_ms.fetch_add(wait_ms, Ordering::Relaxed);
            self.stats.retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn clear_session(&mut self) {
        self.inner.clear_session();
    }

    fn transport_state(&self) -> crate::client::TransportState {
        let mut state = self.inner.transport_state();
        state.attempt_seq = self.attempt_seq.unwrap_or(0);
        state.jitter_state = self.jitter_state;
        state
    }

    fn restore_transport_state(&mut self, state: &crate::client::TransportState) {
        self.inner.restore_transport_state(state);
        if self.attempt_seq.is_some() {
            self.attempt_seq = Some(state.attempt_seq);
        }
        self.jitter_state = state.jitter_state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Status;
    use std::collections::VecDeque;

    /// Scripted exchange: pops pre-baked outcomes, records requests.
    struct Script {
        outcomes: VecDeque<Result<Response>>,
        seen: Vec<Request>,
    }

    impl Script {
        fn new(outcomes: Vec<Result<Response>>) -> Script {
            Script { outcomes: outcomes.into(), seen: Vec::new() }
        }
    }

    impl Exchange for Script {
        fn exchange(&mut self, req: Request) -> Result<Response> {
            self.seen.push(req);
            self.outcomes.pop_front().unwrap_or_else(|| Ok(Response::text("default")))
        }

        fn clear_session(&mut self) {}
    }

    fn resilient(script: Script) -> ResilientExchange<Script> {
        ResilientExchange::new(script, RetryPolicy::seeded(7), VirtualClock::shared())
    }

    #[test]
    fn retries_transient_5xx_until_success() {
        let script = Script::new(vec![
            Ok(Response::error(Status::SERVICE_UNAVAILABLE, "warming up")),
            Ok(Response::error(Status::INTERNAL_SERVER_ERROR, "oops")),
            Ok(Response::text("fine")),
        ]);
        let mut ex = resilient(script);
        let resp = ex.exchange(Request::get("/profile/u1")).unwrap();
        assert_eq!(resp.body_string(), "fine");
        assert_eq!(ex.stats().retries(), 2);
        assert_eq!(ex.stats().server_errors(), 2);
        assert!(ex.clock().now_ms() > 0, "backoff must advance virtual time");
    }

    #[test]
    fn honors_retry_after_floor() {
        let rate_limited =
            Response::error(Status::TOO_MANY_REQUESTS, "slow down").header(H_RETRY_AFTER, "30");
        let script = Script::new(vec![Ok(rate_limited), Ok(Response::text("ok"))]);
        let mut ex = resilient(script);
        ex.exchange(Request::get("/x")).unwrap();
        assert!(ex.clock().now_ms() >= 30_000, "waited {} ms", ex.clock().now_ms());
        assert_eq!(ex.stats().rate_limited(), 1);
    }

    #[test]
    fn exhausted_budget_returns_last_response() {
        let outcomes = (0..9)
            .map(|_| Ok(Response::error(Status::SERVICE_UNAVAILABLE, "down")))
            .collect::<Vec<_>>();
        let mut ex = resilient(Script::new(outcomes));
        let resp = ex.exchange(Request::get("/x")).unwrap();
        assert_eq!(resp.status, Status::SERVICE_UNAVAILABLE);
        assert_eq!(ex.stats().retries(), RetryPolicy::default().max_attempts as u64 - 1);
    }

    #[test]
    fn suspension_is_fatal_not_retried() {
        let suspended = Response::error(Status::TOO_MANY_REQUESTS, "account suspended")
            .header(H_ACCOUNT_SUSPENDED, "1");
        let mut ex = resilient(Script::new(vec![Ok(suspended)]));
        let resp = ex.exchange(Request::get("/x")).unwrap();
        assert_eq!(resp.status, Status::TOO_MANY_REQUESTS);
        assert_eq!(ex.stats().retries(), 0, "suspension must bubble up for failover");
    }

    #[test]
    fn post_never_replayed_on_transport_error() {
        let script = Script::new(vec![Err(HttpError::UnexpectedEof), Ok(Response::text("late"))]);
        let mut ex = resilient(script);
        let err = ex.exchange(Request::post_form("/message/u9", &[("text", "hi")])).unwrap_err();
        assert!(matches!(err, HttpError::UnexpectedEof));
        assert_eq!(ex.inner.seen.len(), 1, "the POST must have been sent exactly once");
    }

    #[test]
    fn get_is_replayed_on_transport_error() {
        let script = Script::new(vec![Err(HttpError::UnexpectedEof), Ok(Response::text("ok"))]);
        let mut ex = resilient(script);
        assert_eq!(ex.exchange(Request::get("/x")).unwrap().body_string(), "ok");
        assert_eq!(ex.stats().resets(), 1);
    }

    #[test]
    fn reset_marker_is_retried_like_a_transport_reset() {
        let torn = Response::html("<html><p>torn of")
            .header(H_SIMULATED_FAULT, "reset")
            .header("Connection", "close");
        let script = Script::new(vec![Ok(torn), Ok(Response::html("<html>whole</html>"))]);
        let mut ex = resilient(script);
        let resp = ex.exchange(Request::get("/x")).unwrap();
        assert!(resp.body_string().contains("whole"));
        assert_eq!(ex.stats().resets(), 1);
    }

    #[test]
    fn shed_503_is_classified_and_counted_distinctly_from_fault_5xx() {
        let shed_resp = Response::error(Status::SERVICE_UNAVAILABLE, "server overloaded")
            .header(H_RETRY_AFTER, "2")
            .header("Connection", "close");
        let fault = Response::error(Status::SERVICE_UNAVAILABLE, "injected");
        assert!(is_shed(&shed_resp));
        assert!(!is_shed(&fault));
        // The shed names its own backoff floor.
        assert_eq!(classify(&shed_resp), ErrorClass::Retryable { retry_after_ms: Some(2_000) });
        assert_eq!(classify(&fault), ErrorClass::Retryable { retry_after_ms: None });

        let script = Script::new(vec![Ok(shed_resp), Ok(fault), Ok(Response::text("recovered"))]);
        let mut ex = resilient(script);
        let resp = ex.exchange(Request::get("/x")).unwrap();
        assert_eq!(resp.body_string(), "recovered");
        assert_eq!(ex.stats().sheds(), 1);
        assert_eq!(ex.stats().server_errors(), 1);
        assert!(ex.clock().now_ms() >= 2_000, "the shed's Retry-After floor was honored");
    }

    #[test]
    fn refusal_ledger_separates_429_provenance() {
        let edge = Response::error(Status::TOO_MANY_REQUESTS, "edge")
            .header(H_RETRY_AFTER, "1")
            .header(H_EDGE_LIMITED, "1");
        let fault = Response::error(Status::TOO_MANY_REQUESTS, "chaos")
            .header(H_RETRY_AFTER, "1")
            .header(H_FAULT_INJECTED, "1");
        let throttle = Response::error(Status::TOO_MANY_REQUESTS, "flagged")
            .header(H_RETRY_AFTER, "1")
            .header(H_THROTTLED, "1");
        let plain = Response::error(Status::TOO_MANY_REQUESTS, "unattributed");
        let policy = RetryPolicy { max_attempts: 10, ..RetryPolicy::seeded(7) };
        let mut ex = ResilientExchange::new(
            Script::new(vec![
                Ok(edge),
                Ok(fault),
                Ok(throttle),
                Ok(plain),
                Ok(Response::text("ok")),
            ]),
            policy,
            VirtualClock::shared(),
        );
        assert_eq!(ex.exchange(Request::get("/x")).unwrap().body_string(), "ok");
        assert_eq!(ex.stats().rate_limited(), 4, "every 429 still lands in the total");
        assert_eq!(ex.stats().edge_limited(), 1);
        assert_eq!(ex.stats().fault_rate_limited(), 1);
        assert_eq!(ex.stats().throttled(), 1);
    }

    #[test]
    fn captcha_header_parses_and_does_not_block() {
        let challenged = Response::html("<html>page</html>").header(H_CAPTCHA, "30000");
        assert_eq!(captcha_delay_ms(&challenged), Some(30_000));
        assert_eq!(classify(&challenged), ErrorClass::Terminal, "captcha rides a served page");
        assert_eq!(captcha_delay_ms(&Response::text("clean")), None);
    }

    #[test]
    fn deadline_bounds_total_virtual_wait() {
        let outcomes = (0..50)
            .map(|_| {
                Ok(Response::error(Status::TOO_MANY_REQUESTS, "x").header(H_RETRY_AFTER, "120"))
            })
            .collect::<Vec<_>>();
        let policy =
            RetryPolicy { deadline_ms: 100_000, max_attempts: 50, ..RetryPolicy::seeded(3) };
        let mut ex = ResilientExchange::new(Script::new(outcomes), policy, VirtualClock::shared());
        let err = ex.exchange(Request::get("/x")).unwrap_err();
        assert!(matches!(err, HttpError::DeadlineExceeded));
        assert_eq!(ex.stats().deadlines_exceeded(), 1);
        assert!(ex.clock().now_ms() <= 100_000);
    }

    #[test]
    fn virtual_latency_header_advances_clock() {
        let slow = Response::html("<html>slow</html>").header(H_VIRTUAL_LATENCY_MS, "750");
        let mut ex = resilient(Script::new(vec![Ok(slow)]));
        ex.exchange(Request::get("/x")).unwrap();
        assert_eq!(ex.clock().now_ms(), 750);
    }

    #[test]
    fn traced_request_records_one_span_per_attempt() {
        let tracer = Arc::new(FlightRecorder::new());
        tracer.enable(64);
        let edge = Response::error(Status::TOO_MANY_REQUESTS, "edge")
            .header(H_RETRY_AFTER, "1")
            .header(H_EDGE_LIMITED, "1");
        let script = Script::new(vec![Ok(edge), Ok(Response::text("ok"))]);
        let mut ex = ResilientExchange::new(script, RetryPolicy::seeded(7), VirtualClock::shared())
            .with_tracer(Arc::clone(&tracer));
        let ctx = TraceCtx::derive(hsp_obs::TRACE_SEED, 3, 9);
        let req = Request::get("/profile/u1").header(H_TRACE_ID, ctx.header_value());
        assert_eq!(ex.exchange(req).unwrap().body_string(), "ok");
        let spans = tracer.spans();
        assert_eq!(spans.len(), 2, "one span per attempt");
        assert_eq!(spans[0].outcome, "retryable");
        assert_eq!(spans[0].provenance, "edge");
        assert_eq!(spans[0].status, 429);
        assert_eq!(spans[1].outcome, "ok");
        assert_eq!(spans[1].provenance, "");
        assert!(spans.iter().all(|s| s.lane == 3 && s.ordinal == 9));
        assert!(spans.iter().all(|s| s.parent_id == ctx.root_span()));
        assert!(spans[1].begin_ms >= spans[0].end_ms, "backoff separates the attempts");
    }

    #[test]
    fn untraced_request_records_nothing() {
        let tracer = Arc::new(FlightRecorder::new());
        tracer.enable(64);
        let mut ex = ResilientExchange::new(
            Script::new(vec![Ok(Response::text("ok"))]),
            RetryPolicy::seeded(7),
            VirtualClock::shared(),
        )
        .with_tracer(Arc::clone(&tracer));
        ex.exchange(Request::get("/x")).unwrap();
        assert!(tracer.is_empty(), "no x-trace-id header, no spans");
    }

    #[test]
    fn same_seed_same_virtual_schedule() {
        let run = |seed: u64| {
            let outcomes = (0..4)
                .map(|_| Ok(Response::error(Status::SERVICE_UNAVAILABLE, "down")))
                .chain(std::iter::once(Ok(Response::text("ok"))))
                .collect::<Vec<_>>();
            let mut ex = ResilientExchange::new(
                Script::new(outcomes),
                RetryPolicy::seeded(seed),
                VirtualClock::shared(),
            );
            ex.exchange(Request::get("/x")).unwrap();
            ex.clock().now_ms()
        };
        assert_eq!(run(42), run(42), "same seed must give a bit-identical schedule");
        assert_ne!(run(42), run(43), "different seeds should jitter differently");
    }
}
