//! Deterministic transport-level chaos beneath [`Exchange`].
//!
//! The platform's `FaultEngine` (hsp-platform) injects *handler-level*
//! hostility: the server answers, but with 429s, 5xxs or torn bodies.
//! This module attacks the layer below — the bytes between client and
//! server: requests that never arrive, responses lost after the server
//! already acted, reads that stall or die mid-body, corrupted framing,
//! and keep-alive connections closed at the worst possible moment
//! (right after a POST was written). The paper's crawl survived exactly
//! this weather for days (§3.2); the soak harness proves ours does too.
//!
//! Two layers:
//!
//! - [`ChaosTransport`] wraps any [`Exchange`] and injects
//!   transport-outcome faults from a seeded SplitMix64 stream. The
//!   schedule is a pure function of (seed, request sequence) — the same
//!   bit-replayable discipline as the fault engine and the retry
//!   jitter, so a failing soak seed replays exactly. Stalls advance the
//!   shared virtual clock rather than sleeping.
//! - [`ChaosStream`] wraps a raw `Read + Write` byte stream and
//!   deterministically splits writes and shortens reads, exercising the
//!   incremental decoder against pathological TCP segmentation.
//!
//! [`ChaosTransport`] also runs a watchdog for the standing invariant
//! that the transport retry layers never replay a POST: it fingerprints
//! every delivered POST and counts re-deliveries that follow a
//! transport failure of the same fingerprint
//! ([`ChaosStats::post_redeliveries`]). The crawler's *intentional*
//! application-level auth retries are accounted separately by the
//! crawler itself; the soak asserts the two counts match — any excess
//! means a transport layer silently double-sent a POST.

use crate::client::Exchange;
use crate::error::{HttpError, Result};
use crate::message::{Request, Response};
use crate::resilient::{is_edge_limited, is_shed, H_TRACE_ID};
use crate::types::Method;
use hsp_obs::trace::{SpanRecord, SLOT_CHAOS};
use hsp_obs::{FlightRecorder, TraceCtx, VirtualClock};
use std::io::{ErrorKind, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Declarative transport-chaos schedule. Probabilities are per-mille
/// (0–1000) per eligible exchange; the all-zero [`Default`] injects
/// nothing. [`ChaosPlan::chaos`] is the canonical hostile profile.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosPlan {
    /// Master switch; `false` short-circuits every roll.
    pub enabled: bool,
    /// Seed of the chaos RNG stream. Wrappers for different accounts
    /// should derive distinct seeds (e.g. `seed ^ account_index`) so
    /// each account has its own schedule, independent of interleaving.
    pub seed: u64,
    /// Request lost before reaching the server (connection died while
    /// writing). Safe to retry: the server never saw it.
    pub abort_before_per_mille: u32,
    /// Response lost after the server processed the request (connection
    /// died while reading). The dangerous one: a blind resend would
    /// double-send.
    pub abort_after_per_mille: u32,
    /// Keep-alive connection closed at the worst moment: a POST was
    /// written and the response never arrives. Applies to POSTs only.
    pub close_post_per_mille: u32,
    /// Stalled read: the response arrives, but only after a stall that
    /// advances the virtual clock by `stall_min_ms..=stall_max_ms`.
    pub stall_per_mille: u32,
    pub stall_min_ms: u64,
    pub stall_max_ms: u64,
    /// Short read: the response dies mid-body (framing incomplete).
    pub truncate_per_mille: u32,
    /// Response bytes corrupted in flight: decode fails.
    pub corrupt_per_mille: u32,
}

impl Default for ChaosPlan {
    fn default() -> ChaosPlan {
        ChaosPlan {
            enabled: false,
            seed: 0xC4A0_2013,
            abort_before_per_mille: 0,
            abort_after_per_mille: 0,
            close_post_per_mille: 0,
            stall_per_mille: 0,
            stall_min_ms: 20,
            stall_max_ms: 800,
            truncate_per_mille: 0,
            corrupt_per_mille: 0,
        }
    }
}

impl ChaosPlan {
    /// The canonical hostile transport profile used by the soak.
    pub fn chaos() -> ChaosPlan {
        ChaosPlan {
            enabled: true,
            abort_before_per_mille: 15,
            abort_after_per_mille: 10,
            close_post_per_mille: 60,
            stall_per_mille: 80,
            truncate_per_mille: 10,
            corrupt_per_mille: 8,
            ..ChaosPlan::default()
        }
    }

    /// Same plan, different seed (per-account derivation).
    pub fn with_seed(&self, seed: u64) -> ChaosPlan {
        ChaosPlan { seed, ..self.clone() }
    }

    /// Scale every probabilistic fault class by `factor`, clamped to
    /// valid per-mille. Used by intensity sweeps.
    pub fn scaled(&self, factor: f64) -> ChaosPlan {
        let scale = |pm: u32| ((pm as f64 * factor).round() as u32).min(1_000);
        ChaosPlan {
            abort_before_per_mille: scale(self.abort_before_per_mille),
            abort_after_per_mille: scale(self.abort_after_per_mille),
            close_post_per_mille: scale(self.close_post_per_mille),
            stall_per_mille: scale(self.stall_per_mille),
            truncate_per_mille: scale(self.truncate_per_mille),
            corrupt_per_mille: scale(self.corrupt_per_mille),
            ..self.clone()
        }
    }
}

/// SplitMix64 finalizer — same mixing discipline as the fault engine.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over method + target + body: the POST fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fingerprint(req: &Request) -> u64 {
    let mut h = fnv1a(req.method.as_str().as_bytes());
    h ^= fnv1a(req.target.as_bytes()).rotate_left(17);
    h ^ fnv1a(&req.body).rotate_left(31)
}

/// Counters shared between a fleet of [`ChaosTransport`]s and the soak
/// harness that audits them.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Exchanges actually delivered to the inner transport (the server
    /// saw these). Aborted-before-delivery requests are *not* included,
    /// which is what lets the soak reconcile the platform's
    /// served-request audit with the crawler's effort.
    pub delivered: AtomicU64,
    /// Requests lost before delivery.
    pub aborted_before: AtomicU64,
    /// Responses lost after delivery.
    pub aborted_after: AtomicU64,
    /// Keep-alive closes right after a POST was written.
    pub worst_moment_closes: AtomicU64,
    /// Stalled reads injected.
    pub stalls: AtomicU64,
    /// Virtual milliseconds spent in injected stalls.
    pub stall_virtual_ms: AtomicU64,
    /// Responses truncated mid-body.
    pub truncated: AtomicU64,
    /// Responses corrupted in flight.
    pub corrupted: AtomicU64,
    /// Delivered exchanges the server's *edge* refused (shed `503` with
    /// `Retry-After`, or an edge-limiter `429`), counted even when chaos
    /// destroys the refusal afterwards. `delivered − refused` is the
    /// requests the platform's handlers actually served, which the soak
    /// reconciles against the platform's own route audit.
    pub refused: AtomicU64,
    /// POSTs delivered again after a transport failure of the same
    /// fingerprint. Every one must be matched by an intentional
    /// application-level retry; an excess means a transport layer
    /// silently replayed a POST.
    pub post_redeliveries: AtomicU64,
}

macro_rules! stat_getters {
    ($($name:ident),+ $(,)?) => {
        $(pub fn $name(&self) -> u64 { self.$name.load(Ordering::Relaxed) })+
    };
}

impl ChaosStats {
    stat_getters!(
        delivered,
        aborted_before,
        aborted_after,
        worst_moment_closes,
        stalls,
        stall_virtual_ms,
        truncated,
        corrupted,
        refused,
        post_redeliveries,
    );

    /// Total injected transport faults (excludes stalls, which deliver).
    pub fn total_faults(&self) -> u64 {
        self.aborted_before()
            + self.aborted_after()
            + self.worst_moment_closes()
            + self.truncated()
            + self.corrupted()
    }
}

/// An [`Exchange`] wrapper injecting deterministic transport faults.
///
/// Sits *beneath* `ResilientExchange` (chaos happens on the wire, the
/// retry layer reacts to it) and above the real transport
/// (`DirectExchange` or `Client`), composing freely with the
/// handler-level `FaultEngine` on the server side.
pub struct ChaosTransport<E> {
    inner: E,
    plan: ChaosPlan,
    clock: Arc<VirtualClock>,
    stats: Arc<ChaosStats>,
    stream_key: u64,
    counter: u64,
    /// Fingerprint of the last POST whose delivery ended in a transport
    /// failure; armed until a POST is delivered again.
    last_failed_post: Option<u64>,
    tracer: Option<Arc<FlightRecorder>>,
}

impl<E: Exchange> ChaosTransport<E> {
    pub fn new(inner: E, plan: ChaosPlan, clock: Arc<VirtualClock>) -> ChaosTransport<E> {
        Self::with_stats(inner, plan, clock, Arc::new(ChaosStats::default()))
    }

    /// Like [`new`](Self::new) but folding injections into a shared
    /// stats block — one audit handle for a whole fleet.
    pub fn with_stats(
        inner: E,
        plan: ChaosPlan,
        clock: Arc<VirtualClock>,
        stats: Arc<ChaosStats>,
    ) -> ChaosTransport<E> {
        let stream_key = splitmix64(plan.seed);
        ChaosTransport {
            inner,
            plan,
            clock,
            stats,
            stream_key,
            counter: 0,
            last_failed_post: None,
            tracer: None,
        }
    }

    /// Record one span per injected fault into `tracer` for requests
    /// carrying an `x-trace-id` header, so a retry chain's causal
    /// explanation includes the transport weather that forced it.
    pub fn with_tracer(mut self, tracer: Arc<FlightRecorder>) -> ChaosTransport<E> {
        self.tracer = Some(tracer);
        self
    }

    fn trace_injection(&self, ctx: Option<TraceCtx>, kind: &str, begin_ms: u64) {
        let (Some(tracer), Some(ctx)) = (self.tracer.as_ref(), ctx) else { return };
        if !tracer.is_enabled() {
            return;
        }
        tracer.record(SpanRecord {
            trace_id: ctx.trace_id,
            // Salted by the per-lane exchange counter: one trace can see
            // several injections (one per retry), each its own span.
            span_id: splitmix64(ctx.span(SLOT_CHAOS) ^ self.counter),
            parent_id: ctx.root_span(),
            lane: ctx.lane,
            ordinal: ctx.ordinal,
            name: format!("chaos:{kind}"),
            begin_ms,
            end_ms: self.clock.now_ms(),
            status: 0,
            outcome: "inject".to_string(),
            provenance: String::new(),
            captcha_ms: 0,
        });
    }

    /// Shared injection counters (clone the Arc to audit elsewhere).
    pub fn stats(&self) -> Arc<ChaosStats> {
        Arc::clone(&self.stats)
    }

    /// The wrapped transport (e.g. to inspect cookies in tests).
    pub fn inner(&self) -> &E {
        &self.inner
    }

    fn draw(&mut self) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        splitmix64(self.stream_key ^ splitmix64(self.counter))
    }

    fn roll(&mut self, per_mille: u32) -> bool {
        // Draw unconditionally so the stream position is a pure
        // function of the request sequence, not of which fault classes
        // are enabled.
        let v = self.draw() % 1_000;
        per_mille > 0 && v < u64::from(per_mille)
    }

    fn stall_ms(&mut self) -> u64 {
        let lo = self.plan.stall_min_ms.min(self.plan.stall_max_ms);
        let hi = self.plan.stall_max_ms.max(self.plan.stall_min_ms);
        lo + self.draw() % (hi - lo + 1)
    }
}

impl<E: Exchange> Exchange for ChaosTransport<E> {
    fn exchange(&mut self, req: Request) -> Result<Response> {
        if !self.plan.enabled {
            self.stats.delivered.fetch_add(1, Ordering::Relaxed);
            let resp = self.inner.exchange(req)?;
            // The delivered/refused ledger must balance even with chaos
            // off — audits compare it against the server's own counters.
            if is_shed(&resp) || is_edge_limited(&resp) {
                self.stats.refused.fetch_add(1, Ordering::Relaxed);
            }
            return Ok(resp);
        }
        let is_post = req.method == Method::Post;
        let fp = is_post.then(|| fingerprint(&req));
        let ctx = req.headers.get(H_TRACE_ID).and_then(TraceCtx::parse);
        let begin_ms = self.clock.now_ms();

        // Fixed roll order keeps the stream replayable.
        let abort_before = self.roll(self.plan.abort_before_per_mille);
        let close_post = self.roll(self.plan.close_post_per_mille) && is_post;
        let abort_after = self.roll(self.plan.abort_after_per_mille);
        let stall = self.roll(self.plan.stall_per_mille);
        let truncate = self.roll(self.plan.truncate_per_mille);
        let corrupt = self.roll(self.plan.corrupt_per_mille);

        if abort_before {
            // The server never sees this request, so a retry is safe
            // and the failed-POST watchdog stays unarmed.
            self.stats.aborted_before.fetch_add(1, Ordering::Relaxed);
            self.trace_injection(ctx, "abort-before", begin_ms);
            return Err(HttpError::Io(std::io::Error::new(
                ErrorKind::ConnectionReset,
                "chaos: connection reset before request was written",
            )));
        }

        // Delivery: the inner transport (and thus the server) runs the
        // request, whatever happens to the response afterwards.
        if let Some(fp) = fp {
            if self.last_failed_post == Some(fp) {
                self.stats.post_redeliveries.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.stats.delivered.fetch_add(1, Ordering::Relaxed);
        let resp = match self.inner.exchange(req) {
            Ok(resp) => resp,
            Err(e) => {
                // A *real* transport failure after delivery: for a POST
                // the watchdog arms, exactly as for injected failures —
                // a silent replay below this layer would still be caught.
                if fp.is_some() {
                    self.last_failed_post = fp;
                }
                return Err(e);
            }
        };
        if is_shed(&resp) || is_edge_limited(&resp) {
            // Edge refusal: the server answered, but no handler ran.
            self.stats.refused.fetch_add(1, Ordering::Relaxed);
        }

        if close_post {
            self.stats.worst_moment_closes.fetch_add(1, Ordering::Relaxed);
            self.last_failed_post = fp;
            self.trace_injection(ctx, "close-post", begin_ms);
            return Err(HttpError::UnexpectedEof);
        }
        if abort_after {
            self.stats.aborted_after.fetch_add(1, Ordering::Relaxed);
            self.last_failed_post = fp.or(self.last_failed_post);
            self.trace_injection(ctx, "abort-after", begin_ms);
            return Err(HttpError::Io(std::io::Error::new(
                ErrorKind::ConnectionReset,
                "chaos: connection reset before response was read",
            )));
        }
        if truncate {
            self.stats.truncated.fetch_add(1, Ordering::Relaxed);
            self.last_failed_post = fp.or(self.last_failed_post);
            self.trace_injection(ctx, "truncate", begin_ms);
            return Err(HttpError::UnexpectedEof);
        }
        if corrupt {
            self.stats.corrupted.fetch_add(1, Ordering::Relaxed);
            self.last_failed_post = fp.or(self.last_failed_post);
            self.trace_injection(ctx, "corrupt", begin_ms);
            return Err(HttpError::Malformed("chaos: corrupted response bytes"));
        }
        if stall {
            let ms = self.stall_ms();
            self.stats.stalls.fetch_add(1, Ordering::Relaxed);
            self.stats.stall_virtual_ms.fetch_add(ms, Ordering::Relaxed);
            self.clock.advance_ms(ms);
            self.trace_injection(ctx, "stall", begin_ms);
        }
        if is_post {
            // This POST made it through; the watchdog disarms.
            self.last_failed_post = None;
        }
        Ok(resp)
    }

    fn clear_session(&mut self) {
        self.inner.clear_session();
    }
}

/// A `Read + Write` wrapper that deterministically fragments I/O:
/// writes land in small split chunks and reads return fewer bytes than
/// asked. Semantically lossless — every byte still flows, in order —
/// which makes it the right tool for proving the incremental codec and
/// server survive pathological TCP segmentation.
pub struct ChaosStream<S> {
    inner: S,
    state: u64,
    /// Largest chunk a single `write` will accept.
    pub max_write_chunk: usize,
    /// Largest byte count a single `read` will return.
    pub max_read_chunk: usize,
}

impl<S> ChaosStream<S> {
    pub fn new(inner: S, seed: u64) -> ChaosStream<S> {
        ChaosStream { inner, state: splitmix64(seed), max_write_chunk: 7, max_read_chunk: 5 }
    }

    pub fn into_inner(self) -> S {
        self.inner
    }

    fn draw(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let cap = 1 + (self.draw() as usize) % self.max_read_chunk.max(1);
        let cap = cap.min(buf.len().max(1)).min(buf.len());
        if cap == 0 {
            return Ok(0);
        }
        self.inner.read(&mut buf[..cap])
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let cap = 1 + (self.draw() as usize) % self.max_write_chunk.max(1);
        let cap = cap.min(buf.len());
        if cap == 0 {
            return Ok(0);
        }
        self.inner.write(&buf[..cap])
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilient::{ResilientExchange, RetryPolicy};
    use crate::types::Status;

    /// Inner exchange that always succeeds and records what it saw.
    struct Recorder {
        seen: Vec<(Method, String)>,
    }

    impl Recorder {
        fn new() -> Recorder {
            Recorder { seen: Vec::new() }
        }
    }

    impl Exchange for Recorder {
        fn exchange(&mut self, req: Request) -> Result<Response> {
            self.seen.push((req.method, req.target.clone()));
            Ok(Response::html("<html>ok</html>"))
        }

        fn clear_session(&mut self) {}
    }

    fn chaotic(plan: ChaosPlan) -> ChaosTransport<Recorder> {
        ChaosTransport::new(Recorder::new(), plan, VirtualClock::shared())
    }

    #[test]
    fn disabled_plan_is_a_passthrough() {
        let mut ex = chaotic(ChaosPlan::default());
        for _ in 0..50 {
            assert!(ex.exchange(Request::get("/x")).is_ok());
        }
        assert_eq!(ex.stats().delivered(), 50);
        assert_eq!(ex.stats().total_faults(), 0);
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let run = |seed: u64| {
            let mut ex = chaotic(ChaosPlan::chaos().with_seed(seed));
            (0..300)
                .map(|i| match ex.exchange(Request::get(format!("/p/{i}"))) {
                    Ok(_) => 0u8,
                    Err(HttpError::Io(_)) => 1,
                    Err(HttpError::UnexpectedEof) => 2,
                    Err(HttpError::Malformed(_)) => 3,
                    Err(_) => 4,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11), "same seed must replay bit-identically");
        assert_ne!(run(11), run(12), "different seeds should differ");
    }

    #[test]
    fn aborted_before_is_not_delivered() {
        let plan =
            ChaosPlan { enabled: true, abort_before_per_mille: 1_000, ..ChaosPlan::default() };
        let mut ex = chaotic(plan);
        for _ in 0..10 {
            assert!(matches!(ex.exchange(Request::get("/x")), Err(HttpError::Io(_))));
        }
        assert_eq!(ex.stats().aborted_before(), 10);
        assert_eq!(ex.stats().delivered(), 0);
        assert!(ex.inner().seen.is_empty(), "server must never see aborted-before requests");
    }

    #[test]
    fn aborted_after_was_delivered() {
        let plan =
            ChaosPlan { enabled: true, abort_after_per_mille: 1_000, ..ChaosPlan::default() };
        let mut ex = chaotic(plan);
        assert!(ex.exchange(Request::get("/x")).is_err());
        assert_eq!(ex.stats().delivered(), 1);
        assert_eq!(ex.inner().seen.len(), 1, "the server processed it; only the response died");
    }

    #[test]
    fn post_redelivery_watchdog_counts_retries_of_failed_posts() {
        let plan = ChaosPlan { enabled: true, close_post_per_mille: 1_000, ..ChaosPlan::default() };
        let mut ex = chaotic(plan);
        let post = || Request::post_form("/signup", &[("user", "eve")]);
        assert!(matches!(ex.exchange(post()), Err(HttpError::UnexpectedEof)));
        assert_eq!(ex.stats().post_redeliveries(), 0);
        // The same POST again: a redelivery after a transport failure.
        let _ = ex.exchange(post());
        assert_eq!(ex.stats().post_redeliveries(), 1);
        // An unrelated GET in between must not disarm the watchdog.
        let mut ex = chaotic(ChaosPlan {
            enabled: true,
            close_post_per_mille: 1_000,
            ..ChaosPlan::default()
        });
        let _ = ex.exchange(post());
        let _ = ex.exchange(Request::get("/probe"));
        let _ = ex.exchange(post());
        assert_eq!(ex.stats().post_redeliveries(), 1);
    }

    #[test]
    fn successful_post_disarms_the_watchdog() {
        let mut ex = chaotic(ChaosPlan { enabled: true, ..ChaosPlan::default() });
        let post = || Request::post_form("/signup", &[("user", "eve")]);
        assert!(ex.exchange(post()).is_ok());
        assert!(ex.exchange(post()).is_ok());
        assert_eq!(ex.stats().post_redeliveries(), 0, "no failure, no redelivery");
    }

    #[test]
    fn edge_refusals_are_counted_but_not_as_handler_work() {
        // delivered − refused is the soak harness's "requests the
        // platform's handlers actually served" ledger line: shed 503s
        // and edge-limiter 429s reached the server but no handler, so
        // both must land in `refused` — an application-level 429 (no
        // edge marker) must not.
        struct Refuser {
            n: u32,
        }
        impl Exchange for Refuser {
            fn exchange(&mut self, _req: Request) -> Result<Response> {
                self.n += 1;
                Ok(match self.n % 3 {
                    0 => Response::error(Status::SERVICE_UNAVAILABLE, "overloaded")
                        .header("Retry-After", "1"),
                    1 => Response::error(Status::TOO_MANY_REQUESTS, "edge limited")
                        .header("Retry-After", "1")
                        .header(crate::resilient::H_EDGE_LIMITED, "1"),
                    _ => Response::error(Status::TOO_MANY_REQUESTS, "app limited")
                        .header("Retry-After", "1"),
                })
            }

            fn clear_session(&mut self) {}
        }
        let mut ex =
            ChaosTransport::new(Refuser { n: 0 }, ChaosPlan::default(), VirtualClock::shared());
        for _ in 0..9 {
            ex.exchange(Request::get("/x")).unwrap();
        }
        assert_eq!(ex.stats().delivered(), 9);
        assert_eq!(ex.stats().refused(), 6, "3 sheds + 3 edge 429s; app 429s are handler work");
    }

    #[test]
    fn stalls_advance_the_virtual_clock_only() {
        let plan = ChaosPlan {
            enabled: true,
            stall_per_mille: 1_000,
            stall_min_ms: 100,
            stall_max_ms: 100,
            ..ChaosPlan::default()
        };
        let clock = VirtualClock::shared();
        let mut ex = ChaosTransport::new(Recorder::new(), plan, Arc::clone(&clock));
        let wall = std::time::Instant::now();
        for _ in 0..20 {
            ex.exchange(Request::get("/x")).unwrap();
        }
        assert_eq!(clock.now_ms(), 2_000);
        assert_eq!(ex.stats().stalls(), 20);
        assert_eq!(ex.stats().stall_virtual_ms(), 2_000);
        assert!(wall.elapsed() < std::time::Duration::from_secs(1), "stalls must not sleep");
    }

    #[test]
    fn composes_with_resilient_retry_for_gets() {
        // Heavy chaos under a resilient retry layer: GETs either come
        // back clean or fail after the budget — never panic, and every
        // success carries an intact body.
        let plan = ChaosPlan::chaos().scaled(4.0).with_seed(99);
        let clock = VirtualClock::shared();
        let chaos = ChaosTransport::new(Recorder::new(), plan, Arc::clone(&clock));
        let mut ex = ResilientExchange::new(chaos, RetryPolicy::seeded(7), clock);
        let mut ok = 0;
        for i in 0..200 {
            if let Ok(resp) = ex.exchange(Request::get(format!("/p/{i}"))) {
                if resp.status == Status::OK {
                    assert_eq!(resp.body_string(), "<html>ok</html>");
                    ok += 1;
                }
            }
        }
        assert!(ok > 150, "retry layer should recover most GETs, got {ok}/200");
    }

    #[test]
    fn chaos_stream_fragments_but_preserves_bytes() {
        let payload = b"GET /profile/u1 HTTP/1.1\r\nHost: x\r\n\r\n";
        let mut sink = ChaosStream::new(Vec::<u8>::new(), 42);
        sink.write_all(payload).unwrap();
        assert_eq!(sink.into_inner(), payload.to_vec());

        let mut src = ChaosStream::new(&payload[..], 43);
        let mut out = Vec::new();
        let mut chunk = [0u8; 64];
        let mut reads = 0;
        loop {
            let n = src.read(&mut chunk).unwrap();
            if n == 0 {
                break;
            }
            assert!(n <= 5, "short reads must stay short, got {n}");
            out.extend_from_slice(&chunk[..n]);
            reads += 1;
        }
        assert_eq!(out, payload.to_vec());
        assert!(reads > payload.len() / 5, "reads should be fragmented");
    }
}
