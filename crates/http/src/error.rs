//! Error type shared by the HTTP parser, client and server.

use std::fmt;
use std::io;

/// Errors surfaced by this crate.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying socket / stream failure.
    Io(io::Error),
    /// The peer sent bytes that are not valid HTTP/1.1.
    Malformed(&'static str),
    /// A message exceeded a configured size limit (header block or body).
    TooLarge(&'static str),
    /// The connection closed before a complete message arrived.
    UnexpectedEof,
    /// Client-side: the URL could not be interpreted.
    BadUrl(String),
    /// Client-side: gave up after redirect/retry limits.
    TooManyRedirects,
    /// Client-side: the per-request virtual deadline elapsed before a
    /// usable response arrived (see [`crate::resilient`]).
    DeadlineExceeded,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed http: {what}"),
            HttpError::TooLarge(what) => write!(f, "message too large: {what}"),
            HttpError::UnexpectedEof => write!(f, "connection closed mid-message"),
            HttpError::BadUrl(u) => write!(f, "bad url: {u}"),
            HttpError::TooManyRedirects => write!(f, "too many redirects"),
            HttpError::DeadlineExceeded => write!(f, "request deadline exceeded"),
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, HttpError>;
