//! Request-target handling: paths, query strings and percent-encoding.

use std::borrow::Cow;
use std::fmt::Write as _;

/// Percent-encode a query component (RFC 3986 unreserved characters pass
/// through; space becomes `%20`).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            _ => {
                let _ = write!(out, "%{b:02X}");
            }
        }
    }
    out
}

/// Decode percent-escapes (and `+` as space, form-style). Invalid escapes
/// are passed through verbatim, as browsers do.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                if let Some(hex) = bytes.get(i + 1..i + 3) {
                    if let Some(v) =
                        std::str::from_utf8(hex).ok().and_then(|h| u8::from_str_radix(h, 16).ok())
                    {
                        out.push(v);
                        i += 3;
                        continue;
                    }
                }
                out.push(b'%');
                i += 1;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A parsed request target: decoded path segments plus query pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Target {
    /// The raw path (undecoded, no query string).
    pub raw_path: String,
    /// Decoded query key/value pairs in order.
    pub query: Vec<(String, String)>,
}

impl Target {
    /// Parse a request-target like `/friends?id=u1&page=2`.
    pub fn parse(target: &str) -> Target {
        let (path, query_str) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        Target { raw_path: path.to_string(), query: parse_query(query_str) }
    }

    /// The decoded path.
    pub fn path(&self) -> Cow<'_, str> {
        if self.raw_path.contains('%') {
            Cow::Owned(percent_decode(&self.raw_path))
        } else {
            Cow::Borrowed(&self.raw_path)
        }
    }

    /// First query value for `key`.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Rebuild the target string with encoding.
    pub fn to_target_string(&self) -> String {
        if self.query.is_empty() {
            self.raw_path.clone()
        } else {
            format!("{}?{}", self.raw_path, build_query(&self.query))
        }
    }
}

/// Parse a query string into decoded pairs.
pub fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Build an encoded query string from pairs.
pub fn build_query(pairs: &[(String, String)]) -> String {
    pairs
        .iter()
        .map(|(k, v)| {
            if v.is_empty() {
                percent_encode(k)
            } else {
                format!("{}={}", percent_encode(k), percent_encode(v))
            }
        })
        .collect::<Vec<_>>()
        .join("&")
}

/// Convenience builder: `url("/search", &[("school", "s1"), ("page", "0")])`.
pub fn url(path: &str, params: &[(&str, &str)]) -> String {
    if params.is_empty() {
        return path.to_string();
    }
    let pairs: Vec<(String, String)> =
        params.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    format!("{}?{}", path, build_query(&pairs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for s in ["hello world", "a&b=c", "100%", "ümlaut", "plain", ""] {
            assert_eq!(percent_decode(&percent_encode(s)), s);
        }
    }

    #[test]
    fn plus_decodes_to_space() {
        assert_eq!(percent_decode("a+b"), "a b");
    }

    #[test]
    fn invalid_escapes_pass_through() {
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%2"), "%2");
    }

    #[test]
    fn target_parsing() {
        let t = Target::parse("/friends?id=u1&page=2&flag");
        assert_eq!(t.path(), "/friends");
        assert_eq!(t.query_param("id"), Some("u1"));
        assert_eq!(t.query_param("page"), Some("2"));
        assert_eq!(t.query_param("flag"), Some(""));
        assert_eq!(t.query_param("missing"), None);
    }

    #[test]
    fn target_without_query() {
        let t = Target::parse("/index");
        assert_eq!(t.path(), "/index");
        assert!(t.query.is_empty());
        assert_eq!(t.to_target_string(), "/index");
    }

    #[test]
    fn encoded_values_decoded() {
        let t = Target::parse("/search?name=Lincoln%20High&x=a%26b");
        assert_eq!(t.query_param("name"), Some("Lincoln High"));
        assert_eq!(t.query_param("x"), Some("a&b"));
    }

    #[test]
    fn url_builder() {
        assert_eq!(url("/p", &[]), "/p");
        assert_eq!(url("/s", &[("q", "a b"), ("n", "2")]), "/s?q=a%20b&n=2");
    }

    #[test]
    fn query_round_trip() {
        let pairs = vec![
            ("school name".to_string(), "Lincoln High".to_string()),
            ("page".to_string(), "3".to_string()),
        ];
        assert_eq!(parse_query(&build_query(&pairs)), pairs);
    }
}
