//! Exchange abstraction plus the two implementations the crawler uses:
//! a real TCP client with keep-alive and a cookie jar, and an in-memory
//! exchange that calls a [`Handler`] directly (same semantics, no
//! sockets) for fast experiment sweeps.

use crate::cookie::CookieJar;
use crate::error::{HttpError, Result};
use crate::message::{Request, Response};
use crate::router::Handler;
use crate::types::Method;
use crate::wire::{decode_response, encode_request, Decoded};
use bytes::BytesMut;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Portable per-exchange state for crash-resume: everything a restarted
/// process needs to continue a lane's transport exactly where the dead
/// one left off. Plain data — serialization lives with the journal.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransportState {
    /// Cookie jar contents (the session cookie, chiefly).
    pub cookies: Vec<(String, String)>,
    /// Next attempt sequence number (see `ResilientExchange`).
    pub attempt_seq: u64,
    /// Retry-jitter PRNG state.
    pub jitter_state: u64,
}

/// Anything that can carry one HTTP exchange. The crawler is generic
/// over this so identical attack code runs over loopback TCP or
/// in-process.
pub trait Exchange {
    /// Send a request, get a response. Cookie handling is the
    /// implementation's responsibility.
    fn exchange(&mut self, req: Request) -> Result<Response>;

    /// Drop any session state (cookies), e.g. when switching to a
    /// different attacker account.
    fn clear_session(&mut self);

    /// Export resumable transport state. Transports with no portable
    /// state (e.g. chaos wrappers) return the default.
    fn transport_state(&self) -> TransportState {
        TransportState::default()
    }

    /// Restore state previously exported by [`Exchange::transport_state`].
    fn restore_transport_state(&mut self, _state: &TransportState) {}
}

/// A blocking TCP client bound to one server address.
///
/// Maintains a single keep-alive connection (reconnecting on failure)
/// and a cookie jar, which is how the paper's scripts behaved: one
/// logged-in fake account per crawler process.
pub struct Client {
    addr: SocketAddr,
    conn: Option<TcpStream>,
    jar: CookieJar,
    read_timeout: Duration,
}

/// Default socket read timeout for [`Client`] connections.
pub const DEFAULT_CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(10);

impl Client {
    pub fn new(addr: SocketAddr) -> Client {
        Client::with_read_timeout(addr, DEFAULT_CLIENT_READ_TIMEOUT)
    }

    /// Like [`Client::new`] with an explicit socket read timeout (how
    /// long one `read(2)` may block before the exchange errors out).
    pub fn with_read_timeout(addr: SocketAddr, read_timeout: Duration) -> Client {
        Client { addr, conn: None, jar: CookieJar::new(), read_timeout }
    }

    /// Change the read timeout; applies from the next (re)connect.
    pub fn set_read_timeout(&mut self, read_timeout: Duration) {
        self.read_timeout = read_timeout;
        self.conn = None;
    }

    /// The cookie jar (e.g. to inspect the session cookie in tests).
    pub fn cookies(&self) -> &CookieJar {
        &self.jar
    }

    fn connect(&mut self) -> Result<&mut TcpStream> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(self.read_timeout))?;
            stream.set_nodelay(true)?;
            self.conn = Some(stream);
        }
        Ok(self.conn.as_mut().expect("just set"))
    }

    fn try_once(&mut self, req: &Request) -> Result<Response> {
        let stream = self.connect()?;
        stream.write_all(&encode_request(req))?;
        let mut buf = BytesMut::with_capacity(4096);
        let mut chunk = [0u8; 4096];
        loop {
            match decode_response(&mut buf)? {
                Decoded::Complete(resp) => return Ok(resp),
                Decoded::Incomplete => {}
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(HttpError::UnexpectedEof);
            }
            buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// GET `path` (path + optional query, e.g. `/search?school=s1`).
    pub fn get(&mut self, path: impl Into<String>) -> Result<Response> {
        self.exchange(Request::get(path))
    }

    /// POST a form.
    pub fn post_form(&mut self, path: &str, form: &[(&str, &str)]) -> Result<Response> {
        self.exchange(Request::post_form(path, form))
    }
}

impl Exchange for Client {
    fn exchange(&mut self, mut req: Request) -> Result<Response> {
        req.headers.set("Host", self.addr.to_string());
        self.jar.apply(&mut req);
        // One retry on a stale keep-alive connection — but only for
        // idempotent methods. A POST (signup, login, direct message)
        // may already have been processed before the connection died;
        // replaying it here would silently double-send.
        let resp = match self.try_once(&req) {
            Ok(resp) => resp,
            Err(HttpError::Io(_) | HttpError::UnexpectedEof)
                if matches!(req.method, Method::Get | Method::Head) =>
            {
                self.conn = None;
                self.try_once(&req)?
            }
            Err(e) => {
                self.conn = None;
                return Err(e);
            }
        };
        self.jar.absorb(&resp);
        if resp.headers.connection_close() {
            self.conn = None;
        }
        Ok(resp)
    }

    fn clear_session(&mut self) {
        self.jar.clear();
        self.conn = None;
    }

    fn transport_state(&self) -> TransportState {
        TransportState { cookies: self.jar.entries().to_vec(), ..TransportState::default() }
    }

    fn restore_transport_state(&mut self, state: &TransportState) {
        self.jar.clear();
        for (name, value) in &state.cookies {
            self.jar.insert(name.clone(), value.clone());
        }
    }
}

/// In-memory exchange: calls the handler directly, still running the
/// full request/response + cookie semantics, but skipping sockets and
/// wire encoding. Used by experiment sweeps where the paper-relevant
/// behaviour (what pages say, how many requests were made) is identical.
pub struct DirectExchange {
    handler: Arc<dyn Handler>,
    jar: CookieJar,
}

impl DirectExchange {
    pub fn new(handler: Arc<dyn Handler>) -> DirectExchange {
        DirectExchange { handler, jar: CookieJar::new() }
    }

    pub fn cookies(&self) -> &CookieJar {
        &self.jar
    }
}

impl Exchange for DirectExchange {
    fn exchange(&mut self, mut req: Request) -> Result<Response> {
        self.jar.apply(&mut req);
        let resp = self.handler.handle(&req);
        self.jar.absorb(&resp);
        Ok(resp)
    }

    fn clear_session(&mut self) {
        self.jar.clear();
    }

    fn transport_state(&self) -> TransportState {
        TransportState { cookies: self.jar.entries().to_vec(), ..TransportState::default() }
    }

    fn restore_transport_state(&mut self, state: &TransportState) {
        self.jar.clear();
        for (name, value) in &state.cookies {
            self.jar.insert(name.clone(), value.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cookie::request_cookie;
    use crate::router::Router;
    use crate::server::Server;
    use crate::types::Status;

    fn cookie_router() -> Router {
        let mut router = Router::new();
        router.post("/login", |req, _| {
            let user = req.form_param("user").unwrap_or_default();
            Response::text("welcome").set_cookie("sid", &format!("sess-{user}"))
        });
        router.get("/whoami", |req, _| match request_cookie(req, "sid") {
            Some(sid) => Response::text(sid.to_string()),
            None => Response::error(Status::UNAUTHORIZED, "no session"),
        });
        router
    }

    #[test]
    fn tcp_client_round_trip_with_cookies() {
        let server = Server::start(Arc::new(cookie_router())).unwrap();
        let mut client = Client::new(server.addr());
        assert_eq!(client.get("/whoami").unwrap().status, Status::UNAUTHORIZED);
        client.post_form("/login", &[("user", "eve")]).unwrap();
        let resp = client.get("/whoami").unwrap();
        assert_eq!(resp.body_string(), "sess-eve");
        client.clear_session();
        assert_eq!(client.get("/whoami").unwrap().status, Status::UNAUTHORIZED);
        server.shutdown();
    }

    #[test]
    fn direct_exchange_matches_tcp_semantics() {
        let handler: Arc<dyn Handler> = Arc::new(cookie_router());
        let mut direct = DirectExchange::new(handler);
        assert_eq!(direct.exchange(Request::get("/whoami")).unwrap().status, Status::UNAUTHORIZED);
        direct.exchange(Request::post_form("/login", &[("user", "eve")])).unwrap();
        let resp = direct.exchange(Request::get("/whoami")).unwrap();
        assert_eq!(resp.body_string(), "sess-eve");
    }

    #[test]
    fn stale_keep_alive_post_is_not_replayed() {
        use std::net::TcpListener;
        use std::sync::mpsc;

        // Raw one-shot server: serve one request on the first connection,
        // then close it *without* `Connection: close`, leaving the client
        // holding a stale keep-alive socket.
        fn read_request_line(stream: &mut TcpStream) -> String {
            let mut buf = Vec::new();
            let mut chunk = [0u8; 1024];
            loop {
                let n = stream.read(&mut chunk).unwrap();
                assert!(n > 0, "peer closed before a full request arrived");
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") {
                    let text = String::from_utf8_lossy(&buf);
                    return text.lines().next().unwrap_or_default().to_string();
                }
            }
        }

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (closed_tx, closed_rx) = mpsc::channel();
        let server = std::thread::spawn(move || {
            {
                let (mut s, _) = listener.accept().unwrap();
                assert!(read_request_line(&mut s).starts_with("GET /warm"));
                s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok").unwrap();
            } // dropped: stale keep-alive from the client's point of view
            closed_tx.send(()).unwrap();
            // Only the client's reconnect (a fresh GET) may land here; a
            // replayed POST would show up as a POST request line.
            let (mut s, _) = listener.accept().unwrap();
            let line = read_request_line(&mut s);
            s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok").unwrap();
            line
        });

        let mut client = Client::new(addr);
        assert_eq!(client.get("/warm").unwrap().body_string(), "ok");
        closed_rx.recv().unwrap();
        // The POST hits the dead socket: it must error out, not be
        // transparently resent on a fresh connection.
        let err = client.post_form("/message/u9", &[("text", "hi")]).unwrap_err();
        assert!(
            matches!(err, HttpError::Io(_) | HttpError::UnexpectedEof),
            "expected a transport error, got {err}"
        );
        // A later idempotent request recovers by reconnecting.
        assert_eq!(client.get("/after").unwrap().body_string(), "ok");
        let second_conn_line = server.join().unwrap();
        assert!(
            second_conn_line.starts_with("GET /after"),
            "second connection saw '{second_conn_line}' — the POST was replayed"
        );
    }

    #[test]
    fn client_reconnects_after_server_closes_connection() {
        let mut router = Router::new();
        router.get("/once", |_, _| Response::text("bye").header("Connection", "close"));
        router.get("/again", |_, _| Response::text("hello"));
        let server = Server::start(Arc::new(router)).unwrap();
        let mut client = Client::new(server.addr());
        assert_eq!(client.get("/once").unwrap().body_string(), "bye");
        // The server closed the connection; the client must transparently
        // open a new one.
        assert_eq!(client.get("/again").unwrap().body_string(), "hello");
        server.shutdown();
    }
}
