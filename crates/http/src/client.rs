//! Exchange abstraction plus the two implementations the crawler uses:
//! a real TCP client with keep-alive and a cookie jar, and an in-memory
//! exchange that calls a [`Handler`] directly (same semantics, no
//! sockets) for fast experiment sweeps.

use crate::cookie::CookieJar;
use crate::error::{HttpError, Result};
use crate::message::{Request, Response};
use crate::router::Handler;
use crate::wire::{decode_response, encode_request, Decoded};
use bytes::BytesMut;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Anything that can carry one HTTP exchange. The crawler is generic
/// over this so identical attack code runs over loopback TCP or
/// in-process.
pub trait Exchange {
    /// Send a request, get a response. Cookie handling is the
    /// implementation's responsibility.
    fn exchange(&mut self, req: Request) -> Result<Response>;

    /// Drop any session state (cookies), e.g. when switching to a
    /// different attacker account.
    fn clear_session(&mut self);
}

/// A blocking TCP client bound to one server address.
///
/// Maintains a single keep-alive connection (reconnecting on failure)
/// and a cookie jar, which is how the paper's scripts behaved: one
/// logged-in fake account per crawler process.
pub struct Client {
    addr: SocketAddr,
    conn: Option<TcpStream>,
    jar: CookieJar,
    read_timeout: Duration,
}

impl Client {
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr, conn: None, jar: CookieJar::new(), read_timeout: Duration::from_secs(10) }
    }

    /// The cookie jar (e.g. to inspect the session cookie in tests).
    pub fn cookies(&self) -> &CookieJar {
        &self.jar
    }

    fn connect(&mut self) -> Result<&mut TcpStream> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(self.read_timeout))?;
            stream.set_nodelay(true)?;
            self.conn = Some(stream);
        }
        Ok(self.conn.as_mut().expect("just set"))
    }

    fn try_once(&mut self, req: &Request) -> Result<Response> {
        let stream = self.connect()?;
        stream.write_all(&encode_request(req))?;
        let mut buf = BytesMut::with_capacity(4096);
        let mut chunk = [0u8; 4096];
        loop {
            match decode_response(&mut buf)? {
                Decoded::Complete(resp) => return Ok(resp),
                Decoded::Incomplete => {}
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(HttpError::UnexpectedEof);
            }
            buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// GET `path` (path + optional query, e.g. `/search?school=s1`).
    pub fn get(&mut self, path: impl Into<String>) -> Result<Response> {
        self.exchange(Request::get(path))
    }

    /// POST a form.
    pub fn post_form(&mut self, path: &str, form: &[(&str, &str)]) -> Result<Response> {
        self.exchange(Request::post_form(path, form))
    }
}

impl Exchange for Client {
    fn exchange(&mut self, mut req: Request) -> Result<Response> {
        req.headers.set("Host", self.addr.to_string());
        self.jar.apply(&mut req);
        // One retry on a stale keep-alive connection.
        let resp = match self.try_once(&req) {
            Ok(resp) => resp,
            Err(HttpError::Io(_) | HttpError::UnexpectedEof) => {
                self.conn = None;
                self.try_once(&req)?
            }
            Err(e) => return Err(e),
        };
        self.jar.absorb(&resp);
        if resp.headers.connection_close() {
            self.conn = None;
        }
        Ok(resp)
    }

    fn clear_session(&mut self) {
        self.jar.clear();
        self.conn = None;
    }
}

/// In-memory exchange: calls the handler directly, still running the
/// full request/response + cookie semantics, but skipping sockets and
/// wire encoding. Used by experiment sweeps where the paper-relevant
/// behaviour (what pages say, how many requests were made) is identical.
pub struct DirectExchange {
    handler: Arc<dyn Handler>,
    jar: CookieJar,
}

impl DirectExchange {
    pub fn new(handler: Arc<dyn Handler>) -> DirectExchange {
        DirectExchange { handler, jar: CookieJar::new() }
    }

    pub fn cookies(&self) -> &CookieJar {
        &self.jar
    }
}

impl Exchange for DirectExchange {
    fn exchange(&mut self, mut req: Request) -> Result<Response> {
        self.jar.apply(&mut req);
        let resp = self.handler.handle(&req);
        self.jar.absorb(&resp);
        Ok(resp)
    }

    fn clear_session(&mut self) {
        self.jar.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cookie::request_cookie;
    use crate::router::Router;
    use crate::server::Server;
    use crate::types::Status;

    fn cookie_router() -> Router {
        let mut router = Router::new();
        router.post("/login", |req, _| {
            let user = req.form_param("user").unwrap_or_default();
            Response::text("welcome").set_cookie("sid", &format!("sess-{user}"))
        });
        router.get("/whoami", |req, _| match request_cookie(req, "sid") {
            Some(sid) => Response::text(sid.to_string()),
            None => Response::error(Status::UNAUTHORIZED, "no session"),
        });
        router
    }

    #[test]
    fn tcp_client_round_trip_with_cookies() {
        let server = Server::start(Arc::new(cookie_router())).unwrap();
        let mut client = Client::new(server.addr());
        assert_eq!(client.get("/whoami").unwrap().status, Status::UNAUTHORIZED);
        client.post_form("/login", &[("user", "eve")]).unwrap();
        let resp = client.get("/whoami").unwrap();
        assert_eq!(resp.body_string(), "sess-eve");
        client.clear_session();
        assert_eq!(client.get("/whoami").unwrap().status, Status::UNAUTHORIZED);
        server.shutdown();
    }

    #[test]
    fn direct_exchange_matches_tcp_semantics() {
        let handler: Arc<dyn Handler> = Arc::new(cookie_router());
        let mut direct = DirectExchange::new(handler);
        assert_eq!(direct.exchange(Request::get("/whoami")).unwrap().status, Status::UNAUTHORIZED);
        direct.exchange(Request::post_form("/login", &[("user", "eve")])).unwrap();
        let resp = direct.exchange(Request::get("/whoami")).unwrap();
        assert_eq!(resp.body_string(), "sess-eve");
    }

    #[test]
    fn client_reconnects_after_server_closes_connection() {
        let mut router = Router::new();
        router.get("/once", |_, _| Response::text("bye").header("Connection", "close"));
        router.get("/again", |_, _| Response::text("hello"));
        let server = Server::start(Arc::new(router)).unwrap();
        let mut client = Client::new(server.addr());
        assert_eq!(client.get("/once").unwrap().body_string(), "bye");
        // The server closed the connection; the client must transparently
        // open a new one.
        assert_eq!(client.get("/again").unwrap().body_string(), "hello");
        server.shutdown();
    }
}
