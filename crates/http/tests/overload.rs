//! TCP-level integration tests for the server's overload defenses:
//! queue-saturation shedding, the concurrent-connection cap, graceful
//! drain, and survival under transport-chaotic clients. These exercise
//! the real accept loop / worker pool over loopback sockets — the unit
//! tests inside `server.rs` cover per-feature behavior; this file
//! covers the *contention* behavior that only shows up with competing
//! connections.

use bytes::BytesMut;
use hsp_http::wire::{decode_response, encode_request, Decoded};
use hsp_http::{
    is_shed, ChaosPlan, ChaosTransport, Client, Exchange, RateLimit, Request, ResilientExchange,
    Response, RetryPolicy, Router, Server, ServerConfig,
};
use hsp_obs::{Registry, VirtualClock};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Router with a fast route and a deliberately slow one (real sleep:
/// these tests are about wall-clock contention in the worker pool).
fn contention_router(slow_ms: u64) -> Arc<Router> {
    let mut router = Router::new();
    router.get("/ping", |_, _| Response::text("pong"));
    router.get("/slow", move |_, _| {
        std::thread::sleep(Duration::from_millis(slow_ms));
        Response::text("done")
    });
    Arc::new(router)
}

/// One request over its own connection, raw sockets: returns the
/// decoded response, or `Err` if the server closed/reset the
/// connection first (which the shed path may legitimately do — the
/// 503-then-close race documented on `shed()`).
fn one_raw(addr: SocketAddr, req: &Request) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(&encode_request(req))?;
    let mut buf = BytesMut::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Ok(Decoded::Complete(resp)) = decode_response(&mut buf) {
            return Ok(resp);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn counter(reg: &Registry, key: &str) -> u64 {
    reg.snapshot().counters.get(key).copied().unwrap_or(0)
}

#[test]
fn queue_saturation_sheds_fast_with_retry_after() {
    let registry = Registry::shared();
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        metrics: Some(Arc::clone(&registry)),
        ..ServerConfig::default()
    };
    let server = Server::start_with(contention_router(200), config).unwrap();
    let addr = server.addr();

    // 8 simultaneous one-shot connections against 1 worker + queue of 1:
    // at most 2 can be admitted up front, so most of the burst must be
    // shed — and shed *fast*, not after a slow request's worth of wait.
    let handles: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let started = Instant::now();
                (one_raw(addr, &Request::get("/slow")), started.elapsed())
            })
        })
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let mut served = 0;
    for (result, elapsed) in &outcomes {
        match result {
            Ok(resp) if resp.status.code() == 200 => served += 1,
            Ok(resp) => {
                assert!(is_shed(resp), "unexpected non-shed refusal: {}", resp.status.code());
                assert!(
                    *elapsed < Duration::from_millis(150),
                    "shed reply took {elapsed:?}; shedding must not wait behind slow requests"
                );
            }
            // 503-then-close can race the client's read into ECONNRESET.
            Err(_) => {}
        }
    }
    assert!(served >= 1, "no request was served at all");
    let shed = counter(&registry, "http_server_shed_total{reason=\"queue_full\"}");
    assert!(shed > 0, "burst of 8 against capacity 2 never hit the queue_full shed path");
    server.shutdown();
}

#[test]
fn connection_cap_sheds_excess_connections() {
    let registry = Registry::shared();
    let config = ServerConfig {
        workers: 4,
        queue_depth: 16,
        max_connections: 2,
        metrics: Some(Arc::clone(&registry)),
        ..ServerConfig::default()
    };
    let server = Server::start_with(contention_router(400), config).unwrap();
    let addr = server.addr();

    // Occupy the full connection budget with two in-flight slow
    // requests, then probe: the third connection must be refused even
    // though workers and queue slots are free.
    let holders: Vec<_> =
        (0..2).map(|_| std::thread::spawn(move || one_raw(addr, &Request::get("/slow")))).collect();
    std::thread::sleep(Duration::from_millis(100));

    // An Err here is the shed-close race; the metric below counts it
    // either way.
    if let Ok(resp) = one_raw(addr, &Request::get("/ping")) {
        assert!(is_shed(&resp), "over-cap probe got {}", resp.status.code());
    }
    let shed = counter(&registry, "http_server_shed_total{reason=\"max_connections\"}");
    assert!(shed > 0, "probe beyond max_connections was not shed");

    for h in holders {
        let resp = h.join().unwrap().expect("admitted connection must complete");
        assert_eq!(resp.body_string(), "done", "in-flight request disturbed by the shed");
    }
    server.shutdown();
}

#[test]
fn graceful_drain_completes_in_flight_and_sheds_new_connections() {
    let registry = Registry::shared();
    let config = ServerConfig {
        drain_deadline: Duration::from_secs(2),
        metrics: Some(Arc::clone(&registry)),
        ..ServerConfig::default()
    };
    let server = Server::start_with(contention_router(400), config).unwrap();
    let addr = server.addr();

    let in_flight = std::thread::spawn(move || one_raw(addr, &Request::get("/slow")));
    std::thread::sleep(Duration::from_millis(100)); // let it reach the handler

    server.begin_drain();
    // New work after drain begins is refused (503 or immediate close),
    // never served and never left hanging.
    if let Ok(resp) = one_raw(addr, &Request::get("/ping")) {
        assert_eq!(resp.status.code(), 503, "drain served new request: {}", resp.status.code());
    }

    // ...while the request admitted before the drain still completes.
    let resp = in_flight.join().unwrap().expect("in-flight request dropped by drain");
    assert_eq!(resp.body_string(), "done");

    let started = Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "shutdown exceeded drain deadline by too much: {:?}",
        started.elapsed()
    );
}

#[test]
fn chaotic_clients_cannot_crash_the_server() {
    let registry = Registry::shared();
    let config = ServerConfig {
        workers: 4,
        read_timeout: Duration::from_millis(500),
        request_deadline: Duration::from_secs(2),
        idle_timeout: Duration::from_millis(500),
        rate_limit: Some(RateLimit { burst: 1000, per_sec: 10_000.0 }),
        metrics: Some(Arc::clone(&registry)),
        ..ServerConfig::default()
    };
    let server = Server::start_with(contention_router(5), config).unwrap();
    let addr = server.addr();

    // Three clients whose transport tears writes apart, truncates,
    // corrupts, stalls and aborts mid-exchange (ChaosPlan::chaos), each
    // behind the retry layer. Individual requests may fail; the server
    // must shrug all of it off.
    let handles: Vec<_> = (0..3)
        .map(|i| {
            std::thread::spawn(move || {
                let clock = VirtualClock::shared();
                let chaotic = ChaosTransport::new(
                    Client::new(addr),
                    ChaosPlan::chaos().with_seed(0xC4A0 + i),
                    Arc::clone(&clock),
                );
                let stats = chaotic.stats();
                let mut ex =
                    ResilientExchange::new(chaotic, RetryPolicy::seeded(0x50AC + i), clock);
                let mut ok = 0u64;
                for _ in 0..60 {
                    if matches!(ex.exchange(Request::get("/ping")), Ok(r) if r.status.code() == 200)
                    {
                        ok += 1;
                    }
                }
                (ok, stats.total_faults())
            })
        })
        .collect();

    let mut ok_total = 0;
    let mut faults_total = 0;
    for h in handles {
        let (ok, faults) = h.join().unwrap();
        ok_total += ok;
        faults_total += faults;
    }
    assert!(faults_total > 0, "chaos plan injected nothing; test exercised nothing");
    assert!(ok_total > 0, "retry layer recovered nothing through the chaos");

    // The server is still fully healthy: a clean client gets a clean
    // answer, and the garbage the chaos layer produced was rejected as
    // decode errors, not crashes.
    let resp = one_raw(addr, &Request::get("/ping")).expect("server unhealthy after chaos");
    assert_eq!(resp.body_string(), "pong");
    assert!(counter(&registry, "http_server_requests_total") > 0);
    server.shutdown();
}
