//! Property tests for the HTTP codec: decoding must invert encoding for
//! any representable message, decoding must be chunking-invariant, and
//! the decoder must never panic on arbitrary bytes.

use bytes::{Bytes, BytesMut};
use hsp_http::wire::{decode_request, decode_response, encode_request, encode_response, Decoded};
use hsp_http::{Headers, Method, Request, Response, Status};
use proptest::prelude::*;

fn arb_method() -> impl Strategy<Value = Method> {
    prop_oneof![Just(Method::Get), Just(Method::Post), Just(Method::Head)]
}

fn arb_target() -> impl Strategy<Value = String> {
    // Token-ish paths with optional query; no spaces or control chars.
    "/[a-zA-Z0-9_/.-]{0,24}(\\?[a-zA-Z0-9=&%_.-]{0,24})?"
}

fn arb_headers() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec(("[A-Za-z][A-Za-z0-9-]{0,12}", "[ -~&&[^\r\n]]{0,24}"), 0..5).prop_map(
        |pairs| {
            pairs
                .into_iter()
                // Reserve framing-sensitive names for the codec itself.
                .filter(|(n, _)| {
                    !n.eq_ignore_ascii_case("content-length")
                        && !n.eq_ignore_ascii_case("connection")
                })
                .map(|(n, v)| (n, v.trim().to_string()))
                .collect()
        },
    )
}

fn arb_body() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..256)
}

proptest! {
    #[test]
    fn request_encode_decode_round_trip(
        method in arb_method(),
        target in arb_target(),
        headers in arb_headers(),
        body in arb_body(),
    ) {
        let mut req = Request {
            method,
            target,
            headers: Headers::new(),
            body: Bytes::from(body),
        };
        for (n, v) in &headers {
            req.headers.append(n.clone(), v.clone());
        }
        let wire = encode_request(&req);
        let mut buf = BytesMut::from(&wire[..]);
        let decoded = match decode_request(&mut buf).unwrap() {
            Decoded::Complete(r) => r,
            Decoded::Incomplete => panic!("incomplete"),
        };
        prop_assert_eq!(decoded.method, req.method);
        prop_assert_eq!(&decoded.target, &req.target);
        prop_assert_eq!(&decoded.body, &req.body);
        for (n, _) in &headers {
            let sent: Vec<&str> = req.headers.get_all(n).collect();
            let got: Vec<&str> = decoded.headers.get_all(n).collect();
            prop_assert_eq!(got, sent);
        }
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn response_round_trip_and_chunking_invariance(
        code in prop_oneof![Just(200u16), Just(302), Just(404), Just(429), Just(500)],
        headers in arb_headers(),
        body in arb_body(),
        chunk_size in 1usize..64,
    ) {
        let mut resp = Response::new(Status(code));
        for (n, v) in &headers {
            resp.headers.append(n.clone(), v.clone());
        }
        resp.body = Bytes::from(body);
        let wire = encode_response(&resp);

        // Feed in arbitrary chunk sizes; the decoder must produce the
        // same message and consume exactly the wire bytes.
        let mut buf = BytesMut::new();
        let mut decoded = None;
        for chunk in wire.chunks(chunk_size) {
            buf.extend_from_slice(chunk);
            if decoded.is_none() {
                if let Decoded::Complete(r) = decode_response(&mut buf).unwrap() {
                    decoded = Some(r);
                }
            }
        }
        let decoded = decoded.expect("message completed");
        prop_assert_eq!(decoded.status, resp.status);
        prop_assert_eq!(&decoded.body, &resp.body);
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = BytesMut::from(&bytes[..]);
        let _ = decode_request(&mut buf);
        let mut buf = BytesMut::from(&bytes[..]);
        let _ = decode_response(&mut buf);
    }

    #[test]
    fn pipelined_stream_decodes_in_order_regardless_of_chunking(
        reqs in prop::collection::vec(
            (arb_method(), arb_target(), arb_body()),
            1..5,
        ),
        chunk_size in 1usize..96,
    ) {
        // Keep-alive framing: N back-to-back messages on one stream must
        // come out as exactly N messages, in order, no matter how the
        // bytes are sliced — this is the invariant the server's
        // connection loop leans on.
        let reqs: Vec<Request> = reqs
            .into_iter()
            .map(|(method, target, body)| Request {
                method,
                target,
                headers: Headers::new(),
                body: Bytes::from(body),
            })
            .collect();
        let mut wire = Vec::new();
        for req in &reqs {
            wire.extend_from_slice(&encode_request(req));
        }

        let mut buf = BytesMut::new();
        let mut decoded = Vec::new();
        for chunk in wire.chunks(chunk_size) {
            buf.extend_from_slice(chunk);
            while let Decoded::Complete(r) = decode_request(&mut buf).unwrap() {
                decoded.push(r);
            }
        }
        prop_assert_eq!(decoded.len(), reqs.len());
        for (got, sent) in decoded.iter().zip(&reqs) {
            prop_assert_eq!(got.method, sent.method);
            prop_assert_eq!(&got.target, &sent.target);
            prop_assert_eq!(&got.body, &sent.body);
        }
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn strict_prefix_never_completes(
        method in arb_method(),
        target in arb_target(),
        headers in arb_headers(),
        body in arb_body(),
        cut in 0.0f64..1.0,
    ) {
        // Content-Length framing is exact: any strict prefix of a valid
        // message must leave the decoder waiting (or, once the truncated
        // head crosses a limit, erroring) — never yield a message early.
        // A decoder that completes early misframes every keep-alive
        // connection it ever serves.
        let mut req = Request {
            method,
            target,
            headers: Headers::new(),
            body: Bytes::from(body),
        };
        for (n, v) in &headers {
            req.headers.append(n.clone(), v.clone());
        }
        let wire = encode_request(&req);
        let len = ((wire.len() as f64) * cut) as usize; // < wire.len()
        let mut buf = BytesMut::from(&wire[..len]);
        if let Ok(Decoded::Complete(_)) = decode_request(&mut buf) {
            prop_assert!(false, "completed from a {len}-byte prefix of {} bytes", wire.len());
        }
    }

    #[test]
    fn mutated_valid_messages_never_panic_and_never_overread(
        target in arb_target(),
        body in arb_body(),
        flips in prop::collection::vec((0usize..4096, any::<u8>()), 1..8),
    ) {
        // Corpus-style fuzzing: start from a well-formed message (the
        // interesting neighborhood) and flip a few bytes. Whatever the
        // decoder makes of it — complete, incomplete, or error — it must
        // not panic, and on success it must never hand back more body
        // than the buffer held.
        let req = Request {
            method: Method::Post,
            target,
            headers: Headers::new(),
            body: Bytes::from(body),
        };
        let mut wire = encode_request(&req).to_vec();
        for (idx, byte) in &flips {
            let i = idx % wire.len();
            wire[i] = *byte;
        }
        let total = wire.len();
        let mut buf = BytesMut::from(&wire[..]);
        if let Ok(Decoded::Complete(r)) = decode_request(&mut buf) {
            prop_assert!(r.body.len() + buf.len() <= total);
        }
    }

    #[test]
    fn decoder_never_panics_on_headerish_soup(
        parts in prop::collection::vec(
            prop_oneof![
                Just("GET ".to_string()),
                Just("/x HTTP/1.1".to_string()),
                Just("\r\n".to_string()),
                Just("\r\n\r\n".to_string()),
                Just("Content-Length: ".to_string()),
                Just("999999999999999999999".to_string()),
                Just(": ".to_string()),
                "[ -~]{0,12}",
            ],
            0..20,
        )
    ) {
        let soup: String = parts.concat();
        let mut buf = BytesMut::from(soup.as_bytes());
        let _ = decode_request(&mut buf);
    }
}
