//! Property tests for the histogram bucketing scheme: bucket bounds are
//! monotone, the index map is monotone and consistent with the bounds,
//! and `record`/`quantile` never panic anywhere in `u64 × f64`.

use hsp_obs::hist::{bucket_index, bucket_upper, Histogram, NUM_BUCKETS};
use proptest::prelude::*;

proptest! {
    /// Bucket upper bounds strictly increase with the slot index.
    #[test]
    fn bucket_bounds_are_strictly_monotone(i in 0usize..NUM_BUCKETS - 1) {
        prop_assert!(bucket_upper(i) < bucket_upper(i + 1));
    }

    /// Every bound maps back to its own slot, so buckets tile the range.
    #[test]
    fn bound_maps_back_to_its_slot(i in 0usize..NUM_BUCKETS) {
        prop_assert_eq!(bucket_index(bucket_upper(i)), i);
    }

    /// The index map is monotone non-decreasing in the value.
    #[test]
    fn index_is_monotone(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        if v > 0 {
            prop_assert!(bucket_index(v - 1) <= i);
        }
        if v < u64::MAX {
            prop_assert!(bucket_index(v + 1) >= i);
        }
        // The value lies at or below its bucket's bound.
        prop_assert!(v <= bucket_upper(i));
    }

    /// record / quantile never panic and stay internally consistent
    /// across u64 extremes and arbitrary (including NaN/±inf) q.
    #[test]
    fn record_and_quantile_never_panic(
        values in proptest::collection::vec(any::<u64>(), 0..64),
        qs in proptest::collection::vec(any::<f64>(), 0..8),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        for q in qs {
            let x = h.quantile(q);
            if values.is_empty() {
                prop_assert_eq!(x, 0);
            } else {
                prop_assert!(x <= h.max());
            }
        }
        if !values.is_empty() {
            let lo = *values.iter().min().unwrap();
            let hi = *values.iter().max().unwrap();
            prop_assert_eq!(h.min(), lo);
            prop_assert_eq!(h.max(), hi);
            // Full-weight quantile reaches the maximum exactly.
            prop_assert_eq!(h.quantile(1.0), hi);
            prop_assert!(h.quantile(0.0) >= lo.min(bucket_upper(bucket_index(lo))));
        }
    }

    /// Quantiles are monotone in q.
    #[test]
    fn quantiles_are_monotone_in_q(
        values in proptest::collection::vec(any::<u64>(), 1..64),
        a in 0.0f64..=1.0,
        b in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi));
    }

    /// Snapshots round-trip through serde_json for arbitrary contents.
    #[test]
    fn snapshot_serde_round_trip(values in proptest::collection::vec(any::<u64>(), 0..32)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: hsp_obs::HistogramSnapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(snap, back);
    }
}
