//! Scoped wall-clock span timers.

use crate::hist::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// Times a scope and records elapsed **microseconds** into a histogram
/// when dropped (or earlier via [`SpanGuard::finish`]).
///
/// ```
/// let reg = hsp_obs::Registry::new();
/// {
///     let _span = reg.span("phase_crawl_us");
///     // ... work ...
/// } // records here
/// assert_eq!(reg.snapshot().histogram("phase_crawl_us").unwrap().count, 1);
/// ```
pub struct SpanGuard {
    hist: Arc<Histogram>,
    start: Instant,
    done: bool,
}

impl SpanGuard {
    pub fn new(hist: Arc<Histogram>) -> SpanGuard {
        SpanGuard { hist, start: Instant::now(), done: false }
    }

    /// Elapsed microseconds so far, without stopping the span.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Stop now and record, returning the elapsed microseconds.
    pub fn finish(mut self) -> u64 {
        let us = self.elapsed_us();
        self.hist.record(us);
        self.done = true;
        us
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.done {
            self.hist.record(self.start.elapsed().as_micros() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_records_once() {
        let h = Arc::new(Histogram::new());
        let span = SpanGuard::new(Arc::clone(&h));
        let us = span.finish();
        assert_eq!(h.count(), 1, "finish consumed the guard; drop must not double-record");
        assert_eq!(h.sum(), us);
    }

    #[test]
    fn drop_records() {
        let h = Arc::new(Histogram::new());
        drop(SpanGuard::new(Arc::clone(&h)));
        assert_eq!(h.count(), 1);
    }
}
