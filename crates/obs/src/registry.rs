//! Named-metric registry with text exposition and serde snapshots.

use crate::counter::{Counter, Gauge};
use crate::events::{Event, EventLog, Level};
use crate::hist::{Histogram, HistogramSnapshot};
use crate::span::SpanGuard;
use crate::trace::FlightRecorder;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// Metric naming scheme (see README "Observability"): snake_case base
/// name with the unit as a suffix (`_total`, `_us`, `_ms`, `_bytes`),
/// optional Prometheus-style labels embedded in the key:
/// `http_route_requests_total{route="/profile/:uid"}`.
#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A concurrent registry of named counters, gauges and histograms plus
/// one bounded event log. Metric resolution takes a read-lock; resolved
/// handles (`Arc<Counter>` etc.) record with atomics only, so hot paths
/// resolve once and keep the handle.
pub struct Registry {
    metrics: RwLock<HashMap<String, Metric>>,
    events: EventLog,
    trace: Arc<FlightRecorder>,
    start: Instant,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    pub fn new() -> Registry {
        Registry {
            metrics: RwLock::new(HashMap::new()),
            events: EventLog::new(1024),
            trace: Arc::new(FlightRecorder::new()),
            start: Instant::now(),
        }
    }

    /// Shared-ownership constructor (the common case).
    pub fn shared() -> Arc<Registry> {
        Arc::new(Registry::new())
    }

    /// Milliseconds since the registry was created.
    pub fn uptime_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// The registry's event ring.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Shorthand: push an event onto the ring.
    pub fn event(&self, level: Level, target: &str, message: impl Into<String>) {
        self.events.push(level, target, message);
    }

    /// The registry's flight recorder (disabled until
    /// [`Registry::enable_tracing`] runs — `record` is then a single
    /// atomic load, so untraced runs pay nothing).
    pub fn tracer(&self) -> &Arc<FlightRecorder> {
        &self.trace
    }

    /// Enable causal tracing with a per-lane span bound, and surface
    /// ring overflow as the `obs_trace_dropped_total` counter so a
    /// saturated recorder is visible rather than silent.
    pub fn enable_tracing(&self, lane_capacity: usize) {
        self.trace.attach_dropped_counter(self.counter("obs_trace_dropped_total"));
        self.trace.enable(lane_capacity);
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        extract: impl Fn(&Metric) -> Option<Arc<T>>,
        make: impl Fn() -> Metric,
    ) -> Arc<T> {
        if let Some(metric) = self.metrics.read().get(name) {
            if let Some(found) = extract(metric) {
                return found;
            }
        }
        let mut map = self.metrics.write();
        let metric = map.entry(name.to_string()).or_insert_with(&make);
        match extract(metric) {
            Some(found) => found,
            None => {
                // Same name registered under a different kind: a caller
                // bug. Hand back a detached instance (recording goes
                // nowhere) rather than panicking mid-request.
                drop(map);
                self.events.push(
                    Level::Warn,
                    "obs.registry",
                    format!("metric kind mismatch for '{name}'"),
                );
                extract(&make()).expect("constructor yields requested kind")
            }
        }
    }

    /// Get or create a counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.get_or_insert(
            name,
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || Metric::Counter(Arc::new(Counter::new())),
        )
    }

    /// Get or create a gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || Metric::Gauge(Arc::new(Gauge::new())),
        )
    }

    /// Get or create a histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || Metric::Histogram(Arc::new(Histogram::new())),
        )
    }

    /// Counter with labels, e.g.
    /// `counter_with("x_total", &[("route", "/p/:uid")])` →
    /// `x_total{route="/p/:uid"}`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.counter(&labeled(name, labels))
    }

    /// Gauge with labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.gauge(&labeled(name, labels))
    }

    /// Histogram with labels.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram(&labeled(name, labels))
    }

    /// Start a scoped wall-clock timer; on drop it records elapsed
    /// microseconds into histogram `name` (suffix it `_us`).
    pub fn span(&self, name: &str) -> SpanGuard {
        SpanGuard::new(self.histogram(name))
    }

    /// Point-in-time copy of every metric (serializable, round-trips
    /// through `serde_json`).
    pub fn snapshot(&self) -> Snapshot {
        let map = self.metrics.read();
        let mut snap = Snapshot { uptime_ms: self.uptime_ms(), ..Snapshot::default() };
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap.events = self.events.recent();
        snap
    }

    /// Prometheus-style text exposition (`GET /__metrics` body).
    /// Counters and gauges are single sample lines; histograms render
    /// as summaries: `{quantile="0.5|0.95|0.99"}`, `_count`, `_sum`.
    pub fn render_prometheus(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::with_capacity(4096);
        let mut typed: BTreeMap<&str, &str> = BTreeMap::new();
        for name in snap.counters.keys() {
            typed.insert(base_name(name), "counter");
        }
        for name in snap.gauges.keys() {
            typed.insert(base_name(name), "gauge");
        }
        for name in snap.histograms.keys() {
            typed.insert(base_name(name), "summary");
        }
        for (base, kind) in &typed {
            out.push_str(&format!("# TYPE {base} {kind}\n"));
            for (name, v) in &snap.counters {
                if base_name(name) == *base {
                    out.push_str(&format!("{name} {v}\n"));
                }
            }
            for (name, v) in &snap.gauges {
                if base_name(name) == *base {
                    out.push_str(&format!("{name} {v}\n"));
                }
            }
            for (name, h) in &snap.histograms {
                if base_name(name) == *base {
                    for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                        out.push_str(&format!("{} {v}\n", with_label(name, "quantile", q)));
                    }
                    out.push_str(&format!("{} {}\n", suffixed(name, "_count"), h.count));
                    out.push_str(&format!("{} {}\n", suffixed(name, "_sum"), h.sum));
                }
            }
        }
        out
    }
}

/// `name{k="v",...}` — the embedded-label key format.
fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let body: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", v.replace('"', "'"))).collect();
    format!("{name}{{{}}}", body.join(","))
}

/// Metric key without the label block.
fn base_name(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

/// Insert an extra label into a (possibly already labeled) key.
fn with_label(key: &str, k: &str, v: &str) -> String {
    match key.strip_suffix('}') {
        Some(head) => format!("{head},{k}=\"{v}\"}}"),
        None => format!("{key}{{{k}=\"{v}\"}}"),
    }
}

/// Append a suffix to the base name, keeping the label block in place.
fn suffixed(key: &str, suffix: &str) -> String {
    match key.find('{') {
        Some(i) => format!("{}{suffix}{}", &key[..i], &key[i..]),
        None => format!("{key}{suffix}"),
    }
}

/// Serializable point-in-time copy of a [`Registry`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Snapshot {
    pub uptime_ms: u64,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    pub events: Vec<Event>,
}

impl Snapshot {
    /// Counter value by exact key (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by exact key (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram snapshot by exact key.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_metric() {
        let reg = Registry::new();
        reg.counter("hits_total").inc();
        reg.counter("hits_total").add(2);
        assert_eq!(reg.snapshot().counter("hits_total"), 3);
    }

    #[test]
    fn labels_embed_into_key() {
        let reg = Registry::new();
        reg.counter_with("req_total", &[("route", "/profile/:uid")]).inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("req_total{route=\"/profile/:uid\"}"), 1);
    }

    #[test]
    fn kind_mismatch_yields_detached_metric_and_warns() {
        let reg = Registry::new();
        reg.counter("x").inc();
        let g = reg.gauge("x"); // wrong kind: detached
        g.set(99);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x"), 1, "original metric untouched");
        assert!(snap.events.iter().any(|e| e.level == Level::Warn));
    }

    #[test]
    fn prometheus_rendering_contains_types_and_quantiles() {
        let reg = Registry::new();
        reg.counter("c_total").add(7);
        reg.gauge("g").set(-2);
        let h = reg.histogram_with("lat_us", &[("route", "/x")]);
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE c_total counter"));
        assert!(text.contains("c_total 7"));
        assert!(text.contains("g -2"));
        assert!(text.contains("# TYPE lat_us summary"));
        assert!(text.contains("lat_us{route=\"/x\",quantile=\"0.5\"}"));
        assert!(text.contains("lat_us_count{route=\"/x\"} 3"));
        assert!(text.contains("lat_us_sum{route=\"/x\"} 60"));
    }

    #[test]
    fn snapshot_round_trips_through_serde_json() {
        let reg = Registry::new();
        reg.counter("a_total").add(5);
        reg.gauge("b").set(3);
        reg.histogram("h_us").record(123);
        reg.event(Level::Info, "test", "hello");
        let snap = reg.snapshot();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.counter("a_total"), 5);
        assert_eq!(back.gauge("b"), 3);
        assert_eq!(back.histogram("h_us").unwrap().count, 1);
        assert_eq!(back.events.len(), 1);
    }

    #[test]
    fn span_records_into_histogram() {
        let reg = Registry::new();
        {
            let _span = reg.span("phase_test_us");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = reg.snapshot();
        let h = snap.histogram("phase_test_us").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.sum >= 1_000, "recorded {} µs", h.sum);
    }
}
