//! Pre-resolved per-route HTTP metric bundle.
//!
//! Resolving metrics by name costs a registry read-lock, so per-request
//! code registers a [`RouteMetrics`] per route *once* (at router build
//! time) and then [`RouteMetrics::observe`] is pure atomic adds — the
//! hot-path contract the server instrumentation relies on.

use crate::counter::Counter;
use crate::hist::Histogram;
use crate::registry::Registry;
use std::sync::Arc;

/// Handles for one route pattern (e.g. `/profile/:uid`).
pub struct RouteMetrics {
    /// The route pattern these metrics are labeled with.
    pub route: String,
    pub requests: Arc<Counter>,
    class_2xx: Arc<Counter>,
    class_3xx: Arc<Counter>,
    class_4xx: Arc<Counter>,
    class_5xx: Arc<Counter>,
    pub latency_us: Arc<Histogram>,
    pub request_bytes: Arc<Counter>,
    pub response_bytes: Arc<Counter>,
}

impl RouteMetrics {
    /// Resolve (creating if needed) all handles for `route`.
    pub fn register(reg: &Registry, route: &str) -> RouteMetrics {
        let labels = &[("route", route)][..];
        let class = |c: &str| {
            reg.counter_with("http_route_status_total", &[("route", route), ("class", c)])
        };
        RouteMetrics {
            route: route.to_string(),
            requests: reg.counter_with("http_route_requests_total", labels),
            class_2xx: class("2xx"),
            class_3xx: class("3xx"),
            class_4xx: class("4xx"),
            class_5xx: class("5xx"),
            latency_us: reg.histogram_with("http_route_latency_us", labels),
            request_bytes: reg.counter_with("http_route_request_bytes_total", labels),
            response_bytes: reg.counter_with("http_route_response_bytes_total", labels),
        }
    }

    /// Status-class counts as `[2xx, 3xx, 4xx, 5xx]`.
    pub fn class_counts(&self) -> [u64; 4] {
        [self.class_2xx.get(), self.class_3xx.get(), self.class_4xx.get(), self.class_5xx.get()]
    }

    /// Record one served request. Atomic adds only.
    pub fn observe(&self, status_code: u16, latency_us: u64, req_bytes: u64, resp_bytes: u64) {
        self.requests.inc();
        match status_code {
            200..=299 => self.class_2xx.inc(),
            300..=399 => self.class_3xx.inc(),
            400..=499 => self.class_4xx.inc(),
            _ => self.class_5xx.inc(),
        }
        self.latency_us.record(latency_us);
        self.request_bytes.add(req_bytes);
        self.response_bytes.add(resp_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_advances_all_handles() {
        let reg = Registry::new();
        let m = RouteMetrics::register(&reg, "/profile/:uid");
        m.observe(200, 120, 80, 2048);
        m.observe(404, 15, 80, 64);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("http_route_requests_total{route=\"/profile/:uid\"}"), 2);
        assert_eq!(
            snap.counter("http_route_status_total{route=\"/profile/:uid\",class=\"2xx\"}"),
            1
        );
        assert_eq!(
            snap.counter("http_route_status_total{route=\"/profile/:uid\",class=\"4xx\"}"),
            1
        );
        let lat = snap.histogram("http_route_latency_us{route=\"/profile/:uid\"}").unwrap();
        assert_eq!(lat.count, 2);
        assert_eq!(snap.counter("http_route_response_bytes_total{route=\"/profile/:uid\"}"), 2112);
    }

    #[test]
    fn re_registering_shares_handles() {
        let reg = Registry::new();
        RouteMetrics::register(&reg, "/x").observe(200, 1, 0, 0);
        RouteMetrics::register(&reg, "/x").observe(200, 1, 0, 0);
        assert_eq!(reg.snapshot().counter("http_route_requests_total{route=\"/x\"}"), 2);
    }
}
