//! A shared virtual clock.
//!
//! The paper's crawlers "implement[ed] sleeping functions" and the real
//! Facebook throttled them in wall-clock time. We model both sides of
//! that arms race against a *virtual* millisecond counter instead of
//! real time, so chaos experiments are fast and bit-reproducible: the
//! attacker advances the clock (politeness sleeps, backoff waits,
//! simulated response latency) and the platform reads it (rate-limit
//! windows, fault schedules).
//!
//! Single-writer discipline: only the crawler side advances the clock.
//! The platform only observes it, which keeps one experiment's timeline
//! a pure function of the request sequence.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic virtual milliseconds, shareable across platform + crawler.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ms: AtomicU64,
}

impl VirtualClock {
    pub fn new() -> VirtualClock {
        VirtualClock { ms: AtomicU64::new(0) }
    }

    /// Shared-ownership constructor (the common case: one clock spanning
    /// a platform and the crawler attacking it).
    pub fn shared() -> Arc<VirtualClock> {
        Arc::new(VirtualClock::new())
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::Relaxed)
    }

    /// Advance by `ms` and return the new time.
    pub fn advance_ms(&self, ms: u64) -> u64 {
        self.ms.fetch_add(ms, Ordering::Relaxed) + ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_ms(), 0);
        assert_eq!(clock.advance_ms(1_500), 1_500);
        assert_eq!(clock.advance_ms(0), 1_500);
        assert_eq!(clock.advance_ms(25), 1_525);
        assert_eq!(clock.now_ms(), 1_525);
    }

    #[test]
    fn shared_clock_is_visible_across_clones() {
        let clock = VirtualClock::shared();
        let other = Arc::clone(&clock);
        clock.advance_ms(10);
        assert_eq!(other.now_ms(), 10);
    }
}
