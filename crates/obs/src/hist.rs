//! Log-bucketed latency/value histogram with quantile extraction.
//!
//! Values are bucketed HdrHistogram-style: 8 linear sub-buckets per
//! power-of-two octave, giving ≤ 12.5% relative error on quantiles
//! across the full `u64` range with a fixed 496-slot atomic array.
//! Recording is a single `fetch_add` per slot — no locks, no allocation
//! — and neither [`Histogram::record`] nor [`Histogram::quantile`] can
//! panic for any input.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of sub-buckets per octave.
const SUB_BITS: u32 = 3;
/// Linear sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Total slots: values 0..SUB exactly, then 8 slots per octave up to
/// the top of `u64` (index of `u64::MAX` is 495).
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + SUB;

/// Slot index for a value. Total map is monotone non-decreasing in `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) & (SUB as u64 - 1)) as usize;
    ((msb - SUB_BITS + 1) as usize) << SUB_BITS | sub
}

/// Largest value mapping to slot `i` (the Prometheus `le` bound).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let octave = (i >> SUB_BITS) as u32; // >= 1
    let msb = octave + SUB_BITS - 1;
    let shift = msb - SUB_BITS;
    let sub = (i & (SUB - 1)) as u64;
    let lower = (1u64 << msb) | (sub << shift);
    lower + ((1u64 << shift) - 1)
}

/// A concurrent histogram. `Default`-constructed empty.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.count()).field("sum", &self.sum()).finish()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        // `AtomicU64` is not Copy; build the boxed array from a Vec.
        let v: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> =
            v.into_boxed_slice().try_into().expect("fixed length");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation. Lock-free: five relaxed atomic RMWs.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Wrapping on sum overflow is acceptable (and unreachable for
        // realistic latencies); panicking is not.
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate quantile (bucket upper bound). `q` is clamped to
    /// `[0, 1]`; NaN reads as 0. Returns 0 on an empty histogram.
    /// Never panics.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        // Rank of the target observation, 1-based.
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b.load(Ordering::Relaxed));
            if seen >= target {
                // The bucket bound can overshoot the true max; clamp so
                // p99 of a constant stream equals that constant.
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// Immutable copy for serialization / reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push(BucketCount { le: bucket_upper(i), count: n });
            }
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            buckets,
        }
    }
}

/// One non-empty bucket: `count` observations with value ≤ `le`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    pub le: u64,
    pub count: u64,
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn index_and_bound_agree() {
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_upper(i)), i, "slot {i}");
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_of_uniform_stream() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // ≤ 12.5% relative bucket error.
        assert!((440..=570).contains(&p50), "p50 = {p50}");
        assert!((900..=1000).contains(&p99), "p99 = {p99}");
        assert!(p50 <= h.quantile(0.95));
        assert!(h.quantile(0.95) <= p99);
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn constant_stream_quantiles_are_exact() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(1_500);
        }
        assert_eq!(h.quantile(0.5), 1_500);
        assert_eq!(h.quantile(0.99), 1_500);
    }

    #[test]
    fn extremes_do_not_panic() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.quantile(f64::NAN), 0);
        assert_eq!(h.quantile(-3.0), 0);
        assert_eq!(h.quantile(7.0), u64::MAX);
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let h = Histogram::new();
        for v in [3u64, 900, 17, 17, 250_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
        assert_eq!(back.count, 5);
    }
}
