//! Lock-free scalar metrics: monotone counters and signed gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter (requests served, bytes written,
/// cache hits...). All operations are single atomic instructions.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. Relaxed ordering: metric reads tolerate staleness.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (active connections, queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn dec(&self) {
        self.add(-1);
    }

    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }
}
