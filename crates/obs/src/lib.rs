//! # hsp-obs — observability substrate for the profiler workspace
//!
//! The paper's core results are *measurement* numbers: requests issued,
//! pages fetched, crawl wall-clock per school (§3.2, Table 2). This
//! crate gives every layer of the reproduction — HTTP server, platform
//! handlers, crawler, experiment runner — a shared, cheap way to
//! account for what it actually did:
//!
//! - [`Counter`] / [`Gauge`]: lock-free atomic scalars;
//! - [`Histogram`]: log-bucketed value distribution (p50/p95/p99
//!   extraction, never panics, `u64`-wide);
//! - [`Registry`]: named metrics with Prometheus-style text exposition
//!   and `serde`-serializable [`Snapshot`]s;
//! - [`SpanGuard`]: scoped wall-clock timers feeding histograms;
//! - [`EventLog`]: a bounded structured event ring buffer;
//! - [`VirtualClock`]: shared virtual-millisecond timeline for
//!   deterministic rate-limit windows and fault schedules;
//! - [`TraceCtx`] / [`FlightRecorder`]: deterministic causal tracing —
//!   splitmix64-derived ids, a lock-sharded ring of completed spans
//!   with explicit overflow accounting, JSONL and Chrome trace-event
//!   exporters, and a canonical-order FNV-1a digest.
//!
//! The hot-path contract: recording into an already-resolved metric is
//! atomics only (no locks, no allocation). Resolving a metric by name
//! takes one registry read-lock; callers on per-request paths should
//! resolve handles once at setup (see [`RouteMetrics`]) and then only
//! pay the atomic adds.

pub mod clock;
pub mod counter;
pub mod events;
pub mod hist;
pub mod registry;
pub mod route;
pub mod rss;
pub mod span;
pub mod trace;

pub use clock::VirtualClock;
pub use counter::{Counter, Gauge};
pub use events::{Event, EventLog, Level};
pub use hist::{Histogram, HistogramSnapshot};
pub use registry::{Registry, Snapshot};
pub use route::RouteMetrics;
pub use rss::{peak_rss_bytes, read_memory, MemoryReading};
pub use span::SpanGuard;
pub use trace::{FlightRecorder, SpanRecord, TraceCtx, TRACE_SEED};
