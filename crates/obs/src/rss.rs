//! Process memory probes from `/proc/self/status`.
//!
//! The metro-scale bench gates on peak resident set size (the CSR +
//! interning + SoA layout must keep a million-user world in a few
//! gigabytes), so it needs an in-process reader for the kernel's
//! accounting. `VmHWM` is the high-water mark; some sandboxed kernels
//! (gVisor-style) omit it, in which case the current `VmRSS` — sampled
//! at the post-build moment the caller cares about — is the honest
//! fallback.

/// A point-in-time memory reading, in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryReading {
    /// Peak resident set size (`VmHWM`), if the kernel reports it.
    pub peak_rss_bytes: Option<u64>,
    /// Current resident set size (`VmRSS`), if the kernel reports it.
    pub current_rss_bytes: Option<u64>,
}

impl MemoryReading {
    /// The best available peak estimate: true high-water mark when the
    /// kernel exposes one, otherwise the current RSS (a lower bound).
    pub fn peak_estimate_bytes(&self) -> Option<u64> {
        self.peak_rss_bytes.or(self.current_rss_bytes)
    }
}

/// Read the current process's memory accounting. Returns a reading with
/// `None` fields on non-Linux platforms or unreadable `/proc`.
pub fn read_memory() -> MemoryReading {
    match std::fs::read_to_string("/proc/self/status") {
        Ok(status) => parse_status(&status),
        Err(_) => MemoryReading { peak_rss_bytes: None, current_rss_bytes: None },
    }
}

/// Peak-RSS estimate in bytes (`VmHWM`, falling back to `VmRSS`), or
/// `None` when `/proc` is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    read_memory().peak_estimate_bytes()
}

fn parse_status(status: &str) -> MemoryReading {
    let mut reading = MemoryReading { peak_rss_bytes: None, current_rss_bytes: None };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            reading.peak_rss_bytes = parse_kb(rest);
        } else if let Some(rest) = line.strip_prefix("VmRSS:") {
            reading.current_rss_bytes = parse_kb(rest);
        }
    }
    reading
}

/// Parse a `/proc/self/status` value like `"   4248 kB"` into bytes.
fn parse_kb(rest: &str) -> Option<u64> {
    let digits = rest.trim().trim_end_matches("kB").trim();
    digits.parse::<u64>().ok().map(|kb| kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_fields() {
        let status = "Name:\tx\nVmHWM:\t  2048 kB\nVmRSS:\t  1024 kB\nThreads:\t1\n";
        let r = parse_status(status);
        assert_eq!(r.peak_rss_bytes, Some(2048 * 1024));
        assert_eq!(r.current_rss_bytes, Some(1024 * 1024));
        assert_eq!(r.peak_estimate_bytes(), Some(2048 * 1024));
    }

    #[test]
    fn falls_back_to_current_rss_without_hwm() {
        let status = "Name:\tx\nVmRSS:\t  4076 kB\n";
        let r = parse_status(status);
        assert_eq!(r.peak_rss_bytes, None);
        assert_eq!(r.peak_estimate_bytes(), Some(4076 * 1024));
    }

    #[test]
    fn missing_fields_are_none() {
        let r = parse_status("Name:\tx\nThreads:\t1\n");
        assert_eq!(r.peak_estimate_bytes(), None);
        assert_eq!(parse_kb("garbage"), None);
    }

    #[test]
    fn live_read_reports_current_rss_on_linux() {
        let r = read_memory();
        if cfg!(target_os = "linux") {
            let rss = r.current_rss_bytes.expect("Linux reports VmRSS");
            assert!(rss > 0);
        }
    }
}
