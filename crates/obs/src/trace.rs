//! Deterministic causal tracing: trace contexts and the flight recorder.
//!
//! Every logical crawler fetch gets a [`TraceCtx`] whose ids are a pure
//! function of `(seed, lane, ordinal)` — splitmix64-mixed, never
//! wall-clock — so the same attack produces the same ids at any worker
//! count. The context rides the wire in an `x-trace-id` header (the
//! constant lives in `hsp-http` next to the other header names), and
//! each layer that touches the request appends a [`SpanRecord`] to the
//! shared [`FlightRecorder`]: the crawler's root fetch span, one span
//! per retry attempt, transport-chaos injections, the server edge, and
//! the platform's per-route serving span with its refusal provenance.
//!
//! The recorder is a lock-sharded set of bounded per-lane rings. Lanes
//! are account indices, and each lane's requests are issued
//! sequentially by exactly one worker thread at a time, so per-lane
//! arrival order — and therefore per-lane eviction — is deterministic
//! even though cross-lane interleaving is not. Export always sorts into
//! the canonical `(lane, ordinal, span_id)` order, which makes
//! [`FlightRecorder::digest`] (FNV-1a over the canonical serialization)
//! bit-identical across worker counts: the same discipline as
//! `SybilDetector::state_digest`.
//!
//! Overflow is never silent: evicting a span increments a dropped
//! counter, exposed as `obs_trace_dropped_total` once the recorder is
//! enabled through `Registry::enable_tracing`.

use crate::counter::Counter;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// SplitMix64 finalizer — the workspace's canonical mixing function
/// (same constants as the fault engine and chaos transport).
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a folded over `bytes`, chained from `h` (start from
/// [`FNV_OFFSET`]).
pub fn fnv1a_chain(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Default seed for trace-id derivation. Any fixed value works — ids
/// only need to be collision-free and replayable, not secret.
pub const TRACE_SEED: u64 = 0x7ace_2013;

/// Default bound on retained spans per lane.
pub const DEFAULT_LANE_CAPACITY: usize = 8192;

/// Span-id slots: each layer derives its span id from the trace id and
/// a fixed slot, so ids are deterministic and never collide per trace.
pub const SLOT_ROOT: u64 = 1;
/// The platform's per-route serving span.
pub const SLOT_SERVER: u64 = 2;
/// The HTTP server's edge-limiter refusal (never reached a handler).
pub const SLOT_EDGE: u64 = 3;
/// A transport-chaos injection beneath the retry layer.
pub const SLOT_CHAOS: u64 = 4;
/// A platform mutation event (live-world engine), recorded once on the
/// reserved world lane when the event is first applied.
pub const SLOT_MUTATION: u64 = 5;
/// Base slot for per-attempt retry spans (`SLOT_ATTEMPT_BASE + n`).
pub const SLOT_ATTEMPT_BASE: u64 = 16;

/// Deterministic trace context for one logical request (one crawler
/// fetch including all its retries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    pub trace_id: u64,
    /// Account lane the request belongs to (or a hashed pre-session
    /// principal for auth traffic).
    pub lane: u64,
    /// Request ordinal within the lane, starting at 0.
    pub ordinal: u64,
}

impl TraceCtx {
    /// Derive the context for the `ordinal`-th request of `lane`.
    pub fn derive(seed: u64, lane: u64, ordinal: u64) -> TraceCtx {
        let trace_id = splitmix64(
            splitmix64(seed ^ splitmix64(lane.wrapping_add(1)))
                ^ ordinal.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        TraceCtx { trace_id, lane, ordinal }
    }

    /// Wire form: `"{trace_id:016x}-{lane:x}-{ordinal:x}"`.
    pub fn header_value(&self) -> String {
        format!("{:016x}-{:x}-{:x}", self.trace_id, self.lane, self.ordinal)
    }

    /// Parse the wire form back; `None` on malformed input.
    pub fn parse(value: &str) -> Option<TraceCtx> {
        let mut parts = value.split('-');
        let trace_id = u64::from_str_radix(parts.next()?, 16).ok()?;
        let lane = u64::from_str_radix(parts.next()?, 16).ok()?;
        let ordinal = u64::from_str_radix(parts.next()?, 16).ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(TraceCtx { trace_id, lane, ordinal })
    }

    /// Deterministic span id for a fixed slot of this trace.
    pub fn span(&self, slot: u64) -> u64 {
        splitmix64(self.trace_id ^ slot.wrapping_mul(0xbf58_476d_1ce4_e5b9))
    }

    /// The root (client fetch) span id.
    pub fn root_span(&self) -> u64 {
        self.span(SLOT_ROOT)
    }
}

/// One completed span. Times are virtual milliseconds from the
/// recording layer's clock — never wall-clock — so records are
/// replayable and digestible.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    pub trace_id: u64,
    pub span_id: u64,
    /// `0` marks a root span.
    pub parent_id: u64,
    pub lane: u64,
    pub ordinal: u64,
    /// e.g. `fetch:profile`, `attempt`, `serve:/profile/:uid`,
    /// `chaos:abort-before`, `edge-limit`.
    pub name: String,
    pub begin_ms: u64,
    pub end_ms: u64,
    /// HTTP status, `0` when no response existed (transport failure).
    pub status: u16,
    /// e.g. `ok`, `retryable`, `fatal`, `terminal`, `transport`,
    /// `inject`, `allow`, `challenge`, `throttle`, `suspend`.
    pub outcome: String,
    /// Which refusal source fired, one of the five-way taxonomy
    /// (`edge`, `fault`, `throttle`, `shed`, `suspension`) or empty.
    pub provenance: String,
    /// Captcha delay the response demanded (0 when none).
    pub captcha_ms: u64,
}

impl SpanRecord {
    /// Canonical serialization the digest folds over. Every field is
    /// deterministic; nothing wall-clock-derived may ever appear here.
    fn digest_line(&self) -> String {
        format!(
            "{:x}|{:x}|{:x}|{}|{}|{}|{}|{}|{}|{}|{}|{}\n",
            self.trace_id,
            self.span_id,
            self.parent_id,
            self.lane,
            self.ordinal,
            self.name,
            self.begin_ms,
            self.end_ms,
            self.status,
            self.outcome,
            self.provenance,
            self.captcha_ms,
        )
    }
}

/// Number of lock shards. Lanes map to shards by index, so two lanes
/// only contend when they hash to the same shard.
const SHARDS: usize = 16;

/// Lock-sharded flight recorder of bounded per-lane span rings.
///
/// Disabled by default: `record` is one relaxed atomic load until
/// [`FlightRecorder::enable`] runs, so an untraced run pays nothing.
pub struct FlightRecorder {
    enabled: AtomicBool,
    lane_capacity: AtomicUsize,
    dropped: AtomicU64,
    dropped_metric: OnceLock<Arc<Counter>>,
    shards: Vec<Mutex<HashMap<u64, VecDeque<SpanRecord>>>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    pub fn new() -> FlightRecorder {
        FlightRecorder {
            enabled: AtomicBool::new(false),
            lane_capacity: AtomicUsize::new(DEFAULT_LANE_CAPACITY),
            dropped: AtomicU64::new(0),
            dropped_metric: OnceLock::new(),
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Start recording, bounding each lane's ring to `lane_capacity`.
    pub fn enable(&self, lane_capacity: usize) {
        self.lane_capacity.store(lane_capacity.max(1), Ordering::Relaxed);
        self.enabled.store(true, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Mirror drops into a registry counter (`obs_trace_dropped_total`).
    pub fn attach_dropped_counter(&self, counter: Arc<Counter>) {
        let _ = self.dropped_metric.set(counter);
    }

    /// Append a completed span. When the span's lane ring is full the
    /// oldest record of *that lane* is evicted and counted — per-lane
    /// eviction keeps overflow deterministic across worker counts.
    pub fn record(&self, rec: SpanRecord) {
        if !self.is_enabled() {
            return;
        }
        let cap = self.lane_capacity.load(Ordering::Relaxed);
        let shard = &self.shards[(rec.lane as usize) % SHARDS];
        let mut map = shard.lock();
        let ring = map.entry(rec.lane).or_default();
        if ring.len() >= cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
            if let Some(c) = self.dropped_metric.get() {
                c.inc();
            }
        }
        ring.push_back(rec);
    }

    /// Spans evicted from full lane rings (never silently lost).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Retained span count across all lanes.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().values().map(VecDeque::len).sum::<usize>()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every retained span (drop accounting is kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// All retained spans in canonical `(lane, ordinal, begin_ms,
    /// span_id)` order — the order the digest and both exporters use.
    /// Every key component is deterministic, so the canonical order is
    /// too, whatever thread interleaving produced the records. Every
    /// recorded span is kept, duplicates included: two retry attempts
    /// of one fetch can serve byte-identical refusals, and forensics
    /// (`audit_trace`) needs to count both.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            for ring in shard.lock().values() {
                out.extend(ring.iter().cloned());
            }
        }
        out.sort_by(|a, b| {
            (a.lane, a.ordinal, a.begin_ms, a.span_id)
                .cmp(&(b.lane, b.ordinal, b.begin_ms, b.span_id))
        });
        out
    }

    /// FNV-1a over the canonical serialization of the retained span
    /// *set*. Bit-identical across worker counts for a deterministic
    /// run.
    pub fn digest(&self) -> u64 {
        self.digest_excluding(&[])
    }

    /// [`FlightRecorder::digest`] with some lanes masked out — e.g. a
    /// crash-recovery lane whose administrative spans (journal scans,
    /// resume bookkeeping) exist only in resumed runs and must not
    /// perturb the comparison against an uninterrupted run.
    ///
    /// The digest folds over the *deduplicated* canonical lines: a
    /// crash-resumed crawler re-drives the request prefix after its
    /// last durable commit, and because every span field is derived
    /// from deterministic state (trace ids, virtual clocks, outcomes),
    /// the replayed spans are byte-identical to the originals. Folding
    /// the line set makes the union of a killed run and its resume
    /// digest-equal to the uninterrupted run. (An uninterrupted run's
    /// genuine duplicates — retry attempts served identical refusals —
    /// collapse the same way on both sides of any comparison, so
    /// equality gates are unaffected; `spans()` itself keeps them.)
    pub fn digest_excluding(&self, lanes: &[u64]) -> u64 {
        let mut lines: Vec<String> = self
            .spans()
            .into_iter()
            .filter(|s| !lanes.contains(&s.lane))
            .map(|s| s.digest_line())
            .collect();
        lines.sort();
        lines.dedup();
        let mut h = FNV_OFFSET;
        for line in &lines {
            h = fnv1a_chain(h, line.as_bytes());
        }
        h
    }

    /// One JSON object per line, canonical order.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for span in self.spans() {
            if let Ok(line) = serde_json::to_string(&span) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }

    /// Chrome trace-event JSON (open in Perfetto / `chrome://tracing`):
    /// one complete (`ph:"X"`) event per span, one thread lane per
    /// account, timestamps in virtual microseconds.
    pub fn export_chrome_trace(&self) -> String {
        let mut events = Vec::new();
        for span in self.spans() {
            let dur_us = span.end_ms.saturating_sub(span.begin_ms).saturating_mul(1_000).max(1);
            let args = serde_json::json!({
                "trace_id": format!("{:016x}", span.trace_id),
                "span_id": format!("{:016x}", span.span_id),
                "parent_id": format!("{:016x}", span.parent_id),
                "ordinal": span.ordinal,
                "status": span.status,
                "outcome": span.outcome,
                "provenance": span.provenance,
                "captcha_ms": span.captcha_ms,
            });
            events.push(serde_json::json!({
                "name": span.name,
                "cat": if span.provenance.is_empty() { "request" } else { "refusal" },
                "ph": "X",
                "ts": span.begin_ms.saturating_mul(1_000),
                "dur": dur_us,
                "pid": 0u32,
                "tid": span.lane,
                "args": args,
            }));
        }
        let doc = serde_json::json!({ "traceEvents": events, "displayTimeUnit": "ms" });
        serde_json::to_string(&doc).unwrap_or_default()
    }

    /// Per-provenance span counts (the five-way taxonomy; spans with no
    /// provenance are not counted).
    pub fn provenance_counts(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for span in self.spans() {
            if !span.provenance.is_empty() {
                *out.entry(span.provenance).or_insert(0) += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(lane: u64, ordinal: u64, name: &str) -> SpanRecord {
        let ctx = TraceCtx::derive(TRACE_SEED, lane, ordinal);
        SpanRecord {
            trace_id: ctx.trace_id,
            span_id: ctx.root_span(),
            parent_id: 0,
            lane,
            ordinal,
            name: name.to_string(),
            begin_ms: ordinal * 10,
            end_ms: ordinal * 10 + 5,
            status: 200,
            outcome: "ok".to_string(),
            provenance: String::new(),
            captcha_ms: 0,
        }
    }

    #[test]
    fn trace_ids_are_pure_functions_of_inputs() {
        let a = TraceCtx::derive(7, 3, 11);
        let b = TraceCtx::derive(7, 3, 11);
        assert_eq!(a, b);
        assert_ne!(a.trace_id, TraceCtx::derive(7, 3, 12).trace_id);
        assert_ne!(a.trace_id, TraceCtx::derive(7, 4, 11).trace_id);
        assert_ne!(a.trace_id, TraceCtx::derive(8, 3, 11).trace_id);
    }

    #[test]
    fn header_round_trips() {
        let ctx = TraceCtx::derive(TRACE_SEED, 5, 42);
        assert_eq!(TraceCtx::parse(&ctx.header_value()), Some(ctx));
        assert_eq!(TraceCtx::parse("nonsense"), None);
        assert_eq!(TraceCtx::parse("ff-1-2-3"), None);
    }

    #[test]
    fn span_slots_never_collide_within_a_trace() {
        let ctx = TraceCtx::derive(TRACE_SEED, 0, 0);
        let ids = [
            ctx.span(SLOT_ROOT),
            ctx.span(SLOT_SERVER),
            ctx.span(SLOT_EDGE),
            ctx.span(SLOT_CHAOS),
            ctx.span(SLOT_ATTEMPT_BASE),
            ctx.span(SLOT_ATTEMPT_BASE + 1),
        ];
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = FlightRecorder::new();
        rec.record(span(0, 0, "fetch:profile"));
        assert!(rec.is_empty());
    }

    #[test]
    fn digest_is_insertion_order_independent() {
        let forward = FlightRecorder::new();
        forward.enable(64);
        let backward = FlightRecorder::new();
        backward.enable(64);
        let spans: Vec<_> = (0..20).map(|i| span(i % 4, i / 4, "fetch:friends")).collect();
        for s in &spans {
            forward.record(s.clone());
        }
        for s in spans.iter().rev() {
            backward.record(s.clone());
        }
        assert_eq!(forward.digest(), backward.digest());
        assert_eq!(forward.spans(), backward.spans());
    }

    #[test]
    fn overflow_evicts_per_lane_and_counts_drops() {
        let rec = FlightRecorder::new();
        rec.enable(3);
        for i in 0..5 {
            rec.record(span(1, i, "fetch:profile"));
        }
        rec.record(span(2, 0, "fetch:profile"));
        assert_eq!(rec.dropped(), 2, "lane 1 overflowed twice");
        let spans = rec.spans();
        assert_eq!(spans.len(), 4);
        // Oldest of the overflowing lane went first; lane 2 untouched.
        assert_eq!(spans.iter().filter(|s| s.lane == 1).map(|s| s.ordinal).min(), Some(2));
        assert_eq!(spans.iter().filter(|s| s.lane == 2).count(), 1);
    }

    #[test]
    fn exporters_emit_all_spans() {
        let rec = FlightRecorder::new();
        rec.enable(64);
        for i in 0..3 {
            rec.record(span(0, i, "fetch:profile"));
        }
        let jsonl = rec.export_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        let back: SpanRecord = serde_json::from_str(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(back.name, "fetch:profile");
        let chrome: serde_json::Value = serde_json::from_str(&rec.export_chrome_trace()).unwrap();
        let events = chrome.get("traceEvents").and_then(serde_json::Value::as_array).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("ph").and_then(serde_json::Value::as_str), Some("X"));
    }
}
