//! Bounded structured event ring buffer.
//!
//! A lightweight substitute for a logging framework: producers push
//! structured events, the ring keeps the most recent `capacity` of
//! them, and `/__status` (or tests) read the tail. Pushing takes a
//! short mutex on the ring — events are for milestones (phase starts,
//! suspensions, accept errors), not per-request records, so this is
//! deliberately off the request hot path.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Event severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Level {
    Debug,
    Info,
    Warn,
    Error,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// One structured event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Monotone sequence number (total pushes, including evicted ones).
    pub seq: u64,
    /// Milliseconds since the log was created.
    pub at_ms: u64,
    pub level: Level,
    /// Component that emitted the event, e.g. `http.server`.
    pub target: String,
    pub message: String,
}

/// Fixed-capacity ring of recent events.
pub struct EventLog {
    start: Instant,
    capacity: usize,
    seq: AtomicU64,
    ring: Mutex<VecDeque<Event>>,
}

impl EventLog {
    pub fn new(capacity: usize) -> EventLog {
        EventLog {
            start: Instant::now(),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
        }
    }

    /// Append an event, evicting the oldest once full.
    pub fn push(&self, level: Level, target: &str, message: impl Into<String>) {
        let event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            at_ms: self.start.elapsed().as_millis() as u64,
            level,
            target: target.to_string(),
            message: message.into(),
        };
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Total events ever pushed (≥ `recent().len()`).
    pub fn total(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events evicted by ring overflow: `total() − recent().len()`.
    /// Overflow accounting mirrors the flight recorder's — saturation
    /// is observable, never silent.
    pub fn dropped(&self) -> u64 {
        let retained = self.ring.lock().len() as u64;
        self.total().saturating_sub(retained)
    }

    /// The retained tail, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        self.ring.lock().iter().cloned().collect()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let log = EventLog::new(3);
        for i in 0..5 {
            log.push(Level::Info, "test", format!("e{i}"));
        }
        let tail = log.recent();
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].message, "e2");
        assert_eq!(tail[2].message, "e4");
        assert_eq!(log.total(), 5);
        assert_eq!(tail[2].seq, 4);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let log = EventLog::new(0);
        log.push(Level::Warn, "t", "kept");
        assert_eq!(log.recent().len(), 1);
    }

    #[test]
    fn events_serialize() {
        let log = EventLog::new(4);
        log.push(Level::Error, "http.server", "accept failed");
        let json = serde_json::to_string(&log.recent()).unwrap();
        let back: Vec<Event> = serde_json::from_str(&json).unwrap();
        assert_eq!(back[0].target, "http.server");
        assert_eq!(back[0].level, Level::Error);
    }
}
