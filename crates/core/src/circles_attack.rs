//! The attack over asymmetric circles (Google+, paper Appendix A).
//!
//! On Google+ there is no symmetric friend list; the stranger-visible
//! analogue is the pair of circle lists. The attack pivots on the same
//! reverse-lookup idea: the candidate set is everyone the core users
//! have in their circles ("in your circles" is the outgoing direction),
//! and `G_i(u)` counts the class-`i` cores whose outgoing circles
//! contain `u` — a hidden minor still *appears in* classmates' public
//! circles exactly as they appear in Facebook friend lists.

use crate::methodology::rank_candidates;
use crate::types::{AttackConfig, CoreCollection, CoreUser, Discovery};
use hsp_crawler::{CrawlError, OsnAccess, ScrapedEduKind};

/// Steps 1–2 of §4.1 over circles: seeds → claimers → cores whose
/// outgoing circles are stranger-visible.
pub fn collect_core_circles(
    access: &mut dyn OsnAccess,
    config: &AttackConfig,
) -> Result<CoreCollection, CrawlError> {
    let seeds = access.collect_seeds(config.school)?;
    let mut claiming = Vec::new();
    let mut core = Vec::new();
    for &seed in &seeds {
        let profile = access.profile(seed)?;
        if !profile.claims_current_student(config.school, config.senior_class_year) {
            continue;
        }
        let grad_year = profile
            .education
            .iter()
            .filter(|e| e.kind == ScrapedEduKind::HighSchool && e.school == config.school)
            .filter_map(|e| e.grad_year)
            .find(|&g| g >= config.senior_class_year);
        let Some(grad_year) = grad_year else { continue };
        claiming.push(seed);
        // The outgoing direction plays the friend-list role; when
        // visible, the incoming list is unioned in for better coverage
        // of one-way follows.
        let outgoing = access.circles(seed, false)?;
        if let Some(mut friends) = outgoing {
            if let Some(incoming) = access.circles(seed, true)? {
                friends.extend(incoming);
                friends.sort_unstable();
                friends.dedup();
            }
            core.push(CoreUser { id: seed, grad_year, friends });
        }
    }
    Ok((seeds, claiming, core))
}

/// The full basic methodology over circles.
pub fn run_basic_circles(
    access: &mut dyn OsnAccess,
    config: &AttackConfig,
) -> Result<Discovery, CrawlError> {
    let (seeds, claiming, core) = collect_core_circles(access, config)?;
    let ranked = rank_candidates(config, &core);
    Ok(Discovery { config: config.clone(), seeds, claiming, core, ranked })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_crawler::{Effort, ScrapedEducation, ScrapedProfile};
    use hsp_graph::{SchoolId, UserId};
    use std::collections::HashMap;

    struct Stub {
        seeds: Vec<UserId>,
        profiles: HashMap<UserId, ScrapedProfile>,
        outgoing: HashMap<UserId, Option<Vec<UserId>>>,
        incoming: HashMap<UserId, Option<Vec<UserId>>>,
    }

    impl OsnAccess for Stub {
        fn collect_seeds(&mut self, _: SchoolId) -> Result<Vec<UserId>, CrawlError> {
            Ok(self.seeds.clone())
        }
        fn profile(&mut self, uid: UserId) -> Result<ScrapedProfile, CrawlError> {
            Ok(self.profiles.get(&uid).cloned().unwrap_or_default())
        }
        fn friends(&mut self, _: UserId) -> Result<Option<Vec<UserId>>, CrawlError> {
            Ok(None) // no symmetric lists on this platform
        }
        fn effort(&self) -> Effort {
            Effort::default()
        }
        fn circles(
            &mut self,
            uid: UserId,
            incoming: bool,
        ) -> Result<Option<Vec<UserId>>, CrawlError> {
            let map = if incoming { &self.incoming } else { &self.outgoing };
            Ok(map.get(&uid).cloned().unwrap_or(None))
        }
    }

    fn claiming_profile(year: i32) -> ScrapedProfile {
        ScrapedProfile {
            education: vec![ScrapedEducation {
                school: SchoolId(0),
                kind: ScrapedEduKind::HighSchool,
                grad_year: Some(year),
            }],
            ..Default::default()
        }
    }

    #[test]
    fn circles_core_unions_both_directions() {
        let mut stub = Stub {
            seeds: vec![UserId(1)],
            profiles: [(UserId(1), claiming_profile(2014))].into(),
            outgoing: [(UserId(1), Some(vec![UserId(10), UserId(11)]))].into(),
            incoming: [(UserId(1), Some(vec![UserId(11), UserId(12)]))].into(),
        };
        let config = AttackConfig::new(SchoolId(0), 2012, 100);
        let d = run_basic_circles(&mut stub, &config).unwrap();
        assert_eq!(d.core.len(), 1);
        assert_eq!(d.core[0].friends, vec![UserId(10), UserId(11), UserId(12)]);
        assert_eq!(d.candidate_count(), 3);
    }

    #[test]
    fn hidden_circles_keep_claimer_out_of_core() {
        let mut stub = Stub {
            seeds: vec![UserId(1)],
            profiles: [(UserId(1), claiming_profile(2014))].into(),
            outgoing: [(UserId(1), None)].into(),
            incoming: HashMap::new(),
        };
        let config = AttackConfig::new(SchoolId(0), 2012, 100);
        let d = run_basic_circles(&mut stub, &config).unwrap();
        assert_eq!(d.claiming, vec![UserId(1)]);
        assert!(d.core.is_empty());
    }

    #[test]
    fn non_claimers_are_skipped_entirely() {
        let mut stub = Stub {
            seeds: vec![UserId(2)],
            profiles: [(UserId(2), claiming_profile(2009))].into(), // alumnus
            outgoing: [(UserId(2), Some(vec![UserId(9)]))].into(),
            incoming: HashMap::new(),
        };
        let config = AttackConfig::new(SchoolId(0), 2012, 100);
        let d = run_basic_circles(&mut stub, &config).unwrap();
        assert!(d.claiming.is_empty());
        assert!(d.core.is_empty());
        assert_eq!(d.candidate_count(), 0);
    }
}
