//! Shared types of the profiling methodology.

use hsp_graph::{SchoolId, UserId};
use serde::{Deserialize, Serialize};

/// Attack parameters the third party chooses (paper §4).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AttackConfig {
    /// The target school's OSN id (found via the education directory).
    pub school: SchoolId,
    /// Graduation year of the current senior class — derivable from the
    /// calendar, no inside knowledge needed.
    pub senior_class_year: i32,
    /// Public enrolment estimate ("typically found from Wikipedia",
    /// §4.1 step 6) used to pick thresholds.
    pub school_size_estimate: u32,
    /// The enhanced methodology's ε: profiles of the first `t(1+ε)`
    /// ranked candidates are downloaded. The paper uses ε = 1.
    pub epsilon: f64,
}

impl AttackConfig {
    pub fn new(school: SchoolId, senior_class_year: i32, school_size_estimate: u32) -> Self {
        AttackConfig { school, senior_class_year, school_size_estimate, epsilon: 1.0 }
    }

    /// The four graduating classes currently enrolled, first-years first
    /// (index 0 ↔ `C_1` in the paper's notation ... index 3 ↔ `C_4`).
    pub fn class_years(&self) -> [i32; 4] {
        [
            self.senior_class_year + 3,
            self.senior_class_year + 2,
            self.senior_class_year + 1,
            self.senior_class_year,
        ]
    }

    /// Index (0..4) of a graduation year among the enrolled classes.
    pub fn class_index(&self, grad_year: i32) -> Option<usize> {
        self.class_years().iter().position(|&y| y == grad_year)
    }
}

/// What seed collection yields (§4.1 steps 1–2): the seed set, the
/// claiming set `C'`, and the core set `C`.
pub type CoreCollection = (Vec<UserId>, Vec<UserId>, Vec<CoreUser>);

/// A core user: a seed who publicly claims current attendance and whose
/// friend list is stranger-visible (the set `C`, §4.1 step 2).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoreUser {
    pub id: UserId,
    pub grad_year: i32,
    /// Their (stranger-visible) friend list, as crawled.
    pub friends: Vec<UserId>,
}

/// A ranked candidate with its reverse-lookup evidence.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Candidate {
    pub id: UserId,
    /// `|G_i(u)|` per class index.
    pub core_friends_by_class: [u32; 4],
    /// The paper's score `x(u) = max_i |G_i(u)| / |C_i|` (eq. 2).
    pub score: f64,
    /// Class index attaining the maximum (the inferred graduation year).
    pub best_class: usize,
}

impl Candidate {
    /// The inferred graduation year under `config`.
    pub fn inferred_grad_year(&self, config: &AttackConfig) -> i32 {
        config.class_years()[self.best_class]
    }
}

/// Everything one discovery run produced; the experiments crate reads
/// these fields to print the paper's tables.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Discovery {
    pub config: AttackConfig,
    /// `S`: all users returned by the search portal.
    pub seeds: Vec<UserId>,
    /// `C'`: seeds publicly claiming current attendance.
    pub claiming: Vec<UserId>,
    /// `C`: claiming seeds with public friend lists, per class.
    pub core: Vec<CoreUser>,
    /// Candidates `K`, ranked by descending score (ties broken by id).
    pub ranked: Vec<Candidate>,
}

impl Discovery {
    /// `|C_i|` per class index.
    pub fn core_sizes(&self) -> [u32; 4] {
        let mut sizes = [0u32; 4];
        for c in &self.core {
            if let Some(i) = self.config.class_index(c.grad_year) {
                sizes[i] += 1;
            }
        }
        sizes
    }

    /// The guessed student set `H = T ∪ C'` for threshold `t` (§4.1
    /// step 6): the top-`t` ranked candidates plus all claiming seeds.
    pub fn guessed_students(&self, t: usize) -> Vec<UserId> {
        let mut h: Vec<UserId> = self.ranked.iter().take(t).map(|c| c.id).collect();
        h.extend(&self.claiming);
        h.sort_unstable();
        h.dedup();
        h
    }

    /// Inferred graduation year of a user in `H`: claiming users keep
    /// their own public claim (tracked in core) — otherwise the
    /// reverse-lookup classification.
    pub fn inferred_year(&self, u: UserId) -> Option<i32> {
        if let Some(core) = self.core.iter().find(|c| c.id == u) {
            return Some(core.grad_year);
        }
        self.ranked.iter().find(|c| c.id == u).map(|c| c.inferred_grad_year(&self.config))
    }

    /// Number of candidates (|K|) — Table 2's "# of candidates".
    pub fn candidate_count(&self) -> usize {
        self.ranked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_years_ordering_matches_paper_notation() {
        let cfg = AttackConfig::new(SchoolId(0), 2012, 360);
        // C_1 = first years = class of 2015 ... C_4 = seniors = 2012.
        assert_eq!(cfg.class_years(), [2015, 2014, 2013, 2012]);
        assert_eq!(cfg.class_index(2015), Some(0));
        assert_eq!(cfg.class_index(2012), Some(3));
        assert_eq!(cfg.class_index(2011), None);
    }

    #[test]
    fn guessed_students_unions_core_claimers() {
        let cfg = AttackConfig::new(SchoolId(0), 2012, 100);
        let discovery = Discovery {
            config: cfg,
            seeds: vec![UserId(1), UserId(2)],
            claiming: vec![UserId(2)],
            core: vec![CoreUser { id: UserId(2), grad_year: 2013, friends: vec![] }],
            ranked: vec![
                Candidate {
                    id: UserId(5),
                    core_friends_by_class: [0, 0, 1, 0],
                    score: 1.0,
                    best_class: 2,
                },
                Candidate {
                    id: UserId(2),
                    core_friends_by_class: [0, 0, 1, 0],
                    score: 0.5,
                    best_class: 2,
                },
                Candidate {
                    id: UserId(9),
                    core_friends_by_class: [1, 0, 0, 0],
                    score: 0.2,
                    best_class: 0,
                },
            ],
        };
        // t=1: top candidate u5 plus claimer u2.
        assert_eq!(discovery.guessed_students(1), vec![UserId(2), UserId(5)]);
        // t=3 dedups the claimer who also ranked.
        assert_eq!(discovery.guessed_students(3), vec![UserId(2), UserId(5), UserId(9)]);
        // Claimers keep their own stated year; ranked users get the
        // reverse-lookup year.
        assert_eq!(discovery.inferred_year(UserId(2)), Some(2013));
        assert_eq!(discovery.inferred_year(UserId(9)), Some(2015));
        assert_eq!(discovery.inferred_year(UserId(77)), None);
        assert_eq!(discovery.core_sizes(), [0, 0, 1, 0]);
    }
}
