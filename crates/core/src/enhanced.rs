//! The enhanced methodology (§4.3) and the filtering rules (§4.4).

use crate::methodology::{rank_candidates, sort_ranked};
use crate::types::{AttackConfig, Candidate, CoreUser, Discovery};
use hsp_crawler::{CrawlError, OsnAccess, ScrapedEduKind, ScrapedProfile};
use hsp_graph::UserId;
use std::collections::{HashMap, HashSet};

/// Which §4.4 filter rule eliminated a candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FilterRule {
    GraduateSchool,
    DifferentHighSchool,
    GradYearOutOfRange,
    DifferentCurrentCity,
}

/// Apply the §4.4 filter rules to one downloaded profile. Returns the
/// first matching rule, or `None` if the candidate survives.
pub fn filter_profile(
    profile: &ScrapedProfile,
    config: &AttackConfig,
    school_city: hsp_graph::CityId,
) -> Option<FilterRule> {
    // Rule 1: lists a graduate school.
    if profile.lists_graduate_school() {
        return Some(FilterRule::GraduateSchool);
    }
    // Rule 2: provides exactly one high school and it differs from the
    // target.
    let hs: Vec<_> =
        profile.education.iter().filter(|e| e.kind == ScrapedEduKind::HighSchool).collect();
    if hs.len() == 1 && hs[0].school != config.school {
        return Some(FilterRule::DifferentHighSchool);
    }
    // Rule 3: a target-school grad year outside [senior, senior+3].
    let senior = config.senior_class_year;
    for e in &hs {
        if e.school == config.school {
            if let Some(g) = e.grad_year {
                if !(senior..senior + 4).contains(&g) {
                    return Some(FilterRule::GradYearOutOfRange);
                }
            }
        }
    }
    // Rule 4: current city differs from the school's city.
    if let Some(city) = profile.current_city {
        if city != school_city {
            return Some(FilterRule::DifferentCurrentCity);
        }
    }
    None
}

/// Options for the enhanced/filtered passes.
#[derive(Clone, Copy, Debug)]
pub struct EnhanceOptions {
    /// Threshold `t` the attacker will use (profiles of the first
    /// `t(1+ε)` candidates are downloaded).
    pub t: usize,
    /// Apply the §4.4 filter rules.
    pub filtering: bool,
    /// Promote claiming candidates into the core and re-rank (§4.3).
    /// When false (but `filtering` true), this is "basic + filtering".
    pub enhance: bool,
    /// The school's city, needed by filter rule 4.
    pub school_city: hsp_graph::CityId,
}

/// Outcome of an enhanced/filtered pass.
#[derive(Clone, Debug)]
pub struct Enhanced {
    /// The re-ranked (and possibly filtered) candidate list.
    pub ranked: Vec<Candidate>,
    /// The extended core (original + promoted claimers) — Table 2's
    /// "# of extended core users".
    pub extended_core: Vec<CoreUser>,
    /// All claimers known after promotion (for `H = T ∪ C'`).
    pub claiming: Vec<UserId>,
    /// Candidates removed by each filter rule (diagnostics/ablation).
    pub filtered_out: Vec<(UserId, FilterRule)>,
}

impl Enhanced {
    /// `H = T ∪ C'` for threshold `t`.
    pub fn guessed_students(&self, t: usize) -> Vec<UserId> {
        let mut h: Vec<UserId> = self.ranked.iter().take(t).map(|c| c.id).collect();
        h.extend(&self.claiming);
        h.sort_unstable();
        h.dedup();
        h
    }

    /// Inferred year for a guessed student (claimers keep their claim).
    pub fn inferred_year(&self, u: UserId, config: &AttackConfig) -> Option<i32> {
        if let Some(core) = self.extended_core.iter().find(|c| c.id == u) {
            return Some(core.grad_year);
        }
        self.ranked.iter().find(|c| c.id == u).map(|c| c.inferred_grad_year(config))
    }
}

/// Run the enhanced methodology (§4.3) and/or filtering (§4.4) on top
/// of a basic [`Discovery`].
///
/// Downloads the public profiles of the first `t(1+ε)` ranked
/// candidates. With `enhance`, claimers found among them are promoted
/// into the core (friend lists downloaded when public) and the
/// reverse-lookup scores are recomputed. With `filtering`, the §4.4
/// rules remove likely former students.
pub fn run_enhanced(
    access: &mut dyn OsnAccess,
    basic: &Discovery,
    options: &EnhanceOptions,
) -> Result<Enhanced, CrawlError> {
    let config = &basic.config;
    let fetch_n = ((options.t as f64) * (1.0 + config.epsilon)).round() as usize;
    let to_fetch: Vec<UserId> = basic.ranked.iter().take(fetch_n).map(|c| c.id).collect();

    access.prefetch_profiles(&to_fetch)?;
    let mut profiles: HashMap<UserId, ScrapedProfile> = HashMap::new();
    for &u in &to_fetch {
        profiles.insert(u, access.profile(u)?);
    }

    // --- §4.3 promotion -------------------------------------------------
    let mut extended_core: Vec<CoreUser> = basic.core.clone();
    let mut claiming: Vec<UserId> = basic.claiming.clone();
    if options.enhance {
        let already: HashSet<UserId> = claiming.iter().copied().collect();
        // Pass 1 decides promotions from the profiles alone, so the
        // friend lists the promoted claimers need can be prefetched as
        // one batch; pass 2 then replays the original commit order.
        let mut promoted: Vec<(UserId, i32)> = Vec::new();
        for &u in &to_fetch {
            if already.contains(&u) {
                continue;
            }
            let profile = &profiles[&u];
            if !profile.claims_current_student(config.school, config.senior_class_year) {
                continue;
            }
            let grad_year = profile
                .education
                .iter()
                .filter(|e| e.kind == ScrapedEduKind::HighSchool && e.school == config.school)
                .filter_map(|e| e.grad_year)
                .find(|&g| g >= config.senior_class_year);
            let Some(grad_year) = grad_year else { continue };
            promoted.push((u, grad_year));
        }
        let visible: Vec<UserId> = promoted
            .iter()
            .filter(|&&(u, _)| profiles[&u].friend_list_visible)
            .map(|&(u, _)| u)
            .collect();
        access.prefetch_friends(&visible)?;
        for &(u, grad_year) in &promoted {
            claiming.push(u);
            if profiles[&u].friend_list_visible {
                if let Some(friends) = access.friends(u)? {
                    extended_core.push(CoreUser { id: u, grad_year, friends });
                }
            }
        }
    }

    // --- re-rank over the (possibly) extended core ------------------------
    let mut ranked = if options.enhance {
        rank_candidates(config, &extended_core)
    } else {
        let mut r = basic.ranked.clone();
        sort_ranked(&mut r);
        r
    };

    // --- §4.4 filtering ---------------------------------------------------
    let mut filtered_out = Vec::new();
    if options.filtering {
        let mut removed: HashSet<UserId> = HashSet::new();
        for (&u, profile) in &profiles {
            if let Some(rule) = filter_profile(profile, config, options.school_city) {
                removed.insert(u);
                filtered_out.push((u, rule));
            }
        }
        // Claimers are never filtered (their own profile claims the
        // school; the rules target *former* students).
        let claim_set: HashSet<UserId> = claiming.iter().copied().collect();
        ranked.retain(|c| !removed.contains(&c.id) || claim_set.contains(&c.id));
        filtered_out.sort_by_key(|(u, _)| *u);
    }

    Ok(Enhanced { ranked, extended_core, claiming, filtered_out })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_crawler::ScrapedEducation;
    use hsp_graph::{CityId, SchoolId};

    fn cfg() -> AttackConfig {
        AttackConfig::new(SchoolId(0), 2012, 360)
    }

    fn profile_with(education: Vec<ScrapedEducation>, city: Option<CityId>) -> ScrapedProfile {
        ScrapedProfile { education, current_city: city, ..ScrapedProfile::default() }
    }

    fn hs(school: u32, year: i32) -> ScrapedEducation {
        ScrapedEducation {
            school: SchoolId(school),
            kind: ScrapedEduKind::HighSchool,
            grad_year: Some(year),
        }
    }

    #[test]
    fn filter_rules_match_section_4_4() {
        let c = cfg();
        let home = CityId(0);
        // Graduate school.
        let p = profile_with(
            vec![ScrapedEducation {
                school: SchoolId(3),
                kind: ScrapedEduKind::GraduateSchool,
                grad_year: None,
            }],
            None,
        );
        assert_eq!(filter_profile(&p, &c, home), Some(FilterRule::GraduateSchool));
        // One different high school.
        let p = profile_with(vec![hs(1, 2014)], None);
        assert_eq!(filter_profile(&p, &c, home), Some(FilterRule::DifferentHighSchool));
        // Target school but alumnus-era year.
        let p = profile_with(vec![hs(0, 2009)], None);
        assert_eq!(filter_profile(&p, &c, home), Some(FilterRule::GradYearOutOfRange));
        // Wrong current city.
        let p = profile_with(vec![hs(0, 2014)], Some(CityId(1)));
        assert_eq!(filter_profile(&p, &c, home), Some(FilterRule::DifferentCurrentCity));
        // Clean current-student profile survives.
        let p = profile_with(vec![hs(0, 2014)], Some(home));
        assert_eq!(filter_profile(&p, &c, home), None);
        // Profile with no information survives (nothing to filter on).
        let p = profile_with(vec![], None);
        assert_eq!(filter_profile(&p, &c, home), None);
    }

    #[test]
    fn two_high_schools_including_target_is_not_filtered_by_rule_2() {
        // A transfer *into* the target school lists both; rule 2 requires
        // exactly one, different school.
        let c = cfg();
        let p = profile_with(vec![hs(1, 2014), hs(0, 2014)], None);
        assert_eq!(filter_profile(&p, &c, CityId(0)), None);
    }

    #[test]
    fn grad_year_at_boundaries() {
        let c = cfg();
        let home = CityId(0);
        assert_eq!(filter_profile(&profile_with(vec![hs(0, 2012)], None), &c, home), None);
        assert_eq!(filter_profile(&profile_with(vec![hs(0, 2015)], None), &c, home), None);
        assert_eq!(
            filter_profile(&profile_with(vec![hs(0, 2016)], None), &c, home),
            Some(FilterRule::GradYearOutOfRange)
        );
        assert_eq!(
            filter_profile(&profile_with(vec![hs(0, 2011)], None), &c, home),
            Some(FilterRule::GradYearOutOfRange)
        );
    }
}
