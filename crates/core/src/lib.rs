//! # hsp-core — the high-school profiling methodology
//!
//! The paper's primary contribution (§4–§8), implemented against the
//! crawler's [`hsp_crawler::OsnAccess`] interface so it only ever sees
//! stranger-visible pages:
//!
//! - [`methodology`]: the basic attack — seeds from the search portal,
//!   the core set of lying minors, candidate generation from core
//!   friend lists, reverse-lookup scoring `x(u) = max_i |G_i(u)|/|C_i|`
//!   and graduation-year classification (§4.1);
//! - [`enhanced`]: the §4.3 core-promotion pass (ε = 1) and the §4.4
//!   filter rules;
//! - [`evaluation`]: full-ground-truth scoring (§5.4) and the §5.5
//!   limited-ground-truth estimators;
//! - [`reverse_lookup`]: reconstructing hidden friend lists (§6.1);
//! - [`jaccard`]: hidden-link inference between registered minors;
//! - [`profile_ext`]: the Table 5 audit and constructed profiles (§6);
//! - [`coppaless`]: the §7 counterfactual heuristic and comparison;
//! - [`report`]: sweep-series containers for the figures.

pub mod circles_attack;
pub mod coppaless;
pub mod enhanced;
pub mod evaluation;
pub mod interaction_rank;
pub mod jaccard;
pub mod methodology;
pub mod profile_ext;
pub mod report;
pub mod reverse_lookup;
pub mod types;

pub use circles_attack::{collect_core_circles, run_basic_circles};
pub use coppaless::{
    run_coppaless_heuristic, score_minimal_set, CoppalessOptions, CoppalessRun, MinimalProfilePoint,
};
pub use enhanced::{filter_profile, run_enhanced, EnhanceOptions, Enhanced, FilterRule};
pub use evaluation::{
    evaluate, partial_estimate, Completeness, EvalPoint, GroundTruth, PartialEstimate,
};
pub use interaction_rank::{rank_candidates_weighted, InteractionWeights};
pub use jaccard::{evaluate_links, infer_hidden_links, InferredLink, LinkInferenceEval};
pub use methodology::{collect_core, rank_candidates, run_basic, score_candidate};
pub use profile_ext::{
    audit_adult_registered, construct_profile, AdultRegisteredStats, ConstructedProfile,
};
pub use report::{Series, SweepPoint};
pub use reverse_lookup::{recover_friend_lists, RecoveredFriends};
pub use types::{AttackConfig, Candidate, CoreCollection, CoreUser, Discovery};
