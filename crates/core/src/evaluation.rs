//! Evaluating a discovery run: against full ground truth (§5.4, HS1)
//! and against limited ground truth via the §5.5 estimators (HS2/HS3).

use hsp_crawler::OsnAccess;
use hsp_graph::UserId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The ground-truth roster — in the paper, the confidential list from
/// the school; here, read off the generator.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// Sorted ids of actual current students (`M`).
    students: Vec<UserId>,
    grad_years: HashMap<UserId, i32>,
}

impl GroundTruth {
    pub fn new(mut students: Vec<UserId>, grad_years: HashMap<UserId, i32>) -> Self {
        students.sort_unstable();
        students.dedup();
        GroundTruth { students, grad_years }
    }

    /// Build from a generated scenario.
    pub fn from_scenario(scenario: &hsp_synth::Scenario) -> Self {
        let students = scenario.roster();
        let grad_years = students
            .iter()
            .filter_map(|&u| scenario.student_grad_year(u).map(|g| (u, g)))
            .collect();
        Self::new(students, grad_years)
    }

    pub fn len(&self) -> usize {
        self.students.len()
    }

    pub fn is_empty(&self) -> bool {
        self.students.is_empty()
    }

    pub fn contains(&self, u: UserId) -> bool {
        self.students.binary_search(&u).is_ok()
    }

    pub fn grad_year(&self, u: UserId) -> Option<i32> {
        self.grad_years.get(&u).copied()
    }

    pub fn students(&self) -> &[UserId] {
        &self.students
    }
}

/// One evaluated operating point (one threshold `t`) — the numbers
/// behind Table 4 and Figures 1–2.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EvalPoint {
    pub t: usize,
    /// |H|.
    pub guessed: usize,
    /// |H ∩ M| — Table 4's `x`.
    pub found: usize,
    /// Of the found, how many were classified in the right year —
    /// Table 4's `y`.
    pub correct_year: usize,
    /// |H − M|.
    pub false_positives: usize,
}

impl EvalPoint {
    /// Fraction of the roster discovered.
    pub fn pct_found(&self, roster_size: usize) -> f64 {
        if roster_size == 0 {
            0.0
        } else {
            100.0 * self.found as f64 / roster_size as f64
        }
    }

    /// False positives as a fraction of the guessed set.
    pub fn pct_false_positives(&self) -> f64 {
        if self.guessed == 0 {
            0.0
        } else {
            100.0 * self.false_positives as f64 / self.guessed as f64
        }
    }

    /// Year accuracy among the found.
    pub fn pct_correct_year(&self) -> f64 {
        if self.found == 0 {
            0.0
        } else {
            100.0 * self.correct_year as f64 / self.found as f64
        }
    }
}

/// Data-quality disclosure for a crawl that degraded gracefully under
/// platform faults: which friend lists came back *partial* (the crawler
/// kept the pages it had instead of failing), and how many transport
/// retries the crawl burned. A result built on partial lists can
/// under-count candidates, so Table 4 numbers must carry this caveat.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Completeness {
    /// Users whose friend lists are known to be incomplete.
    pub incomplete_friend_lists: Vec<UserId>,
    /// Transport-layer retries the crawl needed (0 ⇒ fault-free run).
    pub retry_requests: u64,
    /// Users who deactivated or graduated away *while the crawl ran*
    /// (live-world tombstones): the platform served marker pages and
    /// the crawl kept going, so these users contribute nothing beyond
    /// their existence. Empty on a frozen platform.
    #[serde(default)]
    pub tombstoned_users: Vec<UserId>,
    /// Pages re-fetched over live-world staleness conflicts (0 ⇒ the
    /// world held still, or every pairing was consistent first try).
    #[serde(default)]
    pub stale_refetches: u64,
}

impl Completeness {
    /// Read the crawl's degradation state off the access layer.
    pub fn from_access(access: &dyn OsnAccess) -> Completeness {
        let mut incomplete = access.incomplete_friends();
        incomplete.sort_unstable();
        let mut tombstoned = access.tombstoned_users();
        tombstoned.sort_unstable();
        let effort = access.effort();
        Completeness {
            incomplete_friend_lists: incomplete,
            retry_requests: effort.retry_requests,
            tombstoned_users: tombstoned,
            stale_refetches: effort.stale_refetch_requests,
        }
    }

    /// Whether every friend list used by the methodology was complete.
    pub fn is_complete(&self) -> bool {
        self.incomplete_friend_lists.is_empty()
    }

    /// Whether `u`'s friend list is flagged partial.
    pub fn is_incomplete(&self, u: UserId) -> bool {
        self.incomplete_friend_lists.binary_search(&u).is_ok()
    }

    /// Whether `u` tombstoned mid-crawl.
    pub fn is_tombstoned(&self, u: UserId) -> bool {
        self.tombstoned_users.binary_search(&u).is_ok()
    }
}

impl std::fmt::Display for Completeness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_complete() {
            write!(f, "complete ({} retries)", self.retry_requests)?;
        } else {
            write!(
                f,
                "{} partial friend list(s), {} retries",
                self.incomplete_friend_lists.len(),
                self.retry_requests
            )?;
        }
        if !self.tombstoned_users.is_empty() || self.stale_refetches > 0 {
            write!(
                f,
                "; live world: {} tombstoned, {} stale re-fetches",
                self.tombstoned_users.len(),
                self.stale_refetches
            )?;
        }
        Ok(())
    }
}

/// Score a guessed set `H` against ground truth.
pub fn evaluate(
    t: usize,
    guessed: &[UserId],
    inferred_year: impl Fn(UserId) -> Option<i32>,
    truth: &GroundTruth,
) -> EvalPoint {
    let mut found = 0;
    let mut correct_year = 0;
    let mut false_positives = 0;
    for &u in guessed {
        if truth.contains(u) {
            found += 1;
            if let (Some(inferred), Some(actual)) = (inferred_year(u), truth.grad_year(u)) {
                if inferred == actual {
                    correct_year += 1;
                }
            }
        } else {
            false_positives += 1;
        }
    }
    EvalPoint { t, guessed: guessed.len(), found, correct_year, false_positives }
}

/// The §5.5 limited-ground-truth estimators, used when (as for HS2/HS3)
/// only a held-out set of test users is known to be students.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PartialEstimate {
    pub t: usize,
    /// `z_t`: test users ranked in the top `t`.
    pub test_users_found: usize,
    pub test_user_count: usize,
    pub core_count: usize,
    pub school_size: usize,
    /// Estimated number of students found.
    pub est_found: f64,
    /// Estimated percentage of the school found.
    pub est_pct_found: f64,
    /// Estimated number of false positives in the top-`t`.
    pub est_false_positives: f64,
    /// Estimated false-positive percentage of the guessed set.
    pub est_pct_false_positives: f64,
}

/// Apply §5.5's formulas:
///
/// ```text
/// found(t) ≈ |C| + (z_t / #test) · (HS − |C|)
/// fp(t)    ≈ t − (z_t / #test) · (HS − |C|)
/// ```
pub fn partial_estimate(
    t: usize,
    test_users_found: usize,
    test_user_count: usize,
    core_count: usize,
    school_size: usize,
) -> PartialEstimate {
    assert!(test_user_count > 0, "need at least one test user");
    let p = test_users_found as f64 / test_user_count as f64;
    let non_core = (school_size as f64 - core_count as f64).max(0.0);
    let est_found = core_count as f64 + p * non_core;
    let est_fp = (t as f64 - p * non_core).max(0.0);
    PartialEstimate {
        t,
        test_users_found,
        test_user_count,
        core_count,
        school_size,
        est_found,
        est_pct_found: 100.0 * est_found / school_size as f64,
        est_false_positives: est_fp,
        est_pct_false_positives: 100.0 * est_fp / (core_count + t) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        let students = vec![UserId(1), UserId(2), UserId(3), UserId(4)];
        let years = students.iter().map(|&u| (u, 2014)).collect();
        GroundTruth::new(students, years)
    }

    #[test]
    fn evaluate_counts_found_year_and_fp() {
        let t = truth();
        let guessed = vec![UserId(1), UserId(2), UserId(9)];
        // u1 classified right, u2 wrong year.
        let point = evaluate(3, &guessed, |u| Some(if u == UserId(1) { 2014 } else { 2013 }), &t);
        assert_eq!(point.found, 2);
        assert_eq!(point.correct_year, 1);
        assert_eq!(point.false_positives, 1);
        assert_eq!(point.pct_found(4), 50.0);
        assert!((point.pct_false_positives() - 100.0 / 3.0).abs() < 1e-9);
        assert_eq!(point.pct_correct_year(), 50.0);
    }

    #[test]
    fn evaluate_handles_unknown_years() {
        let t = truth();
        let point = evaluate(1, &[UserId(1)], |_| None, &t);
        assert_eq!(point.found, 1);
        assert_eq!(point.correct_year, 0);
    }

    #[test]
    fn partial_estimate_matches_paper_example() {
        // The paper's HS2 example: t = 1500, 152 extended cores, HS size
        // 1500; "top 1,652 users ... 85 % of all HS2 students with 22 %
        // false positives". With 43 test users that corresponds to
        // z_t ≈ 36.
        let e = partial_estimate(1500, 36, 43, 152, 1500);
        assert!((e.est_pct_found - 85.0).abs() < 3.0, "{}", e.est_pct_found);
        assert!((e.est_pct_false_positives - 22.0).abs() < 3.0, "{}", e.est_pct_false_positives);
    }

    #[test]
    fn partial_estimate_extremes() {
        // All test users found: found ≈ school size, FPs = t - (HS - C).
        let e = partial_estimate(1000, 10, 10, 50, 800);
        assert!((e.est_found - 800.0).abs() < 1e-9);
        assert!((e.est_false_positives - 250.0).abs() < 1e-9);
        // No test users found: only the cores count.
        let e = partial_estimate(1000, 0, 10, 50, 800);
        assert!((e.est_found - 50.0).abs() < 1e-9);
        assert!((e.est_false_positives - 1000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "test user")]
    fn partial_estimate_requires_test_users() {
        partial_estimate(100, 0, 0, 10, 500);
    }

    #[test]
    fn completeness_reads_degradation_off_the_access_layer() {
        use hsp_crawler::{CrawlError, Effort, ScrapedProfile};

        struct Degraded;
        impl OsnAccess for Degraded {
            fn collect_seeds(&mut self, _: hsp_graph::SchoolId) -> Result<Vec<UserId>, CrawlError> {
                Ok(Vec::new())
            }
            fn profile(&mut self, _: UserId) -> Result<ScrapedProfile, CrawlError> {
                Err(CrawlError::BadPage("stub"))
            }
            fn friends(&mut self, _: UserId) -> Result<Option<Vec<UserId>>, CrawlError> {
                Ok(None)
            }
            fn effort(&self) -> Effort {
                Effort { retry_requests: 17, ..Effort::default() }
            }
            fn incomplete_friends(&self) -> Vec<UserId> {
                vec![UserId(9), UserId(3)]
            }
            fn tombstoned_users(&self) -> Vec<UserId> {
                vec![UserId(6)]
            }
        }

        let c = Completeness::from_access(&Degraded);
        assert!(!c.is_complete());
        assert!(c.is_incomplete(UserId(3)));
        assert!(c.is_incomplete(UserId(9)));
        assert!(!c.is_incomplete(UserId(4)));
        assert!(c.is_tombstoned(UserId(6)));
        assert!(!c.is_tombstoned(UserId(9)));
        assert_eq!(c.retry_requests, 17);
        assert_eq!(
            c.to_string(),
            "2 partial friend list(s), 17 retries; live world: 1 tombstoned, 0 stale re-fetches"
        );

        // The default OsnAccess contract reports nothing incomplete.
        assert!(Completeness::default().is_complete());
    }
}
