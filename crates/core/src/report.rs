//! Result-series containers shared by the experiments and bench crates.

use serde::{Deserialize, Serialize};

/// One (t, %found, %FP) point of a Figure 1/2/4-style sweep.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    pub t: usize,
    pub pct_found: f64,
    pub pct_false_positives: f64,
    pub found: usize,
    pub false_positives: usize,
    pub correct_year: usize,
}

/// A labelled series of sweep points.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Series {
    pub label: String,
    pub points: Vec<SweepPoint>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Self {
        Series { label: label.into(), points: Vec::new() }
    }

    /// The point at or nearest below a given t.
    pub fn at(&self, t: usize) -> Option<&SweepPoint> {
        self.points.iter().rev().find(|p| p.t <= t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_finds_nearest_below() {
        let mut s = Series::new("x");
        for t in [200, 300, 400] {
            s.points.push(SweepPoint {
                t,
                pct_found: t as f64,
                pct_false_positives: 0.0,
                found: t,
                false_positives: 0,
                correct_year: 0,
            });
        }
        assert_eq!(s.at(300).unwrap().t, 300);
        assert_eq!(s.at(350).unwrap().t, 300);
        assert!(s.at(100).is_none());
    }
}
