//! Quantifying profile extension (§6, Table 5).
//!
//! For the discovered students the attacker audits how much beyond the
//! minimal profile is exposed — separately for registered minors
//! (everything comes from inference + reverse lookup) and for minors
//! registered as adults (whose pages can expose photos, relationship
//! info, a Message button, ...).

use hsp_crawler::{CrawlError, OsnAccess, ScrapedProfile};
use hsp_graph::UserId;
use serde::{Deserialize, Serialize};

/// The Table 5 aggregate over a set of (suspected) minors registered as
/// adults.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AdultRegisteredStats {
    pub n: usize,
    /// % with entire friend list public.
    pub pct_friend_list_public: f64,
    /// Average friend count among those with public lists.
    pub avg_friends_public: f64,
    /// % with the Message link available to a stranger.
    pub pct_message_link: f64,
    /// % exposing relationship info.
    pub pct_relationship: f64,
    /// % exposing "interested in".
    pub pct_interested_in: f64,
    /// % exposing a full birthday.
    pub pct_birthday: f64,
    /// Average number of stranger-visible shared photos.
    pub avg_photos: f64,
}

/// Audit scraped profiles (and friend-list sizes) of a set of users the
/// attack classified as students and whose pages are non-minimal (hence
/// registered adults).
pub fn audit_adult_registered(
    access: &mut dyn OsnAccess,
    users: &[UserId],
) -> Result<AdultRegisteredStats, CrawlError> {
    let mut stats = AdultRegisteredStats::default();
    let mut fl_public = 0usize;
    let mut fl_total_friends = 0usize;
    let mut message = 0usize;
    let mut relationship = 0usize;
    let mut interested = 0usize;
    let mut birthday = 0usize;
    let mut photos_total: u64 = 0;
    for &u in users {
        let p: ScrapedProfile = access.profile(u)?;
        stats.n += 1;
        if p.friend_list_visible {
            fl_public += 1;
            if let Some(friends) = access.friends(u)? {
                fl_total_friends += friends.len();
            }
        }
        if p.message_button {
            message += 1;
        }
        if p.relationship {
            relationship += 1;
        }
        if p.interested_in {
            interested += 1;
        }
        if p.birthday.is_some() {
            birthday += 1;
        }
        photos_total += u64::from(p.photos_shared.unwrap_or(0));
    }
    if stats.n > 0 {
        let n = stats.n as f64;
        stats.pct_friend_list_public = 100.0 * fl_public as f64 / n;
        stats.avg_friends_public =
            if fl_public > 0 { fl_total_friends as f64 / fl_public as f64 } else { 0.0 };
        stats.pct_message_link = 100.0 * message as f64 / n;
        stats.pct_relationship = 100.0 * relationship as f64 / n;
        stats.pct_interested_in = 100.0 * interested as f64 / n;
        stats.pct_birthday = 100.0 * birthday as f64 / n;
        stats.avg_photos = photos_total as f64 / n;
    }
    Ok(stats)
}

/// What the attack reconstructs for a single student (§6's narrative
/// "profile" artifact): the deliverable a data broker would buy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConstructedProfile {
    pub user: UserId,
    pub name: String,
    pub gender: Option<String>,
    /// Inferred current high school (the target).
    pub high_school: hsp_graph::SchoolId,
    /// Inferred graduation year.
    pub grad_year: i32,
    /// Birth year estimated from the graduation year (§4.1: "the third
    /// party can also estimate birth year from the graduation year").
    pub est_birth_year: i32,
    /// Current city inferred from the school's city.
    pub current_city: hsp_graph::CityId,
    /// School friends known directly or via reverse lookup.
    pub known_friends: Vec<UserId>,
    /// Extra stranger-visible fields (non-minimal pages only).
    pub photos_shared: Option<u32>,
    pub relationship_visible: bool,
    pub message_reachable: bool,
}

/// Assemble the constructed profile for one discovered student.
pub fn construct_profile(
    profile: &ScrapedProfile,
    user: UserId,
    high_school: hsp_graph::SchoolId,
    school_city: hsp_graph::CityId,
    grad_year: i32,
    known_friends: Vec<UserId>,
) -> ConstructedProfile {
    ConstructedProfile {
        user,
        name: profile.name.clone(),
        gender: profile.gender.clone(),
        high_school,
        grad_year,
        est_birth_year: grad_year - 18,
        current_city: school_city,
        known_friends,
        photos_shared: profile.photos_shared,
        relationship_visible: profile.relationship,
        message_reachable: profile.message_button,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_crawler::Effort;
    use std::collections::HashMap;

    struct Stub {
        profiles: HashMap<UserId, ScrapedProfile>,
        friends: HashMap<UserId, Option<Vec<UserId>>>,
    }

    impl OsnAccess for Stub {
        fn collect_seeds(&mut self, _: hsp_graph::SchoolId) -> Result<Vec<UserId>, CrawlError> {
            Ok(vec![])
        }
        fn profile(&mut self, uid: UserId) -> Result<ScrapedProfile, CrawlError> {
            Ok(self.profiles.get(&uid).cloned().unwrap_or_default())
        }
        fn friends(&mut self, uid: UserId) -> Result<Option<Vec<UserId>>, CrawlError> {
            Ok(self.friends.get(&uid).cloned().unwrap_or(None))
        }
        fn effort(&self) -> Effort {
            Effort::default()
        }
    }

    #[test]
    fn audit_aggregates_match_hand_counts() {
        let mut profiles = HashMap::new();
        let mut friends = HashMap::new();
        // u1: public list of 3 friends, message button, 10 photos.
        profiles.insert(
            UserId(1),
            ScrapedProfile {
                friend_list_visible: true,
                message_button: true,
                photos_shared: Some(10),
                relationship: true,
                ..Default::default()
            },
        );
        friends.insert(UserId(1), Some(vec![UserId(7), UserId(8), UserId(9)]));
        // u2: hidden list, no message, 0 photos, birthday visible.
        profiles.insert(
            UserId(2),
            ScrapedProfile {
                birthday: Some(hsp_graph::Date::ymd(1994, 1, 1)),
                ..Default::default()
            },
        );
        let mut stub = Stub { profiles, friends };
        let stats = audit_adult_registered(&mut stub, &[UserId(1), UserId(2)]).unwrap();
        assert_eq!(stats.n, 2);
        assert_eq!(stats.pct_friend_list_public, 50.0);
        assert_eq!(stats.avg_friends_public, 3.0);
        assert_eq!(stats.pct_message_link, 50.0);
        assert_eq!(stats.pct_relationship, 50.0);
        assert_eq!(stats.pct_birthday, 50.0);
        assert_eq!(stats.avg_photos, 5.0);
    }

    #[test]
    fn audit_of_empty_set_is_zeroed() {
        let mut stub = Stub { profiles: HashMap::new(), friends: HashMap::new() };
        let stats = audit_adult_registered(&mut stub, &[]).unwrap();
        assert_eq!(stats, AdultRegisteredStats::default());
    }

    #[test]
    fn constructed_profile_estimates_birth_year() {
        let scraped = ScrapedProfile { name: "Ava K".into(), ..Default::default() };
        let p = construct_profile(
            &scraped,
            UserId(4),
            hsp_graph::SchoolId(0),
            hsp_graph::CityId(0),
            2014,
            vec![UserId(9)],
        );
        assert_eq!(p.est_birth_year, 1996);
        assert_eq!(p.known_friends, vec![UserId(9)]);
        assert!(!p.message_reachable);
    }
}
