//! The basic high-school profiling methodology (paper §4.1, steps 1–6).

use crate::types::{AttackConfig, Candidate, CoreCollection, CoreUser, Discovery};
use hsp_crawler::{CrawlError, OsnAccess};
use hsp_graph::UserId;
use std::collections::HashMap;

/// Step 1–2: collect seeds, download their profiles, and extract the
/// claiming set `C'` and core set `C` (claimers with public friend
/// lists).
pub fn collect_core(
    access: &mut dyn OsnAccess,
    config: &AttackConfig,
) -> Result<CoreCollection, CrawlError> {
    let seeds = access.collect_seeds(config.school)?;
    // Two passes, each preceded by a batch hint: parallel accessors
    // fetch the whole batch concurrently, sequential ones no-op and
    // fetch lazily below — either way the per-user decisions (and thus
    // the results) are identical.
    access.prefetch_profiles(&seeds)?;
    let mut claiming = Vec::new();
    let mut with_year = Vec::new();
    for &seed in &seeds {
        let profile = access.profile(seed)?;
        if !profile.claims_current_student(config.school, config.senior_class_year) {
            continue;
        }
        let Some(grad_year) = claimed_grad_year(&profile, config) else {
            continue;
        };
        claiming.push(seed);
        with_year.push((seed, grad_year));
    }
    access.prefetch_friends(&claiming)?;
    let mut core = Vec::new();
    for &(seed, grad_year) in &with_year {
        // Only claimers with public friend lists enter C (§4.1 step 2).
        if let Some(friends) = access.friends(seed)? {
            core.push(CoreUser { id: seed, grad_year, friends });
        }
    }
    Ok((seeds, claiming, core))
}

/// The grad year a claiming profile states for the target school (the
/// current-or-future one, in case multiple entries exist).
fn claimed_grad_year(profile: &hsp_crawler::ScrapedProfile, config: &AttackConfig) -> Option<i32> {
    profile
        .education
        .iter()
        .filter(|e| e.kind == hsp_crawler::ScrapedEduKind::HighSchool && e.school == config.school)
        .filter_map(|e| e.grad_year)
        .find(|&g| g >= config.senior_class_year)
}

/// Steps 3–5: build the candidate set `K` from the cores' friend lists,
/// reverse-look-up each candidate's core friendships per class
/// (`G_i(u) = {v ∈ C_i : u ∈ F(v)}`, eq. 1), and score with
/// `x(u) = max_i |G_i(u)| / |C_i|` (eq. 2).
///
/// Crucially this touches **no additional pages**: `G_i(u)` is computed
/// entirely from the already-downloaded core friend lists ("the third
/// party does not have to obtain the profile pages or friend lists of
/// any of the users in the large candidate set", §4.1 step 4).
pub fn rank_candidates(config: &AttackConfig, core: &[CoreUser]) -> Vec<Candidate> {
    let mut core_sizes = [0u32; 4];
    for c in core {
        if let Some(i) = config.class_index(c.grad_year) {
            core_sizes[i] += 1;
        }
    }
    // counts[u][i] = |G_i(u)|
    let mut counts: HashMap<UserId, [u32; 4]> = HashMap::new();
    for c in core {
        let Some(class) = config.class_index(c.grad_year) else {
            continue;
        };
        for &friend in &c.friends {
            counts.entry(friend).or_default()[class] += 1;
        }
    }
    let mut candidates: Vec<Candidate> = counts
        .into_iter()
        .map(|(id, by_class)| score_candidate(id, by_class, core_sizes))
        .collect();
    sort_ranked(&mut candidates);
    candidates
}

/// Score one candidate from its per-class core-friend counts.
pub fn score_candidate(id: UserId, by_class: [u32; 4], core_sizes: [u32; 4]) -> Candidate {
    let mut best = 0usize;
    let mut best_frac = -1.0f64;
    for i in 0..4 {
        if core_sizes[i] == 0 {
            continue;
        }
        let frac = by_class[i] as f64 / core_sizes[i] as f64;
        if frac > best_frac {
            best_frac = frac;
            best = i;
        }
    }
    Candidate { id, core_friends_by_class: by_class, score: best_frac.max(0.0), best_class: best }
}

/// Deterministic ranking: descending score, ties broken by a hash of
/// the id (an arbitrary-but-stable order; raw-id tie-breaking would
/// leak the generator's insertion order to the attacker).
pub fn sort_ranked(candidates: &mut [Candidate]) {
    candidates.sort_unstable_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then(tie_key(a.id).cmp(&tie_key(b.id)))
            .then(a.id.cmp(&b.id))
    });
}

/// SplitMix64 of the id, for unbiased tie-breaking.
fn tie_key(u: UserId) -> u64 {
    let mut z = u.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The full basic methodology (steps 1–6): seeds → core → ranked
/// candidates, packaged as a [`Discovery`].
pub fn run_basic(
    access: &mut dyn OsnAccess,
    config: &AttackConfig,
) -> Result<Discovery, CrawlError> {
    let (seeds, claiming, core) = collect_core(access, config)?;
    let ranked = rank_candidates(config, &core);
    Ok(Discovery { config: config.clone(), seeds, claiming, core, ranked })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_graph::SchoolId;

    fn cfg() -> AttackConfig {
        AttackConfig::new(SchoolId(0), 2012, 360)
    }

    fn core_user(id: u64, grad_year: i32, friends: &[u64]) -> CoreUser {
        CoreUser {
            id: UserId(id),
            grad_year,
            friends: friends.iter().map(|&f| UserId(f)).collect(),
        }
    }

    #[test]
    fn scores_follow_equation_2() {
        // Two cores in 2014 (C_2), one in 2012 (C_4).
        let core = vec![
            core_user(1, 2014, &[10, 11]),
            core_user(2, 2014, &[10]),
            core_user(3, 2012, &[11]),
        ];
        let ranked = rank_candidates(&cfg(), &core);
        let find = |u: u64| ranked.iter().find(|c| c.id == UserId(u)).unwrap();
        // u10 is a friend of both 2014 cores: x = 2/2 = 1.0 in C_2.
        let c10 = find(10);
        assert_eq!(c10.score, 1.0);
        assert_eq!(c10.inferred_grad_year(&cfg()), 2014);
        // u11: 1/2 in C_2, 1/1 in C_4 → max is C_4.
        let c11 = find(11);
        assert_eq!(c11.score, 1.0);
        assert_eq!(c11.inferred_grad_year(&cfg()), 2012);
        assert_eq!(c11.core_friends_by_class, [0, 1, 0, 1]);
    }

    #[test]
    fn empty_core_classes_do_not_divide_by_zero() {
        let core = vec![core_user(1, 2014, &[10])];
        let ranked = rank_candidates(&cfg(), &core);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].score, 1.0);
    }

    #[test]
    fn cores_outside_enrolled_years_are_ignored() {
        let core = vec![core_user(1, 2010, &[10]), core_user(2, 2014, &[11])];
        let ranked = rank_candidates(&cfg(), &core);
        // Only u11 (friend of the 2014 core) appears.
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].id, UserId(11));
    }

    #[test]
    fn ranking_is_deterministic_and_descending() {
        let core = vec![
            core_user(1, 2014, &[10, 11, 12]),
            core_user(2, 2014, &[10, 11]),
            core_user(3, 2014, &[10]),
        ];
        let ranked = rank_candidates(&cfg(), &core);
        assert_eq!(ranked.iter().map(|c| c.id.0).collect::<Vec<_>>(), vec![10, 11, 12]);
        assert!(ranked.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn tie_break_is_deterministic_and_id_independent() {
        let core = vec![core_user(1, 2014, &[30, 20])];
        let a = rank_candidates(&cfg(), &core);
        let b = rank_candidates(&cfg(), &core);
        assert_eq!(
            a.iter().map(|c| c.id).collect::<Vec<_>>(),
            b.iter().map(|c| c.id).collect::<Vec<_>>()
        );
        let ids: Vec<u64> = a.iter().map(|c| c.id.0).collect();
        assert_eq!(
            {
                let mut s = ids.clone();
                s.sort();
                s
            },
            vec![20, 30]
        );
    }
}
