//! The COPPA-less counterfactual (§7).
//!
//! §7.1's "natural approach" for a world where nobody lies about their
//! age: no current student is searchable, so the attacker starts from
//! *recent alumni* (young adults with many slightly-younger friends),
//! collects their friends, and keeps the candidates that (a) show a
//! minimal public profile — on Facebook that is the signature of a
//! registered minor — and (b) have at least `n` core friends.
//!
//! §7.2's apples-to-apples comparison scores both worlds by the number
//! of *minimal-profile ground-truth students* found versus false
//! positives.

use crate::types::{AttackConfig, CoreUser};
use hsp_crawler::{CrawlError, OsnAccess, ScrapedEduKind};
use hsp_graph::UserId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Options for the §7.1 heuristic.
#[derive(Clone, Copy, Debug)]
pub struct CoppalessOptions {
    /// Use alumni who graduated within this many years (the paper uses
    /// the 2010 and 2011 classes for a March-2012 crawl → 2).
    pub alumni_years_back: i32,
    /// Keep candidates with at least this many core friends (swept over
    /// n = 1, 2, 3 in Figure 3).
    pub min_core_friends: u32,
}

impl Default for CoppalessOptions {
    fn default() -> Self {
        CoppalessOptions { alumni_years_back: 2, min_core_friends: 1 }
    }
}

/// Output of the heuristic for one `n`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoppalessRun {
    /// Recent-alumni core users (with public friend lists).
    pub core: Vec<CoreUser>,
    /// Candidate → number of core friends (before the min-n filter).
    pub core_friend_counts: Vec<(UserId, u32)>,
    /// The guess set `H` after both filters, per §7.1 step 4.
    pub guessed: Vec<UserId>,
    /// Candidates that had minimal profiles (pre-n-filter), for sweeps.
    pub minimal_candidates: usize,
}

/// Run §7.1 steps 1–4.
///
/// Step 1's "adults who recently graduated" are found from the search
/// portal: seeds whose public profile lists the target school with a
/// grad year in `[senior - years_back, senior - 1]`.
pub fn run_coppaless_heuristic(
    access: &mut dyn OsnAccess,
    config: &AttackConfig,
    options: &CoppalessOptions,
) -> Result<CoppalessRun, CrawlError> {
    let seeds = access.collect_seeds(config.school)?;
    let senior = config.senior_class_year;
    let window = (senior - options.alumni_years_back)..senior;

    // Step 1: recent-alumni core with public friend lists.
    let mut core: Vec<CoreUser> = Vec::new();
    for &seed in &seeds {
        let profile = access.profile(seed)?;
        let recent_grad = profile.education.iter().any(|e| {
            e.kind == ScrapedEduKind::HighSchool
                && e.school == config.school
                && e.grad_year.is_some_and(|g| window.contains(&g))
        });
        if !recent_grad {
            continue;
        }
        let grad_year = profile
            .education
            .iter()
            .filter(|e| e.kind == ScrapedEduKind::HighSchool && e.school == config.school)
            .filter_map(|e| e.grad_year)
            .find(|g| window.contains(g))
            .expect("matched above");
        if let Some(friends) = access.friends(seed)? {
            core.push(CoreUser { id: seed, grad_year, friends });
        }
    }

    // Step 2: candidate set = union of core friends, with counts.
    let mut counts: HashMap<UserId, u32> = HashMap::new();
    for c in &core {
        for &f in &c.friends {
            *counts.entry(f).or_default() += 1;
        }
    }
    let mut core_friend_counts: Vec<(UserId, u32)> = counts.into_iter().collect();
    core_friend_counts.sort_unstable();

    // Step 3: keep only minimal public profiles (downloads every
    // candidate's page — the heuristic's dominant cost).
    // Step 4: and at least `n` core friends.
    let mut guessed = Vec::new();
    let mut minimal_candidates = 0;
    for &(u, k) in &core_friend_counts {
        let profile = access.profile(u)?;
        if !profile.is_minimal() {
            continue;
        }
        minimal_candidates += 1;
        if k >= options.min_core_friends {
            guessed.push(u);
        }
    }
    guessed.sort_unstable();

    Ok(CoppalessRun { core, core_friend_counts, guessed, minimal_candidates })
}

/// One point of Figure 3: minimal-profile students found vs false
/// positives.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MinimalProfilePoint {
    /// The sweep parameter (n for without-COPPA, t for with-COPPA).
    pub param: usize,
    /// Guessed minimal-profile users.
    pub guessed: usize,
    /// Of those, ground-truth students (with minimal profiles).
    pub found: usize,
    pub false_positives: usize,
    /// % of the minimal-profile ground-truth student population found.
    pub pct_found: f64,
}

/// Score a guessed minimal-profile set against the ground-truth set of
/// minimal-profile students.
pub fn score_minimal_set(
    param: usize,
    guessed: &[UserId],
    minimal_students: &[UserId],
) -> MinimalProfilePoint {
    let found = guessed.iter().filter(|u| minimal_students.binary_search(u).is_ok()).count();
    MinimalProfilePoint {
        param,
        guessed: guessed.len(),
        found,
        false_positives: guessed.len() - found,
        pct_found: if minimal_students.is_empty() {
            0.0
        } else {
            100.0 * found as f64 / minimal_students.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_graph::SchoolId;

    #[test]
    fn score_minimal_set_counts() {
        let minimal_students = vec![UserId(1), UserId(2), UserId(3), UserId(4)];
        let guessed = vec![UserId(2), UserId(4), UserId(9), UserId(10)];
        let p = score_minimal_set(1, &guessed, &minimal_students);
        assert_eq!(p.found, 2);
        assert_eq!(p.false_positives, 2);
        assert_eq!(p.pct_found, 50.0);
    }

    #[test]
    fn options_default_matches_paper() {
        let o = CoppalessOptions::default();
        assert_eq!(o.alumni_years_back, 2);
        assert_eq!(o.min_core_friends, 1);
    }

    #[test]
    fn alumni_window_excludes_current_and_old() {
        // window for senior=2012, back=2 → {2010, 2011}
        let config = AttackConfig::new(SchoolId(0), 2012, 300);
        let window = (config.senior_class_year - 2)..config.senior_class_year;
        assert!(window.contains(&2010));
        assert!(window.contains(&2011));
        assert!(!window.contains(&2012));
        assert!(!window.contains(&2009));
    }
}
