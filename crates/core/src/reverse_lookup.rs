//! Reverse lookup as a profile-extension tool (§6.1).
//!
//! After discovery, the attacker downloads the friend lists of every
//! guessed student whose list is public. A student whose own list is
//! hidden (every registered minor) still *appears in* the public lists
//! of classmates — so a partial friend list can be reconstructed for
//! them. This is exactly what §8's countermeasure later disables.

use hsp_crawler::{CrawlError, OsnAccess};
use hsp_graph::UserId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// Reconstructed friendship evidence for the guessed student set.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RecoveredFriends {
    /// Users whose friend lists were directly downloadable, with their
    /// full lists.
    pub direct: BTreeMap<UserId, Vec<UserId>>,
    /// Users with hidden lists: the friends recovered via reverse
    /// lookup (sorted). Keys are all guessed students with hidden lists.
    pub recovered: BTreeMap<UserId, Vec<UserId>>,
}

impl RecoveredFriends {
    /// The friend list the attacker ends up with for `u` (direct if
    /// available, otherwise recovered).
    pub fn friends_of(&self, u: UserId) -> &[UserId] {
        self.direct.get(&u).or_else(|| self.recovered.get(&u)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Average recovered-list length over the hidden-list users (§6.1
    /// reports 38 / 141 / 129 for HS1–HS3's registered minors).
    pub fn avg_recovered_len(&self) -> f64 {
        if self.recovered.is_empty() {
            return 0.0;
        }
        self.recovered.values().map(Vec::len).sum::<usize>() as f64 / self.recovered.len() as f64
    }
}

/// Download what is downloadable and reverse-look-up the rest.
///
/// For every `u ∈ guessed` with a hidden list, the recovered list is
/// `{v ∈ guessed : F(v) public ∧ u ∈ F(v)}`.
pub fn recover_friend_lists(
    access: &mut dyn OsnAccess,
    guessed: &[UserId],
) -> Result<RecoveredFriends, CrawlError> {
    let guessed_set: HashSet<UserId> = guessed.iter().copied().collect();
    let mut out = RecoveredFriends::default();
    let mut hidden: Vec<UserId> = Vec::new();
    for &u in guessed {
        match access.friends(u)? {
            Some(list) => {
                out.direct.insert(u, list);
            }
            None => hidden.push(u),
        }
    }
    let hidden_set: HashSet<UserId> = hidden.iter().copied().collect();
    let mut recovered: BTreeMap<UserId, Vec<UserId>> =
        hidden.iter().map(|&u| (u, Vec::new())).collect();
    for (&owner, list) in &out.direct {
        if !guessed_set.contains(&owner) {
            continue;
        }
        for &friend in list {
            if hidden_set.contains(&friend) {
                recovered.get_mut(&friend).expect("initialized").push(owner);
            }
        }
    }
    for list in recovered.values_mut() {
        list.sort_unstable();
        list.dedup();
    }
    out.recovered = recovered;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_crawler::{Effort, OsnAccess, ScrapedProfile};
    use std::collections::HashMap;

    /// A stub OSN: fixed friend lists, some hidden.
    struct Stub {
        lists: HashMap<UserId, Option<Vec<UserId>>>,
    }

    impl OsnAccess for Stub {
        fn collect_seeds(&mut self, _: hsp_graph::SchoolId) -> Result<Vec<UserId>, CrawlError> {
            Ok(vec![])
        }
        fn profile(&mut self, _: UserId) -> Result<ScrapedProfile, CrawlError> {
            Ok(ScrapedProfile::default())
        }
        fn friends(&mut self, uid: UserId) -> Result<Option<Vec<UserId>>, CrawlError> {
            Ok(self.lists.get(&uid).cloned().unwrap_or(None))
        }
        fn effort(&self) -> Effort {
            Effort::default()
        }
    }

    #[test]
    fn hidden_lists_are_reconstructed_from_public_ones() {
        // u1, u2 public; u3 hidden but friended by both.
        let mut lists = HashMap::new();
        lists.insert(UserId(1), Some(vec![UserId(2), UserId(3)]));
        lists.insert(UserId(2), Some(vec![UserId(1), UserId(3)]));
        lists.insert(UserId(3), None);
        let mut stub = Stub { lists };
        let guessed = vec![UserId(1), UserId(2), UserId(3)];
        let rec = recover_friend_lists(&mut stub, &guessed).unwrap();
        assert_eq!(rec.direct.len(), 2);
        assert_eq!(rec.recovered[&UserId(3)], vec![UserId(1), UserId(2)]);
        assert_eq!(rec.friends_of(UserId(3)), &[UserId(1), UserId(2)]);
        assert_eq!(rec.friends_of(UserId(1)), &[UserId(2), UserId(3)]);
        assert_eq!(rec.avg_recovered_len(), 2.0);
    }

    #[test]
    fn recovery_is_limited_to_guessed_set() {
        // u9 friends u3 but is not in the guessed set: must not appear.
        let mut lists = HashMap::new();
        lists.insert(UserId(1), Some(vec![UserId(3)]));
        lists.insert(UserId(3), None);
        lists.insert(UserId(9), Some(vec![UserId(3)]));
        let mut stub = Stub { lists };
        let rec = recover_friend_lists(&mut stub, &[UserId(1), UserId(3)]).unwrap();
        assert_eq!(rec.recovered[&UserId(3)], vec![UserId(1)]);
    }

    #[test]
    fn two_hidden_users_cannot_see_each_other() {
        // The §6.1 caveat: a friendship between two hidden-list users is
        // invisible to reverse lookup.
        let mut lists = HashMap::new();
        lists.insert(UserId(1), None);
        lists.insert(UserId(2), None);
        lists.insert(UserId(3), Some(vec![UserId(1), UserId(2)]));
        let mut stub = Stub { lists };
        let rec = recover_friend_lists(&mut stub, &[UserId(1), UserId(2), UserId(3)]).unwrap();
        assert_eq!(rec.recovered[&UserId(1)], vec![UserId(3)]);
        assert_eq!(rec.recovered[&UserId(2)], vec![UserId(3)]);
        // u1–u2 friendship (if any) is absent — that is the Jaccard
        // module's job to infer.
    }

    #[test]
    fn empty_guessed_set() {
        let mut stub = Stub { lists: HashMap::new() };
        let rec = recover_friend_lists(&mut stub, &[]).unwrap();
        assert!(rec.direct.is_empty());
        assert!(rec.recovered.is_empty());
        assert_eq!(rec.avg_recovered_len(), 0.0);
    }
}
