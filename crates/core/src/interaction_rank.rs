//! Interaction-weighted candidate ranking (§4.3's cited-but-unexplored
//! optimization, after Wilson et al.'s interaction graphs).
//!
//! The plain score treats every core friendship equally. But the
//! attacker already downloaded each core user's profile page, and when
//! a core's wall is stranger-visible, the page names its most frequent
//! posters. A candidate who both *friends* and *posts on the walls of*
//! class-`i` cores is far likelier to be a class-`i` classmate than a
//! silent friend-of-record — so wall-post evidence earns a bonus weight.

use crate::methodology::sort_ranked;
use crate::types::{AttackConfig, Candidate, CoreUser};
use hsp_crawler::{CrawlError, OsnAccess};
use hsp_graph::UserId;
use std::collections::{HashMap, HashSet};

/// Weighting options.
#[derive(Clone, Copy, Debug)]
pub struct InteractionWeights {
    /// Added to a candidate's class weight for each core in that class
    /// whose visible wall they posted on (on top of the 1.0 for the
    /// friendship itself).
    pub wall_post_bonus: f64,
}

impl Default for InteractionWeights {
    fn default() -> Self {
        InteractionWeights { wall_post_bonus: 1.0 }
    }
}

/// Rank candidates with interaction weighting.
///
/// Fetches each core's profile (cached from the seed pass — no new
/// requests) to read its visible wall posters; scores are
/// `x_w(u) = max_i Σ_{v ∈ C_i, u ∈ F(v)} (1 + bonus·[u posted on v's wall]) / |C_i|`.
pub fn rank_candidates_weighted(
    access: &mut dyn OsnAccess,
    config: &AttackConfig,
    core: &[CoreUser],
    weights: &InteractionWeights,
) -> Result<Vec<Candidate>, CrawlError> {
    let mut core_sizes = [0u32; 4];
    for c in core {
        if let Some(i) = config.class_index(c.grad_year) {
            core_sizes[i] += 1;
        }
    }
    let mut weighted: HashMap<UserId, [f64; 4]> = HashMap::new();
    let mut raw: HashMap<UserId, [u32; 4]> = HashMap::new();
    for c in core {
        let Some(class) = config.class_index(c.grad_year) else {
            continue;
        };
        let posters: HashSet<UserId> = access.profile(c.id)?.wall_posters.into_iter().collect();
        for &friend in &c.friends {
            let w = 1.0 + if posters.contains(&friend) { weights.wall_post_bonus } else { 0.0 };
            weighted.entry(friend).or_default()[class] += w;
            raw.entry(friend).or_default()[class] += 1;
        }
    }
    let mut candidates: Vec<Candidate> = weighted
        .into_iter()
        .map(|(id, by_class)| {
            let mut best = 0usize;
            let mut best_score = -1.0f64;
            for i in 0..4 {
                if core_sizes[i] == 0 {
                    continue;
                }
                let score = by_class[i] / f64::from(core_sizes[i]);
                if score > best_score {
                    best_score = score;
                    best = i;
                }
            }
            Candidate {
                id,
                core_friends_by_class: raw[&id],
                score: best_score.max(0.0),
                best_class: best,
            }
        })
        .collect();
    sort_ranked(&mut candidates);
    Ok(candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsp_crawler::{Effort, ScrapedProfile};
    use hsp_graph::SchoolId;

    struct Stub {
        walls: HashMap<UserId, Vec<UserId>>,
    }

    impl OsnAccess for Stub {
        fn collect_seeds(&mut self, _: SchoolId) -> Result<Vec<UserId>, CrawlError> {
            Ok(vec![])
        }
        fn profile(&mut self, uid: UserId) -> Result<ScrapedProfile, CrawlError> {
            Ok(ScrapedProfile {
                wall_posters: self.walls.get(&uid).cloned().unwrap_or_default(),
                ..Default::default()
            })
        }
        fn friends(&mut self, _: UserId) -> Result<Option<Vec<UserId>>, CrawlError> {
            Ok(None)
        }
        fn effort(&self) -> Effort {
            Effort::default()
        }
    }

    #[test]
    fn wall_posters_outrank_silent_friends() {
        let config = AttackConfig::new(SchoolId(0), 2012, 100);
        // One core (class of 2014) with two friends; u10 posts on the
        // core's wall, u11 does not.
        let core = vec![CoreUser {
            id: UserId(1),
            grad_year: 2014,
            friends: vec![UserId(10), UserId(11)],
        }];
        let mut stub = Stub { walls: [(UserId(1), vec![UserId(10)])].into() };
        let ranked =
            rank_candidates_weighted(&mut stub, &config, &core, &InteractionWeights::default())
                .unwrap();
        assert_eq!(ranked[0].id, UserId(10));
        assert!(ranked[0].score > ranked[1].score);
        // Raw friendship counts are preserved for diagnostics.
        assert_eq!(ranked[0].core_friends_by_class, ranked[1].core_friends_by_class);
    }

    #[test]
    fn zero_bonus_reduces_to_plain_ranking() {
        let config = AttackConfig::new(SchoolId(0), 2012, 100);
        let core = vec![
            CoreUser { id: UserId(1), grad_year: 2014, friends: vec![UserId(10), UserId(11)] },
            CoreUser { id: UserId(2), grad_year: 2014, friends: vec![UserId(10)] },
        ];
        let mut stub = Stub { walls: [(UserId(1), vec![UserId(11)])].into() };
        let weighted = rank_candidates_weighted(
            &mut stub,
            &config,
            &core,
            &InteractionWeights { wall_post_bonus: 0.0 },
        )
        .unwrap();
        let plain = crate::methodology::rank_candidates(&config, &core);
        let key = |v: &[Candidate]| v.iter().map(|c| (c.id, c.score.to_bits())).collect::<Vec<_>>();
        assert_eq!(key(&weighted), key(&plain));
    }
}
