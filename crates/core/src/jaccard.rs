//! Hidden-friendship inference between registered minors (§6.1).
//!
//! Reverse lookup cannot see a friendship between two users whose lists
//! are both hidden. The paper proposes inferring such links from the
//! Jaccard index of the two users' *recovered* friend lists: classmates
//! who are friends share many mutual (recovered) friends.

use crate::reverse_lookup::RecoveredFriends;
use hsp_graph::{jaccard_index, UserId};
use serde::{Deserialize, Serialize};

/// An inferred hidden link with its evidence score.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InferredLink {
    pub a: UserId,
    pub b: UserId,
    pub jaccard: f64,
}

/// Compute the Jaccard index for every pair of hidden-list users and
/// return the pairs scoring at least `threshold`, sorted by descending
/// score.
pub fn infer_hidden_links(rec: &RecoveredFriends, threshold: f64) -> Vec<InferredLink> {
    let users: Vec<UserId> = rec.recovered.keys().copied().collect();
    let mut out = Vec::new();
    for i in 0..users.len() {
        for j in (i + 1)..users.len() {
            let (a, b) = (users[i], users[j]);
            let score = jaccard_index(&rec.recovered[&a], &rec.recovered[&b]);
            if score >= threshold {
                out.push(InferredLink { a, b, jaccard: score });
            }
        }
    }
    out.sort_by(|x, y| {
        y.jaccard.partial_cmp(&x.jaccard).expect("finite").then((x.a, x.b).cmp(&(y.a, y.b)))
    });
    out
}

/// Precision/recall of inferred links against ground-truth friendship.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkInferenceEval {
    pub threshold: f64,
    pub predicted: usize,
    pub true_positives: usize,
    /// Ground-truth hidden links among the evaluated users.
    pub actual_links: usize,
    pub precision: f64,
    pub recall: f64,
}

/// Evaluate inferred links given a ground-truth `are_friends` oracle and
/// the set of hidden users (for counting actual links).
pub fn evaluate_links(
    rec: &RecoveredFriends,
    threshold: f64,
    are_friends: impl Fn(UserId, UserId) -> bool,
) -> LinkInferenceEval {
    let users: Vec<UserId> = rec.recovered.keys().copied().collect();
    let mut actual_links = 0;
    for i in 0..users.len() {
        for j in (i + 1)..users.len() {
            if are_friends(users[i], users[j]) {
                actual_links += 1;
            }
        }
    }
    let predicted_links = infer_hidden_links(rec, threshold);
    let true_positives = predicted_links.iter().filter(|l| are_friends(l.a, l.b)).count();
    let predicted = predicted_links.len();
    LinkInferenceEval {
        threshold,
        predicted,
        true_positives,
        actual_links,
        precision: if predicted == 0 { 0.0 } else { true_positives as f64 / predicted as f64 },
        recall: if actual_links == 0 { 0.0 } else { true_positives as f64 / actual_links as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn rec_with(lists: &[(u64, &[u64])]) -> RecoveredFriends {
        let recovered: BTreeMap<UserId, Vec<UserId>> = lists
            .iter()
            .map(|&(u, fs)| (UserId(u), fs.iter().map(|&f| UserId(f)).collect()))
            .collect();
        RecoveredFriends { direct: BTreeMap::new(), recovered }
    }

    #[test]
    fn high_overlap_pairs_rank_first() {
        let rec = rec_with(&[(1, &[10, 11, 12, 13]), (2, &[10, 11, 12, 14]), (3, &[20, 21])]);
        let links = infer_hidden_links(&rec, 0.0);
        assert_eq!(links[0].a, UserId(1));
        assert_eq!(links[0].b, UserId(2));
        assert!((links[0].jaccard - 3.0 / 5.0).abs() < 1e-12);
        // Disjoint pairs score zero but still appear at threshold 0.
        assert_eq!(links.len(), 3);
    }

    #[test]
    fn threshold_prunes() {
        let rec = rec_with(&[(1, &[10, 11]), (2, &[10, 11]), (3, &[99])]);
        let links = infer_hidden_links(&rec, 0.5);
        assert_eq!(links.len(), 1);
        assert_eq!((links[0].a, links[0].b), (UserId(1), UserId(2)));
    }

    #[test]
    fn precision_recall_against_oracle() {
        let rec = rec_with(&[
            (1, &[10, 11, 12]),
            (2, &[10, 11, 12]), // friends with 1
            (3, &[50, 51]),     // friends with nobody
        ]);
        let eval = evaluate_links(&rec, 0.5, |a, b| {
            (a, b) == (UserId(1), UserId(2)) || (a, b) == (UserId(2), UserId(1))
        });
        assert_eq!(eval.predicted, 1);
        assert_eq!(eval.true_positives, 1);
        assert_eq!(eval.actual_links, 1);
        assert_eq!(eval.precision, 1.0);
        assert_eq!(eval.recall, 1.0);
    }

    #[test]
    fn zero_cases() {
        let rec = rec_with(&[]);
        let eval = evaluate_links(&rec, 0.1, |_, _| false);
        assert_eq!(eval.predicted, 0);
        assert_eq!(eval.precision, 0.0);
        assert_eq!(eval.recall, 0.0);
    }
}
