//! End-to-end attack runs on the tiny scenario (in-process transport).
//!
//! These tests exercise the complete pipeline — generate world → serve
//! it through the policy engine → crawl → infer → evaluate — and assert
//! the paper's qualitative results hold at small scale.

use hsp_core::{
    evaluate, recover_friend_lists, run_basic, run_coppaless_heuristic, run_enhanced,
    score_minimal_set, AttackConfig, CoppalessOptions, EnhanceOptions, GroundTruth,
};
use hsp_crawler::{Crawler, OsnAccess};
use hsp_http::DirectExchange;
use hsp_platform::{Platform, PlatformConfig};
use hsp_policy::{FacebookPolicy, Policy};
use hsp_synth::{generate, Scenario, ScenarioConfig};
use std::sync::Arc;

fn build(scenario: &Scenario, policy: Arc<dyn Policy>, accounts: usize) -> Crawler<DirectExchange> {
    let platform =
        Platform::new(Arc::new(scenario.network.clone()), policy, PlatformConfig::default());
    let handler = platform.into_handler();
    let exchanges = (0..accounts).map(|_| DirectExchange::new(handler.clone())).collect();
    Crawler::new(exchanges, "e2e").unwrap()
}

fn attack_config(scenario: &Scenario) -> AttackConfig {
    AttackConfig::new(
        scenario.school,
        scenario.network.senior_class_year(),
        scenario.config.public_enrollment_estimate,
    )
}

#[test]
fn basic_methodology_discovers_most_students() {
    let scenario = generate(&ScenarioConfig::tiny());
    let mut crawler = build(&scenario, Arc::new(FacebookPolicy::new()), 2);
    let config = attack_config(&scenario);
    let discovery = run_basic(&mut crawler, &config).unwrap();

    assert!(!discovery.core.is_empty(), "no core users found");
    assert!(discovery.candidate_count() > discovery.core.len());

    let truth = GroundTruth::from_scenario(&scenario);
    let t = scenario.config.public_enrollment_estimate as usize;
    let guessed = discovery.guessed_students(t);
    let point = evaluate(t, &guessed, |u| discovery.inferred_year(u), &truth);

    // The paper finds 83–92 % at t ≈ school size. At tiny scale the core
    // is only ~12 users and a class can lack cores entirely (the paper's
    // own caveat in §4.1), so demand a looser majority here; the full
    // HS1-scale reproduction in hsp-experiments checks the real bar.
    assert!(
        point.pct_found(truth.len()) > 60.0,
        "found only {:.0}% ({} of {})",
        point.pct_found(truth.len()),
        point.found,
        truth.len()
    );
    // Grad-year classification must be strongly better than the 25 %
    // random baseline (paper: ~92 %).
    assert!(point.pct_correct_year() > 60.0, "correct year only {:.0}%", point.pct_correct_year());
}

#[test]
fn enhanced_methodology_extends_core_and_helps_coverage() {
    let scenario = generate(&ScenarioConfig::tiny());
    let mut crawler = build(&scenario, Arc::new(FacebookPolicy::new()), 2);
    let config = attack_config(&scenario);
    let discovery = run_basic(&mut crawler, &config).unwrap();
    let t = scenario.config.public_enrollment_estimate as usize;

    let enhanced = run_enhanced(
        &mut crawler,
        &discovery,
        &EnhanceOptions { t, filtering: true, enhance: true, school_city: scenario.home_city },
    )
    .unwrap();
    assert!(
        enhanced.extended_core.len() >= discovery.core.len(),
        "enhancement must not shrink the core"
    );

    let truth = GroundTruth::from_scenario(&scenario);
    let basic_point =
        evaluate(t, &discovery.guessed_students(t), |u| discovery.inferred_year(u), &truth);
    let enh_point =
        evaluate(t, &enhanced.guessed_students(t), |u| enhanced.inferred_year(u, &config), &truth);
    // Enhanced+filtering should not be materially worse than basic, and
    // usually better (paper Table 4).
    assert!(
        enh_point.found + 3 >= basic_point.found,
        "enhanced {} vs basic {}",
        enh_point.found,
        basic_point.found
    );
}

#[test]
fn reverse_lookup_recovers_friends_of_registered_minors() {
    let scenario = generate(&ScenarioConfig::tiny());
    let mut crawler = build(&scenario, Arc::new(FacebookPolicy::new()), 2);
    let config = attack_config(&scenario);
    let discovery = run_basic(&mut crawler, &config).unwrap();
    let t = scenario.config.public_enrollment_estimate as usize;
    let guessed = discovery.guessed_students(t);

    let rec = recover_friend_lists(&mut crawler, &guessed).unwrap();
    // Some guessed students have hidden lists, and reverse lookup finds
    // friends for (most of) them.
    assert!(!rec.recovered.is_empty());
    assert!(rec.avg_recovered_len() > 1.0, "avg {}", rec.avg_recovered_len());
    // Everything recovered is true friendship (no hallucinated edges).
    for (&u, friends) in &rec.recovered {
        for &f in friends {
            assert!(scenario.network.are_friends(u, f), "recovered non-edge {u}-{f}");
        }
    }
}

#[test]
fn countermeasure_disabling_reverse_lookup_cripples_the_attack() {
    let scenario = generate(&ScenarioConfig::tiny());
    let config = attack_config(&scenario);
    let truth = GroundTruth::from_scenario(&scenario);
    let t = scenario.config.public_enrollment_estimate as usize;

    let mut with = build(&scenario, Arc::new(FacebookPolicy::new()), 2);
    let d_with = run_basic(&mut with, &config).unwrap();
    let p_with = evaluate(t, &d_with.guessed_students(t), |u| d_with.inferred_year(u), &truth);

    let mut without = build(&scenario, Arc::new(FacebookPolicy::without_reverse_lookup()), 2);
    let d_without = run_basic(&mut without, &config).unwrap();
    let p_without =
        evaluate(t, &d_without.guessed_students(t), |u| d_without.inferred_year(u), &truth);

    // Paper §8: top-500 coverage drops 92 % → 33 %. Require a sharp drop.
    assert!(
        (p_without.found as f64) < 0.75 * p_with.found as f64,
        "countermeasure didn't bite: {} vs {}",
        p_without.found,
        p_with.found
    );
    // Registered minors specifically become nearly invisible.
    let minors: Vec<_> = scenario.registered_minor_students();
    let found_minors = |guessed: &[hsp_graph::UserId]| {
        minors.iter().filter(|m| guessed.binary_search(m).is_ok()).count()
    };
    let with_minors = found_minors(&d_with.guessed_students(t));
    let without_minors = found_minors(&d_without.guessed_students(t));
    assert!(
        without_minors < with_minors,
        "minors: {without_minors} (countermeasure) vs {with_minors}"
    );
}

#[test]
fn coppaless_world_needs_far_more_false_positives() {
    // With-COPPA world.
    let scenario = generate(&ScenarioConfig::tiny());
    let config = attack_config(&scenario);
    let mut crawler = build(&scenario, Arc::new(FacebookPolicy::new()), 2);
    let discovery = run_basic(&mut crawler, &config).unwrap();
    let t = scenario.config.public_enrollment_estimate as usize;

    // Ground-truth minimal-profile students (the §7.2 comparison set).
    let policy = FacebookPolicy::new();
    let mut minimal_students: Vec<_> = scenario
        .roster()
        .into_iter()
        .filter(|&u| policy.stranger_view(&scenario.network, u).is_minimal())
        .collect();
    minimal_students.sort_unstable();
    assert!(!minimal_students.is_empty());

    // With-COPPA: minimal-profile members of the top-t.
    let mut with_guessed: Vec<_> = discovery
        .guessed_students(t)
        .into_iter()
        .filter(|&u| crawler.profile(u).unwrap().is_minimal())
        .collect();
    with_guessed.sort_unstable();
    let with_point = score_minimal_set(t, &with_guessed, &minimal_students);

    // Without-COPPA world: same school, truthful registrations.
    let cl_scenario = generate(&ScenarioConfig::tiny().without_coppa());
    let cl_config = attack_config(&cl_scenario);
    let mut cl_crawler = build(&cl_scenario, Arc::new(FacebookPolicy::new()), 2);
    let run = run_coppaless_heuristic(
        &mut cl_crawler,
        &cl_config,
        &CoppalessOptions { alumni_years_back: 2, min_core_friends: 1 },
    )
    .unwrap();
    let cl_policy = FacebookPolicy::new();
    let mut cl_minimal_students: Vec<_> = cl_scenario
        .roster()
        .into_iter()
        .filter(|&u| cl_policy.stranger_view(&cl_scenario.network, u).is_minimal())
        .collect();
    cl_minimal_students.sort_unstable();
    let cl_point = score_minimal_set(1, &run.guessed, &cl_minimal_students);

    // The paper's Figure 3 shape: for comparable coverage, the COPPA-less
    // attacker drowns in false positives (4,480 vs 70 at ~60 %). At tiny
    // scale just require a large multiple.
    assert!(
        cl_point.false_positives as f64 > 2.0 * with_point.false_positives.max(1) as f64,
        "coppaless FPs {} vs with-COPPA FPs {}",
        cl_point.false_positives,
        with_point.false_positives
    );
}

#[test]
fn effort_is_small_relative_to_school_size() {
    // Paper §5.3: basic ≈ 2× school size requests; enhanced ≈ 5×.
    let scenario = generate(&ScenarioConfig::tiny());
    let mut crawler = build(&scenario, Arc::new(FacebookPolicy::new()), 2);
    let config = attack_config(&scenario);
    let discovery = run_basic(&mut crawler, &config).unwrap();
    let basic_effort = crawler.effort();
    let t = scenario.config.public_enrollment_estimate as usize;
    let _ = run_enhanced(
        &mut crawler,
        &discovery,
        &EnhanceOptions { t, filtering: true, enhance: true, school_city: scenario.home_city },
    )
    .unwrap();
    let total_effort = crawler.effort();
    let size = scenario.config.school_size as u64;
    assert!(
        basic_effort.total() < 8 * size,
        "basic effort {} vs school size {size}",
        basic_effort.total()
    );
    assert!(total_effort.total() > basic_effort.total());
}
