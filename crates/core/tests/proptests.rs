//! Property tests for the inference core.

use hsp_core::{
    evaluate, partial_estimate, rank_candidates, score_candidate, AttackConfig, CoreUser,
    GroundTruth,
};
use hsp_graph::{SchoolId, UserId};
use proptest::prelude::*;
use std::collections::HashMap;

fn cfg() -> AttackConfig {
    AttackConfig::new(SchoolId(0), 2012, 360)
}

prop_compose! {
    fn arb_core()(
        grad_offset in 0i32..4,
        id in 1000u64..2000,
        friends in prop::collection::btree_set(0u64..300, 0..40),
    ) -> CoreUser {
        CoreUser {
            id: UserId(id),
            grad_year: 2012 + grad_offset,
            friends: friends.into_iter().map(UserId).collect(),
        }
    }
}

proptest! {
    /// Scores are in [0, 1]; the chosen class attains the maximum ratio.
    #[test]
    fn scores_are_bounded_and_argmax(
        by_class in prop::collection::vec(0u32..10, 4),
        sizes in prop::collection::vec(1u32..12, 4),
    ) {
        let by_class: [u32; 4] = by_class.try_into().unwrap();
        let mut sizes: [u32; 4] = sizes.try_into().unwrap();
        // Counts can't exceed the class size (G_i(u) ⊆ C_i).
        for i in 0..4 {
            sizes[i] = sizes[i].max(by_class[i]).max(1);
        }
        let c = score_candidate(UserId(1), by_class, sizes);
        prop_assert!((0.0..=1.0).contains(&c.score));
        for i in 0..4 {
            let frac = by_class[i] as f64 / sizes[i] as f64;
            prop_assert!(frac <= c.score + 1e-12, "class {i} beats chosen class");
        }
        let chosen = by_class[c.best_class] as f64 / sizes[c.best_class] as f64;
        prop_assert!((chosen - c.score).abs() < 1e-12);
    }

    /// Ranking output is invariant under permutation of the core list,
    /// covers exactly the union of core friends, and every per-class
    /// count is consistent with the cores' lists.
    #[test]
    fn ranking_is_core_order_invariant_and_complete(
        mut cores in prop::collection::vec(arb_core(), 1..8),
    ) {
        let config = cfg();
        let ranked1 = rank_candidates(&config, &cores);
        cores.reverse();
        let ranked2 = rank_candidates(&config, &cores);
        let key = |r: &[hsp_core::Candidate]| {
            r.iter().map(|c| (c.id, c.core_friends_by_class)).collect::<Vec<_>>()
        };
        prop_assert_eq!(key(&ranked1), key(&ranked2));

        // Coverage: candidates == union of friends.
        let mut expected: Vec<UserId> =
            cores.iter().flat_map(|c| c.friends.iter().copied()).collect();
        expected.sort_unstable();
        expected.dedup();
        let mut got: Vec<UserId> = ranked1.iter().map(|c| c.id).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expected);

        // Per-class counts match a direct recount.
        let mut recount: HashMap<UserId, [u32; 4]> = HashMap::new();
        for core in &cores {
            let class = config.class_index(core.grad_year).unwrap();
            for &f in &core.friends {
                recount.entry(f).or_default()[class] += 1;
            }
        }
        for c in &ranked1 {
            prop_assert_eq!(&c.core_friends_by_class, &recount[&c.id]);
        }
        // Scores descend.
        prop_assert!(ranked1.windows(2).all(|w| w[0].score >= w[1].score));
    }

    /// evaluate: found + false positives == |guessed|; correct_year <= found.
    #[test]
    fn evaluation_counts_partition(
        guessed in prop::collection::btree_set(0u64..100, 0..50),
        students in prop::collection::btree_set(0u64..100, 0..50),
        year_ok in any::<bool>(),
    ) {
        let students: Vec<UserId> = students.into_iter().map(UserId).collect();
        let years: HashMap<UserId, i32> = students.iter().map(|&u| (u, 2014)).collect();
        let truth = GroundTruth::new(students, years);
        let guessed: Vec<UserId> = guessed.into_iter().map(UserId).collect();
        let point = evaluate(
            7,
            &guessed,
            |_| Some(if year_ok { 2014 } else { 2013 }),
            &truth,
        );
        prop_assert_eq!(point.found + point.false_positives, guessed.len());
        prop_assert!(point.correct_year <= point.found);
        if year_ok {
            prop_assert_eq!(point.correct_year, point.found);
        } else {
            prop_assert_eq!(point.correct_year, 0);
        }
    }

    /// §5.5 estimator identity: when the false-positive estimate is not
    /// clamped at zero, est_found + est_fp == core + t.
    #[test]
    fn partial_estimator_identity(
        t in 1usize..3000,
        z in 0usize..50,
        n_test in 1usize..50,
        core in 0usize..200,
        extra in 1usize..2000,
    ) {
        let z = z.min(n_test);
        let school = core + extra;
        let e = partial_estimate(t, z, n_test, core, school);
        prop_assert!(e.est_found >= core as f64 - 1e-9);
        prop_assert!(e.est_found <= school as f64 + 1e-9);
        let unclamped_fp = t as f64 - (e.est_found - core as f64);
        if unclamped_fp >= 0.0 {
            prop_assert!(
                (e.est_found + e.est_false_positives - (core + t) as f64).abs() < 1e-6,
                "identity violated: found {} fp {}",
                e.est_found,
                e.est_false_positives
            );
        } else {
            prop_assert_eq!(e.est_false_positives, 0.0);
        }
    }

    /// Guessed sets grow monotonically in t and always contain the
    /// claiming users.
    #[test]
    fn guessed_students_monotone_in_t(
        cores in prop::collection::vec(arb_core(), 1..6),
        t1 in 0usize..50,
        dt in 0usize..50,
    ) {
        let config = cfg();
        let ranked = rank_candidates(&config, &cores);
        let claiming: Vec<UserId> = cores.iter().map(|c| c.id).collect();
        let d = hsp_core::Discovery {
            config,
            seeds: claiming.clone(),
            claiming: claiming.clone(),
            core: cores,
            ranked,
        };
        let g1 = d.guessed_students(t1);
        let g2 = d.guessed_students(t1 + dt);
        for u in &g1 {
            prop_assert!(g2.binary_search(u).is_ok(), "shrunk at larger t");
        }
        for c in &claiming {
            prop_assert!(g1.binary_search(c).is_ok(), "claimer missing");
        }
    }
}
